// A real-time database session (section 5.1): the Figure 1 gallery
// database, the MonthChange purge rule of section 5.1.2, sensor image
// objects with consistency checks, and a Definition 5.1 recognition run.
//
//   $ ./rtdb_monitor

#include <iostream>

#include "rtw/rtdb/active.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/ngc.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/rtdb/rtdb.hpp"
#include "rtw/rtdb/temporal.hpp"
#include "rtw/engine/engine.hpp"

using namespace rtw::rtdb;
using rtw::core::Tick;

int main() {
  std::cout << "== real-time database (section 5.1) ==\n\n";

  // --- Figure 1 + Figure 2 ----------------------------------------------
  auto db = ngc::figure1_instance();
  std::cout << db.to_string();
  std::cout << "query: which artist is exhibited in which city in November\n";
  std::cout << ngc::november_artists_query()(db).to_string() << "\n";

  // --- The section 5.1.2 rule: on MonthChange del(Date < CurrentDate) ---
  RuleEngine engine;
  Rule purge;
  purge.name = "purge-past";
  purge.event = "MonthChange";
  purge.condition = [](const Database&, const Event&) { return true; };
  purge.action = [](Database& d, const Event& e, const EmitFn&) {
    const Date current = std::get<Date>(e.attributes.at("CurrentDate"));
    auto& sch = d.get("Schedules");
    sch.erase_if([&sch, &current](const Tuple& t) {
      return std::get<Date>(sch.field(t, "Date")) < current;
    });
  };
  engine.add_rule(std::move(purge));
  Event november;
  november.name = "MonthChange";
  november.attributes["CurrentDate"] = Value{Date{1999, 11}};
  engine.process(db, std::move(november));
  std::cout << "after MonthChange(November 1999), Schedules has "
            << db.get("Schedules").size() << " rows (October purged)\n\n";

  // --- Image / derived / invariant objects ------------------------------
  RealTimeDatabase rtdb(4);
  rtdb.add_image({"visitors", 5, [](Tick t) {
                    return Value{static_cast<std::int64_t>(40 + (t * 13) % 25)};
                  }});
  rtdb.add_image({"temperature", 8, [](Tick t) {
                    return Value{static_cast<std::int64_t>(18 + t % 5)};
                  }});
  rtdb.add_derived({"comfort-index",
                    {"visitors", "temperature"},
                    [](const std::vector<TimedValue>& in) {
                      return Value{std::get<std::int64_t>(in[1].value) * 100 /
                                   std::max<std::int64_t>(
                                       1, std::get<std::int64_t>(in[0].value))};
                    }});
  rtdb.add_invariant("gallery", Value{std::string("National Gallery")});

  for (Tick t = 0; t <= 40; ++t) rtdb.tick(t);
  const auto visitors = rtdb.image_value("visitors");
  const auto comfort = rtdb.derived_value("comfort-index");
  std::cout << "sampled until t=40:\n";
  std::cout << "  visitors       = " << to_string(visitors->value)
            << " (valid at " << visitors->valid_time << ")\n";
  std::cout << "  comfort-index  = " << to_string(comfort->value)
            << " (timestamp = oldest input = " << comfort->valid_time
            << ")\n";
  std::cout << "  absolutely consistent (T_a=8)?  "
            << (rtdb.absolutely_consistent(42, 8) ? "yes" : "no") << "\n";
  std::cout << "  relatively consistent (T_r=0)?  "
            << (rtdb.relatively_consistent(0) ? "yes" : "no") << "\n\n";

  // --- Definition 5.1 recognition ---------------------------------------
  RtdbWordSpec spec;
  spec.invariants = {{"gallery", Value{std::string("NGC")}}};
  spec.images.push_back({"visitors", 5, [](Tick t) {
                           return Value{static_cast<std::int64_t>(
                               40 + (t * 13) % 25)};
                         }});
  QueryCatalog catalog;
  catalog.add(Query("busy", [](const Database& d) {
    const auto& objects = d.get("Objects");
    return project(
        select(objects,
               [](const Relation& rel, const Tuple& t) {
                 const auto* v =
                     std::get_if<std::int64_t>(&rel.field(t, "Value"));
                 return v && *v >= 50;
               }),
        {"Name"});
  }));

  AperiodicQuerySpec query;
  query.query = "busy";
  query.candidate = {Value{std::string("visitors")}};
  query.issue_time = 12;
  query.usefulness = rtw::deadline::Usefulness::firm(30, 10);
  query.min_acceptable = 1;

  const auto word =
      rtw::core::concat(build_dbB(spec), build_aq(query));
  RecognitionAcceptor acceptor(catalog, linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto result = rtw::engine::run(acceptor, word, options).result;
  std::cout << "recognition word db_B aq[busy, visitors, t=12]: "
            << (result.accepted ? "ACCEPT" : "REJECT")
            << " (visitors at t=10 is "
            << to_string(spec.images[0].sampler(10)) << ")\n";
  return 0;
}
