// svc_stream: the serving layer in ~80 lines.
//
// Two clients stream deadline-transaction words at one SessionManager:
// client A proposes the correct sorted output, client B a wrong one.  The
// words travel as length-prefixed wire frames through the Decoder -- the
// same path a socket or replay file would use -- and the manager fans the
// decoded events across its shard workers.  Run it:
//
//   ./svc_stream
//
// Expected output: session 1 accepted (exact), session 2 rejected.

#include <iostream>
#include <memory>
#include <string>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/online.hpp"
#include "rtw/deadline/word.hpp"
#include "rtw/svc/service.hpp"
#include "rtw/svc/wire.hpp"

using namespace rtw::core;
using rtw::svc::SessionManager;

namespace {

/// Encodes one client's whole life as wire frames: open, the word's
/// symbols in feed chunks, close.
std::string client_stream(rtw::svc::SessionId id, bool correct_output) {
  rtw::deadline::DeadlineInstance instance;
  instance.input = {Symbol::nat(4), Symbol::nat(1), Symbol::nat(3)};
  instance.proposed_output =
      correct_output
          ? std::vector<Symbol>{Symbol::nat(1), Symbol::nat(3), Symbol::nat(4)}
          : std::vector<Symbol>{Symbol::nat(9)};
  instance.usefulness = rtw::deadline::Usefulness::firm(30, 10);
  instance.min_acceptable = 1;

  // Deadline words are timed omega-words: stream the prefix the default
  // horizon would see and close Truncated, exactly the engine's view.
  constexpr Tick horizon = 200;
  const auto word = rtw::deadline::build_deadline_word(instance);
  std::vector<TimedSymbol> symbols;
  auto cursor = word.cursor();
  while (!cursor.done() && cursor.current().time <= horizon) {
    symbols.push_back(cursor.current());
    cursor.advance();
  }

  std::string stream = rtw::svc::encode_open(id, "sort");
  constexpr std::size_t chunk = 8;  // a few symbols per Feed frame
  for (std::size_t off = 0; off < symbols.size(); off += chunk)
    stream += rtw::svc::encode_feed(
        id, {symbols.begin() + off,
             symbols.begin() + std::min(symbols.size(), off + chunk)});
  stream += rtw::svc::encode_close(id, StreamEnd::Truncated);
  return stream;
}

}  // namespace

int main() {
  rtw::svc::ShardConfig shard;
  shard.count = 2;
  SessionManager manager(shard, rtw::svc::IngressConfig{});

  // The factory maps a wire profile string to a fresh online acceptor.
  const rtw::svc::AcceptorFactory factory =
      [](rtw::svc::SessionId, std::string_view profile)
      -> std::unique_ptr<OnlineAcceptor> {
    if (profile != "sort") return nullptr;
    return rtw::deadline::make_online_acceptor(
        std::make_shared<rtw::deadline::SortProblem>());
  };

  // One Decoder per connection (frames of different sockets never share a
  // byte stream); deliveries interleave across connections in ragged
  // chunks, as a poll loop would observe them.
  const std::string streams[] = {client_stream(1, /*correct_output=*/true),
                                 client_stream(2, /*correct_output=*/false)};
  rtw::svc::Decoder decoders[2];
  std::size_t offsets[2] = {0, 0};
  for (bool progress = true; progress;) {
    progress = false;
    for (int c = 0; c < 2; ++c) {
      const std::size_t chunk =
          std::min<std::size_t>(17 + 11 * c, streams[c].size() - offsets[c]);
      if (chunk == 0) continue;
      progress = true;
      decoders[c].push(
          std::string_view(streams[c]).substr(offsets[c], chunk));
      offsets[c] += chunk;
      rtw::svc::WireEvent event;
      while (decoders[c].next(event)) manager.apply(event, factory);
      if (!decoders[c].ok()) {
        std::cerr << "wire error: " << decoders[c].error() << "\n";
        return 1;
      }
    }
  }

  manager.shutdown(StreamEnd::Truncated);
  for (const auto& report : manager.collect())
    std::cout << "session " << report.id << ": "
              << to_string(report.verdict)
              << (report.result.exact ? " (exact)" : " (heuristic)")
              << ", fed " << report.fed << " symbols\n";

  const auto stats = manager.stats();
  std::cout << "ingested " << stats.ingested << " symbols across "
            << stats.opened << " sessions on " << manager.shards()
            << " shards\n";
  return 0;
}
