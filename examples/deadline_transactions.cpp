// Section 4.1's running story, executable: "this transaction must
// terminate within 20 seconds from its initiation" (firm), and the soft
// variant whose usefulness is max * 1/(t - 20) after the deadline.
//
//   $ ./deadline_transactions

#include <iostream>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/scheduling.hpp"

using namespace rtw::deadline;
using rtw::core::Symbol;

namespace {

void verdict_line(const char* label, bool accepted) {
  std::cout << "  " << label << " -> "
            << (accepted ? "ACCEPT (in L(Pi))" : "REJECT") << "\n";
}

}  // namespace

int main() {
  std::cout << "== computing with deadlines (section 4.1) ==\n\n";

  // The transaction: sort a small batch; its simulated work cost decides
  // whether the 20-tick deadline holds.
  SortProblem sorter;
  DeadlineInstance txn;
  txn.input = {Symbol::nat(9), Symbol::nat(2), Symbol::nat(7),
               Symbol::nat(1)};  // cost: 4 * bit_width(4) = 12 ticks
  txn.proposed_output = sorter.solve(txn.input);
  std::cout << "transaction work cost: " << sorter.work_cost(txn.input)
            << " ticks\n\n";

  std::cout << "firm deadline at 20 (cost 12 meets it):\n";
  txn.usefulness = Usefulness::firm(20, 100);
  txn.min_acceptable = 1;
  verdict_line("correct solution ", accepts_instance(sorter, txn));
  auto wrong = txn;
  wrong.proposed_output = {Symbol::nat(0), Symbol::nat(0), Symbol::nat(0),
                           Symbol::nat(0)};
  verdict_line("wrong solution   ", accepts_instance(sorter, wrong));

  std::cout << "\nfirm deadline at 5 (cost 12 misses it):\n";
  txn.usefulness = Usefulness::firm(5, 100);
  verdict_line("correct solution ", accepts_instance(sorter, txn));

  std::cout << "\nsoft deadline at 5, u(t) = 100/(t-5), floor varies:\n";
  // Completion at t = 12: usefulness 100/7 = 14.
  txn.usefulness = Usefulness::hyperbolic(5, 100);
  for (std::uint64_t floor : {10ull, 14ull, 15ull, 90ull}) {
    txn.min_acceptable = floor;
    std::cout << "  min acceptable " << floor << " -> "
              << (accepts_instance(sorter, txn) ? "ACCEPT" : "REJECT")
              << " (u(12) = " << txn.usefulness.at(12) << ")\n";
  }

  // A look at the word itself.
  txn.min_acceptable = 10;
  const auto word = build_deadline_word(txn);
  std::cout << "\nthe timed omega-word (first 20 symbols):\n  "
            << word.to_string(20) << "\n";
  std::cout << "well-behaved: " << to_string(word.well_behaved()) << "\n\n";

  // Many transactions at once: the scheduling substrate.
  std::cout << "scheduling 3 periodic transaction streams (EDF vs FIFO):\n";
  // A long low-urgency task colliding with a short tight one: FIFO's
  // head-of-line blocking misses deadlines that EDF meets.
  const std::vector<Task> tasks = {{0, 0, 7, 30, 30},
                                   {1, 2, 2, 5, 15},
                                   {2, 3, 3, 9, 18}};
  for (auto policy : {Policy::Edf, Policy::Fifo, Policy::RateMonotonic}) {
    const auto r = simulate_schedule(tasks, policy, 240);
    std::cout << "  " << to_string(policy) << ": " << r.missed << "/"
              << r.jobs.size() << " deadline misses, mean response "
              << r.response_time.mean() << " ticks\n";
  }
  return 0;
}
