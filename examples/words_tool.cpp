// Tooling walkthrough: serialize timed words to text, parse them back,
// snapshot an infinite simulation word, and export automata to Graphviz.
//
//   $ ./words_tool            # prints everything to stdout
//
// Piping the DOT blocks through `dot -Tpng` renders the state graphs.

#include <iostream>

#include "rtw/automata/dot.hpp"
#include "rtw/automata/operations.hpp"
#include "rtw/core/serialize.hpp"
#include "rtw/core/transform.hpp"
#include "rtw/deadline/word.hpp"

using namespace rtw::core;

int main() {
  std::cout << "== word tooling ==\n\n";

  // --- serialize / parse round trip -------------------------------------
  auto heartbeat = TimedWord::lasso({{Symbol::chr('s'), 0}},
                                    {{Symbol::chr('h'), 2}}, 2);
  const auto text = serialize(heartbeat);
  std::cout << "serialized lasso : " << text << "\n";
  const auto parsed = parse_word(text);
  std::cout << "parsed back      : " << parsed.to_string(5) << "\n";
  std::cout << "well-behaved     : " << to_string(parsed.well_behaved())
            << "\n\n";

  // --- snapshotting an application word ----------------------------------
  rtw::deadline::DeadlineInstance txn;
  txn.input = {Symbol::nat(5), Symbol::nat(1)};
  txn.proposed_output = {Symbol::nat(1), Symbol::nat(5)};
  txn.usefulness = rtw::deadline::Usefulness::firm(4, 9);
  txn.min_acceptable = 2;
  const auto word = rtw::deadline::build_deadline_word(txn);
  std::cout << "a section 4.1 word, serialized:\n  " << serialize(word)
            << "\n\n";
  std::cout << "its first 6 ticks as a finite snapshot:\n  "
            << serialize(take_until(word, 6)) << "\n\n";

  // --- automata to Graphviz ----------------------------------------------
  using namespace rtw::automata;
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  std::cout << "the within-two TBA as DOT (pipe to `dot -Tpng`):\n";
  std::cout << to_dot(tba, "within_two") << "\n";

  const auto witness = tba.witness_wellbehaved();
  if (witness)
    std::cout << "a well-behaved word it accepts: " << serialize(*witness)
              << "\n";
  return 0;
}
