// rtw_svcd: the serving layer as a network daemon.
//
// Binds the epoll TCP front-end to a Server speaking the wire protocol
// with the built-in profile acceptors ("accept", "reject", "count:K" --
// see rtw/svc/profiles.hpp), serves until SIGINT/SIGTERM, then drains
// gracefully: every still-open session is truncate-closed and its
// verdict flushed to the owning client before the socket closes.
//
//   ./rtw_svcd --port 4600 --shards 4
//   ./rtw_svcd --port 0            # kernel-assigned; parse the line below
//
// Startup prints exactly one line to stdout:
//
//   rtw_svcd listening on 127.0.0.1:4600
//
// and shutdown appends a JSONL stats row (standard bench envelope) to
// stdout and, with --json PATH, to that file -- the net-smoke CI job
// asserts on those fields.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/net/tcp_server.hpp"
#include "rtw/svc/profiles.hpp"
#include "rtw/svc/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

struct Options {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 4600;
  unsigned shards = 2;
  std::size_t ring = 4096;
  std::string json_path;
  std::uint64_t max_runtime_s = 0;  ///< 0 = until signal (CI safety net)
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--bind") {
      const char* v = next();
      if (!v) return false;
      opt.bind = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      opt.shards = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--ring") {
      const char* v = next();
      if (!v) return false;
      opt.ring = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      opt.json_path = v;
    } else if (arg == "--max-runtime-s") {
      const char* v = next();
      if (!v) return false;
      opt.max_runtime_s = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::cerr << "rtw_svcd: unknown argument '" << arg << "'\n"
                << "usage: rtw_svcd [--bind A] [--port N] [--shards N] "
                   "[--ring N] [--json PATH] [--max-runtime-s N]\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  rtw::svc::net::raise_nofile_limit(1 << 18);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  rtw::svc::ServerConfig config;
  config.shard.count = opt.shards;
  config.ingress.ring_capacity = opt.ring;
  config.net.bind_address = opt.bind;
  config.net.port = opt.port;

  rtw::svc::Server server(config, rtw::svc::profile_factory());
  rtw::svc::net::TcpServer transport(server);
  if (!transport.start()) {
    std::cerr << "rtw_svcd: " << transport.error() << "\n";
    return 1;
  }
  std::cout << "rtw_svcd listening on " << opt.bind << ":"
            << transport.port() << std::endl;  // flush: CI parses this line

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (opt.max_runtime_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(opt.max_runtime_s))
      break;
  }

  transport.stop();  // graceful drain (see net/tcp_server.hpp)

  const auto net = transport.stats();
  const auto svc = server.manager().stats();
  const std::string row =
      rtw::sim::bench_record("svcd")
          .field("shards", opt.shards)
          .field("ring", static_cast<std::uint64_t>(opt.ring))
          .field("accepted_conns", net.accepted)
          .field("closed_conns", net.closed)
          .field("rejected_capacity", net.rejected_capacity)
          .field("read_bytes", net.read_bytes)
          .field("written_bytes", net.written_bytes)
          .field("read_pauses", net.read_pauses)
          .field("frame_errors", net.frame_errors)
          .field("sessions_opened", svc.opened)
          .field("sessions_closed", svc.closed)
          .field("sessions_active", svc.active)
          .field("symbols_ingested", svc.ingested)
          .field("symbols_shed", svc.shed)
          .field("stale_dropped", svc.stale)
          .field("unknown", svc.unknown)
          .str();
  std::cout << row << std::endl;
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::app);
    out << row << "\n";
  }
  return 0;
}
