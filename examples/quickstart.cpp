// Quickstart: timed omega-words, Definition 3.5 concatenation, acceptance
// (Definition 3.4), and a timed Buchi automaton -- the core vocabulary of
// the library in one file.
//
//   $ ./quickstart

#include <iostream>

#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/acceptor.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/core/language.hpp"
#include "rtw/engine/engine.hpp"

using namespace rtw::core;

int main() {
  std::cout << "== rt-omega quickstart ==\n\n";

  // --- 1. Timed words (Definition 3.2) ---------------------------------
  // A finite timed word: symbols with arrival timestamps.
  auto request = TimedWord::finite(symbols_of("req"), {0, 0, 0});
  // An infinite, ultimately periodic word: a heartbeat every 3 ticks.
  auto heartbeat = TimedWord::lasso({}, {{Symbol::chr('h'), 3}}, 3);

  std::cout << "request   = " << request.to_string() << "\n";
  std::cout << "heartbeat = " << heartbeat.to_string(5) << "\n";
  std::cout << "heartbeat well-behaved? "
            << to_string(heartbeat.well_behaved()) << "\n";
  // Classical words (all-zero time sequence) are never well-behaved --
  // the paper's crisp delimitation between classical and real-time.
  std::cout << "classical('abc') well-behaved? "
            << to_string(classical("abc").well_behaved()) << "\n\n";

  // --- 2. Concatenation is a time-ordered merge (Definition 3.5) -------
  auto merged = concat(request, heartbeat);
  std::cout << "request . heartbeat = " << merged.to_string(7) << "\n";
  std::cout << "is a valid Def-3.5 concatenation? "
            << to_string(is_concatenation(merged, request, heartbeat, 64))
            << "\n\n";

  // --- 3. A real-time algorithm (Definitions 3.3 / 3.4) ----------------
  // Accepts words whose first three symbols spell "req": locks into s_f
  // (f forever) or s_r.
  class ReqAcceptor final : public RealTimeAlgorithm {
  public:
    void on_tick(const StepContext& ctx) override {
      for (const auto& ts : ctx.arrivals) {
        if (seen_ < 3 && ts.sym == Symbol::chr("req"[seen_])) ++seen_;
        else if (seen_ < 3) { verdict_ = false; decided_ = true; }
      }
      if (seen_ == 3 && !decided_) { verdict_ = true; decided_ = true; }
      if (decided_ && verdict_ && ctx.out.can_write(ctx.now))
        ctx.out.write(ctx.now, ctx.out.accept_symbol());
    }
    std::optional<bool> locked() const override {
      return decided_ ? std::optional(verdict_) : std::nullopt;
    }
    void reset() override { seen_ = 0; decided_ = false; verdict_ = false; }

  private:
    int seen_ = 0;
    bool decided_ = false;
    bool verdict_ = false;
  } acceptor;

  const auto yes = rtw::engine::run(acceptor, merged).result;
  std::cout << "acceptor on request.heartbeat : "
            << (yes.accepted ? "ACCEPT" : "REJECT")
            << " (exact=" << yes.exact << ", first f at tick "
            << (yes.first_f ? std::to_string(*yes.first_f) : "-") << ")\n";
  const auto no = rtw::engine::run(acceptor, heartbeat).result;
  std::cout << "acceptor on heartbeat alone   : "
            << (no.accepted ? "ACCEPT" : "REJECT") << "\n\n";

  // --- 4. A timed Buchi automaton (section 2.1) ------------------------
  // Accepts (a b)^omega where b follows a within 2 ticks.
  using namespace rtw::automata;
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);

  auto tight = TimedWord::lasso(
      {}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 2}}, 5);
  auto loose = TimedWord::lasso(
      {}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 4}}, 8);
  std::cout << "TBA (b within 2 of a): tight word -> "
            << (tba.accepts_lasso(tight) ? "ACCEPT" : "REJECT")
            << ", loose word -> "
            << (tba.accepts_lasso(loose) ? "ACCEPT" : "REJECT") << "\n";
  return 0;
}
