// Routing in an ad hoc network (section 5.2): simulate a 12-node mobile
// network, route one message with AODV, print the route word's structure,
// validate it against R_{n,u}, and show the distributed decomposition
// H_i = L_i R_i.
//
//   $ ./adhoc_routing

#include <iostream>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/obs/export.hpp"

using namespace rtw::adhoc;

int main() {
  // RTW_TRACE=<path> captures this walkthrough as a Chrome trace.
  rtw::obs::init_from_env();

  std::cout << "== ad hoc routing (section 5.2) ==\n\n";

  NetworkConfig config;
  config.nodes = 12;
  config.region = {120, 120};
  config.radio_range = 45;
  config.pause_time = 30;
  config.seed = 20260706;
  Network net(config);

  std::cout << "12 random-waypoint nodes, radio range "
            << net.radio_range() << "; positions at t=0:\n";
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto p = net.position(i, 0);
    std::cout << "  node " << i << " @ (" << static_cast<int>(p.x) << ","
              << static_cast<int>(p.y) << ")  neighbors:";
    for (NodeId j : net.neighbors(i, 0)) std::cout << " " << j;
    std::cout << "\n";
  }

  // Route one message 0 -> 7 with AODV.
  Simulator sim(net, aodv_factory());
  const DataSpec msg{1, 0, 7, 10};
  sim.schedule(msg);
  const auto result = sim.run(300);

  const auto delivery = result.delivery_of(1);
  if (!delivery) {
    std::cout << "\nmessage 0 -> 7 was NOT delivered (t'_f = omega): the "
                 "word falls outside R_{n,u}\n";
    return 0;
  }
  std::cout << "\nmessage 0 -> 7 originated at t=" << msg.at
            << ", delivered at t=" << delivery->delivered_at << " over "
            << delivery->hops << " hops\n";

  const auto trace = extract_route(result, net, 1);
  std::cout << "hop chain (u_1 ... u_f):\n";
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    std::cout << "  u_" << i + 1 << ": " << hop.src << " -> " << hop.dst
              << "  sent t=" << hop.sent_at << "  recv t'=" << hop.received_at
              << "\n";
  }
  std::cout << "auxiliary routing messages rt_j: " << trace.auxiliary.size()
            << " (discovery flood + reply)\n";
  std::cout << "routing overhead f + g = " << trace.overhead() << "\n";

  const auto why = validate_route(trace, net);
  std::cout << "member of R_{n,u}? " << (why ? ("NO: " + *why) : "YES")
            << "\n";

  const auto optimal = net.static_shortest_hops(0, 7, msg.at);
  if (optimal)
    std::cout << "path optimality: took " << delivery->hops
              << " hops vs shortest " << *optimal << "\n";

  // The timed word itself (prefix).
  const auto word = route_instance_word(trace, net);
  std::cout << "\nroute instance word w = h_1..h_n m r ... (well-behaved: "
            << to_string(word.well_behaved()) << ")\n";

  // Distributed views (section 5.2.5).
  std::cout << "\ndistributed decomposition H_i = L_i R_i:\n";
  const auto views = decompose(trace, net.size());
  for (const auto& [local, remote] : views) {
    if (local.sent.empty() && remote.received.empty()) continue;
    std::cout << "  node " << local.node << ": sent " << local.sent.size()
              << ", received " << remote.received.size() << "\n";
  }

  // The lossy language R'_{n,u}: re-run the same message under a
  // deterministic fault plan.  Drop a third of all link deliveries (the
  // plan's seed makes the run replayable bit for bit) and show that the
  // word stays a member of R' whether or not the message survives.
  std::cout << "\n== the same route under injected faults (R'_{n,u}) ==\n";
  rtw::sim::FaultPlan plan;
  plan.seed = 0x105eULL;  // any constant: (seed, plan) is the replay key
  plan.link.drop = 0.33;
  Simulator lossy_sim(net, aodv_factory(), {}, plan);
  lossy_sim.schedule(msg);
  const auto lossy_run = lossy_sim.run(300);
  std::cout << "injected: " << lossy_run.faults.dropped << " drops across "
            << lossy_run.receives.size() << " receptions\n";
  const auto lossy_trace = extract_route(lossy_run, net, 1);
  std::cout << "delivered under faults? "
            << (lossy_trace.delivered ? "yes" : "no (t'_f = omega)") << "\n";
  const auto lossy_why = validate_route_lossy(lossy_trace, net);
  std::cout << "member of R'_{n,u}? "
            << (lossy_why ? ("NO: " + *lossy_why) : "YES") << "\n";
  if (is_lost(lossy_trace, 50))
    std::cout << "lost under the practical reading (t'_f - t_1 > 50)\n";
  return 0;
}
