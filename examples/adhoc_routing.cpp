// Routing in an ad hoc network (section 5.2): simulate a 12-node mobile
// network, route one message with AODV, print the route word's structure,
// validate it against R_{n,u}, and show the distributed decomposition
// H_i = L_i R_i.
//
//   $ ./adhoc_routing

#include <iostream>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"

using namespace rtw::adhoc;

int main() {
  std::cout << "== ad hoc routing (section 5.2) ==\n\n";

  NetworkConfig config;
  config.nodes = 12;
  config.region = {120, 120};
  config.radio_range = 45;
  config.pause_time = 30;
  config.seed = 20260706;
  Network net(config);

  std::cout << "12 random-waypoint nodes, radio range "
            << net.radio_range() << "; positions at t=0:\n";
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto p = net.position(i, 0);
    std::cout << "  node " << i << " @ (" << static_cast<int>(p.x) << ","
              << static_cast<int>(p.y) << ")  neighbors:";
    for (NodeId j : net.neighbors(i, 0)) std::cout << " " << j;
    std::cout << "\n";
  }

  // Route one message 0 -> 7 with AODV.
  Simulator sim(net, aodv_factory());
  const DataSpec msg{1, 0, 7, 10};
  sim.schedule(msg);
  const auto result = sim.run(300);

  const auto delivery = result.delivery_of(1);
  if (!delivery) {
    std::cout << "\nmessage 0 -> 7 was NOT delivered (t'_f = omega): the "
                 "word falls outside R_{n,u}\n";
    return 0;
  }
  std::cout << "\nmessage 0 -> 7 originated at t=" << msg.at
            << ", delivered at t=" << delivery->delivered_at << " over "
            << delivery->hops << " hops\n";

  const auto trace = extract_route(result, net, 1);
  std::cout << "hop chain (u_1 ... u_f):\n";
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    std::cout << "  u_" << i + 1 << ": " << hop.src << " -> " << hop.dst
              << "  sent t=" << hop.sent_at << "  recv t'=" << hop.received_at
              << "\n";
  }
  std::cout << "auxiliary routing messages rt_j: " << trace.auxiliary.size()
            << " (discovery flood + reply)\n";
  std::cout << "routing overhead f + g = " << trace.overhead() << "\n";

  const auto why = validate_route(trace, net);
  std::cout << "member of R_{n,u}? " << (why ? ("NO: " + *why) : "YES")
            << "\n";

  const auto optimal = net.static_shortest_hops(0, 7, msg.at);
  if (optimal)
    std::cout << "path optimality: took " << delivery->hops
              << " hops vs shortest " << *optimal << "\n";

  // The timed word itself (prefix).
  const auto word = route_instance_word(trace, net);
  std::cout << "\nroute instance word w = h_1..h_n m r ... (well-behaved: "
            << to_string(word.well_behaved()) << ")\n";

  // Distributed views (section 5.2.5).
  std::cout << "\ndistributed decomposition H_i = L_i R_i:\n";
  const auto views = decompose(trace, net.size());
  for (const auto& [local, remote] : views) {
    if (local.sent.empty() && remote.received.empty()) continue;
    std::cout << "  node " << local.node << ": sent " << local.sent.size()
              << ", received " << remote.received.size() << "\n";
  }
  return 0;
}
