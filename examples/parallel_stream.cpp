// The explicit parallel model of section 6: four processes exchanging
// messages on the deterministic runtime, their behavior words
// (c_k l_k r_k), the PRAM degenerate case, and an rt-PROC staircase.
//
//   $ ./parallel_stream

#include <iostream>
#include <numeric>

#include "rtw/par/pram.hpp"
#include "rtw/par/process.hpp"
#include "rtw/par/rtproc.hpp"

using namespace rtw::par;
using rtw::core::Symbol;

namespace {

/// A pipeline stage: doubles each incoming number and forwards it.
class Stage final : public Process {
public:
  Stage(ProcId self, ProcId total) : self_(self), total_(total) {}
  std::string name() const override { return "stage"; }
  void on_tick(ProcContext& ctx) override {
    if (self_ == 0 && ctx.now() < 4) {
      // The head injects 1, 2, 3, 4.
      ctx.send(1, Symbol::nat(ctx.now() + 1));
      return;
    }
    for (const auto& m : ctx.inbox()) {
      const auto doubled = m.payload.as_nat() * 2;
      if (self_ + 1 < total_)
        ctx.send(self_ + 1, Symbol::nat(doubled));
      else
        ctx.emit(Symbol::nat(doubled));  // tail emits onto c_k
    }
  }

private:
  ProcId self_;
  ProcId total_;
};

}  // namespace

int main() {
  std::cout << "== explicit parallel model (section 6) ==\n\n";

  // --- message-passing pipeline -----------------------------------------
  ProcessSystem pipeline(4, [](ProcId id) {
    return std::make_unique<Stage>(id, 4);
  });
  const auto trace = pipeline.run(12);

  std::cout << "4-stage doubling pipeline, inputs 1..4:\n";
  for (ProcId k = 0; k < 4; ++k) {
    const auto c = trace.computation_word(k);
    const auto l = trace.send_word(k);
    const auto r = trace.receive_word(k);
    std::cout << "  process " << k << ": |c_" << k << "| = " << *c.length()
              << ", sends " << trace.processes[k].sent.size()
              << ", receives " << trace.processes[k].received.size()
              << "  -> behavior word c l r = "
              << trace.behavior_word(k).to_string(6) << "\n";
    (void)l;
    (void)r;
  }
  std::cout << "  tail output (inputs doubled 3x): ";
  for (const auto& ts : trace.processes[3].computation)
    std::cout << ts.sym.to_string() << "@" << ts.time << " ";
  std::cout << "\n\n";

  // --- the PRAM degenerate case ------------------------------------------
  std::cout << "PRAM (l_k = r_k = null words): prefix sums of 1..8\n";
  Pram pram(8, 8, PramVariant::Crew);
  std::iota(pram.memory().begin(), pram.memory().end(), 1);
  const auto steps = pram_prefix_sums(pram, 8);
  std::cout << "  " << steps << " steps (log2 n); result:";
  for (auto v : pram.memory()) std::cout << " " << v;
  std::cout << "\n\n";

  // --- rt-PROC(p) staircase ------------------------------------------------
  std::cout << "rt-PROC(p) on the token family L_m (slack 8):\n";
  std::cout << "  rows p = 1..5, columns m = 1..5; '#' = accepted\n";
  const auto matrix = rtproc_matrix(5, 5, 8, 200);
  for (std::size_t p = 0; p < matrix.size(); ++p) {
    std::cout << "  p=" << p + 1 << "  ";
    for (bool ok : matrix[p]) std::cout << (ok ? '#' : '.');
    std::cout << "\n";
  }
  std::cout << "  (the strict staircase answers the paper's hierarchy "
               "question positively on this family)\n";
  return 0;
}
