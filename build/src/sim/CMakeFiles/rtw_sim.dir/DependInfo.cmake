
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/event_queue.cpp" "src/sim/CMakeFiles/rtw_sim.dir/src/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/rtw_sim.dir/src/event_queue.cpp.o.d"
  "/root/repo/src/sim/src/histogram.cpp" "src/sim/CMakeFiles/rtw_sim.dir/src/histogram.cpp.o" "gcc" "src/sim/CMakeFiles/rtw_sim.dir/src/histogram.cpp.o.d"
  "/root/repo/src/sim/src/rng.cpp" "src/sim/CMakeFiles/rtw_sim.dir/src/rng.cpp.o" "gcc" "src/sim/CMakeFiles/rtw_sim.dir/src/rng.cpp.o.d"
  "/root/repo/src/sim/src/stats.cpp" "src/sim/CMakeFiles/rtw_sim.dir/src/stats.cpp.o" "gcc" "src/sim/CMakeFiles/rtw_sim.dir/src/stats.cpp.o.d"
  "/root/repo/src/sim/src/table.cpp" "src/sim/CMakeFiles/rtw_sim.dir/src/table.cpp.o" "gcc" "src/sim/CMakeFiles/rtw_sim.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
