# Empty compiler generated dependencies file for rtw_sim.
# This may be replaced when dependencies are built.
