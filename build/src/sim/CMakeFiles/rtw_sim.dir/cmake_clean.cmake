file(REMOVE_RECURSE
  "CMakeFiles/rtw_sim.dir/src/event_queue.cpp.o"
  "CMakeFiles/rtw_sim.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/rtw_sim.dir/src/histogram.cpp.o"
  "CMakeFiles/rtw_sim.dir/src/histogram.cpp.o.d"
  "CMakeFiles/rtw_sim.dir/src/rng.cpp.o"
  "CMakeFiles/rtw_sim.dir/src/rng.cpp.o.d"
  "CMakeFiles/rtw_sim.dir/src/stats.cpp.o"
  "CMakeFiles/rtw_sim.dir/src/stats.cpp.o.d"
  "CMakeFiles/rtw_sim.dir/src/table.cpp.o"
  "CMakeFiles/rtw_sim.dir/src/table.cpp.o.d"
  "librtw_sim.a"
  "librtw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
