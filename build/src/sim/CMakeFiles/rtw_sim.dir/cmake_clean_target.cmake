file(REMOVE_RECURSE
  "librtw_sim.a"
)
