
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/acceptor.cpp" "src/core/CMakeFiles/rtw_core.dir/src/acceptor.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/acceptor.cpp.o.d"
  "/root/repo/src/core/src/concat.cpp" "src/core/CMakeFiles/rtw_core.dir/src/concat.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/concat.cpp.o.d"
  "/root/repo/src/core/src/language.cpp" "src/core/CMakeFiles/rtw_core.dir/src/language.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/language.cpp.o.d"
  "/root/repo/src/core/src/serialize.cpp" "src/core/CMakeFiles/rtw_core.dir/src/serialize.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/serialize.cpp.o.d"
  "/root/repo/src/core/src/symbol.cpp" "src/core/CMakeFiles/rtw_core.dir/src/symbol.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/symbol.cpp.o.d"
  "/root/repo/src/core/src/tape.cpp" "src/core/CMakeFiles/rtw_core.dir/src/tape.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/tape.cpp.o.d"
  "/root/repo/src/core/src/timed_word.cpp" "src/core/CMakeFiles/rtw_core.dir/src/timed_word.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/timed_word.cpp.o.d"
  "/root/repo/src/core/src/transform.cpp" "src/core/CMakeFiles/rtw_core.dir/src/transform.cpp.o" "gcc" "src/core/CMakeFiles/rtw_core.dir/src/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
