file(REMOVE_RECURSE
  "CMakeFiles/rtw_core.dir/src/acceptor.cpp.o"
  "CMakeFiles/rtw_core.dir/src/acceptor.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/concat.cpp.o"
  "CMakeFiles/rtw_core.dir/src/concat.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/language.cpp.o"
  "CMakeFiles/rtw_core.dir/src/language.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/serialize.cpp.o"
  "CMakeFiles/rtw_core.dir/src/serialize.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/symbol.cpp.o"
  "CMakeFiles/rtw_core.dir/src/symbol.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/tape.cpp.o"
  "CMakeFiles/rtw_core.dir/src/tape.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/timed_word.cpp.o"
  "CMakeFiles/rtw_core.dir/src/timed_word.cpp.o.d"
  "CMakeFiles/rtw_core.dir/src/transform.cpp.o"
  "CMakeFiles/rtw_core.dir/src/transform.cpp.o.d"
  "librtw_core.a"
  "librtw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
