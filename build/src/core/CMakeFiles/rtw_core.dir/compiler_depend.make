# Empty compiler generated dependencies file for rtw_core.
# This may be replaced when dependencies are built.
