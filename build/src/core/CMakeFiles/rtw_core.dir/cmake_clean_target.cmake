file(REMOVE_RECURSE
  "librtw_core.a"
)
