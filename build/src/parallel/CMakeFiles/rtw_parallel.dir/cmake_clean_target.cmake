file(REMOVE_RECURSE
  "librtw_parallel.a"
)
