file(REMOVE_RECURSE
  "CMakeFiles/rtw_parallel.dir/src/pram.cpp.o"
  "CMakeFiles/rtw_parallel.dir/src/pram.cpp.o.d"
  "CMakeFiles/rtw_parallel.dir/src/process.cpp.o"
  "CMakeFiles/rtw_parallel.dir/src/process.cpp.o.d"
  "CMakeFiles/rtw_parallel.dir/src/rtproc.cpp.o"
  "CMakeFiles/rtw_parallel.dir/src/rtproc.cpp.o.d"
  "CMakeFiles/rtw_parallel.dir/src/rtproc_word.cpp.o"
  "CMakeFiles/rtw_parallel.dir/src/rtproc_word.cpp.o.d"
  "CMakeFiles/rtw_parallel.dir/src/thread_pool.cpp.o"
  "CMakeFiles/rtw_parallel.dir/src/thread_pool.cpp.o.d"
  "librtw_parallel.a"
  "librtw_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
