# Empty dependencies file for rtw_parallel.
# This may be replaced when dependencies are built.
