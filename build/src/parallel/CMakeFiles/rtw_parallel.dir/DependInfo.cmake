
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/src/pram.cpp" "src/parallel/CMakeFiles/rtw_parallel.dir/src/pram.cpp.o" "gcc" "src/parallel/CMakeFiles/rtw_parallel.dir/src/pram.cpp.o.d"
  "/root/repo/src/parallel/src/process.cpp" "src/parallel/CMakeFiles/rtw_parallel.dir/src/process.cpp.o" "gcc" "src/parallel/CMakeFiles/rtw_parallel.dir/src/process.cpp.o.d"
  "/root/repo/src/parallel/src/rtproc.cpp" "src/parallel/CMakeFiles/rtw_parallel.dir/src/rtproc.cpp.o" "gcc" "src/parallel/CMakeFiles/rtw_parallel.dir/src/rtproc.cpp.o.d"
  "/root/repo/src/parallel/src/rtproc_word.cpp" "src/parallel/CMakeFiles/rtw_parallel.dir/src/rtproc_word.cpp.o" "gcc" "src/parallel/CMakeFiles/rtw_parallel.dir/src/rtproc_word.cpp.o.d"
  "/root/repo/src/parallel/src/thread_pool.cpp" "src/parallel/CMakeFiles/rtw_parallel.dir/src/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/rtw_parallel.dir/src/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
