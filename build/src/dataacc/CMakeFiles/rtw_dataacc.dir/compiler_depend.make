# Empty compiler generated dependencies file for rtw_dataacc.
# This may be replaced when dependencies are built.
