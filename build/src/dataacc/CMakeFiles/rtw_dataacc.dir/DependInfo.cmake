
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataacc/src/acceptor.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/acceptor.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/acceptor.cpp.o.d"
  "/root/repo/src/dataacc/src/arrival_law.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/arrival_law.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/arrival_law.cpp.o.d"
  "/root/repo/src/dataacc/src/corrections.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/corrections.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/corrections.cpp.o.d"
  "/root/repo/src/dataacc/src/d_algorithm.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/d_algorithm.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/d_algorithm.cpp.o.d"
  "/root/repo/src/dataacc/src/stream_problem.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/stream_problem.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/stream_problem.cpp.o.d"
  "/root/repo/src/dataacc/src/word.cpp" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/word.cpp.o" "gcc" "src/dataacc/CMakeFiles/rtw_dataacc.dir/src/word.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
