file(REMOVE_RECURSE
  "CMakeFiles/rtw_dataacc.dir/src/acceptor.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/acceptor.cpp.o.d"
  "CMakeFiles/rtw_dataacc.dir/src/arrival_law.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/arrival_law.cpp.o.d"
  "CMakeFiles/rtw_dataacc.dir/src/corrections.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/corrections.cpp.o.d"
  "CMakeFiles/rtw_dataacc.dir/src/d_algorithm.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/d_algorithm.cpp.o.d"
  "CMakeFiles/rtw_dataacc.dir/src/stream_problem.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/stream_problem.cpp.o.d"
  "CMakeFiles/rtw_dataacc.dir/src/word.cpp.o"
  "CMakeFiles/rtw_dataacc.dir/src/word.cpp.o.d"
  "librtw_dataacc.a"
  "librtw_dataacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_dataacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
