file(REMOVE_RECURSE
  "librtw_dataacc.a"
)
