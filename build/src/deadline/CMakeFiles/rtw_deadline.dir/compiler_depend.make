# Empty compiler generated dependencies file for rtw_deadline.
# This may be replaced when dependencies are built.
