file(REMOVE_RECURSE
  "CMakeFiles/rtw_deadline.dir/src/acceptor.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/acceptor.cpp.o.d"
  "CMakeFiles/rtw_deadline.dir/src/bridge.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/bridge.cpp.o.d"
  "CMakeFiles/rtw_deadline.dir/src/problem.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/problem.cpp.o.d"
  "CMakeFiles/rtw_deadline.dir/src/scheduling.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/scheduling.cpp.o.d"
  "CMakeFiles/rtw_deadline.dir/src/usefulness.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/usefulness.cpp.o.d"
  "CMakeFiles/rtw_deadline.dir/src/word.cpp.o"
  "CMakeFiles/rtw_deadline.dir/src/word.cpp.o.d"
  "librtw_deadline.a"
  "librtw_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
