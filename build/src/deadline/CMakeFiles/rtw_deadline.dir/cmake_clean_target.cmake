file(REMOVE_RECURSE
  "librtw_deadline.a"
)
