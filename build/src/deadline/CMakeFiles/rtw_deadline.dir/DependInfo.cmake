
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deadline/src/acceptor.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/acceptor.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/acceptor.cpp.o.d"
  "/root/repo/src/deadline/src/bridge.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/bridge.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/bridge.cpp.o.d"
  "/root/repo/src/deadline/src/problem.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/problem.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/problem.cpp.o.d"
  "/root/repo/src/deadline/src/scheduling.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/scheduling.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/scheduling.cpp.o.d"
  "/root/repo/src/deadline/src/usefulness.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/usefulness.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/usefulness.cpp.o.d"
  "/root/repo/src/deadline/src/word.cpp" "src/deadline/CMakeFiles/rtw_deadline.dir/src/word.cpp.o" "gcc" "src/deadline/CMakeFiles/rtw_deadline.dir/src/word.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
