# Empty compiler generated dependencies file for rtw_rtdb.
# This may be replaced when dependencies are built.
