file(REMOVE_RECURSE
  "librtw_rtdb.a"
)
