file(REMOVE_RECURSE
  "CMakeFiles/rtw_rtdb.dir/src/active.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/active.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/algebra.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/algebra.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/encode.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/encode.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/ngc.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/ngc.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/query.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/query.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/recognition.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/recognition.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/relation.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/relation.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/rtdb.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/rtdb.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/temporal.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/temporal.cpp.o.d"
  "CMakeFiles/rtw_rtdb.dir/src/value.cpp.o"
  "CMakeFiles/rtw_rtdb.dir/src/value.cpp.o.d"
  "librtw_rtdb.a"
  "librtw_rtdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_rtdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
