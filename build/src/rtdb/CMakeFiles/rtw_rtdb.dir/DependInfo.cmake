
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtdb/src/active.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/active.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/active.cpp.o.d"
  "/root/repo/src/rtdb/src/algebra.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/algebra.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/algebra.cpp.o.d"
  "/root/repo/src/rtdb/src/encode.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/encode.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/encode.cpp.o.d"
  "/root/repo/src/rtdb/src/ngc.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/ngc.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/ngc.cpp.o.d"
  "/root/repo/src/rtdb/src/query.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/query.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/query.cpp.o.d"
  "/root/repo/src/rtdb/src/recognition.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/recognition.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/recognition.cpp.o.d"
  "/root/repo/src/rtdb/src/relation.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/relation.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/relation.cpp.o.d"
  "/root/repo/src/rtdb/src/rtdb.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/rtdb.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/rtdb.cpp.o.d"
  "/root/repo/src/rtdb/src/temporal.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/temporal.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/temporal.cpp.o.d"
  "/root/repo/src/rtdb/src/value.cpp" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/value.cpp.o" "gcc" "src/rtdb/CMakeFiles/rtw_rtdb.dir/src/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/deadline/CMakeFiles/rtw_deadline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
