# Empty dependencies file for rtw_automata.
# This may be replaced when dependencies are built.
