# Empty compiler generated dependencies file for rtw_automata.
# This may be replaced when dependencies are built.
