file(REMOVE_RECURSE
  "librtw_automata.a"
)
