file(REMOVE_RECURSE
  "CMakeFiles/rtw_automata.dir/src/clocks.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/clocks.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/dot.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/dot.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/finite_automaton.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/finite_automaton.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/omega.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/omega.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/operations.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/operations.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/timed_buchi.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/timed_buchi.cpp.o.d"
  "CMakeFiles/rtw_automata.dir/src/witness.cpp.o"
  "CMakeFiles/rtw_automata.dir/src/witness.cpp.o.d"
  "librtw_automata.a"
  "librtw_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
