
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/src/clocks.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/clocks.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/clocks.cpp.o.d"
  "/root/repo/src/automata/src/dot.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/dot.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/dot.cpp.o.d"
  "/root/repo/src/automata/src/finite_automaton.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/finite_automaton.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/finite_automaton.cpp.o.d"
  "/root/repo/src/automata/src/omega.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/omega.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/omega.cpp.o.d"
  "/root/repo/src/automata/src/operations.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/operations.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/operations.cpp.o.d"
  "/root/repo/src/automata/src/timed_buchi.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/timed_buchi.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/timed_buchi.cpp.o.d"
  "/root/repo/src/automata/src/witness.cpp" "src/automata/CMakeFiles/rtw_automata.dir/src/witness.cpp.o" "gcc" "src/automata/CMakeFiles/rtw_automata.dir/src/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
