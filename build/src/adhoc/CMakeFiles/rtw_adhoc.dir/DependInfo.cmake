
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adhoc/src/aodv.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/aodv.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/aodv.cpp.o.d"
  "/root/repo/src/adhoc/src/dsdv.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/dsdv.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/dsdv.cpp.o.d"
  "/root/repo/src/adhoc/src/dsr.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/dsr.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/dsr.cpp.o.d"
  "/root/repo/src/adhoc/src/flooding.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/flooding.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/flooding.cpp.o.d"
  "/root/repo/src/adhoc/src/metrics.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/metrics.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/metrics.cpp.o.d"
  "/root/repo/src/adhoc/src/mobility.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/mobility.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/mobility.cpp.o.d"
  "/root/repo/src/adhoc/src/network.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/network.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/network.cpp.o.d"
  "/root/repo/src/adhoc/src/route_acceptor.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/route_acceptor.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/route_acceptor.cpp.o.d"
  "/root/repo/src/adhoc/src/simulator.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/simulator.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/simulator.cpp.o.d"
  "/root/repo/src/adhoc/src/words.cpp" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/words.cpp.o" "gcc" "src/adhoc/CMakeFiles/rtw_adhoc.dir/src/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
