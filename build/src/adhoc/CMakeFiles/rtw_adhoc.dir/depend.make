# Empty dependencies file for rtw_adhoc.
# This may be replaced when dependencies are built.
