file(REMOVE_RECURSE
  "librtw_adhoc.a"
)
