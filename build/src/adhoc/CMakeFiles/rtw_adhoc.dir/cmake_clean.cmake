file(REMOVE_RECURSE
  "CMakeFiles/rtw_adhoc.dir/src/aodv.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/aodv.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/dsdv.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/dsdv.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/dsr.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/dsr.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/flooding.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/flooding.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/metrics.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/metrics.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/mobility.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/mobility.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/network.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/network.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/route_acceptor.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/route_acceptor.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/simulator.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/simulator.cpp.o.d"
  "CMakeFiles/rtw_adhoc.dir/src/words.cpp.o"
  "CMakeFiles/rtw_adhoc.dir/src/words.cpp.o.d"
  "librtw_adhoc.a"
  "librtw_adhoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtw_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
