file(REMOVE_RECURSE
  "CMakeFiles/deadline_transactions.dir/deadline_transactions.cpp.o"
  "CMakeFiles/deadline_transactions.dir/deadline_transactions.cpp.o.d"
  "deadline_transactions"
  "deadline_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
