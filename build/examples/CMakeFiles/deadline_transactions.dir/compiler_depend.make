# Empty compiler generated dependencies file for deadline_transactions.
# This may be replaced when dependencies are built.
