# Empty dependencies file for rtdb_monitor.
# This may be replaced when dependencies are built.
