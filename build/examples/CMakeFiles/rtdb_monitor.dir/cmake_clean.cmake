file(REMOVE_RECURSE
  "CMakeFiles/rtdb_monitor.dir/rtdb_monitor.cpp.o"
  "CMakeFiles/rtdb_monitor.dir/rtdb_monitor.cpp.o.d"
  "rtdb_monitor"
  "rtdb_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
