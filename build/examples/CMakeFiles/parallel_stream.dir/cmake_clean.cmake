file(REMOVE_RECURSE
  "CMakeFiles/parallel_stream.dir/parallel_stream.cpp.o"
  "CMakeFiles/parallel_stream.dir/parallel_stream.cpp.o.d"
  "parallel_stream"
  "parallel_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
