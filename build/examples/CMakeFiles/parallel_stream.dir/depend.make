# Empty dependencies file for parallel_stream.
# This may be replaced when dependencies are built.
