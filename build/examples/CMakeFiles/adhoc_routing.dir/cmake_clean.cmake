file(REMOVE_RECURSE
  "CMakeFiles/adhoc_routing.dir/adhoc_routing.cpp.o"
  "CMakeFiles/adhoc_routing.dir/adhoc_routing.cpp.o.d"
  "adhoc_routing"
  "adhoc_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
