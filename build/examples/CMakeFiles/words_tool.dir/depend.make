# Empty dependencies file for words_tool.
# This may be replaced when dependencies are built.
