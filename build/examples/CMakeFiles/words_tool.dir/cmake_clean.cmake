file(REMOVE_RECURSE
  "CMakeFiles/words_tool.dir/words_tool.cpp.o"
  "CMakeFiles/words_tool.dir/words_tool.cpp.o.d"
  "words_tool"
  "words_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/words_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
