# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core_words[1]_include.cmake")
include("/root/repo/build/tests/test_core_concat[1]_include.cmake")
include("/root/repo/build/tests/test_core_acceptor[1]_include.cmake")
include("/root/repo/build/tests/test_automata[1]_include.cmake")
include("/root/repo/build/tests/test_timed_buchi[1]_include.cmake")
include("/root/repo/build/tests/test_deadline[1]_include.cmake")
include("/root/repo/build/tests/test_dataacc[1]_include.cmake")
include("/root/repo/build/tests/test_rtdb_relational[1]_include.cmake")
include("/root/repo/build/tests/test_rtdb_active_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_rtdb_encode[1]_include.cmake")
include("/root/repo/build/tests/test_adhoc_network[1]_include.cmake")
include("/root/repo/build/tests/test_adhoc_words[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_deadline_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_core_transform[1]_include.cmake")
include("/root/repo/build/tests/test_adhoc_lossy[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
