# Empty dependencies file for test_timed_buchi.
# This may be replaced when dependencies are built.
