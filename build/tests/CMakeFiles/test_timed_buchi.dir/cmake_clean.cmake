file(REMOVE_RECURSE
  "CMakeFiles/test_timed_buchi.dir/test_timed_buchi.cpp.o"
  "CMakeFiles/test_timed_buchi.dir/test_timed_buchi.cpp.o.d"
  "test_timed_buchi"
  "test_timed_buchi.pdb"
  "test_timed_buchi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_buchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
