# Empty dependencies file for test_deadline_bridge.
# This may be replaced when dependencies are built.
