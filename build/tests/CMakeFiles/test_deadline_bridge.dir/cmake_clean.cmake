file(REMOVE_RECURSE
  "CMakeFiles/test_deadline_bridge.dir/test_deadline_bridge.cpp.o"
  "CMakeFiles/test_deadline_bridge.dir/test_deadline_bridge.cpp.o.d"
  "test_deadline_bridge"
  "test_deadline_bridge.pdb"
  "test_deadline_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadline_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
