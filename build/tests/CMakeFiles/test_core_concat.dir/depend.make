# Empty dependencies file for test_core_concat.
# This may be replaced when dependencies are built.
