file(REMOVE_RECURSE
  "CMakeFiles/test_core_concat.dir/test_core_concat.cpp.o"
  "CMakeFiles/test_core_concat.dir/test_core_concat.cpp.o.d"
  "test_core_concat"
  "test_core_concat.pdb"
  "test_core_concat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
