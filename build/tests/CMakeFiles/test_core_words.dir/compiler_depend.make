# Empty compiler generated dependencies file for test_core_words.
# This may be replaced when dependencies are built.
