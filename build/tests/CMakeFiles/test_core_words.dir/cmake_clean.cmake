file(REMOVE_RECURSE
  "CMakeFiles/test_core_words.dir/test_core_words.cpp.o"
  "CMakeFiles/test_core_words.dir/test_core_words.cpp.o.d"
  "test_core_words"
  "test_core_words.pdb"
  "test_core_words[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
