file(REMOVE_RECURSE
  "CMakeFiles/test_core_acceptor.dir/test_core_acceptor.cpp.o"
  "CMakeFiles/test_core_acceptor.dir/test_core_acceptor.cpp.o.d"
  "test_core_acceptor"
  "test_core_acceptor.pdb"
  "test_core_acceptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_acceptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
