# Empty dependencies file for test_core_acceptor.
# This may be replaced when dependencies are built.
