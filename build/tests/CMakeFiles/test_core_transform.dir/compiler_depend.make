# Empty compiler generated dependencies file for test_core_transform.
# This may be replaced when dependencies are built.
