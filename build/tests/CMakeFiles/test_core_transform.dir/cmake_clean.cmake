file(REMOVE_RECURSE
  "CMakeFiles/test_core_transform.dir/test_core_transform.cpp.o"
  "CMakeFiles/test_core_transform.dir/test_core_transform.cpp.o.d"
  "test_core_transform"
  "test_core_transform.pdb"
  "test_core_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
