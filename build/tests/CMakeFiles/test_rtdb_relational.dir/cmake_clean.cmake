file(REMOVE_RECURSE
  "CMakeFiles/test_rtdb_relational.dir/test_rtdb_relational.cpp.o"
  "CMakeFiles/test_rtdb_relational.dir/test_rtdb_relational.cpp.o.d"
  "test_rtdb_relational"
  "test_rtdb_relational.pdb"
  "test_rtdb_relational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtdb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
