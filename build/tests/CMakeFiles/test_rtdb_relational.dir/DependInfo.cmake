
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rtdb_relational.cpp" "tests/CMakeFiles/test_rtdb_relational.dir/test_rtdb_relational.cpp.o" "gcc" "tests/CMakeFiles/test_rtdb_relational.dir/test_rtdb_relational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtdb/CMakeFiles/rtw_rtdb.dir/DependInfo.cmake"
  "/root/repo/build/src/deadline/CMakeFiles/rtw_deadline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
