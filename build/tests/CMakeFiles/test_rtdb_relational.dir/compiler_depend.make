# Empty compiler generated dependencies file for test_rtdb_relational.
# This may be replaced when dependencies are built.
