file(REMOVE_RECURSE
  "CMakeFiles/test_rtdb_active_temporal.dir/test_rtdb_active_temporal.cpp.o"
  "CMakeFiles/test_rtdb_active_temporal.dir/test_rtdb_active_temporal.cpp.o.d"
  "test_rtdb_active_temporal"
  "test_rtdb_active_temporal.pdb"
  "test_rtdb_active_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtdb_active_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
