# Empty compiler generated dependencies file for test_rtdb_active_temporal.
# This may be replaced when dependencies are built.
