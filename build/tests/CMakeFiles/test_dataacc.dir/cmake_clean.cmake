file(REMOVE_RECURSE
  "CMakeFiles/test_dataacc.dir/test_dataacc.cpp.o"
  "CMakeFiles/test_dataacc.dir/test_dataacc.cpp.o.d"
  "test_dataacc"
  "test_dataacc.pdb"
  "test_dataacc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
