# Empty dependencies file for test_dataacc.
# This may be replaced when dependencies are built.
