file(REMOVE_RECURSE
  "CMakeFiles/test_adhoc_words.dir/test_adhoc_words.cpp.o"
  "CMakeFiles/test_adhoc_words.dir/test_adhoc_words.cpp.o.d"
  "test_adhoc_words"
  "test_adhoc_words.pdb"
  "test_adhoc_words[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adhoc_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
