# Empty dependencies file for test_adhoc_words.
# This may be replaced when dependencies are built.
