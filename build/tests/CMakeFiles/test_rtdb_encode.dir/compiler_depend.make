# Empty compiler generated dependencies file for test_rtdb_encode.
# This may be replaced when dependencies are built.
