file(REMOVE_RECURSE
  "CMakeFiles/test_rtdb_encode.dir/test_rtdb_encode.cpp.o"
  "CMakeFiles/test_rtdb_encode.dir/test_rtdb_encode.cpp.o.d"
  "test_rtdb_encode"
  "test_rtdb_encode.pdb"
  "test_rtdb_encode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtdb_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
