# Empty compiler generated dependencies file for test_adhoc_network.
# This may be replaced when dependencies are built.
