file(REMOVE_RECURSE
  "CMakeFiles/test_adhoc_network.dir/test_adhoc_network.cpp.o"
  "CMakeFiles/test_adhoc_network.dir/test_adhoc_network.cpp.o.d"
  "test_adhoc_network"
  "test_adhoc_network.pdb"
  "test_adhoc_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adhoc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
