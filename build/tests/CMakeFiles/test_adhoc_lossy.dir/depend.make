# Empty dependencies file for test_adhoc_lossy.
# This may be replaced when dependencies are built.
