file(REMOVE_RECURSE
  "CMakeFiles/test_adhoc_lossy.dir/test_adhoc_lossy.cpp.o"
  "CMakeFiles/test_adhoc_lossy.dir/test_adhoc_lossy.cpp.o.d"
  "test_adhoc_lossy"
  "test_adhoc_lossy.pdb"
  "test_adhoc_lossy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adhoc_lossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
