file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_compare.dir/bench_routing_compare.cpp.o"
  "CMakeFiles/bench_routing_compare.dir/bench_routing_compare.cpp.o.d"
  "bench_routing_compare"
  "bench_routing_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
