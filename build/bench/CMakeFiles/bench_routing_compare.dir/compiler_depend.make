# Empty compiler generated dependencies file for bench_routing_compare.
# This may be replaced when dependencies are built.
