file(REMOVE_RECURSE
  "CMakeFiles/bench_thm31_nonregular.dir/bench_thm31_nonregular.cpp.o"
  "CMakeFiles/bench_thm31_nonregular.dir/bench_thm31_nonregular.cpp.o.d"
  "bench_thm31_nonregular"
  "bench_thm31_nonregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm31_nonregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
