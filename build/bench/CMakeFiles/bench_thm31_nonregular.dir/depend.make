# Empty dependencies file for bench_thm31_nonregular.
# This may be replaced when dependencies are built.
