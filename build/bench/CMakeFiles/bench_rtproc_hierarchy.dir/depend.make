# Empty dependencies file for bench_rtproc_hierarchy.
# This may be replaced when dependencies are built.
