file(REMOVE_RECURSE
  "CMakeFiles/bench_rtproc_hierarchy.dir/bench_rtproc_hierarchy.cpp.o"
  "CMakeFiles/bench_rtproc_hierarchy.dir/bench_rtproc_hierarchy.cpp.o.d"
  "bench_rtproc_hierarchy"
  "bench_rtproc_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtproc_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
