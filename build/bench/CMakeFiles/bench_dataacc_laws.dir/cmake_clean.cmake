file(REMOVE_RECURSE
  "CMakeFiles/bench_dataacc_laws.dir/bench_dataacc_laws.cpp.o"
  "CMakeFiles/bench_dataacc_laws.dir/bench_dataacc_laws.cpp.o.d"
  "bench_dataacc_laws"
  "bench_dataacc_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataacc_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
