# Empty dependencies file for bench_dataacc_laws.
# This may be replaced when dependencies are built.
