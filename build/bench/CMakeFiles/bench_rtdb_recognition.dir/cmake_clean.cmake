file(REMOVE_RECURSE
  "CMakeFiles/bench_rtdb_recognition.dir/bench_rtdb_recognition.cpp.o"
  "CMakeFiles/bench_rtdb_recognition.dir/bench_rtdb_recognition.cpp.o.d"
  "bench_rtdb_recognition"
  "bench_rtdb_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtdb_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
