# Empty compiler generated dependencies file for bench_rtdb_recognition.
# This may be replaced when dependencies are built.
