#pragma once
/// \file rtw.hpp
/// Umbrella header for the rt-omega foundation layers: core (timed words,
/// acceptors, languages -- Definitions 3.2-3.5), sim (the discrete-event
/// kernel and its infrastructure), engine (the unified acceptor executor),
/// obs (tracing + metrics), cer (timed-pattern queries compiled to
/// online acceptors) and svc (the sharded streaming acceptance
/// service).  One include for applications that want the paper's machine
/// model without spelling out the layer diagram:
///
///   #include "rtw/rtw.hpp"         // link: rtw (interface target)
///
/// Application layers (automata, deadline, dataacc, rtdb, adhoc, par) stay
/// opt-in: they are domain instantiations, not part of the foundation, and
/// pulling e.g. the rtdb query algebra into every TU would tax compile
/// times for nothing.

// core: the paper's vocabulary.
#include "rtw/core/acceptor.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/core/error.hpp"
#include "rtw/core/language.hpp"
#include "rtw/core/online.hpp"
#include "rtw/core/serialize.hpp"
#include "rtw/core/symbol.hpp"
#include "rtw/core/tape.hpp"
#include "rtw/core/timed_word.hpp"

// sim: the kernel underneath every run.
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/fault.hpp"
#include "rtw/sim/histogram.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/stats.hpp"
#include "rtw/sim/thread_pool.hpp"

// engine: the unified executor and its run traces.
#include "rtw/engine/batch.hpp"
#include "rtw/engine/engine.hpp"
#include "rtw/engine/trace.hpp"

// obs: spans, metrics, exporters.
#include "rtw/obs/export.hpp"
#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"
#include "rtw/obs/tracer.hpp"

// cer: timed-pattern queries -> clocked position automata -> acceptors.
#include "rtw/cer/acceptor.hpp"
#include "rtw/cer/compile.hpp"
#include "rtw/cer/parser.hpp"
#include "rtw/cer/query.hpp"
#include "rtw/cer/reference.hpp"

// svc: the serving layer (online sessions over shard workers).
#include "rtw/svc/service.hpp"
#include "rtw/svc/session.hpp"
#include "rtw/svc/wire.hpp"
