// EXP-PAR -- the rt-PROC(p) hierarchy question (sections 3.2 / 6 / 7).
//
// "Given any number k of processors, is there a well-behaved timed
// omega-language that can be accepted by a k-processor real-time algorithm
// but cannot be accepted by a (k-1)-processor one?"
//
// The harness runs the synthetic family L_m (m work tokens per tick,
// bounded slack) against p-process acceptors on the section 6 runtime and
// prints the acceptance matrix.  Expected shape: a strict staircase --
// row p accepts exactly the columns m <= p, answering the hierarchy
// question positively on this family.  A second table reports the
// token-level evidence (late counts, peak backlog) along the diagonal's
// two sides.

#include <iostream>
#include <string>
#include <vector>

#include "rtw/par/rtproc.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::par;

int main() {
  constexpr ProcId kMaxP = 8;
  constexpr std::uint32_t kMaxM = 8;
  constexpr Tick kSlack = 8;
  constexpr Tick kHorizon = 512;

  std::cout << "==========================================================\n";
  std::cout << " EXP-PAR: rt-PROC(p) acceptance of L_m (slack "
            << kSlack << ", horizon " << kHorizon << ")\n";
  std::cout << "==========================================================\n\n";

  const auto matrix = rtproc_matrix(kMaxP, kMaxM, kSlack, kHorizon);
  rtw::sim::Table t({"p \\ m", "1", "2", "3", "4", "5", "6", "7", "8"});
  bool staircase = true;
  std::vector<std::string> json;
  for (std::size_t p = 0; p < kMaxP; ++p) {
    t.row().cell("p=" + std::to_string(p + 1));
    for (std::size_t m = 0; m < kMaxM; ++m) {
      t.cell(matrix[p][m] ? "ACCEPT" : ".");
      staircase = staircase && (matrix[p][m] == (m <= p));
      json.push_back(rtw::sim::bench_record("rtproc_hierarchy")
                         .field("table", "acceptance_matrix")
                         .field("p", p + 1)
                         .field("m", m + 1)
                         .field("accepted", static_cast<bool>(matrix[p][m]))
                         .str());
    }
  }
  t.print(std::cout, 1);
  std::cout << "\nstrict staircase (row p accepts exactly m <= p): "
            << (staircase ? "YES -- the hierarchy does not collapse"
                          : "NO -- unexpected")
            << "\n\n";
  for (const auto& line : json) std::cout << line << "\n";
  std::cout << "\n";

  std::cout << "--- token-level evidence at the diagonal -----------------\n";
  rtw::sim::Table evidence(
      {"trial", "retired", "late", "peak backlog", "verdict"});
  std::vector<std::string> evidence_json;
  for (ProcId p : {2u, 4u, 6u}) {
    for (std::uint32_t m : {p, p + 1}) {
      const auto outcome = run_rtproc_trial({p, m, kSlack, kHorizon});
      evidence.row().cell("p=" + std::to_string(p) +
                          " m=" + std::to_string(m));
      evidence.cell(outcome.retired);
      evidence.cell(outcome.late);
      evidence.cell(outcome.peak_backlog);
      evidence.cell(outcome.accepted ? "ACCEPT" : "reject");
      evidence_json.push_back(rtw::sim::bench_record("rtproc_hierarchy")
                                  .field("table", "diagonal_evidence")
                                  .field("p", p)
                                  .field("m", m)
                                  .field("retired", outcome.retired)
                                  .field("late", outcome.late)
                                  .field("peak_backlog", outcome.peak_backlog)
                                  .field("accepted", outcome.accepted)
                                  .str());
    }
  }
  evidence.print(std::cout, 1);
  std::cout << "\nexpected shape: at m = p the backlog stays bounded and "
               "nothing is late;\nat m = p + 1 the backlog grows linearly "
               "and tokens blow through the slack.\n\n";
  for (const auto& line : evidence_json) std::cout << line << "\n";
  return staircase ? 0 : 1;
}
