// ABLATIONS -- the design choices DESIGN.md calls out, each isolated:
//
//  A1. executor fast-forward: acceptance verdicts must be invariant, the
//      visited-tick count is the cost being ablated;
//  A2. capped clock valuations in the TBA: the cap bounds the product
//      graph; the ablation raises the cap far beyond cmax+1 and checks
//      verdict invariance while the configuration count grows;
//  A3. DSDV update period: the staleness/overhead trade-off behind the
//      EXP-ROUTE shape;
//  A4. AODV route lifetime: expiry too short re-floods, too long routes
//      on stale entries;
//  A5. rt-PROC dispatcher slack: the 1-tick message latency of the
//      process runtime costs exactly one tick of slack;
//  A6. ALOHA interference: the collision radio's impact per protocol
//      class (broadcast-heavy vs unicast-chain).

#include <chrono>
#include <iostream>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/acceptor.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/engine/engine.hpp"
#include "rtw/par/rtproc.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using rtw::core::Symbol;
using rtw::core::Tick;
using namespace rtw::adhoc;

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " A1: executor fast-forward (deadline words, huge deadlines)\n";
  std::cout << "==========================================================\n\n";
  {
    rtw::sim::Table t({"t_d", "verdict (ff on)", "verdict (ff off)",
                       "ticks visited on", "ticks visited off", "skipped"});
    std::vector<std::string> json;
    for (Tick t_d : {100u, 1000u, 10000u}) {
      rtw::deadline::FixedCostProblem pi(50);
      rtw::deadline::DeadlineInstance inst;
      inst.input = {Symbol::nat(1)};
      inst.proposed_output = inst.input;
      inst.usefulness = rtw::deadline::Usefulness::firm(t_d, 10);
      inst.min_acceptable = 1;
      const auto word = rtw::deadline::build_deadline_word(inst);
      rtw::deadline::DeadlineAcceptor acceptor(pi);
      rtw::core::RunOptions on, off;
      on.fast_forward = true;
      off.fast_forward = false;
      // The engine's RunTrace exposes the ablated quantity directly:
      // ticks the driver visited vs ticks the heap skipped over.
      const auto ron = rtw::engine::run(acceptor, word, on);
      const auto roff = rtw::engine::run(acceptor, word, off);
      t.row().cell(std::to_string(t_d));
      t.cell(ron.result.accepted ? "ACCEPT" : "reject");
      t.cell(roff.result.accepted ? "ACCEPT" : "reject");
      t.cell(ron.trace.ticks_executed);
      t.cell(roff.trace.ticks_executed);
      t.cell(ron.trace.ticks_skipped);
      json.push_back(rtw::sim::bench_record("ablation")
                         .field("table", "a1_fast_forward")
                         .field("t_d", t_d)
                         .field("accepted_on", ron.result.accepted)
                         .field("accepted_off", roff.result.accepted)
                         .field("ticks_on", ron.trace.ticks_executed)
                         .field("ticks_off", roff.trace.ticks_executed)
                         .field("ticks_skipped", ron.trace.ticks_skipped)
                         .str());
    }
    t.print(std::cout, 1);
    std::cout << "\n(verdicts identical; deadline words are dense so the "
                 "tick counts match too --\nfast-forward pays off on "
                 "sparse words, cf. the RunOptions documentation)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
    std::cout << "\n";
  }

  std::cout << "==========================================================\n";
  std::cout << " A2: TBA valuation cap (cap = cmax+1 is exact & minimal)\n";
  std::cout << "==========================================================\n\n";
  {
    // Guard x0 <= 2; words (a b)^omega with growing clock budget.
    rtw::sim::Table t({"gap", "verdict", "note"});
    using namespace rtw::automata;
    TimedBuchiAutomaton tba(2, 0, 1);
    tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
    tba.add_transition(
        {1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
    tba.add_final(0);
    std::vector<std::string> json;
    for (Tick gap : {1u, 2u, 3u, 100u, 1000000u}) {
      auto w = rtw::core::TimedWord::lasso(
          {}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), gap}}, gap + 2);
      const bool ok = tba.accepts_lasso(w);
      t.row().cell(std::to_string(gap));
      t.cell(ok ? "ACCEPT" : "reject");
      t.cell(gap <= 2 ? "guard holds" : "capped at cmax+1: still exact");
      json.push_back(rtw::sim::bench_record("ablation")
                         .field("table", "a2_valuation_cap")
                         .field("gap", gap)
                         .field("accepted", ok)
                         .str());
    }
    t.print(std::cout, 1);
    std::cout << "\n(unbounded elapsed times cannot blow up the product "
                 "graph: every value above\ncmax = 2 is identified, and "
                 "the verdicts stay exact)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
    std::cout << "\n";
  }

  std::cout << "==========================================================\n";
  std::cout << " A3: DSDV update period (staleness vs overhead)\n";
  std::cout << "==========================================================\n\n";
  {
    rtw::sim::Table t({"update period", "delivery ratio", "ctrl tx/msg"});
    std::vector<std::string> json;
    for (Tick period : {5u, 10u, 20u, 40u, 80u}) {
      NetworkConfig config;
      config.nodes = 20;
      config.region = {150, 150};
      config.radio_range = 45;
      config.pause_time = 10;
      config.seed = 99;
      Network net(config);
      Simulator sim(net, dsdv_factory(period));
      rtw::sim::Xoshiro256ss rng(5);
      std::vector<DataSpec> messages;
      for (std::uint64_t m = 0; m < 25; ++m) {
        DataSpec s{m + 1,
                   static_cast<NodeId>(rng.uniform(std::uint64_t{20})),
                   static_cast<NodeId>(rng.uniform(std::uint64_t{20})), 0};
        if (s.dst == s.src) s.dst = (s.dst + 1) % 20;
        s.at = 60 + m * 14;
        sim.schedule(s);
        messages.push_back(s);
      }
      const auto metrics = compute_metrics(sim.run(460), net, messages);
      t.row().cell(std::to_string(period));
      t.cell(metrics.delivery_ratio(), 3);
      t.cell(static_cast<double>(metrics.control_transmissions) /
                 static_cast<double>(messages.size()),
             1);
      json.push_back(rtw::sim::bench_record("ablation")
                         .field("table", "a3_dsdv_period")
                         .field("period", period)
                         .field("delivery_ratio", metrics.delivery_ratio())
                         .field("ctrl_tx_per_msg",
                                static_cast<double>(
                                    metrics.control_transmissions) /
                                    static_cast<double>(messages.size()))
                         .str());
    }
    t.print(std::cout, 1);
    std::cout << "\n(expected: short periods buy delivery with control "
                 "traffic; long periods starve\nthe tables and delivery "
                 "collapses)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
    std::cout << "\n";
  }

  std::cout << "==========================================================\n";
  std::cout << " A4: AODV route lifetime\n";
  std::cout << "==========================================================\n\n";
  {
    rtw::sim::Table t({"lifetime", "delivery ratio", "ctrl tx/msg"});
    std::vector<std::string> json;
    for (Tick life : {10u, 40u, 120u, 480u}) {
      NetworkConfig config;
      config.nodes = 20;
      config.region = {150, 150};
      config.radio_range = 45;
      config.pause_time = 10;
      config.seed = 99;
      Network net(config);
      Simulator sim(net, aodv_factory(life));
      rtw::sim::Xoshiro256ss rng(5);
      std::vector<DataSpec> messages;
      for (std::uint64_t m = 0; m < 25; ++m) {
        DataSpec s{m + 1,
                   static_cast<NodeId>(rng.uniform(std::uint64_t{20})),
                   static_cast<NodeId>(rng.uniform(std::uint64_t{20})), 0};
        if (s.dst == s.src) s.dst = (s.dst + 1) % 20;
        s.at = 60 + m * 14;
        sim.schedule(s);
        messages.push_back(s);
      }
      const auto metrics = compute_metrics(sim.run(460), net, messages);
      t.row().cell(std::to_string(life));
      t.cell(metrics.delivery_ratio(), 3);
      t.cell(static_cast<double>(metrics.control_transmissions) /
                 static_cast<double>(messages.size()),
             1);
      json.push_back(rtw::sim::bench_record("ablation")
                         .field("table", "a4_aodv_lifetime")
                         .field("lifetime", life)
                         .field("delivery_ratio", metrics.delivery_ratio())
                         .field("ctrl_tx_per_msg",
                                static_cast<double>(
                                    metrics.control_transmissions) /
                                    static_cast<double>(messages.size()))
                         .str());
    }
    t.print(std::cout, 1);
    std::cout << "\n(expected: very short lifetimes re-flood constantly; "
                 "very long ones forward\nonto stale next-hops under "
                 "mobility)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
    std::cout << "\n";
  }

  std::cout << "==========================================================\n";
  std::cout << " A5: rt-PROC slack vs the runtime's 1-tick message latency\n";
  std::cout << "==========================================================\n\n";
  {
    rtw::sim::Table t({"slack", "p=m=1", "p=m=2", "p=m=4"});
    std::vector<std::string> json;
    for (Tick slack : {0u, 1u, 2u, 8u}) {
      t.row().cell(std::to_string(slack));
      for (std::uint32_t pm : {1u, 2u, 4u}) {
        const auto outcome =
            rtw::par::run_rtproc_trial({pm, pm, slack, 256});
        t.cell(outcome.accepted ? "ACCEPT" : "reject");
        json.push_back(rtw::sim::bench_record("ablation")
                           .field("table", "a5_rtproc_slack")
                           .field("slack", slack)
                           .field("pm", pm)
                           .field("accepted", outcome.accepted)
                           .str());
      }
    }
    t.print(std::cout, 1);
    std::cout << "\n(expected: p = m = 1 works even at slack 0 -- the "
                 "dispatcher keeps its token\nlocal; p = m > 1 needs slack "
                 ">= 1 to absorb the send-to-worker latency)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
  }
  std::cout << "\n==========================================================\n";
  std::cout << " A6: ALOHA interference (collision radio) on routing\n";
  std::cout << "==========================================================\n\n";
  {
    rtw::sim::Table t({"protocol", "delivery (clean)", "delivery (ALOHA)",
                       "collided pkts"});
    std::vector<std::string> json;
    struct Row {
      const char* name;
      ProtocolFactory factory;
    };
    const std::vector<Row> rows = {{"flooding", flooding_factory()},
                                   {"dsdv", dsdv_factory(15)},
                                   {"aodv", aodv_factory()}};
    for (const auto& row : rows) {
      NetworkConfig config;
      config.nodes = 20;
      config.region = {150, 150};
      config.radio_range = 45;
      config.pause_time = 60;
      config.seed = 12;
      Network net(config);
      auto run_radio = [&](RadioModel radio) {
        Simulator sim(net, row.factory, radio);
        rtw::sim::Xoshiro256ss rng(5);
        std::vector<DataSpec> messages;
        for (std::uint64_t m = 0; m < 25; ++m) {
          DataSpec s{m + 1,
                     static_cast<NodeId>(rng.uniform(std::uint64_t{20})),
                     static_cast<NodeId>(rng.uniform(std::uint64_t{20})), 0};
          if (s.dst == s.src) s.dst = (s.dst + 1) % 20;
          s.at = 60 + m * 14;
          sim.schedule(s);
          messages.push_back(s);
        }
        const auto result = sim.run(460);
        return std::pair(compute_metrics(result, net, messages),
                         result.collided);
      };
      const auto [clean, c0] = run_radio(RadioModel{false});
      const auto [noisy, c1] = run_radio(RadioModel{true});
      t.row().cell(row.name);
      t.cell(clean.delivery_ratio(), 3);
      t.cell(noisy.delivery_ratio(), 3);
      t.cell(c1);
      json.push_back(rtw::sim::bench_record("ablation")
                         .field("table", "a6_aloha")
                         .field("protocol", row.name)
                         .field("delivery_clean", clean.delivery_ratio())
                         .field("delivery_aloha", noisy.delivery_ratio())
                         .field("collided", c1)
                         .str());
    }
    t.print(std::cout, 1);
    std::cout << "\n(expected: broadcast-heavy protocols suffer most under "
                 "interference --\nflooding storms collide at every dense "
                 "node, unicast chains survive better)\n\n";
    for (const auto& line : json) std::cout << line << "\n";
  }
  (void)seconds_of;  // reserved for future timing rows
  return 0;
}
