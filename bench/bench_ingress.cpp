// EXP-INGRESS: latency under offered load (the backpressure knee).
//
// A paced producer offers symbols at a *target* rate (yield-waiting
// between micro-batches so the offered load, not the producer's raw
// speed, is the independent variable) against a SessionManager whose
// shard workers run a calibrated per-symbol workload.  Sweeping the
// target rate across the service's capacity traces the knee:
//
//   * below capacity: ingested rate == offered rate, shed ~0, feed
//     latency flat (a ring slot is drained almost immediately),
//   * above capacity: ingested rate plateaus, shed rate climbs with
//     load, and the feed latency p99 explodes as rings run full.
//
// Sessions carry a 10/80/10 High/Normal/Low priority mix, so the
// overloaded cells also show *who* gets shed (the priority watermarks
// shed Low first, then Normal -- see the shed_* reason fields).
//
// Stdout carries the human table; `--json=PATH` appends JSONL (CI runs
// two load points per shard count, checks well-formedness + knee
// monotonicity, and archives the records; the committed sweep lives in
// BENCH_ingress.json).
//
// Flags (defaults are CI-smoke sized -- a couple of seconds total):
//   --sessions=200       concurrent sessions
//   --shards=1,2         shard counts to sweep
//   --loads=0.5,1,2,4    offered-load multipliers over --base_rate
//   --base_rate=2000000  symbols/s at load 1.0
//   --duration_ms=150    offering window per cell
//   --batch=64           producer-side run length per admission
//   --ring=1024          ring slots per shard
//   --work=400           spin iterations per symbol on the shard worker
//                        (calibrates service capacity so the knee lands
//                        inside the default load sweep)
//   --json=PATH          append JSONL records

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/service.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;
using rtw::svc::Priority;

using rtw::svc::SessionId;
using rtw::svc::SessionManager;

/// Burns a calibrated number of iterations per arrival: stands in for a
/// real acceptor's per-symbol work so service capacity is a knob.
class SpinningAlgorithm final : public RealTimeAlgorithm {
public:
  explicit SpinningAlgorithm(std::uint64_t spins) : spins_(spins) {}
  void on_tick(const StepContext& ctx) override {
    for (std::size_t a = 0; a < ctx.arrivals.size(); ++a) {
      volatile std::uint64_t sink = 0;
      for (std::uint64_t i = 0; i < spins_; ++i) sink = sink + i;
    }
  }
  std::optional<bool> locked() const override { return std::nullopt; }
  void reset() override {}
  std::string name() const override { return "spinning"; }

private:
  std::uint64_t spins_;
};

struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

Percentiles percentiles(std::vector<std::uint64_t> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p99 = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
  return p;
}

struct Cell {
  unsigned shards = 0;
  double load = 0;                ///< multiplier over base_rate
  double target_rate = 0;         ///< symbols/s the producer aims for
  std::uint64_t offered = 0;
  double offered_rate = 0;        ///< what the pacing actually achieved
  std::uint64_t ingested = 0;
  double ingested_rate = 0;
  double shed_rate = 0;
  std::uint64_t shed_ring_full = 0;
  std::uint64_t shed_session_bound = 0;
  std::uint64_t shed_priority = 0;
  double wall_s = 0;
  Percentiles admit_ns;
  Percentiles feed_ns;
};

Priority priority_of(unsigned session) {
  if (session % 10 == 0) return Priority::High;   // 10%
  if (session % 10 == 9) return Priority::Low;    // 10%
  return Priority::Normal;                        // 80%
}

Cell run_cell(unsigned sessions, unsigned shards, double load,
              double base_rate, std::uint64_t duration_ms, std::size_t batch,
              std::size_t ring, std::uint64_t work) {
  using clock = std::chrono::steady_clock;

  rtw::svc::ShardConfig shard;
  shard.count = shards;
  rtw::svc::IngressConfig ingress;
  ingress.ring_capacity = ring;
  ingress.shed_on_full = true;
  SessionManager manager(shard, ingress);

  RunOptions options;
  options.horizon = Tick{1} << 40;  // duration-bounded cells, not tick-bounded
  std::vector<SessionId> ids;
  ids.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s)
    ids.push_back(
        manager.open(std::make_unique<EngineOnlineAcceptor>(
                         std::make_unique<SpinningAlgorithm>(work), options),
                     priority_of(s)));
  manager.drain();

  std::vector<std::vector<TimedSymbol>> buffers(sessions);
  for (auto& b : buffers) b.reserve(batch);

  Cell cell;
  cell.shards = shards;
  cell.load = load;
  cell.target_rate = base_rate * load;

  std::vector<std::uint64_t> admit_samples;
  std::uint64_t flushes = 0;
  const auto flush = [&](unsigned s) {
    if (buffers[s].empty()) return;
    if ((flushes++ & 15) == 0) {
      const auto t0 = clock::now();
      manager.feed_batch(ids[s], std::move(buffers[s]));
      admit_samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                               t0)
              .count()));
    } else {
      manager.feed_batch(ids[s], std::move(buffers[s]));
    }
    buffers[s].clear();
  };

  const auto start = clock::now();
  const auto offer_deadline = start + std::chrono::milliseconds(duration_ms);
  const double ns_per_symbol = 1e9 / cell.target_rate;
  Tick t = 0;
  unsigned s = 0;
  for (;;) {
    // Pace: this symbol is due at start + offered * (1/rate).  Yield past
    // any lead the producer has built up, then offer the next symbol.
    const auto due =
        start + std::chrono::nanoseconds(static_cast<std::uint64_t>(
                    static_cast<double>(cell.offered) * ns_per_symbol));
    while (clock::now() < due) std::this_thread::yield();
    if (clock::now() >= offer_deadline) break;
    ++cell.offered;
    buffers[s].push_back({Symbol::chr('a'), t});
    if (buffers[s].size() >= batch) flush(s);
    if (++s == sessions) {
      s = 0;
      ++t;  // one monotone tick per round-robin lap
    }
  }
  for (unsigned i = 0; i < sessions; ++i) flush(i);
  const auto offered_stop = clock::now();
  for (const auto id : ids) manager.close(id, StreamEnd::Truncated);
  manager.drain();
  const auto stop = clock::now();

  const auto stats = manager.stats();
  const double offer_s =
      std::chrono::duration<double>(offered_stop - start).count();
  cell.wall_s = std::chrono::duration<double>(stop - start).count();
  cell.offered_rate =
      offer_s > 0 ? static_cast<double>(cell.offered) / offer_s : 0;
  cell.ingested = stats.ingested;
  cell.ingested_rate =
      cell.wall_s > 0 ? static_cast<double>(cell.ingested) / cell.wall_s : 0;
  cell.shed_rate = cell.offered ? static_cast<double>(stats.shed) /
                                      static_cast<double>(cell.offered)
                                : 0;
  cell.shed_ring_full = stats.shed_ring_full;
  cell.shed_session_bound = stats.shed_session_bound;
  cell.shed_priority = stats.shed_priority;
  cell.admit_ns = percentiles(std::move(admit_samples));
  cell.feed_ns = percentiles(manager.take_feed_latency_samples());
  if (manager.collect().size() != sessions)
    std::cerr << "WARNING: report count != sessions\n";
  return cell;
}

std::vector<unsigned> parse_unsigned_csv(const std::string& text) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto part = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!part.empty()) out.push_back(static_cast<unsigned>(std::stoul(part)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_double_csv(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto part = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!part.empty()) out.push_back(std::stod(part));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned sessions = 200;
  std::vector<unsigned> shard_counts = {1, 2};
  std::vector<double> loads = {0.5, 1.0, 2.0, 4.0};
  double base_rate = 2e6;
  std::uint64_t duration_ms = 150;
  std::size_t batch = 64;
  std::size_t ring = 1024;
  std::uint64_t work = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--json=", 0) == 0) json_path = value("--json=");
    else if (arg.rfind("--sessions=", 0) == 0)
      sessions = static_cast<unsigned>(std::stoul(value("--sessions=")));
    else if (arg.rfind("--shards=", 0) == 0)
      shard_counts = parse_unsigned_csv(value("--shards="));
    else if (arg.rfind("--loads=", 0) == 0)
      loads = parse_double_csv(value("--loads="));
    else if (arg.rfind("--base_rate=", 0) == 0)
      base_rate = std::stod(value("--base_rate="));
    else if (arg.rfind("--duration_ms=", 0) == 0)
      duration_ms = std::stoull(value("--duration_ms="));
    else if (arg.rfind("--batch=", 0) == 0)
      batch = std::stoull(value("--batch="));
    else if (arg.rfind("--ring=", 0) == 0)
      ring = std::stoull(value("--ring="));
    else if (arg.rfind("--work=", 0) == 0)
      work = std::stoull(value("--work="));
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  std::cout << "==========================================================\n";
  std::cout << " EXP-INGRESS: offered load -> ingest/shed/latency knee\n";
  std::cout << " sessions " << sessions << ", base rate " << base_rate / 1e6
            << " Msym/s, " << duration_ms << " ms/cell, batch " << batch
            << ", ring " << ring << ", work " << work << "\n";
  std::cout << "==========================================================\n\n";
  std::cout << " shards  load   offered(M/s)  ingested(M/s)   shed%"
               "   feed p50/p99(us)\n";
  std::cout << " ---------------------------------------------------------"
               "--------\n";

  std::vector<std::string> json;
  for (const auto shards : shard_counts) {
    for (const auto load : loads) {
      const auto cell = run_cell(sessions, shards, load, base_rate,
                                 duration_ms, batch, ring, work);
      std::printf(" %6u  %4.2f  %12.3f  %13.3f  %6.2f  %8.1f /%8.1f\n",
                  cell.shards, cell.load, cell.offered_rate / 1e6,
                  cell.ingested_rate / 1e6, 100.0 * cell.shed_rate,
                  static_cast<double>(cell.feed_ns.p50) / 1e3,
                  static_cast<double>(cell.feed_ns.p99) / 1e3);
      json.push_back(rtw::sim::bench_record("ingress")
                         .field("sessions", sessions)
                         .field("shards", cell.shards)
                         .field("load", cell.load)
                         .field("target_rate", cell.target_rate)
                         .field("offered", cell.offered)
                         .field("offered_rate", cell.offered_rate)
                         .field("ingested", cell.ingested)
                         .field("ingested_rate", cell.ingested_rate)
                         .field("shed_rate", cell.shed_rate)
                         .field("shed_ring_full", cell.shed_ring_full)
                         .field("shed_session_bound", cell.shed_session_bound)
                         .field("shed_priority", cell.shed_priority)
                         .field("batch", batch)
                         .field("ring", ring)
                         .field("work", work)
                         .field("wall_s", cell.wall_s)
                         .field("p50_admit_ns", cell.admit_ns.p50)
                         .field("p99_admit_ns", cell.admit_ns.p99)
                         .field("p50_feed_ns", cell.feed_ns.p50)
                         .field("p99_feed_ns", cell.feed_ns.p99)
                         .str());
    }
    std::cout << "\n";
  }

  std::cout << "--- jsonl ------------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
