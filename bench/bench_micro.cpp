// MICRO -- google-benchmark micro-benchmarks of the library's hot paths:
// timed-word access and merging, tape gating, TBA stepping, relational
// joins, lifespan algebra, the network range predicate, and the process
// runtime.
//
// After the google-benchmark suite, main() runs the hand-rolled *kernel*
// micro-benchmarks (event schedule/fire throughput v2 vs the v1 baseline,
// cursor vs at() symbol throughput, BatchRunner thread scaling) and emits
// one JSON Lines record per measurement -- to stdout, or to the file named
// by --kernel_json=PATH.  CI scrapes these into BENCH_kernel.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <queue>
#include <thread>

#include "rtw/adhoc/network.hpp"
#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/acceptor.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/obs/tracer.hpp"
#include "rtw/par/process.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/ngc.hpp"
#include "rtw/rtdb/temporal.hpp"
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/rng.hpp"

namespace {

using namespace rtw::core;

void BM_TimedWordLassoAccess(benchmark::State& state) {
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}},
                            {{Symbol::chr('a'), 1}, {Symbol::chr('b'), 2}}, 2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.at(i++ % 10000));
  }
}
BENCHMARK(BM_TimedWordLassoAccess);

void BM_ConcatFiniteMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<TimedSymbol> a, b;
  for (std::uint64_t i = 0; i < n; ++i) {
    a.push_back({Symbol::chr('a'), 2 * i});
    b.push_back({Symbol::chr('b'), 2 * i + 1});
  }
  const auto wa = TimedWord::finite(a);
  const auto wb = TimedWord::finite(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(concat(wa, wb));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_ConcatFiniteMerge)->Arg(64)->Arg(1024)->Arg(16384);

void BM_InputTapeGating(benchmark::State& state) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('x'), 1}}, 1);
  for (auto _ : state) {
    InputTape tape(w);
    std::uint64_t total = 0;
    for (Tick t = 0; t < 256; ++t) total += tape.take_available(t).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_InputTapeGating);

void BM_TbaLassoAcceptance(benchmark::State& state) {
  using namespace rtw::automata;
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 2}},
                            4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tba.accepts_lasso(w));
  }
}
BENCHMARK(BM_TbaLassoAcceptance);

void BM_NaturalJoinNgc(benchmark::State& state) {
  using namespace rtw::rtdb;
  const auto db = ngc::figure1_instance();
  const auto q = ngc::november_artists_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q(db));
  }
}
BENCHMARK(BM_NaturalJoinNgc);

void BM_LifespanAlgebra(benchmark::State& state) {
  using namespace rtw::rtdb;
  const auto a =
      Lifespan::interval(0, 10).unite(Lifespan::interval(20, 30)).unite(
          Lifespan::interval(50, 80));
  const auto b = Lifespan::interval(5, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b).complement().unite(a));
  }
}
BENCHMARK(BM_LifespanAlgebra);

void BM_NetworkRangeQueries(benchmark::State& state) {
  using namespace rtw::adhoc;
  NetworkConfig config;
  config.nodes = 20;
  config.seed = 3;
  Network net(config);
  Tick t = 0;
  for (auto _ : state) {
    std::size_t links = 0;
    ++t;
    for (NodeId i = 0; i < net.size(); ++i)
      for (NodeId j = 0; j < net.size(); ++j)
        links += net.range(i, j, t % 400);
    benchmark::DoNotOptimize(links);
  }
}
BENCHMARK(BM_NetworkRangeQueries);

void BM_ProcessSystemTick(benchmark::State& state) {
  using namespace rtw::par;
  class Chat final : public Process {
  public:
    explicit Chat(ProcId self) : self_(self) {}
    void on_tick(ProcContext& ctx) override {
      ctx.send((self_ + 1) % 8, Symbol::nat(ctx.now()));
    }

  private:
    ProcId self_;
  };
  for (auto _ : state) {
    ProcessSystem system(8, [](ProcId id) {
      return std::make_unique<Chat>(id);
    });
    benchmark::DoNotOptimize(system.run(64));
  }
}
BENCHMARK(BM_ProcessSystemTick);

// --------------------------------------------------------------------
// Kernel micro-benchmarks (hand-rolled, JSON Lines output).

/// The v1 event kernel, kept verbatim as the measurement baseline:
/// std::function actions in a binary priority_queue with (at, seq) FIFO
/// ordering, copy-on-pop (top() is const&), run_until through step().
/// The actions below capture 24 bytes, which std::function heap-allocates
/// (its inline buffer holds 16) -- exactly what the old engine drive loop
/// paid per scheduled event.
class LegacyEventQueue {
public:
  using Tick = rtw::sim::Tick;
  using Action = std::function<void(Tick)>;

  void schedule_at(Tick at, Action action) {
    heap_.push(Entry{std::max(at, now_), seq_++, std::move(action)});
  }
  bool step(Tick horizon) {
    if (heap_.empty()) return false;
    if (heap_.top().at > horizon) return false;
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    entry.action(now_);
    return true;
  }
  std::size_t run_until(Tick horizon) {
    std::size_t executed = 0;
    while (step(horizon)) ++executed;
    if (heap_.empty() || heap_.top().at > horizon)
      now_ = std::max(now_, horizon);
    return executed;
  }
  Tick now() const noexcept { return now_; }

private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Shared state of one self-rescheduling event chain; actions capture it
/// by value plus one word of budget (24 bytes total) -- the shape of the
/// engine's drive event.  SmallFn stores this inline; std::function
/// (16-byte buffer) heap-allocates it, which is what v1 paid.
template <typename Queue>
struct ChainState {
  Queue* queue;
  std::uint64_t* fired;
};

template <typename Queue>
void chain_fire(ChainState<Queue> st, std::uint64_t budget,
                rtw::sim::Tick now) {
  ++*st.fired;
  if (budget > 0)
    st.queue->schedule_at(now + 1 + (budget & 3),
                          [st, budget](rtw::sim::Tick t) {
                            chain_fire(st, budget - 1, t);
                          });
}

/// Schedule/fire throughput of one event-queue implementation: a few
/// self-rescheduling event chains (each fire schedules a successor until
/// the budget is spent), repeated `reps` times.  The queue stays a handful
/// of events deep -- the regime the engine drive loop runs in.  Returns
/// events per second (one event = one schedule + one fire).
template <typename Queue>
double event_throughput(std::size_t events, std::size_t reps) {
  using Tick = rtw::sim::Tick;
  constexpr std::size_t kSeeds = 4;
  double best = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    Queue q;
    std::uint64_t fired = 0;
    const ChainState<Queue> st{&q, &fired};
    rtw::sim::Xoshiro256ss rng(0x6b65726eULL + r);
    const std::uint64_t chain = (events - kSeeds) / kSeeds;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kSeeds; ++i) {
      const Tick at = rng.uniform(std::uint64_t{64});
      q.schedule_at(at, [st, chain](Tick t) { chain_fire(st, chain, t); });
    }
    q.run_until(std::numeric_limits<Tick>::max());
    // Best-of-reps: per-rep timing discards scheduler noise, which on a
    // shared box otherwise dominates a 20 ns/event measurement.
    best = std::max(best, static_cast<double>(fired) / seconds_since(start));
    benchmark::DoNotOptimize(fired);
  }
  return best;
}

/// Symbols per second read from one shared generator word by `threads`
/// concurrent readers, each reading `per_thread` elements.  `use_cursor`
/// selects Cursor streaming; otherwise the at() random-access fallback
/// (which serializes on the generator memo mutex).
double symbol_throughput(bool use_cursor, unsigned threads,
                         std::uint64_t per_thread, std::size_t reps) {
  double best = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto word = TimedWord::generator(
        [](std::uint64_t i) {
          return TimedSymbol{Symbol::nat((i * 2654435761u) & 0xff), i};
        },
        {}, "bench-gen");
    std::atomic<std::uint64_t> total{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
      pool.emplace_back([&] {
        std::uint64_t acc = 0;
        if (use_cursor) {
          auto cur = word.cursor();
          for (std::uint64_t i = 0; i < per_thread; ++i, cur.advance())
            acc += cur.current().time;
        } else {
          for (std::uint64_t i = 0; i < per_thread; ++i)
            acc += word.at(i).time;
        }
        total.fetch_add(acc);
      });
    for (auto& th : pool) th.join();
    const double elapsed = seconds_since(start);
    if (total.load() == 0) std::abort();  // keep the reads observable
    best = std::max(best, static_cast<double>(threads) *
                              static_cast<double>(per_thread) / elapsed);
  }
  return best;
}

/// One BatchRunner job: a self-contained event simulation, the shape of a
/// real engine run (private queue, rng-driven schedule).
std::uint64_t batch_job(std::size_t index, rtw::sim::Xoshiro256ss& rng) {
  rtw::sim::EventQueue q;
  std::uint64_t acc = index;
  for (int i = 0; i < 256; ++i) {
    const auto at = rng.uniform(std::uint64_t{512});
    q.schedule_at(at, [&acc](rtw::sim::Tick now) { acc += now; });
  }
  q.run_until(1 << 20);
  return acc;
}

void run_kernel_benches(std::ostream& out) {
  using rtw::sim::JsonLine;

  // --- event queue: v2 slab heap vs v1 function heap ---
  constexpr std::size_t kEvents = 1 << 16;
  constexpr std::size_t kReps = 16;
  event_throughput<rtw::sim::EventQueue>(1 << 12, 4);   // warmup
  event_throughput<LegacyEventQueue>(1 << 12, 4);       // warmup
  const double v2 = event_throughput<rtw::sim::EventQueue>(kEvents, kReps);
  const double v1 = event_throughput<LegacyEventQueue>(kEvents, kReps);
  out << rtw::sim::bench_record("kernel_event_queue")
             .field("impl", "v2_slab_heap")
             .field("events", kEvents * kReps)
             .field("events_per_sec", v2)
             .field("ns_per_event", 1e9 / v2)
             .str()
      << "\n";
  out << rtw::sim::bench_record("kernel_event_queue")
             .field("impl", "v1_function_heap")
             .field("events", kEvents * kReps)
             .field("events_per_sec", v1)
             .field("ns_per_event", 1e9 / v1)
             .str()
      << "\n";
  out << rtw::sim::bench_record("kernel_event_queue_ratio")
             .field("speedup_v2_over_v1", v2 / v1)
             .str()
      << "\n";

  // --- obs hook cost: null sink (one relaxed load + branch per op) vs an
  // installed Tracer.  The null-sink figure is the acceptance gate: it
  // must stay within noise of the uninstrumented kernel above.
  {
    rtw::obs::Tracer tracer;
    rtw::obs::set_sink(&tracer);
    event_throughput<rtw::sim::EventQueue>(1 << 12, 4);  // warmup
    const double traced = event_throughput<rtw::sim::EventQueue>(kEvents,
                                                                 kReps);
    rtw::obs::set_sink(nullptr);
    out << rtw::sim::bench_record("kernel_obs_overhead")
               .field("impl", "null_sink")
               .field("events_per_sec", v2)
               .field("ns_per_event", 1e9 / v2)
               .str()
        << "\n";
    out << rtw::sim::bench_record("kernel_obs_overhead")
               .field("impl", "tracer_sink")
               .field("events_per_sec", traced)
               .field("ns_per_event", 1e9 / traced)
               .field("traced_over_null", v2 / traced)
               .str()
        << "\n";
  }

  // --- generator word: cursor vs at(), 1 and 8 readers ---
  constexpr std::uint64_t kSymbols = 1 << 16;
  constexpr std::size_t kSymbolReps = 5;
  for (unsigned threads : {1u, 8u}) {
    const double via_at = symbol_throughput(false, threads, kSymbols,
                                            kSymbolReps);
    const double via_cursor = symbol_throughput(true, threads, kSymbols,
                                                kSymbolReps);
    for (auto [impl, rate] : {std::pair{"at", via_at},
                              std::pair{"cursor", via_cursor}})
      out << rtw::sim::bench_record("kernel_generator_symbols")
                 .field("impl", impl)
                 .field("threads", threads)
                 .field("symbols_per_thread", kSymbols)
                 .field("symbols_per_sec", rate)
                 .str()
          << "\n";
    out << rtw::sim::bench_record("kernel_generator_symbols_ratio")
               .field("threads", threads)
               .field("speedup_cursor_over_at", via_cursor / via_at)
               .str()
        << "\n";
  }

  // --- BatchRunner scaling ---
  constexpr std::size_t kJobs = 1024;
  std::vector<std::uint64_t> reference;
  double ms1 = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    rtw::engine::BatchOptions options;
    options.threads = threads;
    rtw::engine::BatchRunner runner(options);
    runner.map(64, batch_job);  // warmup
    const auto start = std::chrono::steady_clock::now();
    auto results = runner.map(kJobs, batch_job);
    const double ms = seconds_since(start) * 1e3;
    if (threads == 1) {
      reference = results;
      ms1 = ms;
    }
    out << rtw::sim::bench_record("kernel_batch_scaling")
               .field("threads", threads)
               .field("jobs", kJobs)
               .field("ms", ms)
               .field("speedup_vs_1", ms1 / ms)
               .field("bit_identical_to_serial", results == reference)
               .str()
        << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_json;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--kernel_json=", 0) == 0)
      kernel_json = arg.substr(14);
    else
      args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!kernel_json.empty()) {
    file.open(kernel_json);
    if (!file) {
      std::cerr << "bench_micro: cannot open " << kernel_json << "\n";
      return 1;
    }
    out = &file;
  }
  run_kernel_benches(*out);
  return 0;
}
