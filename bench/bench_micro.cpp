// MICRO -- google-benchmark micro-benchmarks of the library's hot paths:
// timed-word access and merging, tape gating, TBA stepping, relational
// joins, lifespan algebra, the network range predicate, and the process
// runtime.

#include <benchmark/benchmark.h>

#include "rtw/adhoc/network.hpp"
#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/acceptor.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/par/process.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/ngc.hpp"
#include "rtw/rtdb/temporal.hpp"

namespace {

using namespace rtw::core;

void BM_TimedWordLassoAccess(benchmark::State& state) {
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}},
                            {{Symbol::chr('a'), 1}, {Symbol::chr('b'), 2}}, 2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.at(i++ % 10000));
  }
}
BENCHMARK(BM_TimedWordLassoAccess);

void BM_ConcatFiniteMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<TimedSymbol> a, b;
  for (std::uint64_t i = 0; i < n; ++i) {
    a.push_back({Symbol::chr('a'), 2 * i});
    b.push_back({Symbol::chr('b'), 2 * i + 1});
  }
  const auto wa = TimedWord::finite(a);
  const auto wb = TimedWord::finite(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(concat(wa, wb));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_ConcatFiniteMerge)->Arg(64)->Arg(1024)->Arg(16384);

void BM_InputTapeGating(benchmark::State& state) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('x'), 1}}, 1);
  for (auto _ : state) {
    InputTape tape(w);
    std::uint64_t total = 0;
    for (Tick t = 0; t < 256; ++t) total += tape.take_available(t).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_InputTapeGating);

void BM_TbaLassoAcceptance(benchmark::State& state) {
  using namespace rtw::automata;
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 2}},
                            4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tba.accepts_lasso(w));
  }
}
BENCHMARK(BM_TbaLassoAcceptance);

void BM_NaturalJoinNgc(benchmark::State& state) {
  using namespace rtw::rtdb;
  const auto db = ngc::figure1_instance();
  const auto q = ngc::november_artists_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q(db));
  }
}
BENCHMARK(BM_NaturalJoinNgc);

void BM_LifespanAlgebra(benchmark::State& state) {
  using namespace rtw::rtdb;
  const auto a =
      Lifespan::interval(0, 10).unite(Lifespan::interval(20, 30)).unite(
          Lifespan::interval(50, 80));
  const auto b = Lifespan::interval(5, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b).complement().unite(a));
  }
}
BENCHMARK(BM_LifespanAlgebra);

void BM_NetworkRangeQueries(benchmark::State& state) {
  using namespace rtw::adhoc;
  NetworkConfig config;
  config.nodes = 20;
  config.seed = 3;
  Network net(config);
  Tick t = 0;
  for (auto _ : state) {
    std::size_t links = 0;
    ++t;
    for (NodeId i = 0; i < net.size(); ++i)
      for (NodeId j = 0; j < net.size(); ++j)
        links += net.range(i, j, t % 400);
    benchmark::DoNotOptimize(links);
  }
}
BENCHMARK(BM_NetworkRangeQueries);

void BM_ProcessSystemTick(benchmark::State& state) {
  using namespace rtw::par;
  class Chat final : public Process {
  public:
    explicit Chat(ProcId self) : self_(self) {}
    void on_tick(ProcContext& ctx) override {
      ctx.send((self_ + 1) % 8, Symbol::nat(ctx.now()));
    }

  private:
    ProcId self_;
  };
  for (auto _ : state) {
    ProcessSystem system(8, [](ProcId id) {
      return std::make_unique<Chat>(id);
    });
    benchmark::DoNotOptimize(system.run(64));
  }
}
BENCHMARK(BM_ProcessSystemTick);

}  // namespace

BENCHMARK_MAIN();
