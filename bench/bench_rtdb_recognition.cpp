// EXP-RTDB -- the recognition problem for real-time databases
// (section 5.1.3, Definition 5.1).
//
// Table 1: L_aq acceptance vs query deadline for a sensor database with r
//   image objects (evaluation cost grows with r, so tighter deadlines and
//   bigger databases reject).  Expected shape: a feasibility staircase
//   along the diagonal deadline ~ cost(r).  The 25-word sweep runs through
//   rtw::engine::BatchRunner (recognition_sweep).
//
// Table 2: Lemma 5.1 empirically -- for the periodic-query word, the
//   first index k' with tau_{k'} >= k stays finite and grows ~ k^2 /
//   (2 t_p) * contributions (every invocation keeps contributing symbols
//   each tick), while the word remains well-behaved.
//
// Table 3: periodic service -- invocations served/failed vs period
//   against the evaluation cost.  Runs through rtw::engine::run so each
//   row also reports the engine's RunTrace.
//
// After each table the same data is emitted as JSON Lines (one object per
// scenario, tagged with "bench" and "table") for machine scraping.

#include <iostream>
#include <vector>

#include "rtw/engine/engine.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::rtdb;
using rtw::core::Tick;
using rtw::deadline::Usefulness;

namespace {

RtdbWordSpec sensors(unsigned count) {
  RtdbWordSpec spec;
  spec.invariants = {{"site", Value{std::string("plant-7")}}};
  for (unsigned i = 0; i < count; ++i)
    spec.images.push_back(
        {"s" + std::to_string(i), 4 + i % 3, [i](Tick t) {
           return Value{static_cast<std::int64_t>(10 * i + t % 7)};
         }});
  return spec;
}

QueryCatalog catalog_for() {
  QueryCatalog catalog;
  catalog.add(Query("all-images", [](const Database& db) {
    return project(select_eq(db.get("Objects"), "Kind",
                             Value{std::string("image")}),
                   {"Name"});
  }));
  return catalog;
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 1: L_aq acceptance vs deadline and |B|\n";
  std::cout << " (query: all image objects; cost = linear in object count)\n";
  std::cout << "==========================================================\n\n";
  const std::vector<unsigned> sizes = {1u, 2u, 4u, 8u, 16u};
  const std::vector<Tick> deadlines = {2u, 4u, 8u, 16u, 32u};
  std::vector<rtw::core::TimedWord> words;
  for (unsigned r : sizes) {
    const auto spec = sensors(r);
    for (Tick t_d : deadlines) {
      AperiodicQuerySpec q;
      q.query = "all-images";
      q.candidate = {Value{std::string("s0")}};
      q.issue_time = 10;
      q.usefulness = Usefulness::firm(t_d, 10);
      q.min_acceptable = 1;
      words.push_back(rtw::core::concat(build_dbB(spec), build_aq(q)));
    }
  }
  // The whole grid is one batch sweep: verdicts come back in word order,
  // bit-identical to a serial run at any thread count.
  const auto verdicts =
      recognition_sweep(catalog_for(), linear_cost(), words, 800);
  rtw::sim::Table t1({"r images", "cost", "t_d=2", "t_d=4", "t_d=8", "t_d=16",
                      "t_d=32"});
  std::size_t flat = 0;
  for (unsigned r : sizes) {
    t1.row().cell(std::to_string(r)).cell(std::to_string(r + 1));
    for (std::size_t d = 0; d < deadlines.size(); ++d)
      t1.cell(verdicts[flat++] ? "ACCEPT" : "reject");
  }
  t1.print(std::cout, 1);
  std::cout << "\nexpected shape: the ACCEPT region is the staircase "
               "t_d > cost(r) = r + 1\n(evaluation must finish before the "
               "firm deadline).\n\n";
  flat = 0;
  for (unsigned r : sizes)
    for (Tick t_d : deadlines)
      std::cout << rtw::sim::bench_record("rtdb_recognition")
                       .field("table", "t1_aq_staircase")
                       .field("r", r)
                       .field("cost", r + 1)
                       .field("t_d", t_d)
                       .field("accepted", static_cast<bool>(verdicts[flat++]))
                       .str()
                << "\n";
  std::cout << "\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 2: Lemma 5.1 -- k' = first index with\n";
  std::cout << " tau_k' >= k on pq[q, s, t=1, t_p=3] (firm t_d=2)\n";
  std::cout << "==========================================================\n\n";
  PeriodicQuerySpec pq;
  pq.query = "all-images";
  pq.candidate = [](std::uint64_t i) {
    return Tuple{Value{static_cast<std::int64_t>(i)}};
  };
  pq.issue_time = 1;
  pq.period = 3;
  pq.usefulness = Usefulness::firm(2, 4);
  pq.min_acceptable = 1;
  const auto word = build_pq(pq);
  rtw::sim::Table t2({"k", "k' (first idx with tau >= k)", "finite"});
  std::vector<std::string> t2_json;
  for (Tick k : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto idx = lemma51_index(word, k, 1u << 22);
    t2.row().cell(std::to_string(k));
    t2.cell(idx ? std::to_string(*idx) : "NOT FOUND");
    t2.cell(idx ? "yes" : "NO");
    rtw::sim::JsonLine line = rtw::sim::bench_record("rtdb_recognition");
    line
        .field("table", "t2_lemma51")
        .field("k", k)
        .field("finite", idx.has_value());
    if (idx) line.field("k_prime", *idx);
    t2_json.push_back(line.str());
  }
  t2.print(std::cout, 1);
  std::cout << "\nexpected shape: k' finite for every k (Lemma 5.1: the "
               "word is well-behaved)\nand superlinear in k (each elapsed "
               "tick adds one symbol per active invocation).\n\n";
  for (const auto& line : t2_json) std::cout << line << "\n";
  std::cout << "\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 3: periodic query service vs period\n";
  std::cout << " (4 sensors, cost 5, loose firm deadline 20, horizon 400)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t3({"t_p", "invocations served", "failed", "verdict"});
  std::vector<std::string> t3_json;
  for (Tick period : {10u, 20u, 40u, 80u}) {
    const auto spec = sensors(4);
    PeriodicQuerySpec p;
    p.query = "all-images";
    p.candidate = [](std::uint64_t) { return Tuple{Value{std::string("s0")}}; };
    p.issue_time = 10;
    p.period = period;
    p.usefulness = Usefulness::firm(20, 10);
    p.min_acceptable = 1;
    const auto w = rtw::core::concat(build_dbB(spec), build_pq(p));
    RecognitionAcceptor acceptor(catalog_for(), linear_cost());
    rtw::core::RunOptions options;
    options.horizon = 400;
    const auto run = rtw::engine::run(acceptor, w, options);
    t3.row().cell(std::to_string(period));
    t3.cell(acceptor.served());
    t3.cell(acceptor.failed());
    t3.cell(run.result.accepted ? "ACCEPT" : "reject");
    t3_json.push_back(rtw::sim::bench_record("rtdb_recognition")
                          .field("table", "t3_periodic_service")
                          .field("t_p", period)
                          .field("served", acceptor.served())
                          .field("failed", acceptor.failed())
                          .field("accepted", run.result.accepted)
                          .field("ticks_executed", run.trace.ticks_executed)
                          .field("ticks_skipped", run.trace.ticks_skipped)
                          .str());
  }
  t3.print(std::cout, 1);
  std::cout << "\nexpected shape: served count ~ horizon / t_p; every "
               "invocation meets the loose\ndeadline, so all rows accept "
               "with zero failures.\n\n";
  for (const auto& line : t3_json) std::cout << line << "\n";
  return 0;
}
