// EXP-RTDB -- the recognition problem for real-time databases
// (section 5.1.3, Definition 5.1).
//
// Table 1: L_aq acceptance vs query deadline for a sensor database with r
//   image objects (evaluation cost grows with r, so tighter deadlines and
//   bigger databases reject).  Expected shape: a feasibility staircase
//   along the diagonal deadline ~ cost(r).
//
// Table 2: Lemma 5.1 empirically -- for the periodic-query word, the
//   first index k' with tau_{k'} >= k stays finite and grows ~ k^2 /
//   (2 t_p) * contributions (every invocation keeps contributing symbols
//   each tick), while the word remains well-behaved.
//
// Table 3: periodic service -- invocations served/failed vs period
//   against the evaluation cost.

#include <iostream>

#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::rtdb;
using rtw::core::Tick;
using rtw::deadline::Usefulness;

namespace {

RtdbWordSpec sensors(unsigned count) {
  RtdbWordSpec spec;
  spec.invariants = {{"site", Value{std::string("plant-7")}}};
  for (unsigned i = 0; i < count; ++i)
    spec.images.push_back(
        {"s" + std::to_string(i), 4 + i % 3, [i](Tick t) {
           return Value{static_cast<std::int64_t>(10 * i + t % 7)};
         }});
  return spec;
}

QueryCatalog catalog_for() {
  QueryCatalog catalog;
  catalog.add(Query("all-images", [](const Database& db) {
    return project(select_eq(db.get("Objects"), "Kind",
                             Value{std::string("image")}),
                   {"Name"});
  }));
  return catalog;
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 1: L_aq acceptance vs deadline and |B|\n";
  std::cout << " (query: all image objects; cost = linear in object count)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t1({"r images", "cost", "t_d=2", "t_d=4", "t_d=8", "t_d=16",
                      "t_d=32"});
  for (unsigned r : {1u, 2u, 4u, 8u, 16u}) {
    const auto spec = sensors(r);
    t1.row().cell(std::to_string(r)).cell(std::to_string(r + 1));
    for (Tick t_d : {2u, 4u, 8u, 16u, 32u}) {
      AperiodicQuerySpec q;
      q.query = "all-images";
      q.candidate = {Value{std::string("s0")}};
      q.issue_time = 10;
      q.usefulness = Usefulness::firm(t_d, 10);
      q.min_acceptable = 1;
      const auto word = rtw::core::concat(build_dbB(spec), build_aq(q));
      RecognitionAcceptor acceptor(catalog_for(), linear_cost());
      rtw::core::RunOptions options;
      options.horizon = 800;
      const auto res = rtw::core::run_acceptor(acceptor, word, options);
      t1.cell(res.accepted ? "ACCEPT" : "reject");
    }
  }
  t1.print(std::cout, 1);
  std::cout << "\nexpected shape: the ACCEPT region is the staircase "
               "t_d > cost(r) = r + 1\n(evaluation must finish before the "
               "firm deadline).\n\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 2: Lemma 5.1 -- k' = first index with\n";
  std::cout << " tau_k' >= k on pq[q, s, t=1, t_p=3] (firm t_d=2)\n";
  std::cout << "==========================================================\n\n";
  PeriodicQuerySpec pq;
  pq.query = "all-images";
  pq.candidate = [](std::uint64_t i) {
    return Tuple{Value{static_cast<std::int64_t>(i)}};
  };
  pq.issue_time = 1;
  pq.period = 3;
  pq.usefulness = Usefulness::firm(2, 4);
  pq.min_acceptable = 1;
  const auto word = build_pq(pq);
  rtw::sim::Table t2({"k", "k' (first idx with tau >= k)", "finite"});
  bool all_finite = true;
  for (Tick k : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto idx = lemma51_index(word, k, 1u << 22);
    t2.row().cell(std::to_string(k));
    t2.cell(idx ? std::to_string(*idx) : "NOT FOUND");
    t2.cell(idx ? "yes" : "NO");
    all_finite = all_finite && idx.has_value();
  }
  t2.print(std::cout, 1);
  std::cout << "\nexpected shape: k' finite for every k (Lemma 5.1: the "
               "word is well-behaved)\nand superlinear in k (each elapsed "
               "tick adds one symbol per active invocation).\n\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-RTDB Table 3: periodic query service vs period\n";
  std::cout << " (4 sensors, cost 5, loose firm deadline 20, horizon 400)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t3({"t_p", "invocations served", "failed", "verdict"});
  for (Tick period : {10u, 20u, 40u, 80u}) {
    const auto spec = sensors(4);
    PeriodicQuerySpec p;
    p.query = "all-images";
    p.candidate = [](std::uint64_t) { return Tuple{Value{std::string("s0")}}; };
    p.issue_time = 10;
    p.period = period;
    p.usefulness = Usefulness::firm(20, 10);
    p.min_acceptable = 1;
    const auto w = rtw::core::concat(build_dbB(spec), build_pq(p));
    RecognitionAcceptor acceptor(catalog_for(), linear_cost());
    rtw::core::RunOptions options;
    options.horizon = 400;
    const auto res = rtw::core::run_acceptor(acceptor, w, options);
    t3.row().cell(std::to_string(period));
    t3.cell(acceptor.served());
    t3.cell(acceptor.failed());
    t3.cell(res.accepted ? "ACCEPT" : "reject");
  }
  t3.print(std::cout, 1);
  std::cout << "\nexpected shape: served count ~ horizon / t_p; every "
               "invocation meets the loose\ndeadline, so all rows accept "
               "with zero failures.\n";
  return 0;
}
