// EXP-CER: timed-pattern query serving throughput.
//
// Sweeps a fixed catalog of CER queries (a plain sequence, an iterated
// disjunction, a windowed phrase, and a nested window-under-iteration)
// across session and shard counts.  Every session is opened through the
// SubmitQuery wire-event path -- parse, compile to the clocked position
// automaton, admit -- so the *open* phase prices query compilation and
// the *feed* phase prices the config-set runtime, separately:
//
//   * open_rate:  SubmitQuery opens (parse + compile + admit) per second,
//   * symbols_rate: symbols accepted and processed per second once the
//     sessions are live (the steady-state serving cost of the query).
//
// Stdout carries the human table; `--json=PATH` appends JSONL under the
// standard bench envelope (schema "cer").  CI runs a smoke-sized sweep
// and checks BENCH_cer.json for well-formedness; the committed sweep
// lives in BENCH_cer.json.
//
// Flags (defaults are CI-smoke sized -- a couple of seconds total):
//   --sessions=64,512   sessions per cell
//   --shards=1,2,4      shard counts to sweep
//   --symbols=2000      symbols fed per session
//   --batch=64          run length per batched admission
//   --json=PATH         append JSONL records

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "rtw/cer/parser.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/service.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;
using rtw::svc::SessionId;
using rtw::svc::SessionManager;
using rtw::svc::WireEvent;

struct QuerySpec {
  const char* label;
  const char* text;
};

constexpr QuerySpec kQueries[] = {
    {"seq", "a ; b ; c ; d"},
    {"alt_iter", "(a | b | c | d)+"},
    {"window", "within(8){ a ; (b | c)+ ; d }"},
    {"nested", "(within(4){ a ; b })+ | (c ; d)+"},
};

struct Cell {
  const QuerySpec* query = nullptr;
  unsigned sessions = 0;
  unsigned shards = 0;
  std::uint64_t symbols = 0;       ///< total symbols offered
  double open_wall_s = 0;          ///< SubmitQuery opens, incl. drain
  double open_rate = 0;            ///< opens (parse+compile+admit) per s
  double feed_wall_s = 0;          ///< feed + close + drain
  double symbols_rate = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t query_compiled = 0;
  std::uint64_t query_rejected = 0;
};

Cell run_cell(const QuerySpec& query, unsigned sessions, unsigned shards,
              std::uint64_t symbols_per_session, std::size_t batch) {
  using clock = std::chrono::steady_clock;

  rtw::svc::ShardConfig shard;
  shard.count = shards;
  rtw::svc::IngressConfig ingress;
  ingress.ring_capacity = 4096;
  ingress.shed_on_full = false;  // throughput cell: block, don't shed
  SessionManager manager(shard, ingress);

  Cell cell;
  cell.query = &query;
  cell.sessions = sessions;
  cell.shards = shards;

  const auto open_start = clock::now();
  for (unsigned s = 0; s < sessions; ++s) {
    WireEvent open;
    open.kind = WireEvent::Kind::SubmitQuery;
    open.session = s + 1;
    open.profile = query.text;
    if (manager.apply(open, {}).admit != Admit::Accepted)
      std::cerr << "WARNING: SubmitQuery refused for " << query.text << "\n";
  }
  manager.drain();
  cell.open_wall_s =
      std::chrono::duration<double>(clock::now() - open_start).count();
  cell.open_rate = cell.open_wall_s > 0
                       ? static_cast<double>(sessions) / cell.open_wall_s
                       : 0;

  // The word cycles the query alphabet, so configs stay live (worst case
  // for the config-set sweep) instead of dying on the first mismatch.
  std::vector<TimedSymbol> run;
  run.reserve(batch);
  const auto feed_start = clock::now();
  for (unsigned s = 0; s < sessions; ++s) {
    const SessionId id = s + 1;
    Tick t = 0;
    for (std::uint64_t i = 0; i < symbols_per_session;) {
      run.clear();
      for (std::size_t b = 0; b < batch && i < symbols_per_session;
           ++b, ++i, ++t)
        run.push_back({Symbol::chr(static_cast<char>('a' + (i & 3))), t});
      cell.symbols += run.size();
      while (manager.feed_batch(id, run).admit == Admit::Blocked)
        std::this_thread::yield();
    }
    manager.close(id, StreamEnd::EndOfWord);
  }
  manager.drain();
  cell.feed_wall_s =
      std::chrono::duration<double>(clock::now() - feed_start).count();
  cell.symbols_rate = cell.feed_wall_s > 0
                          ? static_cast<double>(cell.symbols) / cell.feed_wall_s
                          : 0;

  const auto stats = manager.stats();
  cell.ingested = stats.ingested;
  cell.shed = stats.shed;
  cell.query_compiled = stats.query_compiled;
  cell.query_rejected = stats.query_rejected;
  if (manager.collect().size() != sessions)
    std::cerr << "WARNING: report count != sessions\n";
  return cell;
}

std::vector<unsigned> parse_unsigned_csv(const std::string& text) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto part = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!part.empty()) out.push_back(static_cast<unsigned>(std::stoul(part)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<unsigned> session_counts = {64, 512};
  std::vector<unsigned> shard_counts = {1, 2, 4};
  std::uint64_t symbols = 2000;
  std::size_t batch = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--json=", 0) == 0) json_path = value("--json=");
    else if (arg.rfind("--sessions=", 0) == 0)
      session_counts = parse_unsigned_csv(value("--sessions="));
    else if (arg.rfind("--shards=", 0) == 0)
      shard_counts = parse_unsigned_csv(value("--shards="));
    else if (arg.rfind("--symbols=", 0) == 0)
      symbols = std::stoull(value("--symbols="));
    else if (arg.rfind("--batch=", 0) == 0)
      batch = std::stoull(value("--batch="));
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  // Sanity: every catalog query must parse (a broken catalog would
  // silently bench the refusal path).
  for (const auto& q : kQueries) {
    const auto parsed = rtw::cer::parse(q.text);
    if (!parsed.ok()) {
      std::cerr << "catalog query " << q.label
                << " failed to parse: " << parsed.error << "\n";
      return 1;
    }
  }

  std::cout << "==========================================================\n";
  std::cout << " EXP-CER: timed-pattern query serving throughput\n";
  std::cout << " " << symbols << " symbols/session, batch " << batch << "\n";
  std::cout << "==========================================================\n\n";
  std::cout << " query      sessions  shards   opens/s    Msym/s\n";
  std::cout << " -------------------------------------------------\n";

  std::vector<std::string> json;
  for (const auto& query : kQueries) {
    for (const auto sessions : session_counts) {
      for (const auto shards : shard_counts) {
        const auto cell = run_cell(query, sessions, shards, symbols, batch);
        std::printf(" %-9s  %8u  %6u  %8.0f  %8.3f\n", query.label, sessions,
                    shards, cell.open_rate, cell.symbols_rate / 1e6);
        json.push_back(rtw::sim::bench_record("cer")
                           .field("query", query.label)
                           .field("query_text", query.text)
                           .field("sessions", sessions)
                           .field("shards", shards)
                           .field("symbols", cell.symbols)
                           .field("batch", batch)
                           .field("open_wall_s", cell.open_wall_s)
                           .field("open_rate", cell.open_rate)
                           .field("feed_wall_s", cell.feed_wall_s)
                           .field("symbols_rate", cell.symbols_rate)
                           .field("ingested", cell.ingested)
                           .field("shed", cell.shed)
                           .field("query_compiled", cell.query_compiled)
                           .field("query_rejected", cell.query_rejected)
                           .str());
      }
    }
    std::cout << "\n";
  }

  std::cout << "--- jsonl ------------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
