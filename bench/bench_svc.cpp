// EXP-SVC: serving-layer throughput (sessions x shards sweep).
//
// Each cell opens S sessions over a SessionManager with N shards, feeds
// every session the same number of monotone symbols round-robin from one
// producer thread -- buffered per session and admitted as feed_batch runs
// (one ring slot per run) -- then closes everything Truncated and drains.
// Reported per cell:
//   * aggregate symbols/s (ingested / wall time, producer-side) and the
//     per-core rate (divided by the worker threads actually running),
//   * shed rate under the bounded per-shard rings, broken down by reason
//     (ring_full / session_bound / priority),
//   * p50/p99 *admit* latency in ns: the producer-side cost of one
//     batched admission call (sampled every 16th run),
//   * p50/p99 *feed* latency in ns: enqueue -> shard-worker-process delta
//     from the manager's sampled stamps -- the time a symbol actually
//     waited in the ring -- with the sample count (`feed_samples`) emitted
//     so a reader can judge how much the percentiles are worth,
//   * lane-kernel effectiveness: symbols stepped by the SIMD batch kernel
//     and the wave count.
//
// The first `--warmup` fraction of each session's stream is fed, drained
// and *excluded*: stats are deltaed and latency samples discarded, so the
// reported numbers cover the steady state rather than the cold ramp
// (session opens, first-touch allocation, lane promotion).
//
// Workloads:
//   --workload=counting   a non-locking counting algorithm behind
//                         EngineOnlineAcceptor (every feed drives one real
//                         emulated tick; the PR-6 baseline workload);
//   --workload=deadline   section 4.1 deadline sessions whose completion
//                         sits past the horizon, so every session stays in
//                         the compressed Working phase for the whole run --
//                         the batch-lane target workload.
// Acceptors (deadline workload only):
//   --acceptor=engine     deadline::make_online_acceptor (engine replica,
//                         per-symbol drive loop);
//   --acceptor=lane       deadline::make_lane_acceptor (vectorizable).
// Kernel:
//   --kernel=on|off       ShardConfig::lane_kernel; with `off` (or with
//                         --acceptor=engine) every run takes the
//                         per-symbol feed_run path.
//
// Stdout carries the human table; `--json=PATH` (alias `--svc_json=PATH`)
// appends the JSONL records (CI scrapes them into BENCH_svc.json).
//
// Flags (defaults reproduce the committed BENCH_svc.json sweep):
//   --sessions=100,1000   session counts to sweep
//   --shards=1,2,4,8      shard counts to sweep
//   --symbols=2000        symbols per session
//   --batch=256           producer-side run length (1 = per-symbol feeds)
//   --ring=4096           ring slots per shard
//   --warmup=0.2          warmup fraction excluded from measurement
//   --json=PATH           append JSONL records

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rtw/core/lane.hpp"
#include "rtw/core/online.hpp"
#include "rtw/deadline/lane.hpp"
#include "rtw/deadline/online.hpp"
#include "rtw/deadline/problem.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/service.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;

using rtw::svc::SessionId;
using rtw::svc::SessionManager;

/// Counts arrivals forever; never locks.  The cheapest algorithm that
/// still exercises the EngineOnlineAcceptor drive loop per feed.
class CountingAlgorithm final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext& ctx) override {
    seen_ += ctx.arrivals.size();
  }
  std::optional<bool> locked() const override { return std::nullopt; }
  void reset() override { seen_ = 0; }
  std::string name() const override { return "counting"; }

private:
  std::uint64_t seen_ = 0;
};

struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::size_t samples = 0;
};

Percentiles percentiles(std::vector<std::uint64_t> samples) {
  Percentiles p;
  p.samples = samples.size();
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p99 = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
  return p;
}

enum class Workload { Counting, Deadline };
enum class AcceptorKind { Engine, Lane };

struct CellConfig {
  unsigned sessions = 0;
  unsigned shards = 0;
  std::uint64_t symbols_per_session = 2000;
  std::size_t batch = 256;
  std::size_t ring = 4096;
  double warmup = 0.2;
  Workload workload = Workload::Counting;
  AcceptorKind acceptor = AcceptorKind::Engine;
  bool kernel = true;
};

struct Cell {
  std::uint64_t symbols = 0;      ///< admitted (ingested) in measurement
  std::uint64_t offered = 0;      ///< symbols offered in measurement
  std::uint64_t shed = 0;
  std::uint64_t shed_ring_full = 0;
  std::uint64_t shed_session_bound = 0;
  std::uint64_t shed_priority = 0;
  std::uint64_t lane_symbols = 0;
  std::uint64_t lane_waves = 0;
  double wall_s = 0;
  double symbols_per_sec = 0;
  double per_core_symbols_per_sec = 0;
  double shed_rate = 0;
  Percentiles admit_ns;   ///< producer-side cost of one admission call
  Percentiles feed_ns;    ///< enqueue -> worker-process ring wait
};

/// One deadline session's acceptor.  Completion is pushed past the horizon
/// so the session stays in the compressed Working phase for the whole
/// stream: the steady state the lane kernel exists for.
std::unique_ptr<OnlineAcceptor> make_deadline_session(
    const std::shared_ptr<const rtw::deadline::Problem>& problem,
    const RunOptions& options, AcceptorKind kind) {
  if (kind == AcceptorKind::Lane)
    return rtw::deadline::make_lane_acceptor(problem, options);
  return rtw::deadline::make_online_acceptor(problem, options);
}

Cell run_cell(const CellConfig& cc) {
  using clock = std::chrono::steady_clock;

  rtw::svc::ShardConfig shard;
  shard.count = cc.shards;
  shard.lane_kernel = cc.kernel;
  rtw::svc::IngressConfig ingress;
  ingress.ring_capacity = cc.ring;
  ingress.shed_on_full = true;  // overload -> shed, producer never stalls
  SessionManager manager(shard, ingress);

  RunOptions options;
  options.horizon = cc.symbols_per_session + 16;
  std::vector<SessionId> ids;
  ids.reserve(cc.sessions);
  if (cc.workload == Workload::Counting) {
    for (unsigned s = 0; s < cc.sessions; ++s)
      ids.push_back(manager.open(std::make_unique<EngineOnlineAcceptor>(
          std::make_unique<CountingAlgorithm>(), options)));
  } else {
    const auto problem = std::make_shared<rtw::deadline::FixedCostProblem>(
        cc.symbols_per_session + 64);  // completion > horizon: never locks
    for (unsigned s = 0; s < cc.sessions; ++s)
      ids.push_back(
          manager.open(make_deadline_session(problem, options, cc.acceptor)));
  }
  manager.drain();

  if (cc.workload == Workload::Deadline) {
    // Header run at time 0: proposed output {1} $ input {1} $ (identity
    // problem, so the claimed solution matches).  A fast-forwarding
    // acceptor promotes to its lane on the first post-header symbol.
    const std::vector<TimedSymbol> header = {{Symbol::nat(1), 0},
                                             {marks::dollar(), 0},
                                             {Symbol::nat(1), 0},
                                             {marks::dollar(), 0}};
    for (const auto id : ids) manager.feed_batch(id, header);
    manager.drain();
  }

  // Per-session producer buffers: symbols accumulate in offer order and
  // flush as one all-or-nothing feed_batch run of `batch` elements.
  std::vector<std::vector<TimedSymbol>> buffers(cc.sessions);
  for (auto& b : buffers) b.reserve(cc.batch);

  std::vector<std::uint64_t> admit_samples;
  admit_samples.reserve(
      cc.sessions * cc.symbols_per_session / (16 * cc.batch) + 1);

  Cell cell;
  std::uint64_t flushes = 0;
  const auto flush = [&](unsigned s) {
    if (buffers[s].empty()) return;
    if ((flushes++ & 15) == 0) {
      const auto t0 = clock::now();
      manager.feed_batch(ids[s], std::move(buffers[s]));
      admit_samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                               t0)
              .count()));
    } else {
      manager.feed_batch(ids[s], std::move(buffers[s]));
    }
    buffers[s].clear();
    buffers[s].reserve(cc.batch);  // moved-from: recover capacity up front
  };
  const auto offer = [&](unsigned s, Symbol sym, Tick t) {
    ++cell.offered;
    buffers[s].push_back({sym, t});
    if (buffers[s].size() >= cc.batch) flush(s);
  };

  const Symbol wait_sym =
      cc.workload == Workload::Counting ? Symbol::chr('a') : Symbol::chr('w');
  const Symbol d_sym = marks::deadline();
  const auto feed_tick = [&](Tick t) {
    for (unsigned s = 0; s < cc.sessions; ++s) {
      if (cc.workload == Workload::Deadline && t % 32 == 0) {
        // Exercise the P_m fold: a (d, usefulness) pair instead of `w`.
        offer(s, d_sym, t);
        offer(s, Symbol::nat(t % 7), t);
      } else {
        offer(s, wait_sym, t);
      }
    }
  };

  // Warmup: feed the cold ramp, drain it, and zero every meter.
  const Tick first = cc.workload == Workload::Deadline ? 1 : 0;
  Tick t = first;
  const Tick warmup_end =
      first + static_cast<Tick>(cc.warmup *
                                static_cast<double>(cc.symbols_per_session));
  for (; t < warmup_end; ++t) feed_tick(t);
  for (unsigned s = 0; s < cc.sessions; ++s) flush(s);
  manager.drain();
  const auto warm = manager.stats();
  (void)manager.take_feed_latency_samples();  // discard warmup samples
  admit_samples.clear();
  cell.offered = 0;

  const auto start = clock::now();
  for (; t < first + cc.symbols_per_session; ++t) feed_tick(t);
  for (unsigned s = 0; s < cc.sessions; ++s) flush(s);
  for (const auto id : ids) manager.close(id, StreamEnd::Truncated);
  manager.drain();
  const auto stop = clock::now();

  const auto stats = manager.stats();
  cell.symbols = stats.ingested - warm.ingested;
  cell.shed = stats.shed - warm.shed;
  cell.shed_ring_full = stats.shed_ring_full - warm.shed_ring_full;
  cell.shed_session_bound =
      stats.shed_session_bound - warm.shed_session_bound;
  cell.shed_priority = stats.shed_priority - warm.shed_priority;
  cell.lane_symbols = stats.lane_symbols - warm.lane_symbols;
  cell.lane_waves = stats.lane_waves - warm.lane_waves;
  cell.wall_s = std::chrono::duration<double>(stop - start).count();
  cell.symbols_per_sec =
      cell.wall_s > 0 ? static_cast<double>(cell.symbols) / cell.wall_s : 0;
  const unsigned cores = std::max(1u, std::min(
      cc.shards, std::thread::hardware_concurrency()));
  cell.per_core_symbols_per_sec =
      cell.symbols_per_sec / static_cast<double>(cores);
  cell.shed_rate = cell.offered
                       ? static_cast<double>(cell.shed) /
                             static_cast<double>(cell.offered)
                       : 0;
  cell.admit_ns = percentiles(std::move(admit_samples));
  cell.feed_ns = percentiles(manager.take_feed_latency_samples());
  // Sanity: every opened session must come back exactly once.
  if (manager.collect().size() != cc.sessions)
    std::cerr << "WARNING: report count != sessions\n";
  return cell;
}

std::vector<unsigned> parse_csv(const std::string& text) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto part = text.substr(pos, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - pos);
    if (!part.empty()) out.push_back(static_cast<unsigned>(std::stoul(part)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<unsigned> session_counts = {100, 1000};
  std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  CellConfig cc;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--svc_json=", 0) == 0) json_path = value("--svc_json=");
    else if (arg.rfind("--json=", 0) == 0) json_path = value("--json=");
    else if (arg.rfind("--sessions=", 0) == 0)
      session_counts = parse_csv(value("--sessions="));
    else if (arg.rfind("--shards=", 0) == 0)
      shard_counts = parse_csv(value("--shards="));
    else if (arg.rfind("--symbols=", 0) == 0)
      cc.symbols_per_session = std::stoull(value("--symbols="));
    else if (arg.rfind("--batch=", 0) == 0)
      cc.batch = std::stoull(value("--batch="));
    else if (arg.rfind("--ring=", 0) == 0)
      cc.ring = std::stoull(value("--ring="));
    else if (arg.rfind("--warmup=", 0) == 0)
      cc.warmup = std::stod(value("--warmup="));
    else if (arg == "--workload=counting") cc.workload = Workload::Counting;
    else if (arg == "--workload=deadline") cc.workload = Workload::Deadline;
    else if (arg == "--acceptor=engine") cc.acceptor = AcceptorKind::Engine;
    else if (arg == "--acceptor=lane") cc.acceptor = AcceptorKind::Lane;
    else if (arg == "--kernel=on") cc.kernel = true;
    else if (arg == "--kernel=off") cc.kernel = false;
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (cc.batch == 0) cc.batch = 1;
  if (cc.warmup < 0) cc.warmup = 0;
  if (cc.warmup > 0.9) cc.warmup = 0.9;

  const char* workload =
      cc.workload == Workload::Counting ? "counting" : "deadline";
  const char* acceptor = cc.acceptor == AcceptorKind::Engine ? "engine" : "lane";
  const auto variant = rtw::core::dispatch_variant();

  std::cout << "==========================================================\n";
  std::cout << " EXP-SVC: sessions x shards, " << cc.symbols_per_session
            << " symbols/session, ring " << cc.ring << ", batch " << cc.batch
            << ", shed-on-full\n";
  std::cout << " workload " << workload << ", acceptor " << acceptor
            << ", kernel " << (cc.kernel ? "on" : "off") << " ("
            << rtw::core::to_string(variant) << "), warmup " << cc.warmup
            << "\n";
  std::cout << "==========================================================\n\n";
  std::cout << " sessions  shards    Msym/s   shed%  admit p50/p99(ns)"
               "  feed p50/p99(us)  lane%\n";
  std::cout << " ---------------------------------------------------------"
               "----------------\n";

  std::vector<std::string> json;
  for (const auto sessions : session_counts) {
    for (const auto shards : shard_counts) {
      cc.sessions = sessions;
      cc.shards = shards;
      const auto cell = run_cell(cc);
      const double lane_frac =
          cell.symbols ? 100.0 * static_cast<double>(cell.lane_symbols) /
                             static_cast<double>(cell.symbols)
                       : 0.0;
      std::printf(
          " %8u  %6u  %8.3f  %6.2f  %8llu /%8llu  %8.1f /%8.1f  %5.1f\n",
          sessions, shards, cell.symbols_per_sec / 1e6,
          100.0 * cell.shed_rate,
          static_cast<unsigned long long>(cell.admit_ns.p50),
          static_cast<unsigned long long>(cell.admit_ns.p99),
          static_cast<double>(cell.feed_ns.p50) / 1e3,
          static_cast<double>(cell.feed_ns.p99) / 1e3, lane_frac);
      json.push_back(rtw::sim::bench_record("svc")
                         .field("workload", workload)
                         .field("acceptor", acceptor)
                         .field("kernel", cc.kernel ? "on" : "off")
                         .field("kernel_variant",
                                std::string(rtw::core::to_string(variant)))
                         .field("sessions", sessions)
                         .field("shards", shards)
                         .field("symbols_per_session", cc.symbols_per_session)
                         .field("batch", cc.batch)
                         .field("ring", cc.ring)
                         .field("warmup_frac", cc.warmup)
                         .field("symbols_ingested", cell.symbols)
                         .field("symbols_offered", cell.offered)
                         .field("wall_s", cell.wall_s)
                         .field("symbols_per_sec", cell.symbols_per_sec)
                         .field("per_core_symbols_per_sec",
                                cell.per_core_symbols_per_sec)
                         .field("lane_symbols", cell.lane_symbols)
                         .field("lane_waves", cell.lane_waves)
                         .field("shed_rate", cell.shed_rate)
                         .field("shed_ring_full", cell.shed_ring_full)
                         .field("shed_session_bound", cell.shed_session_bound)
                         .field("shed_priority", cell.shed_priority)
                         .field("admit_samples", cell.admit_ns.samples)
                         .field("p50_admit_ns", cell.admit_ns.p50)
                         .field("p99_admit_ns", cell.admit_ns.p99)
                         .field("feed_samples", cell.feed_ns.samples)
                         .field("p50_feed_ns", cell.feed_ns.p50)
                         .field("p99_feed_ns", cell.feed_ns.p99)
                         .str());
    }
    std::cout << "\n";
  }

  std::cout << "--- jsonl ------------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
