// EXP-SVC: serving-layer throughput (sessions x shards sweep).
//
// Each cell opens S sessions over a SessionManager with N shards, feeds
// every session the same number of monotone symbols round-robin from one
// producer thread -- buffered per session and admitted as feed_batch runs
// (one ring slot per run) -- then closes everything Truncated and drains.
// Reported per cell:
//   * aggregate symbols/s (ingested / wall time, producer-side),
//   * shed rate under the bounded per-shard rings, broken down by reason
//     (ring_full / session_bound / priority),
//   * p50/p99 *admit* latency in ns: the producer-side cost of one
//     batched admission call (sampled every 16th run),
//   * p50/p99 *feed* latency in ns: enqueue -> shard-worker-process delta
//     from the manager's sampled stamps -- the time a symbol actually
//     waited in the ring, which the old bench conflated with admission
//     cost and reported as a constant.
//
// The per-session acceptor is a non-locking counting algorithm behind
// EngineOnlineAcceptor: every feed drives one real emulated tick, so the
// cell measures the full ring -> shard worker -> engine path rather than a
// latched no-op.  Stdout carries the human table; `--json=PATH` (alias
// `--svc_json=PATH`) appends the JSONL records (CI scrapes them into
// BENCH_svc.json).
//
// Flags (defaults reproduce the committed BENCH_svc.json sweep):
//   --sessions=100,1000   session counts to sweep
//   --shards=1,2,4,8      shard counts to sweep
//   --symbols=2000        symbols per session
//   --batch=256           producer-side run length (1 = per-symbol feeds)
//   --ring=4096           ring slots per shard
//   --json=PATH           append JSONL records

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/service.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;
using rtw::svc::ServiceConfig;
using rtw::svc::SessionId;
using rtw::svc::SessionManager;

/// Counts arrivals forever; never locks.  The cheapest algorithm that
/// still exercises the EngineOnlineAcceptor drive loop per feed.
class CountingAlgorithm final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext& ctx) override {
    seen_ += ctx.arrivals.size();
  }
  std::optional<bool> locked() const override { return std::nullopt; }
  void reset() override { seen_ = 0; }
  std::string name() const override { return "counting"; }

private:
  std::uint64_t seen_ = 0;
};

struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

Percentiles percentiles(std::vector<std::uint64_t> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p99 = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
  return p;
}

struct Cell {
  unsigned sessions = 0;
  unsigned shards = 0;
  std::uint64_t symbols = 0;      ///< total admitted (ingested)
  std::uint64_t offered = 0;      ///< total symbols offered
  std::uint64_t shed = 0;
  std::uint64_t shed_ring_full = 0;
  std::uint64_t shed_session_bound = 0;
  std::uint64_t shed_priority = 0;
  double wall_s = 0;
  double symbols_per_sec = 0;
  double shed_rate = 0;
  Percentiles admit_ns;   ///< producer-side cost of one admission call
  Percentiles feed_ns;    ///< enqueue -> worker-process ring wait
};

Cell run_cell(unsigned sessions, unsigned shards,
              std::uint64_t symbols_per_session, std::size_t batch,
              std::size_t ring) {
  using clock = std::chrono::steady_clock;

  ServiceConfig config;
  config.shards = shards;
  config.ring_capacity = ring;
  config.shed_on_full = true;   // overload -> shed, producer never stalls
  SessionManager manager(config);

  RunOptions options;
  options.horizon = symbols_per_session + 16;
  std::vector<SessionId> ids;
  ids.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s)
    ids.push_back(manager.open(std::make_unique<EngineOnlineAcceptor>(
        std::make_unique<CountingAlgorithm>(), options)));
  manager.drain();

  // Per-session producer buffers: symbols accumulate in offer order and
  // flush as one all-or-nothing feed_batch run of `batch` elements.
  std::vector<std::vector<TimedSymbol>> buffers(sessions);
  for (auto& b : buffers) b.reserve(batch);

  std::vector<std::uint64_t> admit_samples;
  admit_samples.reserve(sessions * symbols_per_session / (16 * batch) + 1);

  Cell cell;
  cell.sessions = sessions;
  cell.shards = shards;
  const Symbol sym = Symbol::chr('a');
  std::uint64_t flushes = 0;
  const auto flush = [&](unsigned s) {
    if (buffers[s].empty()) return;
    if ((flushes++ & 15) == 0) {
      const auto t0 = clock::now();
      manager.feed_batch(ids[s], std::move(buffers[s]));
      admit_samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                               t0)
              .count()));
    } else {
      manager.feed_batch(ids[s], std::move(buffers[s]));
    }
    buffers[s].clear();
  };

  const auto start = clock::now();
  for (Tick t = 0; t < symbols_per_session; ++t) {
    for (unsigned s = 0; s < sessions; ++s) {
      ++cell.offered;
      buffers[s].push_back({sym, t});
      if (buffers[s].size() >= batch) flush(s);
    }
  }
  for (unsigned s = 0; s < sessions; ++s) flush(s);
  for (const auto id : ids) manager.close(id, StreamEnd::Truncated);
  manager.drain();
  const auto stop = clock::now();

  const auto stats = manager.stats();
  cell.symbols = stats.ingested;
  cell.shed = stats.shed;
  cell.shed_ring_full = stats.shed_ring_full;
  cell.shed_session_bound = stats.shed_session_bound;
  cell.shed_priority = stats.shed_priority;
  cell.wall_s = std::chrono::duration<double>(stop - start).count();
  cell.symbols_per_sec =
      cell.wall_s > 0 ? static_cast<double>(cell.symbols) / cell.wall_s : 0;
  cell.shed_rate = cell.offered
                       ? static_cast<double>(cell.shed) /
                             static_cast<double>(cell.offered)
                       : 0;
  cell.admit_ns = percentiles(std::move(admit_samples));
  cell.feed_ns = percentiles(manager.take_feed_latency_samples());
  // Sanity: every opened session must come back exactly once.
  if (manager.collect().size() != sessions)
    std::cerr << "WARNING: report count != sessions\n";
  return cell;
}

std::vector<unsigned> parse_csv(const std::string& text) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto comma = text.find(',', pos);
    const auto part = text.substr(pos, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - pos);
    if (!part.empty()) out.push_back(static_cast<unsigned>(std::stoul(part)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<unsigned> session_counts = {100, 1000};
  std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  std::uint64_t symbols_per_session = 2000;
  std::size_t batch = 256;
  std::size_t ring = 4096;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--svc_json=", 0) == 0) json_path = value("--svc_json=");
    else if (arg.rfind("--json=", 0) == 0) json_path = value("--json=");
    else if (arg.rfind("--sessions=", 0) == 0)
      session_counts = parse_csv(value("--sessions="));
    else if (arg.rfind("--shards=", 0) == 0)
      shard_counts = parse_csv(value("--shards="));
    else if (arg.rfind("--symbols=", 0) == 0)
      symbols_per_session = std::stoull(value("--symbols="));
    else if (arg.rfind("--batch=", 0) == 0)
      batch = std::stoull(value("--batch="));
    else if (arg.rfind("--ring=", 0) == 0)
      ring = std::stoull(value("--ring="));
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  std::cout << "==========================================================\n";
  std::cout << " EXP-SVC: sessions x shards, " << symbols_per_session
            << " symbols/session, ring " << ring << ", batch " << batch
            << ", shed-on-full\n";
  std::cout << "==========================================================\n\n";
  std::cout << " sessions  shards    Msym/s   shed%  admit p50/p99(ns)"
               "  feed p50/p99(us)\n";
  std::cout << " ---------------------------------------------------------"
               "----------\n";

  std::vector<std::string> json;
  for (const auto sessions : session_counts) {
    for (const auto shards : shard_counts) {
      const auto cell =
          run_cell(sessions, shards, symbols_per_session, batch, ring);
      std::printf(" %8u  %6u  %8.3f  %6.2f  %8llu /%8llu  %8.1f /%8.1f\n",
                  cell.sessions, cell.shards, cell.symbols_per_sec / 1e6,
                  100.0 * cell.shed_rate,
                  static_cast<unsigned long long>(cell.admit_ns.p50),
                  static_cast<unsigned long long>(cell.admit_ns.p99),
                  static_cast<double>(cell.feed_ns.p50) / 1e3,
                  static_cast<double>(cell.feed_ns.p99) / 1e3);
      json.push_back(rtw::sim::bench_record("svc")
                         .field("sessions", cell.sessions)
                         .field("shards", cell.shards)
                         .field("symbols_per_session", symbols_per_session)
                         .field("batch", batch)
                         .field("ring", ring)
                         .field("symbols_ingested", cell.symbols)
                         .field("symbols_offered", cell.offered)
                         .field("wall_s", cell.wall_s)
                         .field("symbols_per_sec", cell.symbols_per_sec)
                         .field("shed_rate", cell.shed_rate)
                         .field("shed_ring_full", cell.shed_ring_full)
                         .field("shed_session_bound", cell.shed_session_bound)
                         .field("shed_priority", cell.shed_priority)
                         .field("p50_admit_ns", cell.admit_ns.p50)
                         .field("p99_admit_ns", cell.admit_ns.p99)
                         .field("p50_feed_ns", cell.feed_ns.p50)
                         .field("p99_feed_ns", cell.feed_ns.p99)
                         .str());
    }
    std::cout << "\n";
  }

  std::cout << "--- jsonl ------------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
