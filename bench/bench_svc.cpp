// EXP-SVC: serving-layer throughput (sessions x shards sweep).
//
// Each cell opens S sessions over a SessionManager with N shards, feeds
// every session the same number of monotone symbols round-robin from one
// producer thread, then closes everything Truncated and drains.  Reported
// per cell:
//   * aggregate symbols/s (ingested / wall time, producer-side),
//   * shed rate under the bounded per-shard rings,
//   * p50/p99 feed() latency in ns (sampled every 16th call).
//
// The per-session acceptor is a non-locking counting algorithm behind
// EngineOnlineAcceptor: every feed drives one real emulated tick, so the
// cell measures the full ring -> shard worker -> engine path rather than a
// latched no-op.  Stdout carries the human table; `--svc_json=PATH`
// appends the JSONL records (CI scrapes them into BENCH_svc.json).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/service.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;
using rtw::svc::ServiceConfig;
using rtw::svc::SessionId;
using rtw::svc::SessionManager;

/// Counts arrivals forever; never locks.  The cheapest algorithm that
/// still exercises the EngineOnlineAcceptor drive loop per feed.
class CountingAlgorithm final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext& ctx) override {
    seen_ += ctx.arrivals.size();
  }
  std::optional<bool> locked() const override { return std::nullopt; }
  void reset() override { seen_ = 0; }
  std::string name() const override { return "counting"; }

private:
  std::uint64_t seen_ = 0;
};

struct Cell {
  unsigned sessions = 0;
  unsigned shards = 0;
  std::uint64_t symbols = 0;      ///< total admitted (ingested)
  std::uint64_t offered = 0;      ///< total feed() calls
  std::uint64_t shed = 0;
  double wall_s = 0;
  double symbols_per_sec = 0;
  double shed_rate = 0;
  std::uint64_t p50_feed_ns = 0;
  std::uint64_t p99_feed_ns = 0;
};

Cell run_cell(unsigned sessions, unsigned shards,
              std::uint64_t symbols_per_session) {
  using clock = std::chrono::steady_clock;

  ServiceConfig config;
  config.shards = shards;
  config.ring_capacity = 4096;
  config.shed_on_full = true;   // overload -> shed, producer never stalls
  SessionManager manager(config);

  RunOptions options;
  options.horizon = symbols_per_session + 16;
  std::vector<SessionId> ids;
  ids.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s)
    ids.push_back(manager.open(std::make_unique<EngineOnlineAcceptor>(
        std::make_unique<CountingAlgorithm>(), options)));
  manager.drain();

  std::vector<std::uint64_t> samples;
  samples.reserve(sessions * symbols_per_session / 16 + 1);

  Cell cell;
  cell.sessions = sessions;
  cell.shards = shards;
  const Symbol sym = Symbol::chr('a');
  const auto start = clock::now();
  std::uint64_t call = 0;
  for (Tick t = 0; t < symbols_per_session; ++t) {
    for (const auto id : ids) {
      ++cell.offered;
      if ((call++ & 15) == 0) {
        const auto t0 = clock::now();
        if (manager.feed(id, sym, t) == Admit::Shed) ++cell.shed;
        samples.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - t0)
                .count()));
      } else if (manager.feed(id, sym, t) == Admit::Shed) {
        ++cell.shed;
      }
    }
  }
  for (const auto id : ids) manager.close(id, StreamEnd::Truncated);
  manager.drain();
  const auto stop = clock::now();

  const auto stats = manager.stats();
  cell.symbols = stats.ingested;
  cell.wall_s = std::chrono::duration<double>(stop - start).count();
  cell.symbols_per_sec =
      cell.wall_s > 0 ? static_cast<double>(cell.symbols) / cell.wall_s : 0;
  cell.shed_rate = cell.offered
                       ? static_cast<double>(cell.shed) /
                             static_cast<double>(cell.offered)
                       : 0;
  std::sort(samples.begin(), samples.end());
  if (!samples.empty()) {
    cell.p50_feed_ns = samples[samples.size() / 2];
    cell.p99_feed_ns = samples[std::min(samples.size() - 1,
                                        samples.size() * 99 / 100)];
  }
  // Sanity: every opened session must come back exactly once.
  if (manager.collect().size() != sessions)
    std::cerr << "WARNING: report count != sessions\n";
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--svc_json=", 0) == 0) json_path = arg.substr(11);
  }

  const std::vector<unsigned> session_counts = {100, 1000};
  const std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  const std::uint64_t symbols_per_session = 2000;

  std::cout << "==========================================================\n";
  std::cout << " EXP-SVC: sessions x shards, " << symbols_per_session
            << " symbols/session, ring 4096, shed-on-full\n";
  std::cout << "==========================================================\n\n";
  std::cout << " sessions  shards    Msym/s   shed%   p50(ns)   p99(ns)\n";
  std::cout << " -----------------------------------------------------\n";

  std::vector<std::string> json;
  for (const auto sessions : session_counts) {
    for (const auto shards : shard_counts) {
      const auto cell = run_cell(sessions, shards, symbols_per_session);
      std::printf(" %8u  %6u  %8.3f  %6.2f  %8llu  %8llu\n", cell.sessions,
                  cell.shards, cell.symbols_per_sec / 1e6,
                  100.0 * cell.shed_rate,
                  static_cast<unsigned long long>(cell.p50_feed_ns),
                  static_cast<unsigned long long>(cell.p99_feed_ns));
      json.push_back(rtw::sim::bench_record("svc")
                         .field("sessions", cell.sessions)
                         .field("shards", cell.shards)
                         .field("symbols_per_session", symbols_per_session)
                         .field("symbols_ingested", cell.symbols)
                         .field("symbols_offered", cell.offered)
                         .field("wall_s", cell.wall_s)
                         .field("symbols_per_sec", cell.symbols_per_sec)
                         .field("shed_rate", cell.shed_rate)
                         .field("p50_feed_ns", cell.p50_feed_ns)
                         .field("p99_feed_ns", cell.p99_feed_ns)
                         .str());
    }
    std::cout << "\n";
  }

  std::cout << "--- jsonl ------------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
