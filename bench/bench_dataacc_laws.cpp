// EXP-DA -- the data-accumulating paradigm (section 4.2).
//
// Table 1: d-algorithm termination time vs the arrival law exponent beta
//   (f = n + k n^gamma t^beta), simulated vs the fixed-point prediction
//   t = C f(n,t).  Expected shape (per the cited [15]/[27] analyses):
//   sublinear laws terminate with t* growing in beta; at beta = 1
//   termination holds iff k*cost < 1; superlinear laws diverge.
//
// Table 2: the success frontier in (k, processors): the paper's claim
//   that "a parallel approach can make the difference between success and
//   failure" -- each added processor shifts the feasible arrival rate
//   proportionally.
//
// Table 3: c-algorithms (corrections variant): termination vs correction
//   rate.

#include <iostream>
#include <string>
#include <vector>

#include "rtw/dataacc/acceptor.hpp"
#include "rtw/dataacc/d_algorithm.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::dataacc;
using rtw::core::Symbol;
using rtw::core::Tick;

int main() {
  const Tick horizon = 200000;

  std::cout << "==========================================================\n";
  std::cout << " EXP-DA Table 1: termination vs beta (n=16, k=0.5, cost 1)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t1(
      {"beta", "predicted t*", "simulated t*", "processed", "verdict"});
  std::vector<std::string> t1_json;
  for (double beta : {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.5}) {
    ArrivalLaw law(16, 0.5, 0.0, beta);
    const auto predicted = predicted_termination(law, {1, 1}, horizon);
    RunningCount counter;
    const auto run = run_d_algorithm(
        law, {1, 1}, counter, [](std::uint64_t j) { return Symbol::nat(j); },
        horizon);
    t1.row().cell(beta, 2);
    t1.cell(predicted ? std::to_string(*predicted) : "diverges");
    t1.cell(run.terminated ? std::to_string(run.termination_time)
                           : "diverges");
    t1.cell(run.processed);
    const bool agree = predicted.has_value() == run.terminated;
    t1.cell(agree ? "agree" : "DISAGREE");
    rtw::sim::JsonLine line = rtw::sim::bench_record("dataacc_laws");
    line
        .field("table", "t1_termination_vs_beta")
        .field("beta", beta)
        .field("terminated", run.terminated);
    if (predicted) line.field("predicted_t", *predicted);
    if (run.terminated) line.field("simulated_t", run.termination_time);
    line.field("processed", run.processed).field("agree", agree);
    t1_json.push_back(line.str());
  }
  t1.print(std::cout, 1);
  std::cout << "\nexpected shape: t* grows with beta; beta = 1 with "
               "k*cost = 0.5 < 1 still terminates;\nbeta > 1 diverges.\n\n";
  for (const auto& line : t1_json) std::cout << line << "\n";
  std::cout << "\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-DA Table 2: success frontier in (k, processors)\n";
  std::cout << " (n=8, beta=1, cost=2: terminates iff k*cost/p < 1)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t2({"k \\ p", "p=1", "p=2", "p=3", "p=4"});
  std::vector<std::string> t2_json;
  for (double k : {0.3, 0.6, 0.9, 1.2, 1.8, 2.4}) {
    t2.row().cell(k, 1);
    for (std::uint32_t p = 1; p <= 4; ++p) {
      ArrivalLaw law(8, k, 0.0, 1.0);
      RunningCount counter;
      const auto run = run_d_algorithm(
          law, {2, p}, counter,
          [](std::uint64_t j) { return Symbol::nat(j); }, 50000);
      t2.cell(run.terminated
                  ? "t*=" + std::to_string(run.termination_time)
                  : "diverges");
      rtw::sim::JsonLine line = rtw::sim::bench_record("dataacc_laws");
      line
          .field("table", "t2_success_frontier")
          .field("k", k)
          .field("processors", p)
          .field("terminated", run.terminated);
      if (run.terminated) line.field("t_star", run.termination_time);
      t2_json.push_back(line.str());
    }
  }
  t2.print(std::cout, 1);
  std::cout << "\nexpected shape: the feasibility frontier moves right "
               "with p (k < p/cost = p/2);\neach processor added turns a "
               "failing rate into a succeeding one.\n\n";
  for (const auto& line : t2_json) std::cout << line << "\n";
  std::cout << "\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-DA Table 3: c-algorithms (corrections) vs rate\n";
  std::cout << " (n=32, cost 1, correction cost 3)\n";
  std::cout << "==========================================================\n\n";
  rtw::sim::Table t3({"beta", "terminated", "t*", "corrections",
                      "reprocessed units"});
  std::vector<std::string> t3_json;
  for (double beta : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    ArrivalLaw law(32, 0.4, 0.0, beta);
    const auto run = run_c_algorithm(law, {1, 1}, 3, 50000);
    t3.row().cell(beta, 1);
    t3.cell(run.terminated ? "yes" : "no");
    t3.cell(run.terminated ? std::to_string(run.termination_time) : "-");
    t3.cell(run.corrections_applied);
    t3.cell(run.reprocessed_units);
    rtw::sim::JsonLine line = rtw::sim::bench_record("dataacc_laws");
    line
        .field("table", "t3_corrections")
        .field("beta", beta)
        .field("terminated", run.terminated);
    if (run.terminated) line.field("t_star", run.termination_time);
    line.field("corrections", run.corrections_applied)
        .field("reprocessed", run.reprocessed_units);
    t3_json.push_back(line.str());
  }
  t3.print(std::cout, 1);
  std::cout << "\nexpected shape: corrections multiply work by their cost; "
               "the same critical-rate\nstructure as Table 1 with the "
               "effective rate k*correction_cost.\n\n";
  for (const auto& line : t3_json) std::cout << line << "\n";
  return 0;
}
