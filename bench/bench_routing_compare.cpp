// EXP-ROUTE -- the routing problem in ad hoc networks (section 5.2),
// regenerating the shape of the Broch et al. [12] comparison the paper
// builds its metrics on.
//
// Sweep: pause time (mobility knob: 0 = constant motion, large = static)
// x protocol {flooding, DSDV, DSR, AODV}, reporting the three measures
// the paper maps onto words of R_{n,u}:
//   * delivery ratio,
//   * routing overhead (control transmissions per originated message,
//     plus data transmissions for flooding's redundancy),
//   * path optimality (hops above the shortest path existing at
//     origination), including the [12]-style histogram for one cell.
//
// Expected shape (per [12]): on-demand protocols (DSR/AODV) sustain high
// delivery across mobility while DSDV degrades at low pause times (stale
// tables); flooding delivers most but at maximal transmission cost;
// on-demand overhead falls as the network gets more static.

#include <iostream>
#include <string>
#include <vector>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/obs/export.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::adhoc;

namespace {

struct ProtocolSpec {
  const char* name;
  ProtocolFactory factory;
};

RoutingMetrics run_cell(const ProtocolFactory& factory, Tick pause,
                        std::uint64_t seed,
                        std::vector<DataSpec>* out_messages = nullptr,
                        const Network** out_net = nullptr) {
  static std::vector<std::unique_ptr<Network>> keepalive;
  NetworkConfig config;
  config.nodes = 20;
  config.region = {150, 150};
  config.radio_range = 45;
  config.min_speed = 0.5;
  config.max_speed = 3.0;
  config.pause_time = pause;
  config.seed = seed;
  auto net = std::make_unique<Network>(config);

  Simulator sim(*net, factory);
  rtw::sim::Xoshiro256ss rng(seed * 77 + pause);
  std::vector<DataSpec> messages;
  for (std::uint64_t m = 0; m < 30; ++m) {
    DataSpec spec;
    spec.data_id = m + 1;
    spec.src = static_cast<NodeId>(rng.uniform(std::uint64_t{20}));
    do {
      spec.dst = static_cast<NodeId>(rng.uniform(std::uint64_t{20}));
    } while (spec.dst == spec.src);
    spec.at = 40 + m * 12;  // spread over the run, after a warm-up
    sim.schedule(spec);
    messages.push_back(spec);
  }
  const auto result = sim.run(500);
  auto metrics = compute_metrics(result, *net, messages);
  if (out_messages) *out_messages = messages;
  if (out_net) {
    keepalive.push_back(std::move(net));
    *out_net = keepalive.back().get();
  }
  return metrics;
}

}  // namespace

int main() {
  // RTW_TRACE=<path> writes a Chrome trace of the whole sweep at exit.
  rtw::obs::init_from_env();

  const std::vector<ProtocolSpec> protocols = {
      {"flooding", flooding_factory()},
      {"gossip.6", gossip_factory(0.6, 5)},
      {"dsdv", dsdv_factory(15)},
      {"dsr", dsr_factory()},
      {"aodv", aodv_factory()},
  };
  const std::vector<Tick> pauses = {0, 30, 120, 500};
  const std::vector<std::uint64_t> seeds = {11, 23, 47};

  std::cout << "==========================================================\n";
  std::cout << " EXP-ROUTE: 20 nodes, 150x150, range 45, 30 msgs, 500 ticks\n";
  std::cout << " (3 seeds per cell; pause 500 = essentially static)\n";
  std::cout << "==========================================================\n\n";

  // Every (protocol, pause, seed) replication is independent: run the
  // whole grid once through the engine's BatchRunner and aggregate the
  // three tables from the shared results (the old code re-ran each cell
  // per table).
  struct Cell {
    std::size_t protocol;
    Tick pause;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (std::size_t p = 0; p < protocols.size(); ++p)
    for (Tick pause : pauses)
      for (auto seed : seeds) cells.push_back({p, pause, seed});
  rtw::engine::BatchRunner runner;
  const auto metrics_flat = runner.map(
      cells.size(), [&](std::size_t i, rtw::sim::Xoshiro256ss&) {
        const auto& c = cells[i];
        return run_cell(protocols[c.protocol].factory, c.pause, c.seed);
      });
  auto cell_metrics = [&](std::size_t protocol, Tick pause) {
    std::vector<RoutingMetrics> out;
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].protocol == protocol && cells[i].pause == pause)
        out.push_back(metrics_flat[i]);
    return out;
  };

  std::cout << "--- delivery ratio vs pause time --------------------------\n";
  rtw::sim::Table td({"protocol", "pause 0", "pause 30", "pause 120",
                      "pause 500"});
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    td.row().cell(protocols[p].name);
    for (Tick pause : pauses) {
      double ratio = 0;
      const auto ms = cell_metrics(p, pause);
      for (const auto& m : ms) ratio += m.delivery_ratio();
      td.cell(ratio / static_cast<double>(ms.size()), 3);
    }
  }
  td.print(std::cout, 1);

  std::cout << "\n--- transmissions per originated message ----------------\n";
  rtw::sim::Table to({"protocol", "pause 0", "pause 30", "pause 120",
                      "pause 500"});
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    to.row().cell(protocols[p].name);
    for (Tick pause : pauses) {
      double overhead = 0;
      const auto ms = cell_metrics(p, pause);
      for (const auto& m : ms) overhead += m.overhead_per_message();
      to.cell(overhead / static_cast<double>(ms.size()), 1);
    }
  }
  to.print(std::cout, 1);

  std::cout << "\n--- mean extra hops above the optimal path --------------\n";
  rtw::sim::Table th({"protocol", "pause 0", "pause 30", "pause 120",
                      "pause 500"});
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    th.row().cell(protocols[p].name);
    for (Tick pause : pauses) {
      rtw::sim::OnlineStats agg;
      for (const auto& m : cell_metrics(p, pause)) agg.merge(m.hop_difference);
      th.cell(agg.mean(), 2);
    }
  }
  th.print(std::cout, 1);

  std::cout << "\n";
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    for (Tick pause : pauses) {
      const auto ms = cell_metrics(p, pause);
      double ratio = 0, overhead = 0;
      rtw::sim::OnlineStats agg;
      for (const auto& m : ms) {
        ratio += m.delivery_ratio();
        overhead += m.overhead_per_message();
        agg.merge(m.hop_difference);
      }
      std::cout << rtw::sim::bench_record("routing_compare")
                       .field("table", "broch_sweep")
                       .field("protocol", protocols[p].name)
                       .field("pause", pause)
                       .field("seeds", ms.size())
                       .field("delivery_ratio",
                              ratio / static_cast<double>(ms.size()))
                       .field("tx_per_msg",
                              overhead / static_cast<double>(ms.size()))
                       .field("mean_extra_hops", agg.mean())
                       .str()
                << "\n";
    }
  }

  std::cout << "\n--- path-optimality histogram: AODV at pause 120 "
               "(hops above optimal) ---\n";
  const auto metrics = run_cell(aodv_factory(), 120, 11);
  std::cout << metrics.path_optimality.render(36);

  std::cout << "\nexpected shape (Broch et al. [12]): on-demand (DSR/AODV) "
               "keep delivery high\nacross mobility, DSDV degrades at "
               "pause 0 (stale tables), flooding delivers most\nwith "
               "maximal transmissions; overhead of on-demand falls as "
               "pause grows; most\ndeliveries take the optimal path with a "
               "small positive tail.\n";
  return 0;
}
