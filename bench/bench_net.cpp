// bench_net: TCP load generator for rtw_svcd.
//
// Holds N concurrent connections (default 10000) against a running
// rtw_svcd, streams S sessions of L symbols each per connection over the
// v1 wire protocol (Hello handshake, count:K profiles), collects the
// Verdict notifications, and reports:
//
//   - connect / Hello round-trip / Close->Verdict round-trip percentiles
//   - end-to-end symbol throughput
//   - verdict parity: the same frame streams are replayed through an
//     in-process SessionManager (the wire-driven apply() path) and every
//     verdict must be bit-identical (verdict, exact, fed, stale) to what
//     came back over the socket -- any mismatch fails the run
//   - admit/feed latency percentiles from the in-process replay (same
//     word set, same admission machinery the daemon runs)
//
// Results go to stdout as a table plus a JSONL row under the standard
// bench envelope; --json PATH appends the row to a file (CI artifact).
//
//   ./rtw_svcd --port 4600 &
//   ./bench_net --port 4600 --connections 10000
//
// Exit code: 0 only when every session's verdict arrived and parity held.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/net/epoll.hpp"
#include "rtw/svc/net/socket.hpp"
#include "rtw/svc/profiles.hpp"
#include "rtw/svc/service.hpp"
#include "rtw/svc/wire.hpp"

namespace {

using namespace rtw::svc;
using rtw::core::TimedSymbol;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

Percentiles percentiles(std::vector<std::uint64_t> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p99 = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
  return p;
}

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 4600;
  std::size_t connections = 10000;
  std::size_t sessions = 1;    ///< per connection
  std::size_t symbols = 16;    ///< per session
  std::size_t ramp = 512;      ///< max in-flight connect attempts
  std::uint64_t deadline_s = 120;
  std::string json_path;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto as_size = [&](std::size_t& out) {
      const char* v = next();
      if (!v) return false;
      out = static_cast<std::size_t>(std::atoll(v));
      return true;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return false;
      opt.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--connections") {
      if (!as_size(opt.connections)) return false;
    } else if (arg == "--sessions") {
      if (!as_size(opt.sessions)) return false;
    } else if (arg == "--symbols") {
      if (!as_size(opt.symbols)) return false;
    } else if (arg == "--ramp") {
      if (!as_size(opt.ramp)) return false;
    } else if (arg == "--deadline-s") {
      std::size_t v = 0;
      if (!as_size(v)) return false;
      opt.deadline_s = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      opt.json_path = v;
    } else {
      std::cerr << "bench_net: unknown argument '" << arg << "'\n"
                << "usage: bench_net [--host A] [--port N] "
                   "[--connections N] [--sessions N] [--symbols N] "
                   "[--ramp N] [--deadline-s N] [--json PATH]\n";
      return false;
    }
  }
  return true;
}

/// One session's deterministic workload.  Half the sessions hit their
/// count:K target exactly (Accepting), half overshoot by one (Rejecting,
/// locked early) -- both verdict paths stay exercised.
struct SessionPlan {
  SessionId wire_id = 0;  ///< conn-local id on the wire
  std::string profile;
  std::vector<TimedSymbol> word;
  bool expect_accept = false;
};

SessionPlan make_plan(std::size_t conn, std::size_t session,
                      std::size_t symbols) {
  SessionPlan plan;
  plan.wire_id = session + 1;
  plan.expect_accept = (conn + session) % 2 == 0;
  const std::uint64_t target =
      plan.expect_accept ? symbols : (symbols > 1 ? symbols - 1 : 0);
  plan.profile = "count:" + std::to_string(target);
  plan.word.reserve(symbols);
  for (std::size_t i = 0; i < symbols; ++i)
    plan.word.push_back(TimedSymbol{
        rtw::core::Symbol::nat(static_cast<std::uint32_t>(i % 7)),
        static_cast<rtw::core::Tick>(i + 1)});
  return plan;
}

/// The whole connection's byte stream: Hello, then per session
/// Open/FeedBatch.../Close.
std::string make_stream(const std::vector<SessionPlan>& plans) {
  std::string out = encode_hello();
  constexpr std::size_t kRun = 8;  ///< symbols per FeedBatch frame
  for (const auto& plan : plans) {
    out += encode_open(plan.wire_id, plan.profile);
    for (std::size_t off = 0; off < plan.word.size(); off += kRun) {
      const std::size_t end = std::min(plan.word.size(), off + kRun);
      out += encode_feed_batch(
          plan.wire_id,
          std::vector<TimedSymbol>(
              plan.word.begin() + static_cast<std::ptrdiff_t>(off),
              plan.word.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    out += encode_close(plan.wire_id);
  }
  return out;
}

struct VerdictRecord {
  bool arrived = false;
  bool accepted = false;
  bool exact = false;
  std::uint64_t fed = 0;
  std::uint64_t stale = 0;
};

enum class ConnState : std::uint8_t {
  Idle,        ///< not yet initiated
  Connecting,  ///< connect(2) in flight, waiting for writability
  Streaming,   ///< pushing the preformatted byte stream
  Waiting,     ///< all bytes flushed, collecting verdicts
  Done,        ///< every verdict arrived (socket held open)
  Failed,
};

struct ClientConn {
  net::Fd fd;
  ConnState state = ConnState::Idle;
  std::string out;
  std::size_t off = 0;
  Decoder decoder;
  std::vector<SessionPlan> plans;
  std::unordered_map<SessionId, std::size_t> by_wire_id;
  std::vector<VerdictRecord> verdicts;
  std::size_t remaining = 0;
  bool hello_acked = false;
  std::uint64_t t_connect_start = 0;
  std::uint64_t t_connected = 0;
  std::uint64_t t_flushed = 0;
};

struct RunTotals {
  std::size_t connected = 0;
  std::size_t peak = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t wire_mismatches = 0;  ///< verdict != analytic expectation
  std::vector<std::uint64_t> connect_ns;
  std::vector<std::uint64_t> hello_rtt_ns;
  std::vector<std::uint64_t> verdict_rtt_ns;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  std::signal(SIGPIPE, SIG_IGN);
  const std::uint64_t fd_limit =
      net::raise_nofile_limit(opt.connections + 1024);
  if (fd_limit < opt.connections + 64)
    std::cerr << "bench_net: warning: RLIMIT_NOFILE " << fd_limit
              << " is tight for " << opt.connections << " connections\n";

  // ---- build every connection's workload up front ---------------------
  std::vector<ClientConn> conns(opt.connections);
  for (std::size_t c = 0; c < conns.size(); ++c) {
    ClientConn& conn = conns[c];
    conn.plans.reserve(opt.sessions);
    for (std::size_t s = 0; s < opt.sessions; ++s)
      conn.plans.push_back(make_plan(c, s, opt.symbols));
    conn.out = make_stream(conn.plans);
    conn.verdicts.assign(conn.plans.size(), {});
    for (std::size_t s = 0; s < conn.plans.size(); ++s)
      conn.by_wire_id.emplace(conn.plans[s].wire_id, s);
    conn.remaining = conn.plans.size();
  }

  net::Epoll epoll;
  if (!epoll.ok()) {
    std::cerr << "bench_net: " << epoll.error() << "\n";
    return 1;
  }

  RunTotals totals;
  std::size_t initiated = 0;
  std::size_t inflight_connects = 0;
  std::size_t established = 0;  ///< live, successfully connected sockets
  const std::uint64_t t_start = now_ns();
  const std::uint64_t t_deadline = t_start + opt.deadline_s * 1'000'000'000ULL;
  bool deadline_hit = false;

  const auto fail_conn = [&](std::size_t idx) {
    ClientConn& conn = conns[idx];
    if (conn.state == ConnState::Connecting) --inflight_connects;
    if (conn.state == ConnState::Streaming ||
        conn.state == ConnState::Waiting || conn.state == ConnState::Done)
      --established;
    if (conn.fd.valid()) {
      epoll.del(conn.fd.get());
      conn.fd.reset();
    }
    conn.state = ConnState::Failed;
    ++totals.failed;
  };

  const auto pump_writes = [&](std::size_t idx) {
    ClientConn& conn = conns[idx];
    while (conn.off < conn.out.size()) {
      const ssize_t n =
          ::write(conn.fd.get(), conn.out.data() + conn.off,
                  conn.out.size() - conn.off);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        fail_conn(idx);
        return;
      }
      conn.off += static_cast<std::size_t>(n);
    }
    conn.state = ConnState::Waiting;
    conn.t_flushed = now_ns();
    epoll.mod(conn.fd.get(), EPOLLIN, idx);  // write side is finished
  };

  const auto pump_reads = [&](std::size_t idx) {
    ClientConn& conn = conns[idx];
    char buffer[16 * 1024];
    for (;;) {
      const ssize_t n = ::read(conn.fd.get(), buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        fail_conn(idx);
        return;
      }
      if (n == 0) {  // server closed early
        if (conn.state != ConnState::Done) fail_conn(idx);
        return;
      }
      conn.decoder.push(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      WireEvent ev;
      while (conn.decoder.next(ev)) {
        switch (ev.kind) {
          case WireEvent::Kind::HelloAck:
            if (!conn.hello_acked) {
              conn.hello_acked = true;
              totals.hello_rtt_ns.push_back(now_ns() - conn.t_connected);
            }
            break;
          case WireEvent::Kind::Verdict: {
            const auto it = conn.by_wire_id.find(ev.session);
            if (it == conn.by_wire_id.end()) break;
            VerdictRecord& rec = conn.verdicts[it->second];
            if (rec.arrived) break;
            rec.arrived = true;
            rec.accepted = ev.verdict == rtw::core::Verdict::Accepting;
            rec.exact = ev.exact;
            rec.fed = ev.fed;
            rec.stale = ev.stale;
            ++totals.verdicts;
            totals.verdict_rtt_ns.push_back(now_ns() - conn.t_flushed);
            if (rec.accepted != conn.plans[it->second].expect_accept)
              ++totals.wire_mismatches;
            if (--conn.remaining == 0 && conn.state == ConnState::Waiting) {
              conn.state = ConnState::Done;
              ++totals.done;
              epoll.del(conn.fd.get());  // hold the socket open, stop polling
            }
            break;
          }
          default:
            break;  // shed notices etc: not expected at this load
        }
      }
      if (!conn.decoder.ok()) {
        fail_conn(idx);
        return;
      }
    }
  };

  // ---- the client reactor ---------------------------------------------
  while (totals.done + totals.failed < conns.size()) {
    if (now_ns() >= t_deadline) {
      deadline_hit = true;
      break;
    }
    // Ramped connect initiation: bounded in-flight handshakes so the
    // listener backlog never overflows.
    while (initiated < conns.size() && inflight_connects < opt.ramp) {
      ClientConn& conn = conns[initiated];
      conn.t_connect_start = now_ns();
      auto res = net::connect_nonblocking(opt.host, opt.port);
      if (!res.ok()) {
        conn.state = ConnState::Failed;
        ++totals.failed;
        ++initiated;
        continue;
      }
      conn.fd = std::move(res.fd);
      conn.state = ConnState::Connecting;
      epoll.add(conn.fd.get(), EPOLLIN | EPOLLOUT, initiated);
      ++inflight_connects;
      ++initiated;
    }

    const auto& ready = epoll.wait(20);
    for (const auto& ev : ready) {
      const std::size_t idx = static_cast<std::size_t>(ev.data.u64);
      ClientConn& conn = conns[idx];
      if (conn.state == ConnState::Failed || conn.state == ConnState::Done)
        continue;

      if (conn.state == ConnState::Connecting) {
        if (ev.events & (EPOLLHUP | EPOLLERR)) {
          fail_conn(idx);
          continue;
        }
        if (ev.events & EPOLLOUT) {
          int err = 0;
          socklen_t len = sizeof(err);
          if (::getsockopt(conn.fd.get(), SOL_SOCKET, SO_ERROR, &err,
                           &len) != 0 ||
              err != 0) {
            fail_conn(idx);
            continue;
          }
          --inflight_connects;
          conn.state = ConnState::Streaming;
          conn.t_connected = now_ns();
          net::set_tcp_nodelay(conn.fd.get());
          totals.connect_ns.push_back(conn.t_connected -
                                      conn.t_connect_start);
          ++totals.connected;
          ++established;
          totals.peak = std::max(totals.peak, established);
          pump_writes(idx);
        }
        continue;
      }
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        fail_conn(idx);
        continue;
      }
      if ((ev.events & EPOLLOUT) && conn.state == ConnState::Streaming)
        pump_writes(idx);
      if ((ev.events & EPOLLIN) && conn.state != ConnState::Failed)
        pump_reads(idx);
    }
  }

  const double wall_s =
      static_cast<double>(now_ns() - t_start) / 1e9;
  // Sockets held open end to end: Done conns stay connected, so the hold
  // level equals every successfully connected conn still alive here.
  totals.peak = std::max(totals.peak, established);
  for (auto& conn : conns) conn.fd.reset();

  // ---- in-process parity replay ---------------------------------------
  // The same byte streams, fed through Decoder -> SessionManager::apply
  // (the wire-driven path the soak tests exercise).  Admission latency is
  // sampled per Symbols event; feed latency comes from the manager's own
  // enqueue->process sampling.  Verdicts must match the wire bit for bit.
  std::uint64_t parity_mismatches = 0;
  std::uint64_t missing_verdicts = 0;
  std::vector<std::uint64_t> admit_ns;
  Percentiles feed_lat;
  {
    ShardConfig shard;
    shard.count = 2;
    IngressConfig ingress;
    ingress.ring_capacity = 4096;
    ingress.latency_sample_every = 16;
    // The replay enqueues at memory speed, far faster than the network
    // paced the daemon; block instead of shedding so no symbol is lost
    // and fed counts stay comparable.
    ingress.shed_on_full = false;
    ingress.session_slots = 1 << 15;
    SessionManager manager(shard, ingress);
    const AcceptorFactory factory = profile_factory();
    std::unordered_map<SessionId, VerdictRecord> replayed;

    for (std::size_t c = 0; c < conns.size(); ++c) {
      Decoder decoder;
      decoder.push(conns[c].out);
      WireEvent ev;
      while (decoder.next(ev)) {
        if (ev.kind == WireEvent::Kind::Hello) continue;
        // Remap conn-local wire ids to a process-wide id space, exactly
        // like the Server facade does.
        ev.session = (static_cast<SessionId>(c) << 20) | ev.session;
        if (ev.kind == WireEvent::Kind::Symbols) {
          const std::uint64_t t0 = now_ns();
          manager.apply(ev, factory);
          admit_ns.push_back(now_ns() - t0);
        } else {
          manager.apply(ev, factory);
        }
      }
    }
    manager.drain();
    feed_lat = percentiles(manager.take_feed_latency_samples());
    for (const auto& report : manager.collect()) {
      VerdictRecord rec;
      rec.arrived = true;
      rec.accepted = report.verdict == rtw::core::Verdict::Accepting;
      rec.exact = report.result.exact;
      rec.fed = report.fed;
      rec.stale = report.stale_dropped;
      replayed.emplace(report.id, rec);
    }

    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].state == ConnState::Failed) continue;
      for (std::size_t s = 0; s < conns[c].plans.size(); ++s) {
        const VerdictRecord& wire = conns[c].verdicts[s];
        if (!wire.arrived) {
          ++missing_verdicts;
          continue;
        }
        const SessionId rid = (static_cast<SessionId>(c) << 20) |
                              conns[c].plans[s].wire_id;
        const auto it = replayed.find(rid);
        if (it == replayed.end() || !it->second.arrived ||
            it->second.accepted != wire.accepted ||
            it->second.exact != wire.exact || it->second.fed != wire.fed ||
            it->second.stale != wire.stale)
          ++parity_mismatches;
      }
    }
  }

  // ---- report ----------------------------------------------------------
  const std::uint64_t total_symbols = totals.verdicts * opt.symbols;
  const double throughput =
      wall_s > 0 ? static_cast<double>(total_symbols) / wall_s : 0.0;
  const auto connect_p = percentiles(totals.connect_ns);
  const auto hello_p = percentiles(totals.hello_rtt_ns);
  const auto rtt_p = percentiles(totals.verdict_rtt_ns);
  const auto admit_p = percentiles(std::move(admit_ns));

  std::printf(
      "bench_net: %zu conns (%zu done, %zu failed, peak %zu held), "
      "%llu verdicts in %.2fs\n",
      conns.size(), totals.done, totals.failed, totals.peak,
      static_cast<unsigned long long>(totals.verdicts), wall_s);
  std::printf("  throughput      %12.0f symbols/s\n", throughput);
  std::printf("  connect         p50 %8.1fus   p99 %8.1fus\n",
              static_cast<double>(connect_p.p50) / 1e3,
              static_cast<double>(connect_p.p99) / 1e3);
  std::printf("  hello rtt       p50 %8.1fus   p99 %8.1fus\n",
              static_cast<double>(hello_p.p50) / 1e3,
              static_cast<double>(hello_p.p99) / 1e3);
  std::printf("  verdict rtt     p50 %8.1fus   p99 %8.1fus\n",
              static_cast<double>(rtt_p.p50) / 1e3,
              static_cast<double>(rtt_p.p99) / 1e3);
  std::printf("  admit (replay)  p50 %8.1fus   p99 %8.1fus\n",
              static_cast<double>(admit_p.p50) / 1e3,
              static_cast<double>(admit_p.p99) / 1e3);
  std::printf("  feed (replay)   p50 %8.1fus   p99 %8.1fus\n",
              static_cast<double>(feed_lat.p50) / 1e3,
              static_cast<double>(feed_lat.p99) / 1e3);
  std::printf(
      "  parity          %llu mismatches, %llu wire-expectation "
      "mismatches, %llu missing\n",
      static_cast<unsigned long long>(parity_mismatches),
      static_cast<unsigned long long>(totals.wire_mismatches),
      static_cast<unsigned long long>(missing_verdicts));
  if (deadline_hit)
    std::printf("  DEADLINE: run cut off after %llus\n",
                static_cast<unsigned long long>(opt.deadline_s));

  const std::string row =
      rtw::sim::bench_record("net")
          .field("connections", static_cast<std::uint64_t>(conns.size()))
          .field("sessions_per_conn",
                 static_cast<std::uint64_t>(opt.sessions))
          .field("symbols_per_session",
                 static_cast<std::uint64_t>(opt.symbols))
          .field("connected", static_cast<std::uint64_t>(totals.connected))
          .field("failed", static_cast<std::uint64_t>(totals.failed))
          .field("peak_held", static_cast<std::uint64_t>(totals.peak))
          .field("verdicts", totals.verdicts)
          .field("missing_verdicts", missing_verdicts)
          .field("parity_mismatches", parity_mismatches)
          .field("expectation_mismatches", totals.wire_mismatches)
          .field("total_symbols", total_symbols)
          .field("wall_s", wall_s)
          .field("throughput_sym_s", throughput)
          .field("p50_connect_ns", connect_p.p50)
          .field("p99_connect_ns", connect_p.p99)
          .field("p50_hello_rtt_ns", hello_p.p50)
          .field("p99_hello_rtt_ns", hello_p.p99)
          .field("p50_rtt_ns", rtt_p.p50)
          .field("p99_rtt_ns", rtt_p.p99)
          .field("p50_admit_ns", admit_p.p50)
          .field("p99_admit_ns", admit_p.p99)
          .field("p50_feed_ns", feed_lat.p50)
          .field("p99_feed_ns", feed_lat.p99)
          .field("deadline_hit", deadline_hit)
          .str();
  std::cout << row << std::endl;
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::app);
    out << row << "\n";
  }

  const bool ok = !deadline_hit && totals.failed == 0 &&
                  missing_verdicts == 0 && parity_mismatches == 0 &&
                  totals.wire_mismatches == 0;
  return ok ? 0 : 1;
}
