// THM3.1 -- Theorem 3.1 / Corollary 3.2, demonstrated executably.
//
// L = {a^u b^x c^v d^x} is not regular, so L_omega = {l1$l2$...} is not
// omega-regular: no Buchi automaton accepts it.  The harness (a) sweeps a
// family of counting-ladder Buchi automata (the best finite-state attempts
// at matching b-runs against d-runs) and exhibits a concrete
// counterexample word for every one of them, and (b) runs the proof's A'
// extraction on a candidate and shows the extracted finite automaton
// accepts a corrupted block -- the contradiction at the heart of the
// proof.

#include <iostream>
#include <string>
#include <vector>

#include "rtw/automata/witness.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::automata;
using rtw::core::Symbol;

namespace {

/// The counting ladder over {a,b,c,d,$} with `states` states: counts b's
/// up and d's down modulo `states`, accepting when the count returns to 0.
BuchiAutomaton ladder(unsigned states) {
  FiniteAutomaton fa(states, 0);
  for (unsigned s = 0; s < states; ++s) {
    fa.add_transition(s, s, Symbol::chr('a'));
    fa.add_transition(s, s, Symbol::chr('c'));
    fa.add_transition(s, (s + 1) % states, Symbol::chr('b'));
    fa.add_transition(s, (s + states - 1) % states, Symbol::chr('d'));
    fa.add_transition(s, s, Symbol::chr('$'));
  }
  fa.add_final(0);
  return BuchiAutomaton(std::move(fa));
}

}  // namespace

int main() {
  std::cout << "=========================================================\n";
  std::cout << " THM3.1: L_omega = {l1$l2$... | l_i = a^u b^x c^v d^x}\n";
  std::cout << "         is not omega-regular (Theorem 3.1 / Cor. 3.2)\n";
  std::cout << "=========================================================\n\n";

  std::cout << "membership spot checks:\n";
  for (const auto& [u, x, v] : std::vector<std::tuple<unsigned, unsigned,
                                                      unsigned>>{
           {1, 1, 1}, {2, 5, 3}, {1, 8, 1}}) {
    const auto w = l_omega_member(u, x, v);
    std::cout << "  (" << block_word(u, x, v) << "$)^w in L_omega: "
              << (in_l_omega(w) ? "yes" : "NO?!") << "\n";
  }
  std::cout << "  (abbcd$)^w in L_omega: "
            << (in_l_omega(omega_word("", "abbcd$")) ? "yes?!" : "no")
            << "  (2 b's vs 1 d)\n\n";

  std::cout << "refuting every finite-state candidate:\n";
  rtw::sim::Table table({"candidate", "states", "counterexample",
                         "automaton", "language"});
  bool all_refuted = true;
  std::vector<std::string> json;
  for (unsigned states = 1; states <= 10; ++states) {
    const auto candidate = ladder(states);
    const auto ce = refute_buchi_candidate(candidate, states + 6);
    table.row().cell("ladder-" + std::to_string(states)).cell(std::to_string(states));
    if (ce) {
      table.cell("(" + rtw::core::to_string(ce->word.cycle) + ")^w")
          .cell(ce->automaton_accepts ? "accepts" : "rejects")
          .cell(ce->in_language ? "contains" : "excludes");
    } else {
      table.cell("NONE FOUND").cell("-").cell("-");
      all_refuted = false;
    }
    json.push_back(rtw::sim::bench_record("thm31_nonregular")
                       .field("table", "ladder_refutation")
                       .field("states", states)
                       .field("refuted", ce.has_value())
                       .str());
  }
  table.print(std::cout, 2);
  std::cout << "\n";
  for (const auto& line : json) std::cout << line << "\n";

  std::cout << "\nthe proof's A' construction on ladder-4:\n";
  const auto candidate = ladder(4);
  const auto sample = l_omega_member(1, 2, 1);
  const auto prime = theorem31_extract(candidate, sample, 3);
  const std::string good = block_word(1, 2, 1);
  // Corrupted block whose d-run differs from the b-run by a multiple of
  // the candidate's modulus (2 b's vs 6 d's): finite counting cannot tell
  // them apart, so A' wrongly accepts a word outside L.
  const std::string bad = "abbcdddddd";
  std::cout << "  A' accepts genuine block '" << good << "': "
            << (prime.accepts(rtw::core::symbols_of(good)) ? "yes" : "no")
            << "\n";
  std::cout << "  A' accepts corrupted block '" << bad << "': "
            << (prime.accepts(rtw::core::symbols_of(bad)) ? "yes" : "no")
            << "  <- the finite-state contradiction (block not in L)\n"
            << "  block in L? "
            << (in_block_language(bad) ? "yes" : "no") << "\n\n";

  std::cout << "paper-vs-measured: every candidate refuted = "
            << (all_refuted ? "YES (matches Theorem 3.1)" : "NO -- failure")
            << "\n";
  return all_refuted ? 0 : 1;
}
