// EXP-DL -- computing with deadlines (section 4.1).
//
// Table 1: acceptance of L(Pi) as a function of deadline tightness
//   (deadline / work cost) for firm and soft (hyperbolic / linear)
//   usefulness profiles.  Expected shape: firm acceptance is a step
//   function that collapses exactly at tightness 1.0; soft profiles
//   degrade gradually, ordered by how fast their decay crosses the
//   usefulness floor.  The whole grid runs as one
//   rtw::deadline::accepts_instances batch through the engine.
//
// Table 2: scheduler deadline-miss rates vs utilization for EDF / LLF /
//   RM / FIFO on random periodic task sets.  Expected shape (classic
//   scheduling theory): EDF and LLF meet everything up to U = 1; RM
//   starts missing below 1 on unharmonic sets; FIFO is worst throughout.
//   The per-seed replications fan out across rtw::engine::BatchRunner
//   (seeded per index, so the numbers match the old serial loop exactly).
//
// After each table the same data is emitted as JSON Lines (one object per
// scenario, tagged with "bench" and "table") for machine scraping.

#include <array>
#include <iostream>
#include <vector>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/scheduling.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::deadline;
using rtw::core::Symbol;
using rtw::core::Tick;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " EXP-DL Table 1: L(Pi) acceptance vs deadline tightness\n";
  std::cout << " (work cost 40 ticks; usefulness max 100, floor 10)\n";
  std::cout << "==========================================================\n\n";

  const Tick cost = 40;
  const std::vector<double> ratios = {0.25, 0.5,  0.75, 0.95, 1.0,
                                      1.05, 1.25, 1.5,  2.0};
  const std::array<const char*, 4> profiles = {"firm", "soft-hyperbolic",
                                               "soft-linear(40)",
                                               "no-deadline"};
  // Row-major (ratio, profile) grid of instances, one engine batch run.
  std::vector<DeadlineInstance> grid;
  for (double ratio : ratios) {
    const Tick t_d = static_cast<Tick>(ratio * static_cast<double>(cost));
    const std::array<Usefulness, 4> us = {
        Usefulness::firm(t_d, 100), Usefulness::hyperbolic(t_d, 100),
        Usefulness::linear(t_d, 100, 40), Usefulness::none(100)};
    for (const auto& u : us) {
      DeadlineInstance inst;
      inst.input = {Symbol::nat(1)};
      inst.proposed_output = inst.input;
      inst.usefulness = u;
      inst.min_acceptable = 10;
      grid.push_back(std::move(inst));
    }
  }
  FixedCostProblem pi(cost);
  const auto verdicts = accepts_instances(pi, grid);

  rtw::sim::Table t1({"t_d/cost", "firm", "soft-hyperbolic", "soft-linear(40)",
                      "no-deadline"});
  std::size_t flat = 0;
  for (double ratio : ratios) {
    t1.row().cell(ratio, 2);
    for (std::size_t p = 0; p < profiles.size(); ++p)
      t1.cell(verdicts[flat++] ? "ACCEPT" : "reject");
  }
  t1.print(std::cout, 1);
  std::cout << "\nexpected shape: firm flips at 1.0; hyperbolic keeps "
               "accepting until u(T) < 10\n(i.e. ~10 ticks past t_d); "
               "linear until 36 ticks past; no-deadline always accepts.\n\n";
  flat = 0;
  for (double ratio : ratios)
    for (const char* profile : profiles)
      std::cout << rtw::sim::bench_record("deadline_sweep")
                       .field("table", "t1_tightness")
                       .field("ratio", ratio)
                       .field("profile", profile)
                       .field("cost", cost)
                       .field("accepted", static_cast<bool>(verdicts[flat++]))
                       .str()
                << "\n";
  std::cout << "\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-DL Table 2: deadline miss rate vs utilization\n";
  std::cout << " (5 periodic tasks, UUniFast, horizon 2000, 8 seeds)\n";
  std::cout << "==========================================================\n\n";

  const Policy policies[4] = {Policy::Edf, Policy::Llf, Policy::RateMonotonic,
                              Policy::Fifo};
  rtw::engine::BatchRunner runner;  // hardware concurrency
  rtw::sim::Table t2({"U", "EDF", "LLF", "RM", "FIFO"});
  std::vector<std::string> t2_json;
  for (double u : {0.4, 0.6, 0.8, 0.9, 0.95, 1.05, 1.2}) {
    // Eight replications, one per seed, fanned across the pool.  Each job
    // seeds its own generator from the replication index (same constants
    // as the historical serial loop), so the result is thread-invariant.
    const auto rates = runner.map(
        8, [&](std::size_t index, rtw::sim::Xoshiro256ss&) {
          rtw::sim::Xoshiro256ss rng((index + 1) * 1000 + 7);
          const auto tasks = random_task_set(5, u, rng);
          std::array<double, 4> miss{};
          for (int p = 0; p < 4; ++p)
            miss[p] = simulate_schedule(tasks, policies[p], 2000).miss_rate();
          return miss;
        });
    double miss[4] = {0, 0, 0, 0};
    for (const auto& r : rates)
      for (int p = 0; p < 4; ++p) miss[p] += r[p];
    t2.row().cell(u, 2);
    for (int p = 0; p < 4; ++p) t2.cell(miss[p] / rates.size(), 4);
    t2_json.push_back(rtw::sim::bench_record("deadline_sweep")
                          .field("table", "t2_miss_rate")
                          .field("utilization", u)
                          .field("seeds", rates.size())
                          .field("edf", miss[0] / rates.size())
                          .field("llf", miss[1] / rates.size())
                          .field("rm", miss[2] / rates.size())
                          .field("fifo", miss[3] / rates.size())
                          .str());
  }
  t2.print(std::cout, 1);
  std::cout << "\nexpected shape: EDF ~ LLF ~ 0 up to U = 1 (both optimal on "
               "the uniprocessor),\nRM misses on unharmonic sets below 1, "
               "FIFO misses earliest and most.\n\n";
  for (const auto& line : t2_json) std::cout << line << "\n";
  return 0;
}
