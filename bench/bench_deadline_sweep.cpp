// EXP-DL -- computing with deadlines (section 4.1).
//
// Table 1: acceptance of L(Pi) as a function of deadline tightness
//   (deadline / work cost) for firm and soft (hyperbolic / linear)
//   usefulness profiles.  Expected shape: firm acceptance is a step
//   function that collapses exactly at tightness 1.0; soft profiles
//   degrade gradually, ordered by how fast their decay crosses the
//   usefulness floor.
//
// Table 2: scheduler deadline-miss rates vs utilization for EDF / LLF /
//   RM / FIFO on random periodic task sets.  Expected shape (classic
//   scheduling theory): EDF and LLF meet everything up to U = 1; RM
//   starts missing below 1 on unharmonic sets; FIFO is worst throughout.

#include <iostream>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/scheduling.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::deadline;
using rtw::core::Symbol;
using rtw::core::Tick;

namespace {

bool accepts_with(const Usefulness& u, std::uint64_t floor, Tick cost) {
  FixedCostProblem pi(cost);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(1)};
  inst.proposed_output = inst.input;
  inst.usefulness = u;
  inst.min_acceptable = floor;
  return accepts_instance(pi, inst);
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " EXP-DL Table 1: L(Pi) acceptance vs deadline tightness\n";
  std::cout << " (work cost 40 ticks; usefulness max 100, floor 10)\n";
  std::cout << "==========================================================\n\n";

  const Tick cost = 40;
  rtw::sim::Table t1({"t_d/cost", "firm", "soft-hyperbolic", "soft-linear(40)",
                      "no-deadline"});
  for (double ratio : {0.25, 0.5, 0.75, 0.95, 1.0, 1.05, 1.25, 1.5, 2.0}) {
    const Tick t_d = static_cast<Tick>(ratio * static_cast<double>(cost));
    t1.row().cell(ratio, 2);
    t1.cell(accepts_with(Usefulness::firm(t_d, 100), 10, cost) ? "ACCEPT"
                                                               : "reject");
    t1.cell(accepts_with(Usefulness::hyperbolic(t_d, 100), 10, cost)
                ? "ACCEPT"
                : "reject");
    t1.cell(accepts_with(Usefulness::linear(t_d, 100, 40), 10, cost)
                ? "ACCEPT"
                : "reject");
    t1.cell(accepts_with(Usefulness::none(100), 10, cost) ? "ACCEPT"
                                                          : "reject");
  }
  t1.print(std::cout, 1);
  std::cout << "\nexpected shape: firm flips at 1.0; hyperbolic keeps "
               "accepting until u(T) < 10\n(i.e. ~10 ticks past t_d); "
               "linear until 36 ticks past; no-deadline always accepts.\n\n";

  std::cout << "==========================================================\n";
  std::cout << " EXP-DL Table 2: deadline miss rate vs utilization\n";
  std::cout << " (5 periodic tasks, UUniFast, horizon 2000, 8 seeds)\n";
  std::cout << "==========================================================\n\n";

  rtw::sim::Table t2({"U", "EDF", "LLF", "RM", "FIFO"});
  for (double u : {0.4, 0.6, 0.8, 0.9, 0.95, 1.05, 1.2}) {
    double miss[4] = {0, 0, 0, 0};
    const Policy policies[4] = {Policy::Edf, Policy::Llf,
                                Policy::RateMonotonic, Policy::Fifo};
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      rtw::sim::Xoshiro256ss rng(seed * 1000 + 7);
      const auto tasks = random_task_set(5, u, rng);
      ++runs;
      for (int p = 0; p < 4; ++p)
        miss[p] += simulate_schedule(tasks, policies[p], 2000).miss_rate();
    }
    t2.row().cell(u, 2);
    for (int p = 0; p < 4; ++p) t2.cell(miss[p] / runs, 4);
  }
  t2.print(std::cout, 1);
  std::cout << "\nexpected shape: EDF ~ LLF ~ 0 up to U = 1 (both optimal on "
               "the uniprocessor),\nRM misses on unharmonic sets below 1, "
               "FIFO misses earliest and most.\n";
  return 0;
}
