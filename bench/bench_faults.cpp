// EXP-FAULT -- the lossy routing language R'_{n,u} under injected faults.
//
// Sweep: link drop rate x protocol {flooding, DSDV, DSR, AODV} on a fixed
// random-waypoint network, all runs driven by one deterministic FaultPlan
// seed.  For every cell the harness reports the Broch et al. [12] measures
// (delivery ratio, transmissions per message) plus the fault tallies the
// injector recorded, and cross-checks that every extracted route -- lost
// or delivered -- is a member of R'_{n,u}.  One JSONL line per cell for
// the trajectory file.
//
// Expected shape: delivery falls monotonically with the drop rate for
// flooding (the erasure-coupling theorem); the on-demand protocols decay
// faster since route discovery itself gets lossy; words never leave R'.

#include <iostream>
#include <string>
#include <vector>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/sim/fault.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/table.hpp"

using namespace rtw::adhoc;

namespace {

struct ProtocolSpec {
  const char* name;
  ProtocolFactory factory;
};

struct CellResult {
  RoutingMetrics metrics;
  rtw::sim::FaultCounters faults;
  std::uint64_t r_prime_violations = 0;
};

CellResult run_cell(const ProtocolFactory& factory, double drop_rate,
                    std::uint64_t seed) {
  NetworkConfig config;
  config.nodes = 16;
  config.region = {120, 120};
  config.radio_range = 40;
  config.pause_time = 60;
  config.seed = seed;
  const Network net(config);

  rtw::sim::FaultPlan plan;
  plan.seed = seed * 1315423911ULL + 7;
  plan.link.drop = drop_rate;

  Simulator sim(net, factory, {}, plan);
  rtw::sim::Xoshiro256ss rng(seed * 31 + 5);
  std::vector<DataSpec> messages;
  for (std::uint64_t m = 0; m < 24; ++m) {
    DataSpec spec;
    spec.data_id = m + 1;
    spec.src = static_cast<NodeId>(rng.uniform(std::uint64_t{16}));
    do {
      spec.dst = static_cast<NodeId>(rng.uniform(std::uint64_t{16}));
    } while (spec.dst == spec.src);
    spec.at = 30 + m * 10;
    sim.schedule(spec);
    messages.push_back(spec);
  }
  const auto result = sim.run(400);

  CellResult cell;
  cell.metrics = compute_metrics(result, net, messages);
  cell.faults = result.faults;
  // Differential check along the way: the faulty trace must stay inside
  // the lossy language no matter what was injected.
  for (const auto& spec : messages) {
    const auto trace = extract_route(result, net, spec.data_id);
    if (validate_route_lossy(trace, net)) ++cell.r_prime_violations;
  }
  return cell;
}

}  // namespace

int main() {
  const std::vector<ProtocolSpec> protocols = {
      {"flooding", flooding_factory()},
      {"dsdv", dsdv_factory(15)},
      {"dsr", dsr_factory()},
      {"aodv", aodv_factory()},
  };
  const std::vector<double> drop_rates = {0.0, 0.05, 0.15, 0.3, 0.5};
  const std::vector<std::uint64_t> seeds = {3, 19, 71};

  std::cout << "==========================================================\n";
  std::cout << " EXP-FAULT: 16 nodes, 120x120, range 40, 24 msgs, 400 ticks\n";
  std::cout << " drop rate x protocol under one deterministic FaultPlan\n";
  std::cout << "==========================================================\n\n";

  struct Cell {
    std::size_t protocol;
    double drop;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (std::size_t p = 0; p < protocols.size(); ++p)
    for (double drop : drop_rates)
      for (auto seed : seeds) cells.push_back({p, drop, seed});
  rtw::engine::BatchRunner runner;
  const auto flat =
      runner.map(cells.size(), [&](std::size_t i, rtw::sim::Xoshiro256ss&) {
        const auto& c = cells[i];
        return run_cell(protocols[c.protocol].factory, c.drop, c.seed);
      });

  auto cell_results = [&](std::size_t protocol, double drop) {
    std::vector<CellResult> out;
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].protocol == protocol && cells[i].drop == drop)
        out.push_back(flat[i]);
    return out;
  };

  std::cout << "--- delivery ratio vs link drop rate ---------------------\n";
  std::vector<std::string> headers = {"protocol"};
  for (double drop : drop_rates)
    headers.push_back("drop " + std::to_string(drop).substr(0, 4));
  rtw::sim::Table td(headers);
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    td.row().cell(protocols[p].name);
    for (double drop : drop_rates) {
      double ratio = 0;
      const auto rs = cell_results(p, drop);
      for (const auto& r : rs) ratio += r.metrics.delivery_ratio();
      td.cell(ratio / static_cast<double>(rs.size()), 3);
    }
  }
  td.print(std::cout, 1);

  std::cout << "\n";
  std::uint64_t violations = 0;
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    for (double drop : drop_rates) {
      const auto rs = cell_results(p, drop);
      double ratio = 0, overhead = 0;
      rtw::sim::FaultCounters faults;
      for (const auto& r : rs) {
        ratio += r.metrics.delivery_ratio();
        overhead += r.metrics.overhead_per_message();
        faults += r.faults;
        violations += r.r_prime_violations;
      }
      std::cout << rtw::sim::bench_record("fault_sweep")
                       .field("protocol", protocols[p].name)
                       .field("drop_rate", drop)
                       .field("seeds", rs.size())
                       .field("delivery_ratio",
                              ratio / static_cast<double>(rs.size()))
                       .field("tx_per_msg",
                              overhead / static_cast<double>(rs.size()))
                       .field("faults.dropped", faults.dropped)
                       .field("faults.injected", faults.injected())
                       .str()
                << "\n";
    }
  }

  std::cout << "\nR' membership violations across the whole sweep: "
            << violations << " (expected: 0)\n";
  std::cout << "expected shape: delivery falls monotonically with the drop "
               "rate; on-demand\nprotocols decay faster than flooding "
               "(route discovery is lossy too); every\nextracted word stays "
               "inside the lossy routing language R'_{n,u}.\n";
  return violations == 0 ? 0 : 1;
}
