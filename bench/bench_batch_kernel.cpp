// EXP-BATCH-KERNEL: per-variant throughput of the deadline lane kernel.
//
// Strips the serving layer away and measures the kernel itself: L promoted
// deadline lanes (compressed Working phase, completion past the horizon so
// no lane ever settles), stepped through R rounds of W-symbol runs.  Four
// legs over identical streams:
//   engine   Session::feed_run over deadline::make_online_acceptor -- the
//            per-symbol virtual drive loop the kernel replaces;
//   scalar   BatchStepper(Scalar) over promoted lanes -- the portable
//            reference kernel, also the RTW_FORCE_SCALAR path;
//   sse2     BatchStepper(SSE2), 2 lanes per instruction;
//   avx2     BatchStepper(AVX2), 4 lanes per instruction (skipped with a
//            note when the build or CPU lacks it).
// Every leg feeds the same symbols, so symbols/s divides out and the
// `speedup_vs_engine` field is the honest per-core kernel win.  Rows append
// to BENCH_kernel.json beside the sim EventQueue rows under the distinct
// bench name "batch_kernel".
//
// Flags:
//   --lanes=1024    concurrent sessions (lanes)
//   --run=64        symbols per run (ring-slot batch the shard would stage)
//   --rounds=200    measured rounds (each: one run per lane)
//   --kernel_json=PATH | --json=PATH   append JSONL records

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/lane.hpp"
#include "rtw/core/online.hpp"
#include "rtw/deadline/lane.hpp"
#include "rtw/deadline/online.hpp"
#include "rtw/deadline/problem.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/svc/session.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Session;

struct Config {
  std::size_t lanes = 1024;
  std::size_t run = 64;
  std::size_t rounds = 200;
};

/// The shared symbol stream: every lane sees the same timed word, so one
/// run buffer serves all lanes of a round.  Mostly waits, with a
/// (deadline, usefulness) pair every 32 ticks to exercise the P_m fold.
std::vector<std::vector<TimedSymbol>> build_rounds(const Config& cfg) {
  std::vector<std::vector<TimedSymbol>> rounds(cfg.rounds);
  Tick t = 1;
  for (auto& round : rounds) {
    round.reserve(cfg.run);
    while (round.size() < cfg.run) {
      if (t % 32 == 0 && round.size() + 2 <= cfg.run) {
        round.push_back({marks::deadline(), t});
        round.push_back({Symbol::nat(t % 7), t});
      } else {
        round.push_back({Symbol::chr('w'), t});
      }
      ++t;
    }
  }
  return rounds;
}

/// Opens `lanes` sessions over `factory`, feeds the promotion header (time
/// 0) plus one symbol at time 1 so fast-forwarding lane acceptors reach the
/// compressed phase before measurement starts.
template <typename Factory>
std::vector<std::unique_ptr<Session>> open_lanes(const Config& cfg,
                                                 Factory&& factory) {
  RunOptions options;
  // Far horizon and a completion beyond it: lanes never settle mid-bench.
  const std::uint64_t span = cfg.run * cfg.rounds + 64;
  options.horizon = span + 16;
  const auto problem =
      std::make_shared<rtw::deadline::FixedCostProblem>(span + 64);
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(cfg.lanes);
  for (std::size_t i = 0; i < cfg.lanes; ++i) {
    auto s = std::make_unique<Session>(i, factory(problem, options));
    s->feed(Symbol::nat(1), 0);
    s->feed(marks::dollar(), 0);
    s->feed(Symbol::nat(1), 0);
    s->feed(marks::dollar(), 0);
    s->feed(Symbol::chr('w'), 1);  // past time 0: triggers lane promotion
    sessions.push_back(std::move(s));
  }
  return sessions;
}

struct Leg {
  std::string name;
  double wall_s = 0;
  double symbols_per_sec = 0;
  std::uint64_t symbols = 0;
  bool ran = false;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Leg run_engine(const Config& cfg,
               const std::vector<std::vector<TimedSymbol>>& rounds) {
  auto sessions = open_lanes(cfg, [](const auto& problem, const auto& opt) {
    return rtw::deadline::make_online_acceptor(problem, opt);
  });
  Leg leg{"engine"};
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds)
    for (auto& s : sessions) {
      s->feed_run(round.data(), round.size());
      leg.symbols += round.size();
    }
  leg.wall_s = seconds_since(t0);
  leg.symbols_per_sec =
      leg.wall_s > 0 ? static_cast<double>(leg.symbols) / leg.wall_s : 0;
  leg.ran = true;
  return leg;
}

Leg run_kernel(const Config& cfg,
               const std::vector<std::vector<TimedSymbol>>& rounds,
               KernelVariant variant) {
  Leg leg{std::string(to_string(variant))};
  auto sessions = open_lanes(cfg, [](const auto& problem, const auto& opt) {
    return rtw::deadline::make_lane_acceptor(problem, opt);
  });
  auto stepper = sessions.front()->acceptor().make_lane_stepper(variant);
  if (!stepper || stepper->variant() != variant) {
    std::cout << " (" << to_string(variant)
              << " unavailable on this build/CPU -- skipped)\n";
    return leg;
  }
  std::vector<LaneRun> runs(cfg.lanes);
  for (std::size_t i = 0; i < cfg.lanes; ++i) {
    void* state = sessions[i]->acceptor().lane_state();
    if (!state) {
      std::cerr << "lane " << i << " failed to promote\n";
      return leg;
    }
    runs[i].filter = &sessions[i]->lane_filter();
    runs[i].state = state;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds) {
    for (auto& r : runs) {
      r.data = round.data();
      r.size = round.size();
    }
    stepper->step(runs.data(), runs.size());
    leg.symbols += round.size() * cfg.lanes;
  }
  leg.wall_s = seconds_since(t0);
  leg.symbols_per_sec =
      leg.wall_s > 0 ? static_cast<double>(leg.symbols) / leg.wall_s : 0;
  leg.ran = true;
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--lanes=", 0) == 0)
      cfg.lanes = std::stoull(arg.substr(8));
    else if (arg.rfind("--run=", 0) == 0)
      cfg.run = std::stoull(arg.substr(6));
    else if (arg.rfind("--rounds=", 0) == 0)
      cfg.rounds = std::stoull(arg.substr(9));
    else if (arg.rfind("--kernel_json=", 0) == 0)
      json_path = arg.substr(14);
    else if (arg.rfind("--json=", 0) == 0)
      json_path = arg.substr(7);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (cfg.lanes == 0 || cfg.run == 0 || cfg.rounds == 0) {
    std::cerr << "lanes/run/rounds must be nonzero\n";
    return 2;
  }

  const auto rounds = build_rounds(cfg);

  std::cout << "==========================================================\n";
  std::cout << " EXP-BATCH-KERNEL: " << cfg.lanes << " lanes x " << cfg.rounds
            << " rounds x " << cfg.run << " symbols/run\n";
  std::cout << " dispatch would pick: " << to_string(dispatch_variant())
            << "\n";
  std::cout << "==========================================================\n\n";

  std::vector<Leg> legs;
  legs.push_back(run_engine(cfg, rounds));
  for (const auto variant :
       {KernelVariant::Scalar, KernelVariant::SSE2, KernelVariant::AVX2})
    legs.push_back(run_kernel(cfg, rounds, variant));

  const double engine_rate = legs.front().symbols_per_sec;
  std::cout << " leg        Msym/s    speedup vs engine\n";
  std::cout << " -------------------------------------\n";
  std::vector<std::string> json;
  for (const auto& leg : legs) {
    if (!leg.ran) continue;
    const double speedup =
        engine_rate > 0 ? leg.symbols_per_sec / engine_rate : 0;
    std::printf(" %-8s  %8.2f    %6.2fx\n", leg.name.c_str(),
                leg.symbols_per_sec / 1e6, speedup);
    json.push_back(rtw::sim::bench_record("batch_kernel")
                       .field("leg", leg.name)
                       .field("lanes", cfg.lanes)
                       .field("run_len", cfg.run)
                       .field("rounds", cfg.rounds)
                       .field("symbols", leg.symbols)
                       .field("wall_s", leg.wall_s)
                       .field("symbols_per_sec", leg.symbols_per_sec)
                       .field("speedup_vs_engine", speedup)
                       .str());
  }

  std::cout << "\n--- jsonl ----------------------------------------------\n";
  for (const auto& line : json) std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    for (const auto& line : json) out << line << "\n";
  }
  return 0;
}
