// FIG1 / FIG2 -- regenerates the paper's only two figures exactly.
//
// Figure 1: the National Gallery of Canada database instance (Exhibitions,
// Schedules).  Figure 2: the result of "which artist is exhibited in which
// city in November".  The harness prints both and verifies the query
// result row-for-row against the figure as printed in the paper.

#include <cstdlib>
#include <iostream>

#include "rtw/rtdb/ngc.hpp"
#include "rtw/sim/jsonl.hpp"

int main() {
  using namespace rtw::rtdb;

  std::cout << "==================================================\n";
  std::cout << " FIG1: the relational database instance (Figure 1)\n";
  std::cout << "==================================================\n\n";
  const auto db = ngc::figure1_instance();
  std::cout << db.to_string();

  std::cout << "==================================================\n";
  std::cout << " FIG2: query result (Figure 2)\n";
  std::cout << " query: which artist is exhibited in which city in November\n";
  std::cout << "==================================================\n\n";
  const auto result = ngc::november_artists_query()(db);
  std::cout << result.to_string() << "\n";

  const auto expected = ngc::figure2_expected();
  bool exact = result.sort() == expected.sort() &&
               result.tuples() == expected.tuples();
  std::cout << "paper-vs-measured: "
            << (exact ? "EXACT MATCH (3 rows, same order)"
                      : "MISMATCH -- reproduction failure")
            << "\n\n";
  std::cout << rtw::sim::bench_record("fig1_fig2")
                   .field("table", "figure2")
                   .field("rows", result.tuples().size())
                   .field("expected_rows", expected.tuples().size())
                   .field("exact_match", exact)
                   .str()
            << "\n";
  return exact ? EXIT_SUCCESS : EXIT_FAILURE;
}
