#include "rtw/automata/dot.hpp"

#include <sstream>

namespace rtw::automata {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void emit_header(std::ostringstream& out, const std::string& name) {
  out << "digraph \"" << escape(name) << "\" {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=circle];\n";
  out << "  __start [shape=point];\n";
}

}  // namespace

std::string to_dot(const FiniteAutomaton& fa, const std::string& name) {
  std::ostringstream out;
  emit_header(out, name);
  for (State s : fa.finals())
    out << "  " << s << " [shape=doublecircle];\n";
  out << "  __start -> " << fa.initial() << ";\n";
  for (const auto& t : fa.transitions())
    out << "  " << t.from << " -> " << t.to << " [label=\""
        << escape(t.symbol.to_string()) << "\"];\n";
  // Lambda moves are not exposed individually by the public API; the
  // closure behaviour is visible through `step`.  Render what we can: the
  // closure of each state minus itself.
  for (State s = 0; s < fa.states(); ++s) {
    for (State t : fa.closure({s})) {
      if (t == s) continue;
      out << "  " << s << " -> " << t
          << " [style=dashed, label=\"λ\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const TimedBuchiAutomaton& tba, const std::string& name) {
  std::ostringstream out;
  emit_header(out, name);
  for (State s = 0; s < tba.states(); ++s)
    if (tba.is_final(s)) out << "  " << s << " [shape=doublecircle];\n";
  out << "  __start -> " << tba.initial() << ";\n";
  for (const auto& t : tba.transitions()) {
    out << "  " << t.from << " -> " << t.to << " [label=\""
        << escape(t.symbol.to_string()) << " / "
        << escape(t.guard.to_string());
    if (!t.resets.empty()) {
      out << " / reset{";
      for (std::size_t i = 0; i < t.resets.size(); ++i)
        out << (i ? "," : "") << "x" << t.resets[i];
      out << "}";
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rtw::automata
