#include "rtw/automata/clocks.hpp"

#include <algorithm>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::automata {

struct ClockConstraint::Node {
  enum class Kind { Top, Le, Ge, Not, And } kind = Kind::Top;
  ClockId clock = 0;
  ClockValue constant = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

ClockConstraint::ClockConstraint(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

ClockConstraint ClockConstraint::top() {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Top;
  return ClockConstraint(std::move(n));
}

ClockConstraint ClockConstraint::le(ClockId x, ClockValue c) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Le;
  n->clock = x;
  n->constant = c;
  return ClockConstraint(std::move(n));
}

ClockConstraint ClockConstraint::ge(ClockId x, ClockValue c) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Ge;
  n->clock = x;
  n->constant = c;
  return ClockConstraint(std::move(n));
}

ClockConstraint ClockConstraint::lt(ClockId x, ClockValue c) {
  return !ge(x, c);
}
ClockConstraint ClockConstraint::gt(ClockId x, ClockValue c) {
  return !le(x, c);
}
ClockConstraint ClockConstraint::eq(ClockId x, ClockValue c) {
  return le(x, c) && ge(x, c);
}

ClockConstraint ClockConstraint::operator!() const {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Not;
  n->left = node_;
  return ClockConstraint(std::move(n));
}

ClockConstraint ClockConstraint::operator&&(
    const ClockConstraint& other) const {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::And;
  n->left = node_;
  n->right = other.node_;
  return ClockConstraint(std::move(n));
}

namespace {

bool eval(const ClockConstraint::Node*, const ClockValuation&);

}  // namespace

// Out-of-line recursion helpers need access to Node; define eval as a
// static-in-namespace function over the node type.
namespace {

bool eval(const ClockConstraint::Node* n, const ClockValuation& nu) {
  using Kind = ClockConstraint::Node::Kind;
  switch (n->kind) {
    case Kind::Top:
      return true;
    case Kind::Le:
      if (n->clock >= nu.size())
        throw rtw::core::ModelError("ClockConstraint: clock id out of range");
      return nu[n->clock] <= n->constant;
    case Kind::Ge:
      if (n->clock >= nu.size())
        throw rtw::core::ModelError("ClockConstraint: clock id out of range");
      return nu[n->clock] >= n->constant;
    case Kind::Not:
      return !eval(n->left.get(), nu);
    case Kind::And:
      return eval(n->left.get(), nu) && eval(n->right.get(), nu);
  }
  return false;
}

ClockValue max_const(const ClockConstraint::Node* n) {
  using Kind = ClockConstraint::Node::Kind;
  switch (n->kind) {
    case Kind::Top:
      return 0;
    case Kind::Le:
    case Kind::Ge:
      return n->constant;
    case Kind::Not:
      return max_const(n->left.get());
    case Kind::And:
      return std::max(max_const(n->left.get()), max_const(n->right.get()));
  }
  return 0;
}

ClockId max_clock(const ClockConstraint::Node* n) {
  using Kind = ClockConstraint::Node::Kind;
  switch (n->kind) {
    case Kind::Top:
      return 0;
    case Kind::Le:
    case Kind::Ge:
      return n->clock + 1;
    case Kind::Not:
      return max_clock(n->left.get());
    case Kind::And:
      return std::max(max_clock(n->left.get()), max_clock(n->right.get()));
  }
  return 0;
}

void render(const ClockConstraint::Node* n, std::ostringstream& out) {
  using Kind = ClockConstraint::Node::Kind;
  switch (n->kind) {
    case Kind::Top:
      out << "true";
      return;
    case Kind::Le:
      out << "x" << n->clock << "<=" << n->constant;
      return;
    case Kind::Ge:
      out << n->constant << "<=x" << n->clock;
      return;
    case Kind::Not:
      out << "!(";
      render(n->left.get(), out);
      out << ")";
      return;
    case Kind::And:
      out << "(";
      render(n->left.get(), out);
      out << " & ";
      render(n->right.get(), out);
      out << ")";
      return;
  }
}

}  // namespace

bool ClockConstraint::satisfied(const ClockValuation& nu) const {
  return eval(node_.get(), nu);
}

ClockValue ClockConstraint::max_constant() const {
  return max_const(node_.get());
}

ClockId ClockConstraint::clocks_used() const { return max_clock(node_.get()); }

std::string ClockConstraint::to_string() const {
  std::ostringstream out;
  render(node_.get(), out);
  return out.str();
}

ClockValuation advance(const ClockValuation& nu, ClockValue elapsed,
                       ClockValue cap) {
  ClockValuation out(nu.size());
  for (std::size_t i = 0; i < nu.size(); ++i)
    out[i] = std::min<ClockValue>(nu[i] + elapsed, cap);
  return out;
}

ClockValuation reset(ClockValuation nu, const std::vector<ClockId>& clocks) {
  for (ClockId c : clocks) {
    if (c >= nu.size())
      throw rtw::core::ModelError("reset: clock id out of range");
    nu[c] = 0;
  }
  return nu;
}

}  // namespace rtw::automata
