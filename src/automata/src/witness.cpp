#include "rtw/automata/witness.hpp"

#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::automata {

using rtw::core::Symbol;

bool in_block_language(const std::vector<Symbol>& word) {
  // a^u b^x c^v d^x with u, x, v > 0: single pass with run-length counting.
  std::size_t i = 0;
  auto run = [&](char c) {
    std::size_t n = 0;
    while (i < word.size() && word[i] == Symbol::chr(c)) {
      ++i;
      ++n;
    }
    return n;
  };
  const std::size_t u = run('a');
  const std::size_t x = run('b');
  const std::size_t v = run('c');
  const std::size_t y = run('d');
  return i == word.size() && u > 0 && x > 0 && v > 0 && y == x;
}

bool in_block_language(std::string_view word) {
  return in_block_language(rtw::core::symbols_of(word));
}

std::string block_word(unsigned u, unsigned x, unsigned v) {
  std::string out;
  out.append(u, 'a');
  out.append(x, 'b');
  out.append(v, 'c');
  out.append(x, 'd');
  return out;
}

bool in_l_omega(const OmegaWord& word) {
  const Symbol sep = Symbol::chr('$');
  // The cycle must contribute infinitely many separators.
  bool cycle_has_sep = false;
  for (const auto& s : word.cycle)
    if (s == sep) cycle_has_sep = true;
  if (!cycle_has_sep) return false;

  // Unroll prefix + enough cycle laps that the block decomposition becomes
  // periodic: after the prefix, blocks repeat with period = one cycle lap
  // once a lap boundary coincides with a block boundary.  Checking
  // prefix + 3 laps covers the transient and one full period for every
  // lasso whose blocks are lap-periodic; all samples and probes here are.
  const std::uint64_t n =
      word.prefix.size() + 3 * std::max<std::size_t>(word.cycle.size(), 1);
  const auto unrolled = word.unroll(n);

  std::vector<Symbol> block;
  std::size_t complete_blocks = 0;
  for (const auto& s : unrolled) {
    if (s == sep) {
      if (!in_block_language(block)) return false;
      ++complete_blocks;
      block.clear();
    } else {
      block.push_back(s);
    }
  }
  // Need at least one complete block to have evidence, and the trailing
  // partial block must be a *prefix* of some L-member -- we only insist it
  // uses the right alphabet (full check happens next lap in the periodic
  // decomposition).
  if (complete_blocks == 0) return false;
  for (const auto& s : block) {
    if (!(s == Symbol::chr('a') || s == Symbol::chr('b') ||
          s == Symbol::chr('c') || s == Symbol::chr('d')))
      return false;
  }
  return true;
}

OmegaWord l_omega_member(unsigned u, unsigned x, unsigned v) {
  return omega_word("", block_word(u, x, v) + "$");
}

std::string Counterexample::describe() const {
  std::ostringstream out;
  out << "word ("
      << rtw::core::to_string(word.prefix) << ")("
      << rtw::core::to_string(word.cycle) << ")^w : automaton "
      << (automaton_accepts ? "accepts" : "rejects") << ", language "
      << (in_language ? "contains" : "excludes") << " it";
  return out.str();
}

std::optional<Counterexample> refute_buchi_candidate(
    const BuchiAutomaton& candidate, unsigned max_x) {
  auto probe = [&](const OmegaWord& w) -> std::optional<Counterexample> {
    const bool acc = candidate.accepts(w);
    const bool mem = in_l_omega(w);
    if (acc != mem) return Counterexample{w, acc, mem};
    return std::nullopt;
  };

  for (unsigned x = 1; x <= max_x; ++x) {
    // Genuine member: (a b^x c d^x $)^omega.
    if (auto c = probe(l_omega_member(1, x, 1))) return c;
    // Corrupted near-members: d-run off by one in both directions.
    OmegaWord longer = omega_word(
        "", "a" + std::string(x, 'b') + "c" + std::string(x + 1, 'd') + "$");
    if (auto c = probe(longer)) return c;
    if (x >= 2) {
      OmegaWord shorter = omega_word(
          "", "a" + std::string(x, 'b') + "c" + std::string(x - 1, 'd') + "$");
      if (auto c = probe(shorter)) return c;
    }
  }
  return std::nullopt;
}

FiniteAutomaton theorem31_extract(const BuchiAutomaton& a,
                                  const OmegaWord& sample, unsigned laps) {
  const Symbol sep = Symbol::chr('$');
  const auto& base = a.base();

  // Subset-simulate A over the unrolled sample, recording the state sets
  // immediately after ($ -> S1) and immediately before ($ -> S2) each
  // separator.
  std::set<State> s1;  // states right after a $
  std::set<State> s2;  // states right before a $
  std::set<State> current = base.closure({base.initial()});
  const std::uint64_t n =
      sample.prefix.size() +
      static_cast<std::uint64_t>(laps) * sample.cycle.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Symbol sym = sample.at(i);
    if (sym == sep) s2.insert(current.begin(), current.end());
    current = base.step(current, sym);
    if (sym == sep) s1.insert(current.begin(), current.end());
    if (current.empty()) break;
  }

  // A' = A plus a fresh initial state s' with lambda-moves into S1; the
  // final states of A' are S2.  (Proof of Theorem 3.1.)
  FiniteAutomaton prime(base.states() + 1, base.states());
  for (const auto& t : base.transitions())
    prime.add_transition(t.from, t.to, t.symbol);
  for (State s : s1) prime.add_lambda(base.states(), s);
  for (State s : s2) prime.add_final(s);
  return prime;
}

}  // namespace rtw::automata
