#include "rtw/automata/omega.hpp"

#include <deque>
#include <map>
#include <optional>

#include "rtw/core/error.hpp"

namespace rtw::automata {

using rtw::core::Symbol;

std::vector<Symbol> OmegaWord::unroll(std::uint64_t n) const {
  std::vector<Symbol> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(at(i));
  return out;
}

OmegaWord omega_word(std::string_view prefix, std::string_view cycle) {
  OmegaWord w;
  w.prefix = rtw::core::symbols_of(prefix);
  w.cycle = rtw::core::symbols_of(cycle);
  if (w.cycle.empty())
    throw rtw::core::ModelError("omega_word: empty cycle");
  return w;
}

namespace {

/// Product-graph node identifier: state * cycle_len + cycle_pos.
std::uint64_t node_id(State s, std::size_t pos, std::size_t cycle_len) {
  return static_cast<std::uint64_t>(s) * cycle_len + pos;
}

}  // namespace

bool BuchiAutomaton::accepts(const OmegaWord& word) const {
  if (word.cycle.empty())
    throw rtw::core::ModelError("BuchiAutomaton::accepts: empty cycle");

  // 1. Start set: states reachable after consuming the prefix.
  std::set<State> start = base_.closure({base_.initial()});
  for (const auto& s : word.prefix) {
    start = base_.step(start, s);
    if (start.empty()) return false;
  }

  // 2. Product graph over (state, cycle position).  successors[v] computed
  // lazily via the base automaton's step on single states.
  const std::size_t clen = word.cycle.size();
  const std::uint64_t nodes =
      static_cast<std::uint64_t>(base_.states()) * clen;

  auto successors = [&](std::uint64_t v) {
    const State s = static_cast<State>(v / clen);
    const std::size_t pos = v % clen;
    std::vector<std::uint64_t> out;
    for (State t : base_.step({s}, word.cycle[pos]))
      out.push_back(node_id(t, (pos + 1) % clen, clen));
    return out;
  };

  // 3. Reachability from the start nodes.
  std::vector<char> reachable(nodes, 0);
  std::deque<std::uint64_t> queue;
  for (State s : start) {
    const auto v = node_id(s, 0, clen);
    if (!reachable[v]) {
      reachable[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const auto v = queue.front();
    queue.pop_front();
    for (auto w : successors(v))
      if (!reachable[w]) {
        reachable[w] = 1;
        queue.push_back(w);
      }
  }

  // 4. A final-state node on a product-graph cycle, reachable from start,
  // witnesses inf(r) ∩ F ≠ ∅.
  for (std::uint64_t v = 0; v < nodes; ++v) {
    if (!reachable[v]) continue;
    const State s = static_cast<State>(v / clen);
    if (!base_.is_final(s)) continue;
    // Is v reachable from itself?
    std::vector<char> seen(nodes, 0);
    std::deque<std::uint64_t> q{v};
    bool loops = false;
    while (!q.empty() && !loops) {
      const auto u = q.front();
      q.pop_front();
      for (auto w : successors(u)) {
        if (w == v) {
          loops = true;
          break;
        }
        if (!seen[w]) {
          seen[w] = 1;
          q.push_back(w);
        }
      }
    }
    if (loops) return true;
  }
  return false;
}

MullerAutomaton::MullerAutomaton(FiniteAutomaton base,
                                 std::vector<std::set<State>> family)
    : base_(std::move(base)), family_(std::move(family)) {
  // Determinism check: at most one successor per (state, symbol), no lambdas.
  std::map<std::pair<State, Symbol>, State> seen;
  for (const auto& t : base_.transitions()) {
    auto [it, inserted] = seen.emplace(std::make_pair(t.from, t.symbol), t.to);
    if (!inserted && it->second != t.to)
      throw rtw::core::ModelError(
          "MullerAutomaton: nondeterministic transition relation");
  }
}

std::set<State> MullerAutomaton::inf(const OmegaWord& word) const {
  auto next = [&](State s, Symbol a) -> std::optional<State> {
    for (const auto& t : base_.transitions())
      if (t.from == s && t.symbol == a) return t.to;
    return std::nullopt;
  };

  State current = base_.initial();
  for (const auto& a : word.prefix) {
    const auto n = next(current, a);
    if (!n) return {};  // run dies
    current = *n;
  }

  // Iterate cycle laps until (state at lap start) repeats; the trajectory
  // between two occurrences of the same lap-start state is the loop whose
  // states form inf(r).
  const std::size_t clen = word.cycle.size();
  std::map<State, std::size_t> lap_start_seen;  // state -> lap index
  std::vector<State> lap_starts;
  std::vector<std::vector<State>> lap_states;
  for (std::size_t lap = 0;; ++lap) {
    if (auto it = lap_start_seen.find(current); it != lap_start_seen.end()) {
      std::set<State> result;
      for (std::size_t l = it->second; l < lap; ++l)
        result.insert(lap_states[l].begin(), lap_states[l].end());
      return result;
    }
    lap_start_seen.emplace(current, lap);
    lap_starts.push_back(current);
    std::vector<State> visited;
    for (std::size_t i = 0; i < clen; ++i) {
      const auto n = next(current, word.cycle[i]);
      if (!n) return {};
      current = *n;
      visited.push_back(current);
    }
    lap_states.push_back(std::move(visited));
  }
}

bool MullerAutomaton::accepts(const OmegaWord& word) const {
  const std::set<State> infset = inf(word);
  if (infset.empty()) return false;
  for (const auto& accepted : family_)
    if (accepted == infset) return true;
  return false;
}

}  // namespace rtw::automata
