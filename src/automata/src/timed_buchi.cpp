#include "rtw/automata/timed_buchi.hpp"

#include <deque>
#include <map>

#include "rtw/core/error.hpp"

namespace rtw::automata {

using rtw::core::ModelError;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

namespace {

/// Product-graph node for the lasso acceptance search: a TBA configuration
/// paired with its position in the cycle.
struct PNode {
  TbaConfig config;
  std::size_t pos;
  friend auto operator<=>(const PNode& a, const PNode& b) {
    if (auto c = a.pos <=> b.pos; c != 0) return c;
    return a.config <=> b.config;
  }
  friend bool operator==(const PNode&, const PNode&) = default;
};

}  // namespace

TimedBuchiAutomaton::TimedBuchiAutomaton(State states, State initial,
                                         ClockId clocks)
    : states_(states), initial_(initial), clocks_(clocks) {
  if (initial >= states)
    throw ModelError("TimedBuchiAutomaton: initial state out of range");
}

void TimedBuchiAutomaton::add_transition(TimedTransition t) {
  if (t.from >= states_ || t.to >= states_)
    throw ModelError("TimedBuchiAutomaton: transition state out of range");
  for (ClockId c : t.resets)
    if (c >= clocks_)
      throw ModelError("TimedBuchiAutomaton: reset clock out of range");
  if (t.guard.clocks_used() > clocks_)
    throw ModelError("TimedBuchiAutomaton: guard clock out of range");
  transitions_.push_back(std::move(t));
}

void TimedBuchiAutomaton::add_final(State s) {
  if (s >= states_)
    throw ModelError("TimedBuchiAutomaton: final state out of range");
  finals_.insert(s);
}

ClockValue TimedBuchiAutomaton::max_constant() const {
  ClockValue cmax = 0;
  for (const auto& t : transitions_)
    cmax = std::max(cmax, t.guard.max_constant());
  return cmax;
}

std::vector<TbaConfig> TimedBuchiAutomaton::step(const TbaConfig& config,
                                                 Symbol symbol,
                                                 ClockValue elapsed,
                                                 ClockValue cap) const {
  std::vector<TbaConfig> out;
  const ClockValuation advanced = advance(config.valuation, elapsed, cap);
  for (const auto& t : transitions_) {
    if (t.from != config.state || !(t.symbol == symbol)) continue;
    // Equation (1): the guard is evaluated on (nu_{i-1} + elapsed); clocks
    // in l_i are then reset.
    if (!t.guard.satisfied(advanced)) continue;
    out.push_back({t.to, reset(advanced, t.resets)});
  }
  return out;
}

std::set<TbaConfig> TimedBuchiAutomaton::run_prefix(const TimedWord& word,
                                                    std::uint64_t n) const {
  const ClockValue cap = max_constant() + 1;
  std::set<TbaConfig> current{TbaConfig{initial_, ClockValuation(clocks_, 0)}};
  Tick prev = 0;
  auto cur = word.cursor();
  for (; cur.index() < n && !cur.done(); cur.advance()) {
    const TimedSymbol ts = cur.current();
    const ClockValue elapsed = ts.time - prev;
    prev = ts.time;
    std::set<TbaConfig> next;
    for (const auto& cfg : current)
      for (auto& succ : step(cfg, ts.sym, elapsed, cap))
        next.insert(std::move(succ));
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

bool TimedBuchiAutomaton::accepts_lasso(const TimedWord& word) const {
  if (!word.is_lasso_rep())
    throw ModelError(
        "TimedBuchiAutomaton::accepts_lasso: word must use the lasso "
        "representation");
  const auto& prefix = word.lasso_prefix();
  const auto& cycle = word.lasso_cycle();
  const Tick period = word.lasso_period();
  const ClockValue cap = max_constant() + 1;

  // Per-position elapsed times inside a (non-first) lap; constant across
  // laps because the lasso shifts all cycle times by `period` per lap.
  const std::size_t clen = cycle.size();
  std::vector<ClockValue> delta(clen);
  for (std::size_t p = 1; p < clen; ++p)
    delta[p] = cycle[p].time - cycle[p - 1].time;
  delta[0] = cycle[0].time + period - cycle[clen - 1].time;

  // Transient phase: consume the prefix, then cycle[0] with the junction
  // elapsed time.  The resulting configurations sit at cycle position 1
  // (they have just consumed position 0).
  std::set<TbaConfig> current = run_prefix(word, prefix.size() + 1);
  if (current.empty()) return false;

  // Product graph over (config, position): consuming cycle[p] uses
  // delta[p] for p >= 1 and the wrap delta[0] when moving to a new lap.
  auto successors = [&](const PNode& v) {
    std::vector<PNode> out;
    for (auto& succ : step(v.config, cycle[v.pos].sym, delta[v.pos], cap))
      out.push_back(PNode{std::move(succ), (v.pos + 1) % clen});
    return out;
  };

  // Reachability from the start nodes.
  std::map<PNode, bool> reachable;
  std::deque<PNode> queue;
  for (const auto& cfg : current) {
    PNode v{cfg, 1 % clen};
    if (reachable.emplace(v, true).second) queue.push_back(v);
  }
  std::vector<PNode> all;
  while (!queue.empty()) {
    PNode v = queue.front();
    queue.pop_front();
    all.push_back(v);
    for (auto& w : successors(v))
      if (reachable.emplace(w, true).second) queue.push_back(w);
  }

  // Buchi condition: a reachable final-state node lying on a product-graph
  // cycle witnesses inf(r) ∩ F ≠ ∅.
  for (const auto& v : all) {
    if (!is_final(v.config.state)) continue;
    std::map<PNode, bool> seen;
    std::deque<PNode> q{v};
    while (!q.empty()) {
      PNode u = q.front();
      q.pop_front();
      for (auto& w : successors(u)) {
        if (w == v) return true;
        if (seen.emplace(w, true).second) q.push_back(w);
      }
    }
  }
  return false;
}

namespace {

/// One step of the emptiness search: a consumed symbol with its delay.
struct WitnessStep {
  Symbol symbol;
  ClockValue delay = 0;
};

/// Search node of the positive-delay cycle hunt: a configuration plus the
/// "positive delay seen on this path" flag.
struct FNode {
  TbaConfig config;
  bool positive;
  friend auto operator<=>(const FNode& a, const FNode& b) {
    if (auto c = a.positive <=> b.positive; c != 0) return c;
    return a.config <=> b.config;
  }
  friend bool operator==(const FNode&, const FNode&) = default;
};

}  // namespace

std::optional<TimedWord> TimedBuchiAutomaton::witness_wellbehaved() const {
  const ClockValue cap = max_constant() + 1;

  // Edge enumeration on the capped configuration graph: every delay in
  // [0, cap] is a distinct choice (delays beyond cap are indistinguishable
  // to every guard).
  auto successors = [&](const TbaConfig& cfg) {
    std::vector<std::pair<TbaConfig, WitnessStep>> out;
    for (ClockValue d = 0; d <= cap; ++d) {
      const ClockValuation advanced = advance(cfg.valuation, d, cap);
      for (const auto& t : transitions_) {
        if (t.from != cfg.state) continue;
        if (!t.guard.satisfied(advanced)) continue;
        out.push_back({TbaConfig{t.to, reset(advanced, t.resets)},
                       WitnessStep{t.symbol, d}});
      }
    }
    return out;
  };

  // BFS with parent links from a start set; returns parents for path
  // reconstruction.
  using Parent = std::pair<TbaConfig, WitnessStep>;
  auto bfs = [&](const std::vector<TbaConfig>& starts) {
    std::map<TbaConfig, Parent> parent;
    std::set<TbaConfig> seen(starts.begin(), starts.end());
    std::deque<TbaConfig> queue(starts.begin(), starts.end());
    while (!queue.empty()) {
      const TbaConfig u = queue.front();
      queue.pop_front();
      for (const auto& [v, step] : successors(u)) {
        if (!seen.insert(v).second) continue;
        parent.emplace(v, Parent{u, step});
        queue.push_back(v);
      }
    }
    return std::pair(seen, parent);
  };

  auto path_to = [&](const std::map<TbaConfig, Parent>& parent,
                     TbaConfig target) {
    // Walks parent links back to the (parentless) BFS root.
    std::vector<WitnessStep> steps;
    TbaConfig cursor = target;
    for (auto it = parent.find(cursor); it != parent.end();
         it = parent.find(cursor)) {
      steps.push_back(it->second.second);
      cursor = it->second.first;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  };

  const TbaConfig init{initial_, ClockValuation(clocks_, 0)};
  const auto [reachable, fwd_parent] = bfs({init});

  for (const TbaConfig& f : reachable) {
    if (!is_final(f.state)) continue;
    // A cycle f -> f with positive total delay: a second BFS over
    // (config, positive-delay-seen) nodes.
    // Re-visiting f without a positive delay is a pointless lap (any
    // positive-delay cycle through it contains a shorter one that avoids
    // it), so {f, false} is never enqueued and stays parentless -- the
    // unambiguous reconstruction root.
    const FNode root{f, false};
    std::map<FNode, std::pair<FNode, WitnessStep>> parent;
    std::deque<FNode> queue;
    std::set<FNode> seen;
    auto visit = [&](const FNode& from, const TbaConfig& v,
                     const WitnessStep& step) {
      FNode n{v, from.positive || step.delay > 0};
      if (n == root) return false;
      if (!seen.insert(n).second) return false;
      parent.emplace(n, std::pair(from, step));
      queue.push_back(n);
      return n == FNode{f, true};
    };
    std::optional<FNode> goal;
    for (const auto& [v, step] : successors(f))
      if (visit(root, v, step)) goal = FNode{f, true};
    while (!queue.empty() && !goal) {
      const FNode u = queue.front();
      queue.pop_front();
      for (const auto& [v, step] : successors(u.config)) {
        if (visit(u, v, step)) {
          goal = FNode{f, true};
          break;
        }
      }
    }
    if (!goal) continue;

    // Reconstruct: cycle steps (from f around back to f)...
    std::vector<WitnessStep> cycle_steps;
    FNode cursor = *goal;
    for (;;) {
      const auto it = parent.find(cursor);
      cycle_steps.push_back(it->second.second);
      if (it->second.first == root) break;
      cursor = it->second.first;
    }
    std::reverse(cycle_steps.begin(), cycle_steps.end());
    // ...and prefix steps (initial to f).
    const auto prefix_steps = path_to(fwd_parent, f);

    // Assemble the lasso timed word.
    std::vector<rtw::core::TimedSymbol> prefix, cycle;
    Tick now = 0;
    for (const auto& step : prefix_steps) {
      now += step.delay;
      prefix.push_back({step.symbol, now});
    }
    Tick period = 0;
    for (const auto& step : cycle_steps) period += step.delay;
    Tick cursor_time = now;
    for (const auto& step : cycle_steps) {
      cursor_time += step.delay;
      cycle.push_back({step.symbol, cursor_time});
    }
    return TimedWord::lasso(std::move(prefix), std::move(cycle), period);
  }
  return std::nullopt;
}

bool TimedBuchiAutomaton::empty_wellbehaved() const {
  return !witness_wellbehaved().has_value();
}

}  // namespace rtw::automata
