#include "rtw/automata/finite_automaton.hpp"

#include <deque>

#include "rtw/core/error.hpp"

namespace rtw::automata {

FiniteAutomaton::FiniteAutomaton(State states, State initial)
    : states_(states), initial_(initial) {
  if (initial >= states)
    throw rtw::core::ModelError("FiniteAutomaton: initial state out of range");
}

void FiniteAutomaton::add_transition(State from, State to,
                                     rtw::core::Symbol symbol) {
  if (from >= states_ || to >= states_)
    throw rtw::core::ModelError("FiniteAutomaton: transition out of range");
  transitions_.push_back({from, to, symbol});
}

void FiniteAutomaton::add_lambda(State from, State to) {
  if (from >= states_ || to >= states_)
    throw rtw::core::ModelError("FiniteAutomaton: lambda out of range");
  lambdas_.emplace_back(from, to);
}

void FiniteAutomaton::add_final(State s) {
  if (s >= states_)
    throw rtw::core::ModelError("FiniteAutomaton: final state out of range");
  finals_.insert(s);
}

bool FiniteAutomaton::is_final(State s) const { return finals_.count(s) > 0; }

std::set<State> FiniteAutomaton::closure(std::set<State> states) const {
  std::deque<State> queue(states.begin(), states.end());
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    for (const auto& [from, to] : lambdas_) {
      if (from == s && states.insert(to).second) queue.push_back(to);
    }
  }
  return states;
}

std::set<State> FiniteAutomaton::step(const std::set<State>& states,
                                      rtw::core::Symbol symbol) const {
  std::set<State> next;
  const std::set<State> closed = closure(states);
  for (const auto& t : transitions_)
    if (t.symbol == symbol && closed.count(t.from)) next.insert(t.to);
  return closure(std::move(next));
}

std::set<State> FiniteAutomaton::run(
    const std::vector<rtw::core::Symbol>& word) const {
  std::set<State> current = closure({initial_});
  for (const auto& s : word) {
    current = step(current, s);
    if (current.empty()) break;
  }
  return current;
}

bool FiniteAutomaton::accepts(
    const std::vector<rtw::core::Symbol>& word) const {
  for (State s : run(word))
    if (is_final(s)) return true;
  return false;
}

}  // namespace rtw::automata
