#include "rtw/automata/operations.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "rtw/core/error.hpp"

namespace rtw::automata {

namespace {

using rtw::core::Symbol;

/// BFS over single states with symbol-labeled edges (lambda moves folded
/// in via FiniteAutomaton::step).  Returns parent links for path
/// reconstruction: state -> (previous state, consumed symbol).
std::map<State, std::pair<State, Symbol>> reach(
    const FiniteAutomaton& fa, const std::set<State>& starts,
    const std::vector<Symbol>& alphabet) {
  std::map<State, std::pair<State, Symbol>> parent;
  std::deque<State> queue;
  std::set<State> seen = starts;
  for (State s : starts) queue.push_back(s);
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    for (const Symbol& sym : alphabet) {
      for (State t : fa.step({s}, sym)) {
        if (!seen.insert(t).second) continue;
        parent.emplace(t, std::make_pair(s, sym));
        queue.push_back(t);
      }
    }
  }
  return parent;
}

std::vector<Symbol> transition_alphabet(const FiniteAutomaton& fa) {
  std::set<Symbol> symbols;
  for (const auto& t : fa.transitions()) symbols.insert(t.symbol);
  return {symbols.begin(), symbols.end()};
}

}  // namespace

BuchiAutomaton buchi_union(const BuchiAutomaton& a, const BuchiAutomaton& b) {
  const FiniteAutomaton& fa = a.base();
  const FiniteAutomaton& fb = b.base();
  // States: [0, |A|) = A's, [|A|, |A|+|B|) = B's, last = fresh initial.
  const State offset = fa.states();
  const State fresh = fa.states() + fb.states();
  FiniteAutomaton sum(fresh + 1, fresh);
  for (const auto& t : fa.transitions())
    sum.add_transition(t.from, t.to, t.symbol);
  for (const auto& t : fb.transitions())
    sum.add_transition(offset + t.from, offset + t.to, t.symbol);
  sum.add_lambda(fresh, fa.initial());
  sum.add_lambda(fresh, offset + fb.initial());
  for (State s : fa.finals()) sum.add_final(s);
  for (State s : fb.finals()) sum.add_final(offset + s);
  return BuchiAutomaton(std::move(sum));
}

BuchiAutomaton buchi_intersection(const BuchiAutomaton& a,
                                  const BuchiAutomaton& b) {
  const FiniteAutomaton& fa = a.base();
  const FiniteAutomaton& fb = b.base();
  const State na = fa.states();
  const State nb = fb.states();
  // Product state (sa, sb, phase): phase 0 waits for an A-final, phase 1
  // waits for a B-final; the flip 1 -> 0 marks one full round and is the
  // product's acceptance.
  auto encode = [na, nb](State sa, State sb, State phase) {
    return (phase * nb + sb) * na + sa;
  };
  FiniteAutomaton product(na * nb * 2,
                          encode(fa.initial(), fb.initial(), 0));
  for (const auto& ta : fa.transitions()) {
    for (const auto& tb : fb.transitions()) {
      if (!(ta.symbol == tb.symbol)) continue;
      for (State phase = 0; phase < 2; ++phase) {
        // Phase advances when the awaited factor's *source* state is
        // final (the standard construction's bookkeeping).
        State next_phase = phase;
        if (phase == 0 && fa.is_final(ta.from)) next_phase = 1;
        else if (phase == 1 && fb.is_final(tb.from)) next_phase = 0;
        product.add_transition(encode(ta.from, tb.from, phase),
                               encode(ta.to, tb.to, next_phase),
                               ta.symbol);
      }
    }
  }
  // Accepting: any product state in phase 1 whose B-component is final --
  // entered each time a full A-then-B round completes.
  for (State sb : fb.finals())
    for (State sa = 0; sa < na; ++sa)
      product.add_final(encode(sa, sb, 1));
  return BuchiAutomaton(std::move(product));
}

std::optional<OmegaWord> buchi_witness(const BuchiAutomaton& a) {
  const FiniteAutomaton& fa = a.base();
  const auto alphabet = transition_alphabet(fa);
  const std::set<State> starts = fa.closure({fa.initial()});
  const auto forward = reach(fa, starts, alphabet);

  auto path_from = [&](const std::map<State, std::pair<State, Symbol>>& tree,
                       const std::set<State>& roots, State target) {
    std::vector<Symbol> symbols;
    State cursor = target;
    while (!roots.count(cursor)) {
      const auto& [prev, sym] = tree.at(cursor);
      symbols.push_back(sym);
      cursor = prev;
    }
    std::reverse(symbols.begin(), symbols.end());
    return symbols;
  };

  for (State f = 0; f < fa.states(); ++f) {
    if (!fa.is_final(f)) continue;
    const bool reachable = starts.count(f) || forward.count(f);
    if (!reachable) continue;
    // A nonempty cycle f -> f: search from f's one-step successors so the
    // cycle consumes at least one symbol.
    for (const Symbol& first : alphabet) {
      const auto after = fa.step({f}, first);
      if (after.empty()) continue;
      const auto back = reach(fa, after, alphabet);
      std::optional<State> hit;
      if (after.count(f))
        hit = f;  // self-loop on `first`
      else if (back.count(f))
        hit = f;
      if (!hit) continue;
      OmegaWord word;
      word.prefix = path_from(forward, starts, f);
      word.cycle.push_back(first);
      if (!after.count(f)) {
        // `first` landed in `after`; the back-search path returns to f.
        const auto rest = path_from(back, after, f);
        word.cycle.insert(word.cycle.end(), rest.begin(), rest.end());
      }
      return word;
    }
  }
  return std::nullopt;
}

bool buchi_empty(const BuchiAutomaton& a) {
  return !buchi_witness(a).has_value();
}

MullerAutomaton buchi_to_muller(const BuchiAutomaton& a) {
  const FiniteAutomaton& fa = a.base();
  // Enumerate all subsets intersecting F.  Exponential in |S| by nature of
  // Muller families; intended for the small automata of this library.
  if (fa.states() > 16)
    throw rtw::core::ModelError("buchi_to_muller: too many states");
  std::vector<std::set<State>> family;
  const std::uint32_t subsets = 1u << fa.states();
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    std::set<State> subset;
    bool hits_final = false;
    for (State s = 0; s < fa.states(); ++s) {
      if (!(mask & (1u << s))) continue;
      subset.insert(s);
      hits_final = hits_final || fa.is_final(s);
    }
    if (hits_final) family.push_back(std::move(subset));
  }
  FiniteAutomaton copy(fa.states(), fa.initial());
  for (const auto& t : fa.transitions())
    copy.add_transition(t.from, t.to, t.symbol);
  // MullerAutomaton's constructor enforces determinism.
  return MullerAutomaton(std::move(copy), std::move(family));
}

rtw::core::TimedLanguage tba_language(TimedBuchiAutomaton tba,
                                      std::string name) {
  auto shared = std::make_shared<TimedBuchiAutomaton>(std::move(tba));
  auto member = [shared](const rtw::core::TimedWord& w) {
    if (!w.is_lasso_rep()) return false;
    return shared->accepts_lasso(w);
  };
  auto sampler = [shared](std::uint64_t) {
    const auto witness = shared->witness_wellbehaved();
    if (!witness)
      throw rtw::core::ModelError("tba_language: sampling an empty language");
    return *witness;
  };
  return rtw::core::TimedLanguage(std::move(name), std::move(member),
                                  std::move(sampler));
}

}  // namespace rtw::automata
