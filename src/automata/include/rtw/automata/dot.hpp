#pragma once
/// \file dot.hpp
/// Graphviz export for the automata types -- `dot -Tpng` renders the
/// state graphs for papers, docs and debugging.

#include <string>

#include "rtw/automata/omega.hpp"
#include "rtw/automata/timed_buchi.hpp"

namespace rtw::automata {

/// DOT source for a finite automaton (final states doubly circled, the
/// initial state marked by an entry arrow; lambda edges dashed).
std::string to_dot(const FiniteAutomaton& fa,
                   const std::string& name = "automaton");

/// DOT source for a TBA: edges labeled "symbol / guard / resets".
std::string to_dot(const TimedBuchiAutomaton& tba,
                   const std::string& name = "tba");

}  // namespace rtw::automata
