#pragma once
/// \file witness.hpp
/// The witness language of Theorem 3.1 / Corollary 3.2, executable.
///
/// L        = { a^u b^x c^v d^x | u, x, v > 0 }      (not regular)
/// L_omega  = { l1 $ l2 $ l3 $ ... | l_i ∈ L }        (not omega-regular)
///
/// The paper notes L_omega is practically meaningful: a^u b^x c^v is a
/// database, d^x a key, and b^x the matching instance.
///
/// This module provides membership tests, sample generators, the proof's
/// A' construction (the finite automaton extracted from a candidate Buchi
/// acceptor), and an empirical refuter that, given any Buchi automaton,
/// searches for a word on which it disagrees with L_omega -- the engine
/// behind the bench_thm31_nonregular harness.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtw/automata/omega.hpp"

namespace rtw::automata {

/// Membership in L = a^u b^x c^v d^x (u, x, v > 0).
bool in_block_language(const std::vector<rtw::core::Symbol>& word);
bool in_block_language(std::string_view word);

/// Canonical member of L with parameters (u, x, v).
std::string block_word(unsigned u, unsigned x, unsigned v);

/// Bounded membership in L_omega on a lasso word: the word must decompose
/// as $-separated blocks, each in L, checked across the prefix and one full
/// period of complete blocks (exact for lassos whose cycle contains at
/// least one $; a cycle without $ is rejected outright, as the word would
/// have finitely many blocks).
bool in_l_omega(const OmegaWord& word);

/// Sample member of L_omega: blocks (u,x,v) = f(i) repeating.
OmegaWord l_omega_member(unsigned u, unsigned x, unsigned v);

/// A disagreement between a candidate Buchi automaton and L_omega.
struct Counterexample {
  OmegaWord word;
  bool automaton_accepts = false;
  bool in_language = false;
  std::string describe() const;
};

/// Searches a family of probe words (members with x up to `max_x`, and
/// corrupted near-members with mismatched d-runs) for a word on which
/// `candidate` disagrees with L_omega.  Returns nullopt only if the
/// candidate classifies every probe correctly (which Theorem 3.1 says is
/// impossible for a true acceptor of L_omega; small automata always fail
/// on probes with x beyond their state count).
std::optional<Counterexample> refute_buchi_candidate(
    const BuchiAutomaton& candidate, unsigned max_x);

/// The A' construction from the proof of Theorem 3.1: given a Buchi
/// automaton A (purported acceptor of L_omega), builds the finite automaton
/// A' whose initial state s' lambda-moves into S1 (states A can be in right
/// after reading $) and whose finals are S2 (states A can be in right
/// before reading $).  S1 and S2 are approximated by subset simulation of A
/// over the given sample member of L_omega, unrolled `laps` cycles.
FiniteAutomaton theorem31_extract(const BuchiAutomaton& a,
                                  const OmegaWord& sample, unsigned laps);

}  // namespace rtw::automata
