#pragma once
/// \file timed_buchi.hpp
/// Timed Buchi automata (section 2.1, after Alur & Dill [10]).
///
/// A TBA is A = (Sigma, S, s0, delta, C, F) with delta ⊆ S × S × Sigma ×
/// 2^C × Phi(C): a transition (s, s', a, l, d) consumes `a`, is enabled when
/// the clocks advanced by the elapsed time satisfy `d`, and resets the
/// clocks in `l`.  Runs follow equation (1) of the paper.
///
/// Acceptance over ultimately periodic timed words is decided *exactly*:
/// with discrete time, valuations capped at cmax+1 (cmax = largest constant
/// in any constraint) are a finite, exact abstraction, and the elapsed-time
/// pattern of a lasso timed word is itself periodic, so the Buchi condition
/// reduces to a cycle search on the finite product graph
/// (state, capped valuation, cycle position).

#include <cstdint>
#include <set>
#include <vector>

#include "rtw/automata/clocks.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::automata {

using State = std::uint32_t;

/// A TBA transition (s, s', a, l, d).
struct TimedTransition {
  State from;
  State to;
  rtw::core::Symbol symbol;
  std::vector<ClockId> resets;          ///< l: clocks reset to zero
  ClockConstraint guard;                ///< d: enabling constraint
};

/// A configuration of a TBA run: (s_i, nu_i) of equation (1).
struct TbaConfig {
  State state;
  ClockValuation valuation;

  friend bool operator==(const TbaConfig&, const TbaConfig&) = default;
  friend auto operator<=>(const TbaConfig& a, const TbaConfig& b) {
    if (auto c = a.state <=> b.state; c != 0) return c;
    return a.valuation <=> b.valuation;
  }
};

class TimedBuchiAutomaton {
public:
  /// `clocks` is |C|; `states` is |S|.
  TimedBuchiAutomaton(State states, State initial, ClockId clocks);

  void add_transition(TimedTransition t);
  void add_final(State s);

  State states() const noexcept { return states_; }
  State initial() const noexcept { return initial_; }
  ClockId clocks() const noexcept { return clocks_; }
  bool is_final(State s) const { return finals_.count(s) > 0; }
  const std::vector<TimedTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Largest constant across all guards (drives valuation capping).
  ClockValue max_constant() const;

  /// Configurations reachable after consuming the first `n` elements of
  /// `word` (nu_0 = 0 everywhere; the first elapsed time is tau_1 - 0).
  /// Works on any TimedWord; used for prefix simulation and tests.
  std::set<TbaConfig> run_prefix(const rtw::core::TimedWord& word,
                                 std::uint64_t n) const;

  /// Exact Buchi acceptance over an ultimately periodic timed word
  /// (the word must use the lasso representation).  See file comment.
  bool accepts_lasso(const rtw::core::TimedWord& word) const;

  /// Emptiness of the *well-behaved* timed language: is there any
  /// well-behaved timed word this TBA accepts?  Decided on the capped
  /// configuration graph, where per-step delays range over [0, cmax+1]
  /// (larger delays are indistinguishable): the language is nonempty iff
  /// a final state lies on a reachable cycle whose total delay is
  /// positive (a zero-delay cycle only witnesses Zeno words, which are
  /// not well-behaved).
  bool empty_wellbehaved() const;

  /// A witness for non-emptiness: an accepted, proven well-behaved lasso
  /// timed word, or nullopt when empty_wellbehaved().  Always satisfies
  /// accepts_lasso(*witness).
  std::optional<rtw::core::TimedWord> witness_wellbehaved() const;

private:
  State states_;
  State initial_;
  ClockId clocks_;
  std::vector<TimedTransition> transitions_;
  std::set<State> finals_;

  /// Successor configurations after consuming `symbol` with `elapsed` time.
  std::vector<TbaConfig> step(const TbaConfig& config,
                              rtw::core::Symbol symbol, ClockValue elapsed,
                              ClockValue cap) const;
};

}  // namespace rtw::automata
