#pragma once
/// \file omega.hpp
/// Omega-automata (section 2.1): Buchi and Muller acceptance over
/// ultimately periodic (lasso) omega-words.
///
/// An omega-word sigma = prefix · cycle^omega is the finite representation
/// under which acceptance is decidable:
///   * Buchi (nondeterministic): inf(r) ∩ F ≠ ∅ for some run r.  Decided on
///     the product graph (state, cycle position): an accepting run exists
///     iff some node carrying a final state is reachable from the start set
///     and lies on a cycle of the product graph.
///   * Muller (deterministic): inf(r) ∈ 𝓕.  The deterministic run's
///     (state, cycle position) pairs eventually repeat; the states inside
///     the repeating loop are exactly inf(r).

#include <cstdint>
#include <set>
#include <vector>

#include "rtw/automata/finite_automaton.hpp"
#include "rtw/core/symbol.hpp"

namespace rtw::automata {

/// An ultimately periodic omega-word over plain (untimed) symbols.
struct OmegaWord {
  std::vector<rtw::core::Symbol> prefix;
  std::vector<rtw::core::Symbol> cycle;  ///< must be nonempty

  /// Element access with lasso indexing.
  rtw::core::Symbol at(std::uint64_t i) const {
    if (i < prefix.size()) return prefix[i];
    return cycle[(i - prefix.size()) % cycle.size()];
  }

  /// First n symbols, unrolled.
  std::vector<rtw::core::Symbol> unroll(std::uint64_t n) const;
};

/// Convenience constructor from character strings.
OmegaWord omega_word(std::string_view prefix, std::string_view cycle);

/// Buchi automaton: a FiniteAutomaton whose `finals` play the role of the
/// acceptance set F; runs are over omega-words.
class BuchiAutomaton {
public:
  explicit BuchiAutomaton(FiniteAutomaton base) : base_(std::move(base)) {}

  const FiniteAutomaton& base() const noexcept { return base_; }

  /// Exact acceptance on a lasso word (see file comment).  Lambda moves in
  /// the base automaton are honored (closure before every step).
  bool accepts(const OmegaWord& word) const;

private:
  FiniteAutomaton base_;
};

/// Deterministic Muller automaton.  Transitions must be deterministic
/// (at most one successor per (state, symbol)); lambda moves are not
/// allowed.  The acceptance family is a set of state sets.
class MullerAutomaton {
public:
  MullerAutomaton(FiniteAutomaton base,
                  std::vector<std::set<State>> acceptance_family);

  const FiniteAutomaton& base() const noexcept { return base_; }
  const std::vector<std::set<State>>& family() const noexcept {
    return family_;
  }

  /// Exact acceptance: compute inf(r) of the unique run (the run dies ->
  /// reject) and test membership in the family.
  bool accepts(const OmegaWord& word) const;

  /// inf(r) of the unique run over `word`, or empty set if the run dies.
  std::set<State> inf(const OmegaWord& word) const;

private:
  FiniteAutomaton base_;
  std::vector<std::set<State>> family_;
};

}  // namespace rtw::automata
