#pragma once
/// \file clocks.hpp
/// Clocks and clock constraints Phi(X) (section 2.1).
///
/// A clock is a variable over time whose value is the time elapsed since it
/// was last reset.  A constraint d in Phi(X) has one of the forms
///   x <= c,  c <= x,  ¬d1,  d1 ∧ d2.
/// Since the paper makes time discrete (Definition 3.1), clock values here
/// are naturals, and the *capped valuation* abstraction is exact: any value
/// above the largest constant appearing in a TBA's constraints behaves
/// identically, so valuations can be truncated to cmax+1, making the
/// configuration space finite and TBA acceptance on lasso words decidable.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"

namespace rtw::automata {

using ClockId = std::uint32_t;
using ClockValue = rtw::core::Tick;

/// A clock valuation: value per clock id.
using ClockValuation = std::vector<ClockValue>;

/// Constraint AST (immutable, shared).
class ClockConstraint {
public:
  /// The constant `true` (empty conjunction).
  static ClockConstraint top();
  /// x <= c
  static ClockConstraint le(ClockId x, ClockValue c);
  /// c <= x
  static ClockConstraint ge(ClockId x, ClockValue c);
  /// Derived forms, built from the four primitives:
  static ClockConstraint lt(ClockId x, ClockValue c);  ///< ¬(c <= x)
  static ClockConstraint gt(ClockId x, ClockValue c);  ///< ¬(x <= c)
  static ClockConstraint eq(ClockId x, ClockValue c);  ///< x<=c ∧ c<=x

  ClockConstraint operator!() const;
  ClockConstraint operator&&(const ClockConstraint& other) const;

  /// Evaluates against a valuation.
  bool satisfied(const ClockValuation& nu) const;

  /// Largest constant mentioned (0 for top).  Drives valuation capping.
  ClockValue max_constant() const;

  /// Largest clock id mentioned + 1 (0 for top).
  ClockId clocks_used() const;

  std::string to_string() const;

  /// Opaque AST node (defined in clocks.cpp; public so the evaluator's
  /// internal helpers can traverse it).
  struct Node;

private:
  explicit ClockConstraint(std::shared_ptr<const Node> node);
  std::shared_ptr<const Node> node_;
};

/// Applies `elapsed` ticks to every clock, capping at `cap` (pass the TBA's
/// cmax+1; values above the cap are indistinguishable to any constraint
/// with constants <= cmax).
ClockValuation advance(const ClockValuation& nu, ClockValue elapsed,
                       ClockValue cap);

/// Resets the listed clocks to zero.
ClockValuation reset(ClockValuation nu, const std::vector<ClockId>& clocks);

}  // namespace rtw::automata
