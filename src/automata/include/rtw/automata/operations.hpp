#pragma once
/// \file operations.hpp
/// Closure constructions on Buchi automata, mirroring Theorem 3.3's
/// operations at the automaton level:
///   * union        -- disjoint sum with a fresh initial state;
///   * intersection -- the classic 2-phase product (a run must visit
///     accepting states of *both* factors infinitely often, tracked by a
///     phase flag that flips on each factor's acceptance).
///
/// Complementation of nondeterministic Buchi automata (Safra) is out of
/// scope; for the deterministic case use MullerAutomaton with the
/// complemented family.

#include "rtw/automata/omega.hpp"
#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/language.hpp"

namespace rtw::automata {

/// L(a) ∪ L(b).
BuchiAutomaton buchi_union(const BuchiAutomaton& a, const BuchiAutomaton& b);

/// L(a) ∩ L(b) via the 2-phase product construction.
BuchiAutomaton buchi_intersection(const BuchiAutomaton& a,
                                  const BuchiAutomaton& b);

/// Emptiness: L(a) == ∅ iff no final state is reachable from the initial
/// state and lies on a cycle.  `alphabet` bounds the symbols explored
/// (defaults to the symbols on the automaton's transitions).
bool buchi_empty(const BuchiAutomaton& a);

/// A witness of non-emptiness: an accepted lasso word (prefix to a
/// reachable final state on a cycle, plus the cycle), or nullopt when the
/// language is empty.  The returned word always satisfies
/// `a.accepts(*witness)`.
std::optional<OmegaWord> buchi_witness(const BuchiAutomaton& a);

/// Converts a *deterministic* Buchi automaton into the equivalent Muller
/// automaton: acceptance family = every state set intersecting F (for
/// deterministic automata, inf(r) ∩ F ≠ ∅ iff inf(r) is in that family).
/// Throws ModelError if the base automaton is nondeterministic.
MullerAutomaton buchi_to_muller(const BuchiAutomaton& a);

/// The timed omega-language of a TBA as an rtw::core::TimedLanguage:
/// membership is exact for lasso words (accepts_lasso) and false for any
/// other representation; the sampler returns the TBA's well-behaved
/// witness (one canonical member; throws via the sampler contract when
/// the language is empty).  Bridges the automata layer to the section 3
/// language layer.
rtw::core::TimedLanguage tba_language(TimedBuchiAutomaton tba,
                                      std::string name = "L(tba)");

}  // namespace rtw::automata
