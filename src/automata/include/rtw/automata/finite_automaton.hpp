#pragma once
/// \file finite_automaton.hpp
/// The "general finite automaton" of section 2: A = (Sigma, S, s0, delta, F)
/// with a transition *relation* delta ⊆ S × S × Sigma (nondeterministic) and
/// acceptance by final state at the end of the input.
///
/// States are dense indices 0..states()-1; the alphabet is implicit in the
/// transitions (any rtw::core::Symbol may label an edge).  Lambda (epsilon)
/// transitions are supported because the proof of Theorem 3.1 constructs an
/// automaton A' with lambda-transitions from a fresh initial state.

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "rtw/core/symbol.hpp"

namespace rtw::automata {

using State = std::uint32_t;

/// One element (s, s', a) of the transition relation.
struct Transition {
  State from;
  State to;
  rtw::core::Symbol symbol;
};

/// Nondeterministic finite automaton with optional lambda moves.
class FiniteAutomaton {
public:
  /// `states` is the size of S; `initial` must be < states.
  FiniteAutomaton(State states, State initial);

  State states() const noexcept { return states_; }
  State initial() const noexcept { return initial_; }

  /// Adds (from, to, symbol) to delta.
  void add_transition(State from, State to, rtw::core::Symbol symbol);
  /// Adds a lambda-transition (taken without consuming input).
  void add_lambda(State from, State to);
  void add_final(State s);
  bool is_final(State s) const;

  const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  const std::set<State>& finals() const noexcept { return finals_; }

  /// Lambda-closure of a state set.
  std::set<State> closure(std::set<State> states) const;

  /// One symbol step: closure(move(closure(states), symbol)).
  std::set<State> step(const std::set<State>& states,
                       rtw::core::Symbol symbol) const;

  /// Subset-construction acceptance of a finite symbol word.
  bool accepts(const std::vector<rtw::core::Symbol>& word) const;

  /// State set reached after reading `word` from the initial state.
  std::set<State> run(const std::vector<rtw::core::Symbol>& word) const;

private:
  State states_;
  State initial_;
  std::vector<Transition> transitions_;
  std::vector<std::pair<State, State>> lambdas_;
  std::set<State> finals_;
};

}  // namespace rtw::automata
