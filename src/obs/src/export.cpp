#include "rtw/obs/export.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>

#include "rtw/sim/jsonl.hpp"

namespace rtw::obs {

namespace {

const char* queue_op_name(QueueOp op) {
  switch (op) {
    case QueueOp::Schedule:
      return "queue.schedule";
    case QueueOp::Fire:
      return "queue.fire";
    case QueueOp::Drop:
      return "queue.drop";
    case QueueOp::Defer:
      return "queue.defer";
  }
  return "queue.unknown";
}

std::uint64_t earliest_start(const std::vector<SpanRecord>& spans) {
  return spans.empty() ? 0 : spans.front().start_ns;  // drain(): start-sorted
}

/// Chrome's ts/dur unit is microseconds; keep sub-microsecond precision as
/// a fraction.
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  const auto spans = tracer.drain();
  const std::uint64_t epoch = earliest_start(spans);

  std::string events;
  auto append = [&events](const std::string& line) {
    if (!events.empty()) events += ',';
    events += line;
  };

  for (const auto& span : spans) {
    append(rtw::sim::JsonLine()
               .field("name", span.name)
               .field("cat", "rtw")
               .field("ph", "X")
               .field("ts", to_us(span.start_ns - epoch))
               .field("dur", to_us(span.end_ns - span.start_ns))
               .field("pid", 1)
               .field("tid", span.tid)
               .str());
  }

  // Kernel-op totals as counter events at the origin: visible as tracks in
  // about://tracing without bloating the event array.
  for (auto op : {QueueOp::Schedule, QueueOp::Fire, QueueOp::Drop,
                  QueueOp::Defer}) {
    if (const auto count = tracer.queue_ops(op)) {
      // Counter values live in the event's "args" object (a nested object,
      // so it is spliced in by hand -- JsonLine is deliberately flat).
      std::string event = rtw::sim::JsonLine()
                              .field("name", queue_op_name(op))
                              .field("cat", "rtw")
                              .field("ph", "C")
                              .field("ts", 0.0)
                              .field("pid", 1)
                              .str();
      event.pop_back();  // the closing '}'
      event += ",\"args\":{\"count\":" + std::to_string(count) + "}}";
      append(event);
    }
  }

  std::string out = "{\"traceEvents\":[";
  out += events;
  out += "],\"displayTimeUnit\":\"ms\"";
  if (const auto dropped = tracer.dropped_spans()) {
    out += ",\"otherData\":";
    out += rtw::sim::JsonLine().field("dropped_spans", dropped).str();
  }
  out += "}";
  return out;
}

std::string spans_jsonl(const Tracer& tracer) {
  const auto spans = tracer.drain();
  const std::uint64_t epoch = earliest_start(spans);
  std::string out;
  for (const auto& span : spans) {
    out += rtw::sim::JsonLine()
               .field("span", span.name)
               .field("start_ns", span.start_ns - epoch)
               .field("dur_ns", span.end_ns - span.start_ns)
               .field("tid", span.tid)
               .str();
    out += '\n';
  }
  return out;
}

void fold_queue_ops(const Tracer& tracer, MetricsRegistry& registry) {
  for (auto op : {QueueOp::Schedule, QueueOp::Fire, QueueOp::Drop,
                  QueueOp::Defer})
    if (const auto count = tracer.queue_ops(op))
      registry.counter(queue_op_name(op)).add(count);
  if (const auto dropped = tracer.dropped_spans())
    registry.counter("trace.dropped_spans").add(dropped);
}

namespace {

struct EnvTrace {
  std::once_flag once;
  Tracer* tracer = nullptr;  ///< leaked: must outlive atexit + all spans
  std::string path;
};

EnvTrace& env_trace() {
  static EnvTrace state;
  return state;
}

void write_env_trace() {
  auto& state = env_trace();
  if (!state.tracer) return;
  std::ofstream file(state.path);
  if (!file) return;
  file << chrome_trace_json(*state.tracer);
}

}  // namespace

Tracer* init_from_env() {
  auto& state = env_trace();
  std::call_once(state.once, [&state] {
    const char* path = std::getenv("RTW_TRACE");
    if (!path || !*path) return;
    state.path = path;
    state.tracer = new Tracer();  // intentionally leaked (see EnvTrace)
    set_sink(state.tracer);
    std::atexit(write_env_trace);
  });
  return state.tracer;
}

std::optional<std::string> flush_env_trace() {
  auto& state = env_trace();
  if (!state.tracer) return std::nullopt;
  fold_queue_ops(*state.tracer, MetricsRegistry::instance());
  write_env_trace();
  return state.path;
}

}  // namespace rtw::obs
