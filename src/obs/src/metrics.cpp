#include "rtw/obs/metrics.hpp"

#include <stdexcept>

#include "rtw/sim/jsonl.hpp"

namespace rtw::obs {

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: hot paths hold references resolved through
  // function-local statics, and those must stay valid during program
  // teardown (static destructors run in unspecified order).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

[[noreturn]] void kind_clash(std::string_view name) {
  throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                         "' already registered as a different kind");
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricView::Kind::Counter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != MetricView::Kind::Counter) {
    kind_clash(name);
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricView::Kind::Gauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != MetricView::Kind::Gauge) {
    kind_clash(name);
  }
  return *it->second.gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::int64_t lo, std::int64_t hi) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricView::Kind::Histogram;
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi);
    entry.lo = lo;
    entry.hi = hi;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != MetricView::Kind::Histogram) {
    kind_clash(name);
  }
  return *it->second.histogram;
}

std::vector<MetricView> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricView> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricView view;
    view.name = name;
    view.kind = entry.kind;
    switch (entry.kind) {
      case MetricView::Kind::Counter:
        view.count = entry.counter->value();
        break;
      case MetricView::Kind::Gauge:
        view.value = entry.gauge->value();
        break;
      case MetricView::Kind::Histogram: {
        const auto h = entry.histogram->snapshot();
        view.lo = entry.lo;
        view.bins.reserve(h.bins());
        for (std::size_t b = 0; b < h.bins(); ++b)
          view.bins.push_back(h.count(b));
        break;
      }
    }
    out.push_back(std::move(view));
  }
  return out;  // std::map iteration: already name-sorted
}

std::string MetricsRegistry::to_jsonl() const {
  std::string out;
  for (const auto& view : snapshot()) {
    rtw::sim::JsonLine line;
    line.field("metric", view.name);
    switch (view.kind) {
      case MetricView::Kind::Counter:
        line.field("kind", "counter").field("count", view.count);
        break;
      case MetricView::Kind::Gauge:
        line.field("kind", "gauge").field("value", view.value);
        break;
      case MetricView::Kind::Histogram: {
        line.field("kind", "histogram");
        std::uint64_t total = 0;
        for (std::size_t b = 0; b < view.bins.size(); ++b) {
          line.field("bin_" + std::to_string(view.lo +
                                             static_cast<std::int64_t>(b)),
                     view.bins[b]);
          total += view.bins[b];
        }
        line.field("total", total);
        break;
      }
    }
    out += line.str();
    out += '\n';
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricView::Kind::Counter:
        entry.counter->reset();
        break;
      case MetricView::Kind::Gauge:
        entry.gauge->reset();
        break;
      case MetricView::Kind::Histogram:
        entry.histogram->reset(entry.lo, entry.hi);
        break;
    }
  }
}

}  // namespace rtw::obs
