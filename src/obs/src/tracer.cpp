#include "rtw/obs/tracer.hpp"

#include <algorithm>

namespace rtw::obs {

namespace {

/// Monotone tracer identity: a destroyed tracer's address can be reused by
/// a new one, so the thread-local ring cache keys on (pointer, generation)
/// instead of the pointer alone.
std::atomic<std::uint64_t>& generation_counter() {
  static std::atomic<std::uint64_t> gen{0};
  return gen;
}

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(ring_capacity, 1)),
      generation_(generation_counter().fetch_add(1, std::memory_order_relaxed) +
                  1) {}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::local_ring() {
  // Per-thread cache of the last (tracer, ring) pair: the common case --
  // one tracer installed for the life of the process -- resolves with two
  // loads and a compare, no lock.
  thread_local struct {
    const Tracer* owner = nullptr;
    std::uint64_t generation = 0;
    Ring* ring = nullptr;
  } cache;
  if (cache.owner == this && cache.generation == generation_)
    return *cache.ring;

  std::lock_guard lock(mutex_);
  const auto self = std::this_thread::get_id();
  Ring* ring = nullptr;
  for (const auto& r : rings_)
    if (r->thread == self) {
      ring = r.get();
      break;
    }
  if (!ring) {
    auto fresh = std::make_unique<Ring>();
    fresh->buf.resize(capacity_);
    fresh->tid = static_cast<std::uint32_t>(rings_.size() + 1);
    fresh->thread = self;
    ring = fresh.get();
    rings_.push_back(std::move(fresh));
  }
  cache.owner = this;
  cache.generation = generation_;
  cache.ring = ring;
  return *ring;
}

void Tracer::on_span(const char* name, std::uint64_t start_ns,
                     std::uint64_t end_ns) noexcept {
  Ring& ring = local_ring();
  SpanRecord& slot = ring.buf[ring.next];
  const bool overwriting = ring.total >= capacity_;
  slot.name = name;
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.tid = ring.tid;
  ring.next = (ring.next + 1) % capacity_;
  ++ring.total;
  if (overwriting) dropped_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::on_queue_op(QueueOp op, std::uint64_t /*tick*/) noexcept {
  queue_ops_[static_cast<std::size_t>(op)].fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::drain() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t kept =
          std::min<std::uint64_t>(ring->total, capacity_);
      // Oldest surviving span first: when the ring wrapped, that is the
      // slot the next write would claim.
      std::size_t pos = ring->total > capacity_ ? ring->next : 0;
      for (std::uint64_t i = 0; i < kept; ++i) {
        out.push_back(ring->buf[pos]);
        pos = (pos + 1) % capacity_;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns)
                       return a.start_ns < b.start_ns;
                     return a.end_ns > b.end_ns;  // parents before children
                   });
  return out;
}

std::uint64_t Tracer::queue_ops(QueueOp op) const noexcept {
  return queue_ops_[static_cast<std::size_t>(op)].load(
      std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped_spans() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t Tracer::threads_seen() const {
  std::lock_guard lock(mutex_);
  return rings_.size();
}

}  // namespace rtw::obs
