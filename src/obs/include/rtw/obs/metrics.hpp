#pragma once
/// \file metrics.hpp
/// Process-wide registry of named metrics: monotone counters, last-value
/// gauges, and fixed-bin histograms (rtw::sim::Histogram underneath).
///
/// Naming convention -- the canonical vocabulary every JSONL export in the
/// library now follows: snake_case segments joined by dots, subsystem
/// first (`engine.runs`, `faults.dropped`, `queue.fire`,
/// `adhoc.aodv.delivered`, `rtdb.recognition.served`).
///
/// Handle discipline: `counter()` / `gauge()` / `histogram()` return
/// references that stay valid for the registry's lifetime, so hot paths
/// resolve a handle once (a function-local static at the instrumentation
/// site) and afterwards pay one relaxed atomic add.  Registration itself
/// takes the registry mutex and is meant for cold paths only.
///
/// The registry exists independently of the Sink switchboard; library
/// instrumentation folds into it only while `obs::enabled()`, keeping the
/// disabled path free of even the atomic adds.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rtw/sim/histogram.hpp"

namespace rtw::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (ratios, sizes, temperatures of the moment).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper over the sim histogram (which is single-threaded).
class HistogramMetric {
 public:
  HistogramMetric(std::int64_t lo, std::int64_t hi) : histogram_(lo, hi) {}

  void add(std::int64_t value) noexcept {
    std::lock_guard lock(mutex_);
    histogram_.add(value);
  }
  /// A copy, safe to read while writers continue.
  rtw::sim::Histogram snapshot() const {
    std::lock_guard lock(mutex_);
    return histogram_;
  }
  void reset(std::int64_t lo, std::int64_t hi) {
    std::lock_guard lock(mutex_);
    histogram_ = rtw::sim::Histogram(lo, hi);
  }

 private:
  mutable std::mutex mutex_;
  rtw::sim::Histogram histogram_;
};

/// One exported metric, for iteration / JSONL rendering.
struct MetricView {
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::uint64_t count = 0;              ///< Counter value
  double value = 0.0;                   ///< Gauge value
  std::vector<std::uint64_t> bins;      ///< Histogram bin counts
  std::int64_t lo = 0;                  ///< Histogram first bin value
};

class MetricsRegistry {
 public:
  /// The process-wide instance (intentionally leaked: instrumentation
  /// handles must outlive every static destructor).
  static MetricsRegistry& instance();

  /// Finds or creates.  A name registered as one kind must not be reused
  /// as another (throws std::logic_error).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name, std::int64_t lo,
                             std::int64_t hi);

  /// Snapshot of every registered metric, name-sorted.
  std::vector<MetricView> snapshot() const;

  /// One JSON line per metric: {"metric":"engine.runs","kind":"counter",
  /// "count":12}.  Histograms render bins as "bin_<v>" fields.
  std::string to_jsonl() const;

  /// Zeroes every registered metric (bench section boundaries, tests).
  /// Handles stay valid.
  void reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Entry {
    MetricView::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::int64_t lo = 0, hi = 0;  ///< histogram construction bounds
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace rtw::obs
