#pragma once
/// \file export.hpp
/// Exporters over a drained Tracer:
///   * chrome_trace_json -- the Chrome trace_event format ("traceEvents"
///     array of ph:"X" complete events, microsecond timestamps), loadable
///     in about://tracing / Perfetto;
///   * spans_jsonl -- the library's JSON Lines schema, one span per line,
///     streamable next to the bench records;
/// plus the environment hook the examples/benches use: RTW_TRACE=<path>
/// installs a process-wide tracer at startup and writes the Chrome trace
/// on flush (or at exit).

#include <optional>
#include <string>

#include "rtw/obs/metrics.hpp"
#include "rtw/obs/tracer.hpp"

namespace rtw::obs {

/// Renders every drained span as one Chrome trace_event complete ("X")
/// event.  Timestamps are rebased to the earliest span so the trace starts
/// at ts=0; queue-op totals and dropped-span counts ride along as counter
/// ("C") events at ts=0.  Deterministic given deterministic span times.
std::string chrome_trace_json(const Tracer& tracer);

/// One JSON line per span: {"span":...,"start_ns":...,"dur_ns":...,
/// "tid":...}, in drain order, with the same rebased timebase as the
/// Chrome export.
std::string spans_jsonl(const Tracer& tracer);

/// Folds the tracer's kernel-op tallies into the registry as counters
/// (queue.schedule / queue.fire / queue.drop / queue.defer, plus
/// trace.dropped_spans).  Called by flush_env_trace; exposed for tests.
void fold_queue_ops(const Tracer& tracer, MetricsRegistry& registry);

/// If the RTW_TRACE environment variable names a file, installs a
/// process-wide Tracer (idempotent: subsequent calls return the same one)
/// and registers an atexit hook writing the Chrome trace there.  Returns
/// the tracer, or nullptr when the variable is unset.
Tracer* init_from_env();

/// Writes the env tracer's Chrome trace to the RTW_TRACE path now (also
/// runs at exit).  Returns the path written, or nullopt when tracing is
/// off.  Safe to call repeatedly; later calls rewrite the file with the
/// fuller trace.
std::optional<std::string> flush_env_trace();

}  // namespace rtw::obs
