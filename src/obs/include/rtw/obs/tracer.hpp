#pragma once
/// \file tracer.hpp
/// The default Sink: records spans into per-thread ring buffers and tallies
/// event-kernel operations in four relaxed atomics.
///
/// Hot-path contract: on_span appends to a thread-local ring with no lock
/// and no allocation (the ring is preallocated at registration); when a
/// ring fills it wraps, overwriting the oldest spans and counting the loss
/// in dropped_spans() -- tracing boundedness beats completeness on a
/// machine serving millions of runs.  Thread registration (first span from
/// a new thread) takes the registry mutex once per thread, never again.
///
/// drain() snapshots every ring into one start-ordered vector for the
/// exporters (rtw/obs/export.hpp).  Draining while other threads trace is
/// safe but racy in the benign sense: spans recorded concurrently may or
/// may not appear; finish tracing before exporting for a complete picture.

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rtw/obs/sink.hpp"

namespace rtw::obs {

/// One completed span as the tracer stores it.  `tid` is the tracer's
/// dense thread index (registration order, starting at 1) -- stable across
/// runs of a deterministic workload, unlike OS thread ids.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
};

class Tracer final : public Sink {
 public:
  /// `ring_capacity`: spans retained per thread (newest win on overflow).
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 16);
  ~Tracer() override;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void on_span(const char* name, std::uint64_t start_ns,
               std::uint64_t end_ns) noexcept override;
  void on_queue_op(QueueOp op, std::uint64_t tick) noexcept override;

  /// All retained spans, ordered by (start_ns, end_ns descending) so a
  /// parent sorts before the children it encloses.
  std::vector<SpanRecord> drain() const;

  /// Total kernel operations of one kind seen.
  std::uint64_t queue_ops(QueueOp op) const noexcept;
  /// Spans lost to ring overflow across all threads.
  std::uint64_t dropped_spans() const noexcept;
  /// Threads that have recorded at least one span.
  std::size_t threads_seen() const;

 private:
  struct Ring {
    std::vector<SpanRecord> buf;   ///< capacity-sized, preallocated
    std::size_t next = 0;          ///< write position (wraps)
    std::uint64_t total = 0;       ///< spans ever recorded on this ring
    std::uint32_t tid = 0;
    std::thread::id thread;
  };

  Ring& local_ring();

  const std::size_t capacity_;
  const std::uint64_t generation_;  ///< defeats thread-local cache aliasing
  mutable std::mutex mutex_;        ///< guards rings_ growth and drain
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> queue_ops_[kQueueOpCount] = {};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace rtw::obs
