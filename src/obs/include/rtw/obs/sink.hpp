#pragma once
/// \file sink.hpp
/// The observability boundary: one process-wide `Sink*` that every
/// instrumentation point in the library funnels through.
///
/// Design constraints (why this header looks the way it does):
///   * the *disabled* path must cost one branch on a null pointer -- the
///     event kernel schedules/fires tens of millions of events per second
///     and the acceptance bar is <= 2% overhead with no sink installed;
///   * the header must be dependency-free so layers *below* rtw_obs (the
///     sim kernel's EventQueue) can emit without a link cycle: everything
///     here is inline, the global slot is an inline atomic, and nothing
///     references the tracer/metrics machinery that lives in the rtw_obs
///     library proper;
///   * span guards must be SmallFn-friendly: `SpanScope` is three words,
///     trivially destructible when disarmed, and movable, so it can ride
///     inside an EventQueue action's 48-byte inline capture buffer.
///
/// Usage at an instrumentation site:
///
///   RTW_SPAN("engine.run");                 // scoped span, ends at `}`
///   if (auto* s = rtw::obs::sink())         // hand-rolled fast path
///     s->on_queue_op(rtw::obs::QueueOp::Fire, tick);

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rtw::obs {

/// Event-kernel operations reported by the EventQueue hot path.
enum class QueueOp : std::uint8_t {
  Schedule,  ///< an action entered the heap
  Fire,      ///< an action executed
  Drop,      ///< the fault filter discarded an action unrun
  Defer,     ///< the fault filter re-queued an action at a later tick
};

inline constexpr std::size_t kQueueOpCount = 4;

/// Abstract receiver of observability events.  Implementations (the
/// rtw_obs Tracer, test doubles) must be safe to call from any thread;
/// the library calls these from engine worker threads concurrently.
class Sink {
 public:
  virtual ~Sink() = default;

  /// A completed span: `name` must point at storage outliving the sink
  /// (instrumentation sites pass string literals).  Times are
  /// steady-clock nanoseconds from now_ns().
  virtual void on_span(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns) noexcept = 0;

  /// One event-kernel operation at virtual time `tick`.
  virtual void on_queue_op(QueueOp op, std::uint64_t tick) noexcept = 0;
};

namespace detail {
/// The process-wide sink slot.  Inline so the disabled check compiles to a
/// load + branch everywhere, including translation units that never link
/// rtw_obs.
inline std::atomic<Sink*> g_sink{nullptr};
}  // namespace detail

/// The installed sink, or nullptr when observability is disabled.
inline Sink* sink() noexcept {
  return detail::g_sink.load(std::memory_order_acquire);
}

/// True when a sink is installed.  The master switch: every metric fold
/// and span record in the library is gated on this.
inline bool enabled() noexcept { return sink() != nullptr; }

/// Installs `s` (nullptr disables) and returns the previous sink.  The
/// caller owns both lifetimes; uninstall before destroying a sink.  Spans
/// already in flight finish against the sink they captured at entry.
inline Sink* set_sink(Sink* s) noexcept {
  return detail::g_sink.exchange(s, std::memory_order_acq_rel);
}

/// Monotonic wall-clock in nanoseconds (the span timebase).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII span: captures the sink once at entry (one branch when disabled)
/// and reports [start, end) to it on scope exit.  Movable so guards can
/// live inside SmallFn captures; moving disarms the source.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept : sink_(sink()) {
    if (sink_) {
      name_ = name;
      start_ = now_ns();
    }
  }

  SpanScope(SpanScope&& other) noexcept
      : sink_(other.sink_), name_(other.name_), start_(other.start_) {
    other.sink_ = nullptr;
  }
  SpanScope& operator=(SpanScope&& other) noexcept {
    if (this != &other) {
      finish();
      sink_ = other.sink_;
      name_ = other.name_;
      start_ = other.start_;
      other.sink_ = nullptr;
    }
    return *this;
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { finish(); }

 private:
  void finish() noexcept {
    if (sink_) {
      sink_->on_span(name_, start_, now_ns());
      sink_ = nullptr;
    }
  }

  Sink* sink_;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace rtw::obs

#define RTW_OBS_CONCAT_IMPL(a, b) a##b
#define RTW_OBS_CONCAT(a, b) RTW_OBS_CONCAT_IMPL(a, b)

/// Opens a span covering the rest of the enclosing scope.  `name` must be
/// a string literal (it is stored by pointer).  Free when no sink is
/// installed: one atomic load and an untaken branch.
#define RTW_SPAN(name) \
  ::rtw::obs::SpanScope RTW_OBS_CONCAT(rtw_obs_span_, __LINE__) { name }
