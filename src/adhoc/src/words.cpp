#include "rtw/adhoc/words.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::adhoc {

using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

namespace {

Symbol dollar() { return rtw::core::marks::dollar(); }
Symbol at_mark() { return rtw::core::marks::at(); }

void append_nat(std::vector<TimedSymbol>& out, std::uint64_t value, Tick t) {
  out.push_back({Symbol::nat(value), t});
}

void append_position(std::vector<TimedSymbol>& out, Vec2 p, Tick t) {
  // Positions are encoded to integer precision -- enough to reconstruct
  // connectivity at the radio-range granularity used here.
  append_nat(out, static_cast<std::uint64_t>(std::max(0.0, p.x)), t);
  out.push_back({at_mark(), t});
  append_nat(out, static_cast<std::uint64_t>(std::max(0.0, p.y)), t);
}

}  // namespace

TimedWord node_word(const Network& network, NodeId node) {
  if (node >= network.size())
    throw rtw::core::ModelError("node_word: node out of range");
  struct State {
    const Network* network;
    NodeId node;
    std::vector<TimedSymbol> cache;
    Tick next_fix = 0;
    std::mutex mutex;

    void extend() {
      std::vector<TimedSymbol> group;
      const Tick t = next_fix;
      group.push_back({dollar(), t});
      group.push_back({Symbol::nat(node), t});
      group.push_back({at_mark(), t});
      if (t == 0) {
        // q_i: the invariant characteristics -- here the radio range.
        append_nat(group,
                   static_cast<std::uint64_t>(network->radio_range()), t);
        group.push_back({at_mark(), t});
      }
      append_position(group, network->position(node, t), t);
      group.push_back({dollar(), t});
      cache.insert(cache.end(), group.begin(), group.end());
      ++next_fix;
    }
  };
  auto state = std::make_shared<State>();
  state->network = &network;
  state->node = node;
  rtw::core::GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;  // one fix per tick
  return TimedWord::generator(
      [state](std::uint64_t i) {
        std::lock_guard lock(state->mutex);
        while (state->cache.size() <= i) state->extend();
        return state->cache[i];
      },
      traits, "h_" + std::to_string(node));
}

TimedWord network_word(const Network& network) {
  std::vector<TimedWord> parts;
  for (NodeId i = 0; i < network.size(); ++i)
    parts.push_back(node_word(network, i));
  return rtw::core::concat_all(parts);
}

TimedWord message_word(const HopMessage& hop) {
  std::vector<TimedSymbol> out;
  const Tick t = hop.sent_at;
  out.push_back({dollar(), t});
  append_nat(out, t, t);
  out.push_back({at_mark(), t});
  append_nat(out, hop.src, t);
  out.push_back({at_mark(), t});
  append_nat(out, hop.dst, t);
  out.push_back({at_mark(), t});
  append_nat(out, hop.body, t);
  out.push_back({dollar(), t});
  return TimedWord::finite(std::move(out));
}

TimedWord receive_word(const HopMessage& hop) {
  std::vector<TimedSymbol> out;
  const Tick t = hop.received_at;
  out.push_back({dollar(), t});
  append_nat(out, hop.sent_at, t);
  out.push_back({at_mark(), t});
  append_nat(out, hop.src, t);
  out.push_back({at_mark(), t});
  append_nat(out, hop.dst, t);
  out.push_back({dollar(), t});
  return TimedWord::finite(std::move(out));
}

RouteTrace extract_route(const SimResult& result, const Network& network,
                         std::uint64_t data_id) {
  (void)network;
  RouteTrace trace;
  trace.body = data_id;

  // Hop chain: the Data receive events for this data_id, chained from the
  // origin.  Each receive (time, by, packet.from) is one u_i.  The chain
  // must be an actual witness of the R_{n,u} conditions: a hop from S
  // received at t' extends a chain only if S *held the message at the send
  // time* t' - 1 -- S received it at exactly that tick (condition 2 forbids
  // mid-chain holding), or S is the origin (condition 1 lets the source
  // hold u while e.g. discovering a route).  Tracking chains per
  // (node, arrival time) rather than per node keeps retransmitted traffic
  // (retries under message loss, delay-faulted copies) from stitching hops
  // of different attempts into a chain no physical copy ever traveled.
  // `delivered` is set only when a complete witness reaches d.
  std::map<std::pair<NodeId, Tick>, std::vector<HopMessage>> held;
  bool origin_known = false;

  for (const auto& recv : result.receives) {
    const Packet& p = recv.packet;
    if (p.kind != Packet::Kind::Data || p.data_id != data_id) continue;
    if (!origin_known) {
      trace.source = p.origin;
      trace.destination = p.final_dst;
      trace.originated_at = p.originated_at;
      origin_known = true;
    }
    const NodeId sender = p.from;
    const Tick sent_at = recv.time - 1;
    const std::vector<HopMessage>* parent = nullptr;
    static const std::vector<HopMessage> kAtOrigin;
    if (const auto it = held.find({sender, sent_at}); it != held.end())
      parent = &it->second;
    else if (sender == trace.source)
      parent = &kAtOrigin;
    if (!parent) continue;  // sender did not hold the message at send time
    // First chain to arrive at (node, time) wins (receive-log order, i.e.
    // the earliest witness).
    if (held.count({recv.by, recv.time})) continue;
    std::vector<HopMessage> chain = *parent;
    chain.push_back({sent_at, recv.time, sender, recv.by, data_id});
    if (recv.by == p.final_dst) {
      trace.hops = std::move(chain);
      trace.delivered = true;
      break;
    }
    held[{recv.by, recv.time}] = std::move(chain);
  }

  if (!origin_known) {
    // Never transmitted/received: reconstruct endpoints from sends if any.
    for (const auto& send : result.sends) {
      if (send.packet.kind == Packet::Kind::Data &&
          send.packet.data_id == data_id) {
        trace.source = send.packet.origin;
        trace.destination = send.packet.final_dst;
        trace.originated_at = send.packet.originated_at;
        break;
      }
    }
  }

  // Auxiliary messages rt_j: every control transmission (they support the
  // routing process as a whole).
  for (const auto& send : result.sends) {
    if (send.packet.kind == Packet::Kind::Data) continue;
    trace.auxiliary.push_back({send.time, send.time + 1, send.packet.from,
                               send.packet.to == kBroadcast
                                   ? send.packet.final_dst
                                   : send.packet.to,
                               send.packet.seq});
  }
  return trace;
}

namespace {

/// Shared structural checks (conditions 1 and 2); condition 3 is the
/// caller's business (R vs R').
std::optional<std::string> validate_structure(const RouteTrace& trace,
                                              const Network& network);

}  // namespace

std::optional<std::string> validate_route(const RouteTrace& trace,
                                          const Network& network) {
  if (!trace.delivered) return "condition 3: t'_f is not finite";
  return validate_structure(trace, network);
}

std::optional<std::string> validate_route_lossy(
    const RouteTrace& trace, const Network& network,
    std::optional<Tick> loss_threshold) {
  if (!trace.delivered) {
    // In R' an undelivered message is a member as long as the *partial*
    // structure is sound; an empty chain is trivially sound.
    if (trace.hops.empty()) return std::nullopt;
    RouteTrace partial = trace;
    partial.delivered = true;  // structure check only; skip endpoint check
    // The last hop need not reach the destination.
    const auto why = validate_structure(partial, network);
    if (why && why->find("d_f != d") != std::string::npos)
      return std::nullopt;  // incomplete chain: expected for a lost message
    return why;
  }
  if (loss_threshold && is_lost(trace, *loss_threshold))
    return std::nullopt;  // lost-by-threshold: still a member of R'
  return validate_structure(trace, network);
}

bool is_lost(const RouteTrace& trace, Tick loss_threshold) {
  if (!trace.delivered || trace.hops.empty()) return true;
  return trace.hops.back().received_at - trace.originated_at > loss_threshold;
}

namespace {

std::optional<std::string> validate_structure(const RouteTrace& trace,
                                              const Network& network) {
  std::ostringstream why;
  if (trace.hops.empty()) {
    if (trace.source == trace.destination) return std::nullopt;
    return "empty hop chain for distinct endpoints";
  }
  // Condition 1.
  if (trace.hops.front().src != trace.source)
    return "condition 1: s_1 != s";
  if (trace.hops.back().dst != trace.destination)
    return "condition 1: d_f != d";
  // Condition 1's t_1 = t, read operationally: on-demand protocols hold u
  // at the source while discovering a route, so the first hop may not
  // precede the generation time (and equals it for proactive protocols).
  if (trace.hops.front().sent_at < trace.originated_at)
    return "condition 1: t_1 precedes t";
  for (std::size_t i = 0; i < trace.hops.size(); ++i)
    if (trace.hops[i].body != trace.body) {
      why << "condition 1: b_" << i + 1 << " != b";
      return why.str();
    }
  // Condition 2.
  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    if (trace.hops[i].dst != trace.hops[i + 1].src) {
      why << "condition 2: d_" << i + 1 << " != s_" << i + 2;
      return why.str();
    }
    if (trace.hops[i].received_at != trace.hops[i + 1].sent_at) {
      why << "condition 2: t'_" << i + 1 << " != t_" << i + 2;
      return why.str();
    }
  }
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    if (!network.range(hop.src, hop.dst, hop.sent_at)) {
      why << "condition 2: range(s_" << i + 1 << ", d_" << i + 1 << ", t_"
          << i + 1 << ") is false";
      return why.str();
    }
    if (hop.received_at != hop.sent_at + 1) {
      why << "granularity: hop " << i + 1 << " does not take one time unit";
      return why.str();
    }
  }
  return std::nullopt;
}

}  // namespace

TimedWord route_instance_word(const RouteTrace& trace,
                              const Network& network) {
  std::vector<TimedWord> parts;
  parts.push_back(network_word(network));
  for (const auto& hop : trace.hops) {
    parts.push_back(message_word(hop));
    parts.push_back(receive_word(hop));
  }
  for (const auto& aux : trace.auxiliary) {
    parts.push_back(message_word(aux));
    parts.push_back(receive_word(aux));
  }
  return rtw::core::concat_all(parts);
}

std::vector<HopMessage> m_between(const RouteTrace& trace, NodeId i,
                                  NodeId j) {
  std::vector<HopMessage> out;
  for (const auto& hop : trace.hops)
    if (hop.src == i && hop.dst == j) out.push_back(hop);
  for (const auto& aux : trace.auxiliary)
    if (aux.src == i && aux.dst == j) out.push_back(aux);
  return out;
}

std::vector<std::pair<LocalView, RemoteView>> decompose(
    const RouteTrace& trace, NodeId nodes) {
  std::vector<std::pair<LocalView, RemoteView>> views(nodes);
  for (NodeId i = 0; i < nodes; ++i) {
    views[i].first.node = i;
    views[i].second.node = i;
  }
  auto place = [&](const HopMessage& hop) {
    if (hop.src < nodes) views[hop.src].first.sent.push_back(hop);
    if (hop.dst < nodes) views[hop.dst].second.received.push_back(hop);
  };
  for (const auto& hop : trace.hops) place(hop);
  for (const auto& aux : trace.auxiliary) place(aux);
  return views;
}

TimedWord view_word(const Network& network, const LocalView& local,
                    const RemoteView& remote) {
  std::vector<TimedWord> parts;
  parts.push_back(node_word(network, local.node));
  for (const auto& hop : local.sent) parts.push_back(message_word(hop));
  for (const auto& hop : remote.received) parts.push_back(receive_word(hop));
  return rtw::core::concat_all(parts);
}

}  // namespace rtw::adhoc
