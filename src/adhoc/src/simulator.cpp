#include "rtw/adhoc/simulator.hpp"

#include <algorithm>
#include <functional>

#include "rtw/core/error.hpp"
#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"
#include "rtw/sim/event_queue.hpp"

namespace rtw::adhoc {

namespace {

/// End-of-run fold into the obs registry, keyed per protocol so
/// side-by-side comparisons (bench_routing_compare) separate naturally:
/// `adhoc.aodv.delivered`, `adhoc.dsr.control_tx`, ...  Cold path; the
/// dynamic names are resolved through the registry mutex once per run.
void fold_sim_into_registry(const std::string& protocol,
                            const SimResult& result) {
  auto& reg = rtw::obs::MetricsRegistry::instance();
  const std::string prefix = "adhoc." + protocol + ".";
  reg.counter(prefix + "originated").add(result.originated);
  reg.counter(prefix + "delivered").add(result.deliveries.size());
  reg.counter(prefix + "control_tx").add(result.control_transmissions);
  reg.counter(prefix + "data_tx").add(result.data_transmissions);
}

}  // namespace

std::string to_string(Packet::Kind k) {
  switch (k) {
    case Packet::Kind::Data:
      return "data";
    case Packet::Kind::RouteRequest:
      return "rreq";
    case Packet::Kind::RouteReply:
      return "rrep";
    case Packet::Kind::TableUpdate:
      return "update";
  }
  return "?";
}

std::uint64_t packet_fault_key(const Packet& p) noexcept {
  // SplitMix64 fold over the packet's logical identity (kind, origin,
  // body, sequence).  Hop-dependent fields (from, to, ttl, hops_traveled)
  // are deliberately excluded: the link endpoints enter the fault draw
  // separately, and retransmissions of the same logical packet must reuse
  // the same decision stream.
  auto fold = [](std::uint64_t acc, std::uint64_t v) {
    return rtw::sim::SplitMix64(acc ^ (v * 0x9e3779b97f4a7c15ULL))();
  };
  std::uint64_t key = fold(0x7061636b6574ULL, static_cast<std::uint64_t>(p.kind));
  key = fold(key, p.origin);
  key = fold(key, p.data_id);
  key = fold(key, p.seq);
  return key;
}

std::optional<Delivery> SimResult::delivery_of(std::uint64_t data_id) const {
  for (const auto& d : deliveries)
    if (d.data_id == data_id) return d;
  return std::nullopt;
}

Vec2 NodeContext::position() const {
  return sim_->network().position(self_, now_);
}

void NodeContext::send(Packet p, NodeId to) {
  sim_->transmit(self_, std::move(p), to, now_);
}

void NodeContext::broadcast(Packet p) {
  sim_->transmit(self_, std::move(p), kBroadcast, now_);
}

Simulator::Simulator(const Network& network, const ProtocolFactory& factory,
                     RadioModel radio)
    : network_(&network), radio_(radio) {
  if (!factory)
    throw rtw::core::ModelError("Simulator: null protocol factory");
  for (NodeId i = 0; i < network.size(); ++i) {
    auto protocol = factory(i);
    if (!protocol)
      throw rtw::core::ModelError("Simulator: factory returned null");
    protocols_.push_back(std::move(protocol));
  }
}

Simulator::Simulator(const Network& network, const ProtocolFactory& factory,
                     RadioModel radio, rtw::sim::FaultPlan faults)
    : Simulator(network, factory, radio) {
  fault_plan_ = std::move(faults);
}

void Simulator::schedule(DataSpec spec) {
  if (spec.src >= network_->size() || spec.dst >= network_->size())
    throw rtw::core::ModelError("Simulator: data endpoints out of range");
  pending_.push_back(spec);
}

void Simulator::transmit(NodeId from, Packet p, NodeId to, Tick now) {
  p.from = from;
  p.to = to;
  if (p.ttl == 0) return;  // expired: dropped silently
  if (injector_ && injector_->node_down(from, now)) {
    // A crashed node does not transmit: nothing is logged or put on the
    // air (protocol state machines are frozen anyway; this guards sends
    // triggered from surviving code paths at the crash boundary).
    injector_->count_crash_send(from, now, packet_fault_key(p));
    return;
  }
  airborne_.emplace_back(now, p);
  result_.sends.push_back({now, p});
  if (p.kind == Packet::Kind::Data)
    ++result_.data_transmissions;
  else
    ++result_.control_transmissions;
}

SimResult Simulator::run(Tick horizon) {
  RTW_SPAN("adhoc.run");
  // The per-tick network step is an event on the shared discrete-event
  // kernel (the same sim::EventQueue that drives the acceptor engine), so
  // the whole library shares a single notion of "tick".  Every tick must
  // run (protocol timers and beacons fire unconditionally), so each step
  // reschedules itself at now + 1 up to the horizon.
  rtw::sim::EventQueue queue;
  std::vector<std::pair<Tick, Packet>> in_flight;

  // Fault layer: one injector per run, keyed entirely by (plan.seed,
  // traffic identity), so the run replays bit-identically.  `faulty`
  // stays false for absent/noop plans and every fault branch below is
  // skipped -- the fault-free path is byte-identical to the plain one.
  std::optional<rtw::sim::FaultInjector> injector;
  if (fault_plan_) injector.emplace(*fault_plan_);
  const bool faulty = injector && injector->active();
  injector_ = faulty ? &*injector : nullptr;
  // Deliveries deferred by delay faults, keyed by their new arrival tick.
  std::map<Tick, std::vector<std::pair<NodeId, Packet>>> deferred;

  std::function<void(rtw::sim::Tick)> step = [&](rtw::sim::Tick now) {
    // 1. Deliver packets sent last tick: reception set is determined by
    //    the sender's range at *send* time (section 5.2.1).  The fault
    //    filter sits at this delivery stage: each (packet, receiver) pair
    //    may be dropped, duplicated, or deferred to a later tick.
    std::vector<std::vector<Packet>> inboxes(network_->size());
    auto deliver = [&](NodeId node, const Packet& p, Tick sent_at) {
      if (!faulty) {
        inboxes[node].push_back(p);
        return;
      }
      if (injector->node_down(node, now)) {
        injector->count_crash_receive(node, now, packet_fault_key(p));
        return;
      }
      const auto verdict =
          injector->link_verdict(p.from, node, packet_fault_key(p), now);
      if (!verdict.deliver) return;
      (void)sent_at;
      for (std::uint32_t c = 0; c < verdict.copies; ++c) {
        if (verdict.extra_delay > 0)
          deferred[now + verdict.extra_delay].push_back({node, p});
        else
          inboxes[node].push_back(p);
      }
    };
    for (const auto& [sent_at, p] : in_flight) {
      if (p.to == kBroadcast) {
        for (NodeId node : network_->neighbors(p.from, sent_at))
          deliver(node, p, sent_at);
      } else if (p.to < network_->size() &&
                 network_->range(p.from, p.to, sent_at)) {
        deliver(p.to, p, sent_at);
      }
      // else: addressee out of range -- the packet is lost.
    }
    in_flight.clear();

    // 1a. Deferred (delay-faulted) deliveries landing at this tick join
    // the inboxes after the on-time arrivals -- a fixed, deterministic
    // interleaving.  The receiver may have crashed in the meantime.
    if (faulty) {
      if (const auto it = deferred.find(now); it != deferred.end()) {
        for (const auto& [node, p] : it->second) {
          if (injector->node_down(node, now))
            injector->count_crash_receive(node, now, packet_fault_key(p));
          else
            inboxes[node].push_back(p);
        }
        deferred.erase(it);
      }
    }

    // 1b. Interference: under the ALOHA radio, simultaneous arrivals at a
    // node destroy each other.
    if (radio_.collisions) {
      for (auto& inbox : inboxes) {
        if (inbox.size() >= 2) {
          result_.collided += inbox.size();
          inbox.clear();
        }
      }
    }

    // 2. Per node: timers, then packet processing, then originations.  A
    // crashed node is frozen: no timers, no packet processing (its inbox
    // is empty anyway -- delivery already suppressed above).
    for (NodeId node = 0; node < network_->size(); ++node) {
      if (faulty && injector->node_down(node, now)) continue;
      NodeContext ctx(*this, node, now);
      protocols_[node]->on_tick(ctx);
      for (auto& p : inboxes[node]) {
        Packet received = p;
        ++received.hops_traveled;
        --received.ttl;
        result_.receives.push_back({now, node, received});
        protocols_[node]->on_receive(ctx, received);
        if (received.kind == Packet::Kind::Data &&
            received.final_dst == node && !delivered_[received.data_id]) {
          delivered_[received.data_id] = true;
          result_.deliveries.push_back(
              {received.data_id, now, received.hops_traveled});
        }
      }
    }
    for (const auto& spec : pending_) {
      if (spec.at != now) continue;
      NodeContext ctx(*this, spec.src, now);
      ++result_.originated;
      if (faulty && injector->node_down(spec.src, now)) {
        // The application asked a crashed node to send: the message
        // counts as originated (the delivery-ratio denominator) but never
        // enters the network.
        injector->count_crash_send(spec.src, now, spec.data_id);
        continue;
      }
      protocols_[spec.src]->originate(ctx, spec.dst, spec.data_id);
    }

    // 3. Everything sent during this tick flies until the next.
    in_flight = std::move(airborne_);
    airborne_.clear();

    if (now + 1 < horizon) queue.schedule_at(now + 1, step);
  };

  if (horizon > 0) {
    queue.schedule_at(0, step);
    result_.engine_events = queue.run_until(horizon - 1);
  }
  if (faulty) {
    result_.faults = injector->counters();
    result_.fault_records = injector->records();
  }
  injector_ = nullptr;
  SimResult out = std::move(result_);
  result_ = {};
  delivered_.clear();
  if (rtw::obs::enabled() && !protocols_.empty())
    fold_sim_into_registry(protocols_[0]->name(), out);
  return out;
}

}  // namespace rtw::adhoc
