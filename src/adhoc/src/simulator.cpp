#include "rtw/adhoc/simulator.hpp"

#include <algorithm>
#include <functional>

#include "rtw/core/error.hpp"
#include "rtw/sim/event_queue.hpp"

namespace rtw::adhoc {

std::string to_string(Packet::Kind k) {
  switch (k) {
    case Packet::Kind::Data:
      return "data";
    case Packet::Kind::RouteRequest:
      return "rreq";
    case Packet::Kind::RouteReply:
      return "rrep";
    case Packet::Kind::TableUpdate:
      return "update";
  }
  return "?";
}

std::optional<Delivery> SimResult::delivery_of(std::uint64_t data_id) const {
  for (const auto& d : deliveries)
    if (d.data_id == data_id) return d;
  return std::nullopt;
}

Vec2 NodeContext::position() const {
  return sim_->network().position(self_, now_);
}

void NodeContext::send(Packet p, NodeId to) {
  sim_->transmit(self_, std::move(p), to, now_);
}

void NodeContext::broadcast(Packet p) {
  sim_->transmit(self_, std::move(p), kBroadcast, now_);
}

Simulator::Simulator(const Network& network, const ProtocolFactory& factory,
                     RadioModel radio)
    : network_(&network), radio_(radio) {
  if (!factory)
    throw rtw::core::ModelError("Simulator: null protocol factory");
  for (NodeId i = 0; i < network.size(); ++i) {
    auto protocol = factory(i);
    if (!protocol)
      throw rtw::core::ModelError("Simulator: factory returned null");
    protocols_.push_back(std::move(protocol));
  }
}

void Simulator::schedule(DataSpec spec) {
  if (spec.src >= network_->size() || spec.dst >= network_->size())
    throw rtw::core::ModelError("Simulator: data endpoints out of range");
  pending_.push_back(spec);
}

void Simulator::transmit(NodeId from, Packet p, NodeId to, Tick now) {
  p.from = from;
  p.to = to;
  if (p.ttl == 0) return;  // expired: dropped silently
  airborne_.emplace_back(now, p);
  result_.sends.push_back({now, p});
  if (p.kind == Packet::Kind::Data)
    ++result_.data_transmissions;
  else
    ++result_.control_transmissions;
}

SimResult Simulator::run(Tick horizon) {
  // The per-tick network step is an event on the shared discrete-event
  // kernel (the same sim::EventQueue that drives the acceptor engine), so
  // the whole library shares a single notion of "tick".  Every tick must
  // run (protocol timers and beacons fire unconditionally), so each step
  // reschedules itself at now + 1 up to the horizon.
  rtw::sim::EventQueue queue;
  std::vector<std::pair<Tick, Packet>> in_flight;

  std::function<void(rtw::sim::Tick)> step = [&](rtw::sim::Tick now) {
    // 1. Deliver packets sent last tick: reception set is determined by
    //    the sender's range at *send* time (section 5.2.1).
    std::vector<std::vector<Packet>> inboxes(network_->size());
    for (const auto& [sent_at, p] : in_flight) {
      if (p.to == kBroadcast) {
        for (NodeId node : network_->neighbors(p.from, sent_at))
          inboxes[node].push_back(p);
      } else if (p.to < network_->size() &&
                 network_->range(p.from, p.to, sent_at)) {
        inboxes[p.to].push_back(p);
      }
      // else: addressee out of range -- the packet is lost.
    }
    in_flight.clear();

    // 1b. Interference: under the ALOHA radio, simultaneous arrivals at a
    // node destroy each other.
    if (radio_.collisions) {
      for (auto& inbox : inboxes) {
        if (inbox.size() >= 2) {
          result_.collided += inbox.size();
          inbox.clear();
        }
      }
    }

    // 2. Per node: timers, then packet processing, then originations.
    for (NodeId node = 0; node < network_->size(); ++node) {
      NodeContext ctx(*this, node, now);
      protocols_[node]->on_tick(ctx);
      for (auto& p : inboxes[node]) {
        Packet received = p;
        ++received.hops_traveled;
        --received.ttl;
        result_.receives.push_back({now, node, received});
        protocols_[node]->on_receive(ctx, received);
        if (received.kind == Packet::Kind::Data &&
            received.final_dst == node && !delivered_[received.data_id]) {
          delivered_[received.data_id] = true;
          result_.deliveries.push_back(
              {received.data_id, now, received.hops_traveled});
        }
      }
    }
    for (const auto& spec : pending_) {
      if (spec.at != now) continue;
      NodeContext ctx(*this, spec.src, now);
      ++result_.originated;
      protocols_[spec.src]->originate(ctx, spec.dst, spec.data_id);
    }

    // 3. Everything sent during this tick flies until the next.
    in_flight = std::move(airborne_);
    airborne_.clear();

    if (now + 1 < horizon) queue.schedule_at(now + 1, step);
  };

  if (horizon > 0) {
    queue.schedule_at(0, step);
    result_.engine_events = queue.run_until(horizon - 1);
  }
  SimResult out = std::move(result_);
  result_ = {};
  delivered_.clear();
  return out;
}

}  // namespace rtw::adhoc
