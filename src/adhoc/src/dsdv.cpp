#include "rtw/adhoc/protocols.hpp"

namespace rtw::adhoc {

DsdvProtocol::DsdvProtocol(NodeId self, Tick update_period)
    : self_(self), update_period_(update_period) {
  table_[self_] = Entry{self_, 0, 0};
}

void DsdvProtocol::on_tick(NodeContext& ctx) {
  if (ctx.now() % update_period_ != (self_ % update_period_)) return;
  // Periodic full dump with a fresh (even) own sequence number.
  own_seq_ += 2;
  table_[self_] = Entry{self_, 0, own_seq_};
  Packet p;
  p.kind = Packet::Kind::TableUpdate;
  p.origin = self_;
  p.final_dst = kBroadcast;
  p.ttl = 1;  // one-hop advertisement
  for (const auto& [dst, entry] : table_)
    p.table.emplace_back(dst, entry.metric, entry.seq);
  ctx.broadcast(std::move(p));
}

void DsdvProtocol::on_receive(NodeContext& ctx, const Packet& packet) {
  if (packet.kind == Packet::Kind::TableUpdate) {
    const NodeId via = packet.from;
    for (const auto& [dst, metric, seq] : packet.table) {
      if (dst == self_) continue;
      const std::uint32_t candidate = metric + 1;
      const auto it = table_.find(dst);
      // Adopt on strictly newer sequence, or same sequence with a better
      // metric (the DSDV selection rule).
      if (it == table_.end() || seq > it->second.seq ||
          (seq == it->second.seq && candidate < it->second.metric)) {
        table_[dst] = Entry{via, candidate, seq};
      }
    }
    return;
  }
  if (packet.kind == Packet::Kind::Data && packet.final_dst != self_)
    forward_data(ctx, packet);
}

void DsdvProtocol::forward_data(NodeContext& ctx, Packet p) {
  const auto it = table_.find(p.final_dst);
  if (it == table_.end() || it->second.next_hop == self_)
    return;  // no route: the packet is dropped
  ctx.send(std::move(p), it->second.next_hop);
}

void DsdvProtocol::originate(NodeContext& ctx, NodeId dst,
                             std::uint64_t data_id) {
  Packet p;
  p.kind = Packet::Kind::Data;
  p.origin = self_;
  p.final_dst = dst;
  p.data_id = data_id;
  p.originated_at = ctx.now();
  forward_data(ctx, std::move(p));
}

ProtocolFactory dsdv_factory(Tick update_period) {
  return [update_period](NodeId id) {
    return std::make_unique<DsdvProtocol>(id, update_period);
  };
}

}  // namespace rtw::adhoc
