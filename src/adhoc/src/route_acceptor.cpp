#include "rtw/adhoc/route_acceptor.hpp"

#include "rtw/core/error.hpp"

namespace rtw::adhoc {

using rtw::core::StepContext;
using rtw::core::Symbol;

RouteWordAcceptor::RouteWordAcceptor(const Network& network, RouteQuery query)
    : network_(&network), query_(query) {}

void RouteWordAcceptor::reset() {
  in_group_ = false;
  fields_.clear();
  field_count_ = 0;
  group_time_ = 0;
  seen_nat_in_field_ = false;
  hops_.clear();
  lock_.reset();
}

void RouteWordAcceptor::close_group(Tick group_time) {
  // fields_ holds one nat per field (first nat wins); field_count_ is the
  // @-separated arity.  m_u groups have 4 fields, r_u groups 3.
  if (field_count_ == 4 && fields_.size() == 4) {
    const Tick sent_at = fields_[0];
    const auto src = static_cast<NodeId>(fields_[1]);
    const auto dst = static_cast<NodeId>(fields_[2]);
    const std::uint64_t body = fields_[3];
    if (body != query_.body) return;  // auxiliary traffic: not our chain
    if (sent_at != group_time) return;  // not a message encoding
    // Condition 1/2 checks for the next hop of u's chain.
    if (hops_.empty()) {
      if (src != query_.source || sent_at < query_.originated_at) {
        lock_ = false;
        return;
      }
    } else {
      const HopMessage& prev = hops_.back();
      if (prev.received_at == 0) {
        lock_ = false;  // previous hop never confirmed before the next send
        return;
      }
      if (src != prev.dst || sent_at != prev.received_at) {
        lock_ = false;  // chain continuity broken (condition 2)
        return;
      }
    }
    if (src >= network_->size() || dst >= network_->size() ||
        !network_->range(src, dst, sent_at)) {
      lock_ = false;  // range(s_i, d_i, t_i) fails (condition 2)
      return;
    }
    hops_.push_back({sent_at, 0, src, dst, body});
    return;
  }

  if (field_count_ == 3 && fields_.size() == 3 && !hops_.empty()) {
    HopMessage& pending = hops_.back();
    if (pending.received_at != 0) return;  // nothing awaiting receipt
    const Tick sent_at = fields_[0];
    const auto src = static_cast<NodeId>(fields_[1]);
    const auto dst = static_cast<NodeId>(fields_[2]);
    if (sent_at != pending.sent_at || src != pending.src ||
        dst != pending.dst)
      return;  // some other event (e.g. a node position fix)
    if (group_time != sent_at + 1) {
      lock_ = false;  // hop latency violates the section 5.2.1 granularity
      return;
    }
    pending.received_at = group_time;
    if (dst == query_.destination) lock_ = true;  // t'_f finite: condition 3
  }
}

void RouteWordAcceptor::on_tick(const StepContext& ctx) {
  if (lock_) {
    if (*lock_ && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
    return;
  }
  const Symbol dollar = rtw::core::marks::dollar();
  const Symbol at = rtw::core::marks::at();
  for (const auto& ts : ctx.arrivals) {
    if (lock_) break;
    if (ts.sym == dollar) {
      if (in_group_) {
        close_group(group_time_);
        in_group_ = false;
      } else {
        in_group_ = true;
        fields_.clear();
        field_count_ = 1;
        seen_nat_in_field_ = false;
        group_time_ = ts.time;
      }
      continue;
    }
    if (!in_group_) continue;
    if (ts.sym == at) {
      ++field_count_;
      seen_nat_in_field_ = false;
      continue;
    }
    if (ts.sym.is_nat() && !seen_nat_in_field_) {
      fields_.push_back(ts.sym.as_nat());
      seen_nat_in_field_ = true;
    }
  }
  if (lock_ && *lock_ && ctx.out.can_write(ctx.now))
    ctx.out.write(ctx.now, ctx.out.accept_symbol());
}

std::optional<bool> RouteWordAcceptor::locked() const { return lock_; }

std::unique_ptr<rtw::core::OnlineAcceptor> make_online_route_acceptor(
    std::shared_ptr<const Network> network, RouteQuery query,
    rtw::core::RunOptions options) {
  if (!network)
    throw rtw::core::ModelError(
        "adhoc::make_online_route_acceptor: null network");
  auto algorithm = std::make_unique<RouteWordAcceptor>(*network, query);
  return std::make_unique<rtw::core::EngineOnlineAcceptor>(
      std::move(algorithm), options, std::move(network));
}

}  // namespace rtw::adhoc
