#include "rtw/adhoc/protocols.hpp"

#include <algorithm>

namespace rtw::adhoc {

DsrProtocol::DsrProtocol(NodeId self, Tick request_retry,
                         std::uint32_t max_retries)
    : self_(self), request_retry_(request_retry), max_retries_(max_retries) {}

void DsrProtocol::issue_request(NodeContext& ctx, NodeId dst) {
  Packet p;
  p.kind = Packet::Kind::RouteRequest;
  p.origin = self_;
  p.final_dst = dst;
  p.seq = ++request_seq_;
  p.route = {self_};  // accumulated path starts at the requester
  seen_requests_.insert({self_, p.seq});
  ctx.broadcast(std::move(p));
}

void DsrProtocol::send_along_route(NodeContext& ctx, NodeId dst,
                                   std::uint64_t data_id,
                                   const std::vector<NodeId>& route) {
  Packet p;
  p.kind = Packet::Kind::Data;
  p.origin = self_;
  p.final_dst = dst;
  p.data_id = data_id;
  p.originated_at = ctx.now();
  p.route = route;  // full source route: self_, ..., dst
  // Next hop is the entry after self_ in the route.
  const auto it = std::find(route.begin(), route.end(), self_);
  if (it == route.end() || it + 1 == route.end()) return;
  ctx.send(std::move(p), *(it + 1));
}

void DsrProtocol::originate(NodeContext& ctx, NodeId dst,
                            std::uint64_t data_id) {
  if (const auto it = route_cache_.find(dst); it != route_cache_.end()) {
    send_along_route(ctx, dst, data_id, it->second);
    return;
  }
  buffer_.push_back({data_id, dst, ctx.now() + request_retry_, 0});
  issue_request(ctx, dst);
}

void DsrProtocol::on_tick(NodeContext& ctx) {
  // Retry pending discoveries; drop after max_retries.
  std::vector<PendingData> kept;
  for (auto& pending : buffer_) {
    if (const auto it = route_cache_.find(pending.dst);
        it != route_cache_.end()) {
      send_along_route(ctx, pending.dst, pending.data_id, it->second);
      continue;
    }
    if (ctx.now() >= pending.next_request) {
      if (pending.retries >= max_retries_) continue;  // give up
      ++pending.retries;
      pending.next_request = ctx.now() + request_retry_;
      issue_request(ctx, pending.dst);
    }
    kept.push_back(pending);
  }
  buffer_ = std::move(kept);
}

void DsrProtocol::on_receive(NodeContext& ctx, const Packet& packet) {
  switch (packet.kind) {
    case Packet::Kind::RouteRequest: {
      if (!seen_requests_.insert({packet.origin, packet.seq}).second) return;
      if (std::find(packet.route.begin(), packet.route.end(), self_) !=
          packet.route.end())
        return;  // already on the accumulated path (loop)
      std::vector<NodeId> path = packet.route;
      path.push_back(self_);
      if (packet.final_dst == self_) {
        // Answer with the full route, unicast back along the reverse path.
        Packet reply;
        reply.kind = Packet::Kind::RouteReply;
        reply.origin = self_;
        reply.final_dst = packet.origin;
        reply.seq = packet.seq;
        reply.route = path;  // origin ... self_
        // Reverse route: previous node on the accumulated path.
        ctx.send(std::move(reply), packet.route.back());
        return;
      }
      if (packet.ttl == 0) return;
      Packet fwd = packet;
      fwd.route = std::move(path);
      ctx.broadcast(std::move(fwd));
      return;
    }
    case Packet::Kind::RouteReply: {
      // The reply's route runs origin_of_request ... destination; every
      // node on it may cache the suffix from itself.
      const auto self_pos =
          std::find(packet.route.begin(), packet.route.end(), self_);
      if (self_pos == packet.route.end()) return;
      route_cache_[packet.route.back()] =
          std::vector<NodeId>(self_pos, packet.route.end());
      if (packet.final_dst == self_) return;  // requester: buffer flushes
                                              // on the next tick
      // Keep relaying toward the requester along the reverse path.
      if (self_pos != packet.route.begin())
        ctx.send(packet, *(self_pos - 1));
      return;
    }
    case Packet::Kind::Data: {
      if (packet.final_dst == self_) return;  // delivered
      // Source-routed forwarding.
      const auto self_pos =
          std::find(packet.route.begin(), packet.route.end(), self_);
      if (self_pos == packet.route.end() ||
          self_pos + 1 == packet.route.end())
        return;  // not on the route / malformed: drop
      ctx.send(packet, *(self_pos + 1));
      return;
    }
    case Packet::Kind::TableUpdate:
      return;  // not ours
  }
}

ProtocolFactory dsr_factory(Tick request_retry, std::uint32_t max_retries) {
  return [request_retry, max_retries](NodeId id) {
    return std::make_unique<DsrProtocol>(id, request_retry, max_retries);
  };
}

}  // namespace rtw::adhoc
