#include "rtw/adhoc/mobility.hpp"

#include <algorithm>

#include "rtw/core/error.hpp"

namespace rtw::adhoc {

namespace {

/// Reflects a 1-D coordinate into [0, limit] (billiard bounce).
double reflect(double x, double limit) {
  if (limit <= 0.0) return 0.0;
  const double period = 2.0 * limit;
  double m = std::fmod(x, period);
  if (m < 0) m += period;
  return m <= limit ? m : period - m;
}

}  // namespace

ConstantVelocity::ConstantVelocity(Vec2 start, Vec2 velocity, Region region)
    : start_(start), velocity_(velocity), region_(region) {}

Vec2 ConstantVelocity::position(Tick t) const {
  const double ft = static_cast<double>(t);
  return {reflect(start_.x + velocity_.x * ft, region_.width),
          reflect(start_.y + velocity_.y * ft, region_.height)};
}

RandomWaypoint::RandomWaypoint(Region region, double min_speed,
                               double max_speed, Tick pause_time,
                               std::uint64_t seed, NodeId node)
    : region_(region),
      min_speed_(min_speed),
      max_speed_(max_speed),
      pause_(pause_time),
      rng_(rtw::sim::Xoshiro256ss(seed).substream(node)) {
  if (min_speed <= 0 || max_speed < min_speed)
    throw rtw::core::ModelError("RandomWaypoint: bad speed range");
  // First leg starts at a uniform position.
  Leg first;
  first.from = {rng_.uniform_real(0, region_.width),
                rng_.uniform_real(0, region_.height)};
  first.to = {rng_.uniform_real(0, region_.width),
              rng_.uniform_real(0, region_.height)};
  const double speed = rng_.uniform_real(min_speed_, max_speed_);
  const double dist = distance(first.from, first.to);
  const Tick travel = std::max<Tick>(1, static_cast<Tick>(dist / speed));
  first.start = 0;
  first.arrive = travel;
  first.depart = first.arrive + pause_;
  legs_.push_back(first);
}

const RandomWaypoint::Leg& RandomWaypoint::leg_covering(Tick t) const {
  while (legs_.back().depart < t) {
    const Leg& prev = legs_.back();
    Leg next;
    next.from = prev.to;
    next.to = {rng_.uniform_real(0, region_.width),
               rng_.uniform_real(0, region_.height)};
    const double speed = rng_.uniform_real(min_speed_, max_speed_);
    const double dist = distance(next.from, next.to);
    const Tick travel = std::max<Tick>(1, static_cast<Tick>(dist / speed));
    next.start = prev.depart;
    next.arrive = next.start + travel;
    next.depart = next.arrive + pause_;
    legs_.push_back(next);
  }
  // Binary search the covering leg (t <= leg.depart, t >= leg.start).
  const auto it = std::lower_bound(
      legs_.begin(), legs_.end(), t,
      [](const Leg& leg, Tick tt) { return leg.depart < tt; });
  return *it;
}

Vec2 RandomWaypoint::position(Tick t) const {
  const Leg& leg = leg_covering(t);
  if (t >= leg.arrive) return leg.to;  // paused at the waypoint
  const double progress = static_cast<double>(t - leg.start) /
                          static_cast<double>(leg.arrive - leg.start);
  return leg.from + (leg.to - leg.from) * progress;
}

}  // namespace rtw::adhoc
