#include "rtw/adhoc/network.hpp"

#include <deque>

#include "rtw/core/error.hpp"

namespace rtw::adhoc {

Network::Network(const NetworkConfig& config)
    : radio_range_(config.radio_range) {
  if (config.nodes == 0)
    throw rtw::core::ModelError("Network: need at least one node");
  for (NodeId i = 0; i < config.nodes; ++i)
    nodes_.push_back(std::make_unique<RandomWaypoint>(
        config.region, config.min_speed, config.max_speed, config.pause_time,
        config.seed, i));
}

Network::Network(std::vector<std::unique_ptr<Mobility>> trajectories,
                 double radio_range)
    : nodes_(std::move(trajectories)), radio_range_(radio_range) {
  if (nodes_.empty())
    throw rtw::core::ModelError("Network: need at least one node");
  for (const auto& m : nodes_)
    if (!m) throw rtw::core::ModelError("Network: null trajectory");
}

Vec2 Network::position(NodeId node, Tick t) const {
  if (node >= nodes_.size())
    throw rtw::core::ModelError("Network: node id out of range");
  return nodes_[node]->position(t);
}

bool Network::range(NodeId a, NodeId b, Tick t) const {
  if (a == b) return false;
  return distance(position(a, t), position(b, t)) <= radio_range_;
}

std::vector<NodeId> Network::neighbors(NodeId node, Tick t) const {
  std::vector<NodeId> out;
  for (NodeId other = 0; other < size(); ++other)
    if (range(node, other, t)) out.push_back(other);
  return out;
}

std::optional<unsigned> Network::static_shortest_hops(NodeId src, NodeId dst,
                                                      Tick t) const {
  if (src == dst) return 0u;
  std::vector<unsigned> dist(size(), ~0u);
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u, t)) {
      if (dist[v] != ~0u) continue;
      dist[v] = dist[u] + 1;
      if (v == dst) return dist[v];
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<Tick> Network::earliest_delivery(NodeId src, NodeId dst,
                                               Tick t0, Tick deadline) const {
  if (src == dst) return t0;
  // Earliest-arrival BFS on the temporal graph: holder set per tick.  A
  // node holding the message at time t can hand it to every neighbor at t,
  // who holds it from t + 1.
  std::vector<char> holds(size(), 0);
  holds[src] = 1;
  for (Tick t = t0; t < deadline; ++t) {
    std::vector<NodeId> holders;
    for (NodeId i = 0; i < size(); ++i)
      if (holds[i]) holders.push_back(i);
    bool changed = false;
    for (NodeId u : holders) {
      for (NodeId v : neighbors(u, t)) {
        if (holds[v]) continue;
        if (v == dst) return t + 1;
        holds[v] = 1;
        changed = true;
      }
    }
    if (!changed && holders.size() == size()) break;
  }
  return std::nullopt;
}

}  // namespace rtw::adhoc
