#include "rtw/adhoc/protocols.hpp"

namespace rtw::adhoc {

AodvProtocol::AodvProtocol(NodeId self, Tick route_lifetime,
                           Tick request_retry, std::uint32_t max_retries)
    : self_(self),
      lifetime_(route_lifetime),
      request_retry_(request_retry),
      max_retries_(max_retries) {}

bool AodvProtocol::have_route(NodeId dst, Tick now) const {
  const auto it = table_.find(dst);
  return it != table_.end() && it->second.expires > now;
}

void AodvProtocol::install(NodeId dst, NodeId next_hop, std::uint32_t hops,
                           std::uint64_t seq, Tick now) {
  const auto it = table_.find(dst);
  if (it != table_.end() && it->second.expires > now) {
    // Prefer fresher sequence numbers, then shorter routes.
    if (seq < it->second.dst_seq) return;
    if (seq == it->second.dst_seq && hops >= it->second.hops) {
      it->second.expires = now + lifetime_;  // refresh only
      return;
    }
  }
  table_[dst] = Route{next_hop, hops, seq, now + lifetime_};
}

void AodvProtocol::issue_request(NodeContext& ctx, NodeId dst) {
  Packet p;
  p.kind = Packet::Kind::RouteRequest;
  p.origin = self_;
  p.final_dst = dst;
  p.seq = ++rreq_seq_;
  p.data_id = ++own_seq_;  // carries the origin's sequence number
  seen_requests_.insert({self_, p.seq});
  ctx.broadcast(std::move(p));
}

void AodvProtocol::originate(NodeContext& ctx, NodeId dst,
                             std::uint64_t data_id) {
  if (have_route(dst, ctx.now())) {
    Packet p;
    p.kind = Packet::Kind::Data;
    p.origin = self_;
    p.final_dst = dst;
    p.data_id = data_id;
    p.originated_at = ctx.now();
    ctx.send(std::move(p), table_[dst].next_hop);
    return;
  }
  buffer_.push_back({data_id, dst, ctx.now() + request_retry_, 0});
  issue_request(ctx, dst);
}

void AodvProtocol::on_tick(NodeContext& ctx) {
  std::vector<PendingData> kept;
  for (auto& pending : buffer_) {
    if (have_route(pending.dst, ctx.now())) {
      Packet p;
      p.kind = Packet::Kind::Data;
      p.origin = self_;
      p.final_dst = pending.dst;
      p.data_id = pending.data_id;
      p.originated_at = ctx.now();
      ctx.send(std::move(p), table_[pending.dst].next_hop);
      continue;
    }
    if (ctx.now() >= pending.next_request) {
      if (pending.retries >= max_retries_) continue;
      ++pending.retries;
      pending.next_request = ctx.now() + request_retry_;
      issue_request(ctx, pending.dst);
    }
    kept.push_back(pending);
  }
  buffer_ = std::move(kept);
}

void AodvProtocol::on_receive(NodeContext& ctx, const Packet& packet) {
  switch (packet.kind) {
    case Packet::Kind::RouteRequest: {
      // Install / refresh the reverse route toward the requester.
      install(packet.origin, packet.from, packet.hops_traveled, packet.data_id,
              ctx.now());
      if (!seen_requests_.insert({packet.origin, packet.seq}).second) return;
      if (packet.final_dst == self_) {
        ++own_seq_;
        Packet reply;
        reply.kind = Packet::Kind::RouteReply;
        reply.origin = self_;
        reply.final_dst = packet.origin;
        reply.seq = own_seq_;
        ctx.send(std::move(reply), packet.from);
        return;
      }
      if (packet.ttl == 0) return;
      ctx.broadcast(packet);
      return;
    }
    case Packet::Kind::RouteReply: {
      // Install the forward route toward the replying destination.
      install(packet.origin, packet.from, packet.hops_traveled, packet.seq,
              ctx.now());
      if (packet.final_dst == self_) return;  // requester: buffer flushes
      if (have_route(packet.final_dst, ctx.now()))
        ctx.send(packet, table_[packet.final_dst].next_hop);
      return;
    }
    case Packet::Kind::Data: {
      if (packet.final_dst == self_) return;
      if (have_route(packet.final_dst, ctx.now()))
        ctx.send(packet, table_[packet.final_dst].next_hop);
      return;  // no route: dropped (no route-error in this model)
    }
    case Packet::Kind::TableUpdate:
      return;
  }
}

ProtocolFactory aodv_factory(Tick route_lifetime, Tick request_retry,
                             std::uint32_t max_retries) {
  return [route_lifetime, request_retry, max_retries](NodeId id) {
    return std::make_unique<AodvProtocol>(id, route_lifetime, request_retry,
                                          max_retries);
  };
}

}  // namespace rtw::adhoc
