#include "rtw/adhoc/protocols.hpp"

namespace rtw::adhoc {

FloodingProtocol::FloodingProtocol(NodeId self, std::uint32_t ttl)
    : self_(self), ttl_(ttl) {}

void FloodingProtocol::originate(NodeContext& ctx, NodeId dst,
                                 std::uint64_t data_id) {
  Packet p;
  p.kind = Packet::Kind::Data;
  p.origin = self_;
  p.final_dst = dst;
  p.data_id = data_id;
  p.ttl = ttl_;
  p.originated_at = ctx.now();
  seen_.insert({self_, data_id});
  ctx.broadcast(std::move(p));
}

void FloodingProtocol::on_receive(NodeContext& ctx, const Packet& packet) {
  if (packet.kind != Packet::Kind::Data) return;
  if (!seen_.insert({packet.origin, packet.data_id}).second) return;
  if (packet.final_dst == self_) return;  // consumed; no rebroadcast needed
  if (packet.ttl == 0) return;
  ctx.broadcast(packet);  // hop counters/ttl are updated by the simulator
}

ProtocolFactory flooding_factory(std::uint32_t ttl) {
  return [ttl](NodeId id) {
    return std::make_unique<FloodingProtocol>(id, ttl);
  };
}

GossipProtocol::GossipProtocol(NodeId self, double forward_probability,
                               std::uint64_t seed, std::uint32_t ttl)
    : self_(self),
      p_(forward_probability),
      ttl_(ttl),
      rng_(rtw::sim::Xoshiro256ss(seed).substream(self)) {}

void GossipProtocol::originate(NodeContext& ctx, NodeId dst,
                               std::uint64_t data_id) {
  Packet packet;
  packet.kind = Packet::Kind::Data;
  packet.origin = self_;
  packet.final_dst = dst;
  packet.data_id = data_id;
  packet.ttl = ttl_;
  packet.originated_at = ctx.now();
  seen_.insert({self_, data_id});
  // The origin always transmits (gossiping gates only relays).
  ctx.broadcast(std::move(packet));
}

void GossipProtocol::on_receive(NodeContext& ctx, const Packet& packet) {
  if (packet.kind != Packet::Kind::Data) return;
  if (!seen_.insert({packet.origin, packet.data_id}).second) return;
  if (packet.final_dst == self_) return;
  if (packet.ttl == 0) return;
  if (!rng_.bernoulli(p_)) return;  // the gossip coin
  ctx.broadcast(packet);
}

ProtocolFactory gossip_factory(double forward_probability, std::uint64_t seed,
                               std::uint32_t ttl) {
  return [forward_probability, seed, ttl](NodeId id) {
    return std::make_unique<GossipProtocol>(id, forward_probability, seed,
                                            ttl);
  };
}

}  // namespace rtw::adhoc
