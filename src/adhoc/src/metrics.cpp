#include "rtw/adhoc/metrics.hpp"

namespace rtw::adhoc {

RoutingMetrics compute_metrics(const SimResult& result, const Network& network,
                               const std::vector<DataSpec>& messages) {
  RoutingMetrics metrics;
  metrics.originated = messages.size();
  metrics.control_transmissions = result.control_transmissions;
  metrics.data_transmissions = result.data_transmissions;

  for (const auto& msg : messages) {
    const auto delivery = result.delivery_of(msg.data_id);
    if (!delivery) continue;
    ++metrics.delivered;
    metrics.latency.add(
        static_cast<double>(delivery->delivered_at - msg.at));
    const auto optimal =
        network.static_shortest_hops(msg.src, msg.dst, msg.at);
    if (optimal && *optimal > 0) {
      const auto diff = static_cast<std::int64_t>(delivery->hops) -
                        static_cast<std::int64_t>(*optimal);
      metrics.hop_difference.add(static_cast<double>(diff));
      metrics.path_optimality.add(diff);
    }
  }
  return metrics;
}

}  // namespace rtw::adhoc
