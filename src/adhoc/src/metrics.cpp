#include "rtw/adhoc/metrics.hpp"

#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"

namespace rtw::adhoc {

RoutingMetrics compute_metrics(const SimResult& result, const Network& network,
                               const std::vector<DataSpec>& messages) {
  RoutingMetrics metrics;
  metrics.originated = messages.size();
  metrics.control_transmissions = result.control_transmissions;
  metrics.data_transmissions = result.data_transmissions;

  for (const auto& msg : messages) {
    const auto delivery = result.delivery_of(msg.data_id);
    if (!delivery) continue;
    ++metrics.delivered;
    metrics.latency.add(
        static_cast<double>(delivery->delivered_at - msg.at));
    const auto optimal =
        network.static_shortest_hops(msg.src, msg.dst, msg.at);
    if (optimal && *optimal > 0) {
      const auto diff = static_cast<std::int64_t>(delivery->hops) -
                        static_cast<std::int64_t>(*optimal);
      metrics.hop_difference.add(static_cast<double>(diff));
      metrics.path_optimality.add(diff);
    }
  }
  if (rtw::obs::enabled()) {
    // The §5.2.4 measures as registry metrics: ratios as gauges (last run
    // wins), per-delivery hop slack folded into a shared histogram.
    auto& reg = rtw::obs::MetricsRegistry::instance();
    static auto& ratio = reg.gauge("adhoc.delivery_ratio");
    static auto& overhead = reg.gauge("adhoc.overhead_per_message");
    static auto& optimality = reg.histogram("adhoc.path_optimality", 0, 8);
    ratio.set(metrics.delivery_ratio());
    overhead.set(metrics.overhead_per_message());
    for (std::size_t b = 0; b < metrics.path_optimality.bins(); ++b)
      for (std::uint64_t c = metrics.path_optimality.count(b); c-- > 0;)
        optimality.add(metrics.path_optimality.bin_value(b));
  }
  return metrics;
}

}  // namespace rtw::adhoc
