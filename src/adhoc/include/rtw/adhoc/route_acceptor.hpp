#pragma once
/// \file route_acceptor.hpp
/// Section 5.2.5's "immediate variant": a real-time algorithm that accepts
/// the language R_{n,u} -- consuming the *word* (message and receive-event
/// groups on the input tape) rather than a structured trace.
///
/// The acceptor is parameterized, like R_{n,u} itself, by the network
/// (for the range predicate) and by the message u = (source s,
/// destination d, body b, origination time t).  It parses the stream's
/// "$ ... $" groups:
///   * 4 payload fields (t @ s @ d @ b)  -- a message word m_u;
///   * 3 payload fields (t @ s @ d)      -- a receive event r_u;
///   * node words h_i also use $-groups but carry the `@`-separated
///     position fixes; they are recognized by their leading node id field
///     count and ignored (the network parameter already supplies
///     positions).
///
/// Groups whose body equals b form the hop chain u_1..u_f; the acceptor
/// checks conditions 1-2 incrementally (chain continuity, unit hop
/// latency, range at send time) and locks s_f when a receive event lands
/// the chain on d (condition 3: t'_f finite).  Structure violations lock
/// s_r; an undelivered word never locks and is rejected at the horizon --
/// exactly the R_{n,u} semantics.

#include <memory>
#include <optional>

#include "rtw/adhoc/words.hpp"
#include "rtw/core/acceptor.hpp"
#include "rtw/core/online.hpp"

namespace rtw::adhoc {

/// The message-u parameters of R_{n,u}.
struct RouteQuery {
  NodeId source = 0;
  NodeId destination = 0;
  std::uint64_t body = 0;
  Tick originated_at = 0;
};

class RouteWordAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  /// Keeps a non-owning reference to the network (outlives the acceptor).
  RouteWordAcceptor(const Network& network, RouteQuery query);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override { return "route-word-acceptor"; }

  std::size_t hops_seen() const noexcept { return hops_.size(); }

private:
  void close_group(Tick group_time);

  const Network* network_;
  RouteQuery query_;

  // Group scanner state.
  bool in_group_ = false;
  std::vector<std::uint64_t> fields_;  ///< nat payloads of the open group
  std::size_t field_count_ = 0;
  Tick group_time_ = 0;
  bool seen_nat_in_field_ = false;

  // Chain state.
  std::vector<HopMessage> hops_;      ///< sends observed for body b
  std::optional<bool> lock_;
};

/// Streaming face of R_{n,u} for the rtw::svc serving layer: an
/// OnlineAcceptor checking the route-witness conditions as the trace word
/// arrives (EngineOnlineAcceptor over a fresh RouteWordAcceptor, so online
/// verdicts are exactly the batch engine's).  The shared_ptr keeps the
/// network alive for the acceptor's non-owning reference.  Undelivered
/// words never lock: close such streams with StreamEnd::Truncated to get
/// the engine's horizon verdict.
std::unique_ptr<rtw::core::OnlineAcceptor> make_online_route_acceptor(
    std::shared_ptr<const Network> network, RouteQuery query,
    rtw::core::RunOptions options = {});

}  // namespace rtw::adhoc
