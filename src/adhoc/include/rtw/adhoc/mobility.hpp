#pragma once
/// \file mobility.hpp
/// Mobility models for ad hoc network nodes (section 5.2.2).
///
/// The paper notes that constant velocity "is made for simulation purposes"
/// [12] and adopts the general case where only the current position is
/// known [11].  The library offers:
///   * Stationary      -- fixed position;
///   * ConstantVelocity -- straight-line motion with billiard reflection
///     off the region borders;
///   * RandomWaypoint  -- the model of Broch et al. [12]: pick a uniform
///     destination, move at a uniform speed, pause, repeat.  `pause_time`
///     is the experiment knob of EXP-ROUTE (pause 0 = constant motion,
///     large pause = near-static network).
///
/// All models are deterministic functions of (seed, node, t), so the word
/// encodings h_i and the simulator see identical trajectories.

#include <cstdint>
#include <memory>

#include "rtw/adhoc/geometry.hpp"
#include "rtw/core/timed_word.hpp"
#include "rtw/sim/rng.hpp"

namespace rtw::adhoc {

using rtw::core::Tick;
using NodeId = std::uint32_t;

/// The rectangular region nodes live in.
struct Region {
  double width = 100.0;
  double height = 100.0;
};

/// A trajectory: position as a pure function of time.
class Mobility {
public:
  virtual ~Mobility() = default;
  virtual Vec2 position(Tick t) const = 0;
};

class Stationary final : public Mobility {
public:
  explicit Stationary(Vec2 at) : at_(at) {}
  Vec2 position(Tick) const override { return at_; }

private:
  Vec2 at_;
};

class ConstantVelocity final : public Mobility {
public:
  /// Moves from `start` with `velocity` per tick, reflecting off the
  /// region borders.
  ConstantVelocity(Vec2 start, Vec2 velocity, Region region);
  Vec2 position(Tick t) const override;

private:
  Vec2 start_;
  Vec2 velocity_;
  Region region_;
};

class RandomWaypoint final : public Mobility {
public:
  /// Deterministic in (seed, node).  Speeds are uniform in
  /// [min_speed, max_speed] (distance units per tick); after each leg the
  /// node pauses `pause_time` ticks.
  RandomWaypoint(Region region, double min_speed, double max_speed,
                 Tick pause_time, std::uint64_t seed, NodeId node);

  Vec2 position(Tick t) const override;

private:
  struct Leg {
    Tick start = 0;      ///< movement begins
    Tick arrive = 0;     ///< movement ends (pause begins)
    Tick depart = 0;     ///< pause ends = next leg's start
    Vec2 from;
    Vec2 to;
  };

  const Leg& leg_covering(Tick t) const;

  Region region_;
  double min_speed_;
  double max_speed_;
  Tick pause_;
  mutable rtw::sim::Xoshiro256ss rng_;
  mutable std::vector<Leg> legs_;
};

}  // namespace rtw::adhoc
