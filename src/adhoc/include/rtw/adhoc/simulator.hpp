#pragma once
/// \file simulator.hpp
/// Discrete-event simulator for ad hoc routing protocols.
///
/// Semantics (section 5.2.1): transmitting takes one time unit.  A packet
/// sent at tick t is delivered at tick t + 1 to the addressee (unicast, if
/// still within the sender's range *at send time*) or to every node in
/// range at send time (broadcast).  Every transmission and reception is
/// logged; the trace is the raw material for the word encodings m_u / r_u
/// and for the Broch-et-al. metrics.

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "rtw/adhoc/network.hpp"
#include "rtw/sim/fault.hpp"

namespace rtw::adhoc {

inline constexpr NodeId kBroadcast = 0xffffffffu;

/// A packet on the air or in an inbox.
struct Packet {
  enum class Kind {
    Data,          ///< application payload
    RouteRequest,  ///< DSR / AODV route discovery
    RouteReply,    ///< DSR / AODV discovery answer
    TableUpdate,   ///< DSDV periodic dump
  };

  Kind kind = Kind::Data;
  NodeId origin = 0;      ///< original source s of the logical message
  NodeId final_dst = 0;   ///< intended destination d
  NodeId from = 0;        ///< this hop's sender
  NodeId to = kBroadcast; ///< this hop's addressee (kBroadcast = broadcast)
  std::uint64_t data_id = 0;   ///< logical message id (body b, Data only)
  std::uint64_t seq = 0;       ///< per-origin sequence (dedupe, freshness)
  std::uint32_t ttl = 64;
  std::uint32_t hops_traveled = 0;
  Tick originated_at = 0;
  std::vector<NodeId> route;   ///< DSR accumulated/source route
  /// DSDV table entries: (destination, metric, sequence).
  std::vector<std::tuple<NodeId, std::uint32_t, std::uint64_t>> table;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Stable identity of a packet for fault-decision keying: the same logical
/// transmission (same kind / origin / body / sequence) draws the same
/// verdict on a given link no matter when or how often it is re-sent --
/// the erasure-coupling contract of rtw::sim::FaultInjector.
std::uint64_t packet_fault_key(const Packet& p) noexcept;

std::string to_string(Packet::Kind k);

/// One logged transmission (a send event: the paper's m_u).
struct SendEvent {
  Tick time = 0;
  Packet packet;

  friend bool operator==(const SendEvent&, const SendEvent&) = default;
};

/// One logged reception (the paper's r_u: receive events).
struct ReceiveEvent {
  Tick time = 0;
  NodeId by = 0;
  Packet packet;

  friend bool operator==(const ReceiveEvent&, const ReceiveEvent&) = default;
};

/// A logical application message to be routed (the paper's u).
struct DataSpec {
  std::uint64_t data_id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Tick at = 0;  ///< origination time t
};

/// Delivery record for a logical message.
struct Delivery {
  std::uint64_t data_id = 0;
  Tick delivered_at = 0;
  std::uint32_t hops = 0;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

class Simulator;

/// Per-node view handed to protocol callbacks.
class NodeContext {
public:
  NodeContext(Simulator& sim, NodeId self, Tick now)
      : sim_(&sim), self_(self), now_(now) {}

  NodeId self() const noexcept { return self_; }
  Tick now() const noexcept { return now_; }
  /// The node's own position -- the only thing a node knows about the
  /// world (section 5.2.2).
  Vec2 position() const;

  /// Queues `p` for transmission this tick (delivered next tick).  The
  /// simulator fills in `from` and stamps the hop counter.
  void send(Packet p, NodeId to);
  void broadcast(Packet p);

private:
  Simulator* sim_;
  NodeId self_;
  Tick now_;
};

/// A routing protocol instance, one per node.
class RoutingProtocol {
public:
  virtual ~RoutingProtocol() = default;
  virtual std::string name() const = 0;
  /// Called once per tick before packet processing (beacons, timers).
  virtual void on_tick(NodeContext& ctx) = 0;
  /// Called for each packet delivered to this node this tick.  Data
  /// packets addressed to this node as final destination are consumed by
  /// the simulator (delivery is recorded) *after* this call returns.
  virtual void on_receive(NodeContext& ctx, const Packet& packet) = 0;
  /// Called when the application asks this node to send payload
  /// `data_id` to `dst`.
  virtual void originate(NodeContext& ctx, NodeId dst,
                         std::uint64_t data_id) = 0;
};

using ProtocolFactory =
    std::function<std::unique_ptr<RoutingProtocol>(NodeId)>;

/// Radio-layer options.
struct RadioModel {
  /// ALOHA-style interference: when two or more packets reach the same
  /// node in one tick, they all collide there and none is received.  Off
  /// by default (the paper's section 5.2.1 model is collision-free).
  bool collisions = false;
};

/// Simulation results.
struct SimResult {
  std::vector<SendEvent> sends;
  std::vector<ReceiveEvent> receives;
  std::vector<Delivery> deliveries;      ///< first delivery per data_id
  std::uint64_t originated = 0;
  std::uint64_t control_transmissions = 0;  ///< non-Data sends
  std::uint64_t data_transmissions = 0;     ///< Data sends (incl. relays)
  std::uint64_t collided = 0;               ///< packets lost to interference
  std::uint64_t engine_events = 0;          ///< kernel events executed
  /// Per-run fault tally and injected-event records; both stay empty (and
  /// the run is byte-identical to an unfaulted one) under a noop plan.
  rtw::sim::FaultCounters faults;
  std::vector<rtw::sim::FaultRecord> fault_records;

  std::optional<Delivery> delivery_of(std::uint64_t data_id) const;

  friend bool operator==(const SimResult&, const SimResult&) = default;
};

class Simulator {
public:
  Simulator(const Network& network, const ProtocolFactory& factory,
            RadioModel radio = {});

  /// A simulator with deterministic fault injection: message drop /
  /// duplicate / delay at delivery time, node crash windows, all driven by
  /// (plan.seed, plan) -- replays bit-identically.  A noop plan behaves
  /// exactly like the plain constructor.
  Simulator(const Network& network, const ProtocolFactory& factory,
            RadioModel radio, rtw::sim::FaultPlan faults);

  /// Schedules a logical message origination.
  void schedule(DataSpec spec);

  /// Runs ticks 0..horizon-1 and returns the trace.
  SimResult run(Tick horizon);

  const Network& network() const noexcept { return *network_; }

private:
  friend class NodeContext;
  void transmit(NodeId from, Packet p, NodeId to, Tick now);

  const Network* network_;
  RadioModel radio_;
  std::vector<std::unique_ptr<RoutingProtocol>> protocols_;
  std::vector<DataSpec> pending_;
  std::vector<std::pair<Tick, Packet>> airborne_;  ///< sent this tick
  SimResult result_;
  std::map<std::uint64_t, bool> delivered_;
  std::optional<rtw::sim::FaultPlan> fault_plan_;
  rtw::sim::FaultInjector* injector_ = nullptr;  ///< live during run() only
};

}  // namespace rtw::adhoc
