#pragma once
/// \file metrics.hpp
/// The three performance measures of Broch et al. [12] that section 5.2.4
/// maps onto words of R_{n,u}:
///   * routing overhead -- the total number of (control) transmissions,
///     f + g in word terms;
///   * path optimality  -- delivered hop count minus the shortest path
///     that existed when the message was originated;
///   * delivery ratio   -- delivered / originated.

#include <optional>

#include "rtw/adhoc/words.hpp"
#include "rtw/sim/histogram.hpp"
#include "rtw/sim/stats.hpp"

namespace rtw::adhoc {

/// Aggregated metrics over one simulation run.
struct RoutingMetrics {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t control_transmissions = 0;
  std::uint64_t data_transmissions = 0;
  rtw::sim::OnlineStats latency;           ///< delivery - origination
  rtw::sim::OnlineStats hop_difference;    ///< actual - optimal hops
  rtw::sim::Histogram path_optimality{0, 8};

  double delivery_ratio() const {
    return originated
               ? static_cast<double>(delivered) /
                     static_cast<double>(originated)
               : 0.0;
  }
  /// Overhead per originated message (control packets; flooding's data
  /// rebroadcasts are charged as overhead too, minus the useful path).
  double overhead_per_message() const {
    if (!originated) return 0.0;
    return static_cast<double>(control_transmissions + data_transmissions) /
           static_cast<double>(originated);
  }
};

/// Computes the [12] metrics for a batch of scheduled messages against
/// their simulation result.  Path optimality compares each delivery's hop
/// count to Network::static_shortest_hops at origination time.
RoutingMetrics compute_metrics(const SimResult& result, const Network& network,
                               const std::vector<DataSpec>& messages);

}  // namespace rtw::adhoc
