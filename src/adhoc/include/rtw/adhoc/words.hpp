#pragma once
/// \file words.hpp
/// Section 5.2.2-5.2.5: the word encodings of nodes, messages and receive
/// events, the routing problem R_{n,u}, and the distributed decomposition
/// H_i = L_i R_i.
///
/// Encodings (the paper's enc over Sigma with $ and @ delimiters):
///   * h_i  -- node i: "$ e(i) @ e(q_i) $" at time 0, then
///     "$ e(i) @ e(p_i(t)) $" for each t = 1, 2, ... (the successive
///     positions with their time labels);
///   * m_u  -- message u sent at time t: "$ e(t) @ e(s) @ e(d) @ e(b) $"
///     at time t;
///   * r_u  -- the receive event: "$ e(t) @ e(s) @ e(d) $" at time t'.
///
/// A routing instance word is h_1 ... h_n m_{u_1} r_{u_1} ... (Definition
/// 3.5 merges).  `RouteTrace` carries the same information structurally
/// (hop messages with times/sources/destinations/bodies), and
/// `validate_route` checks the three conditions of section 5.2.4:
///   1. all hop bodies equal b, s_1 = s, d_f = d, t_1 = t;
///   2. the chain matches: d_i = s_{i+1}, t'_i = t_{i+1}, and
///      range(s_i, d_i, t_i) holds;
///   3. t'_f is finite (the message is delivered).

#include <optional>
#include <string>
#include <vector>

#include "rtw/adhoc/network.hpp"
#include "rtw/adhoc/simulator.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::adhoc {

/// h_i: the timed omega-word of node i (invariant characteristics q_i at
/// time 0, then one position fix per tick).  Generator-backed; proven
/// well-behaved.
rtw::core::TimedWord node_word(const Network& network, NodeId node);

/// a_n = h_1 h_2 ... h_n: the network with no messages.
rtw::core::TimedWord network_word(const Network& network);

/// One-hop message record (the m_u / r_u pair of section 5.2.3).
struct HopMessage {
  Tick sent_at = 0;        ///< t_i
  Tick received_at = 0;    ///< t'_i
  NodeId src = 0;          ///< s_i
  NodeId dst = 0;          ///< d_i
  std::uint64_t body = 0;  ///< b_i (the logical message id)
};

/// m_u as a finite timed word.
rtw::core::TimedWord message_word(const HopMessage& hop);
/// r_u as a finite timed word.
rtw::core::TimedWord receive_word(const HopMessage& hop);

/// A candidate member of R_{n,u}: the data-bearing hop chain u_1..u_f plus
/// auxiliary routing messages rt_1..rt_g (discovery, updates).
struct RouteTrace {
  NodeId source = 0;         ///< s
  NodeId destination = 0;    ///< d
  std::uint64_t body = 0;    ///< b
  Tick originated_at = 0;    ///< t
  std::vector<HopMessage> hops;      ///< u_1 ... u_f (in order)
  std::vector<HopMessage> auxiliary; ///< rt_1 ... rt_g
  bool delivered = false;            ///< t'_f finite (condition 3)

  /// Routing overhead f + g.
  std::uint64_t overhead() const {
    return hops.size() + auxiliary.size();
  }
};

/// Extracts the RouteTrace of logical message `data_id` from a simulation
/// result: the hop chain is reconstructed from the Data receive events
/// (each relay is one u_i); all control transmissions are rt_j.  The chain
/// is a *witness* of the section 5.2.4 conditions: hops link only when the
/// sender held the message at the send time (it received the packet at
/// exactly that tick, or it is the origin, which condition 1 lets hold),
/// so `delivered` is true iff a complete condition-2 chain reaches d --
/// retransmissions and fault-delayed copies never stitch hops of different
/// attempts together.
RouteTrace extract_route(const SimResult& result, const Network& network,
                         std::uint64_t data_id);

/// Checks the section 5.2.4 conditions; returns a human-readable violation
/// or nullopt when the trace is a valid member of R_{n,u}.
std::optional<std::string> validate_route(const RouteTrace& trace,
                                          const Network& network);

/// The lossy variant R'_{n,u} (end of section 5.2.4): condition 3 is
/// dropped -- undelivered messages (t'_f = omega) are members too.  The
/// paper also notes that in practice "a lost message is a message for
/// which t'_f - t_1 > T"; `loss_threshold`, when set, applies that
/// reading: a delivery slower than T counts as lost but the word is still
/// in R'.  Returns the violation (structure errors still reject) or
/// nullopt.
std::optional<std::string> validate_route_lossy(
    const RouteTrace& trace, const Network& network,
    std::optional<Tick> loss_threshold = std::nullopt);

/// True when the trace counts as *lost* under the threshold reading:
/// never delivered, or delivered later than originated_at + threshold.
bool is_lost(const RouteTrace& trace, Tick loss_threshold);

/// The full routing-instance word: h_1..h_n merged with every m/r word of
/// the trace, truncated to position fixes up to `horizon` (the h_i words
/// are infinite; acceptance machinery uses prefixes).
rtw::core::TimedWord route_instance_word(const RouteTrace& trace,
                                         const Network& network);

// ------------------------------------------------- distributed views (5.2.5)

/// The local component L_i: h_i plus every message *sent* by node i.
struct LocalView {
  NodeId node = 0;
  std::vector<HopMessage> sent;  ///< messages with src == node
};

/// The remote component R_i: the receive events of messages addressed to i
/// (the union of M_{l,i} over all l).
struct RemoteView {
  NodeId node = 0;
  std::vector<HopMessage> received;  ///< messages with dst == node
};

/// M_{i,j}: receive events of messages sent from i to j.
std::vector<HopMessage> m_between(const RouteTrace& trace, NodeId i, NodeId j);

/// Decomposes a trace into per-node views H_i = (L_i, R_i).
std::vector<std::pair<LocalView, RemoteView>> decompose(
    const RouteTrace& trace, NodeId nodes);

/// H_i = L_i R_i as a timed word (node word merged with the view's
/// message/receive words).
rtw::core::TimedWord view_word(const Network& network, const LocalView& local,
                               const RemoteView& remote);

}  // namespace rtw::adhoc
