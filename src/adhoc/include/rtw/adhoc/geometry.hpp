#pragma once
/// \file geometry.hpp
/// Plane geometry for node positions.

#include <cmath>

namespace rtw::adhoc {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr bool operator==(Vec2, Vec2) = default;
};

inline double norm(Vec2 v) { return std::sqrt(v.x * v.x + v.y * v.y); }
inline double distance(Vec2 a, Vec2 b) { return norm(a - b); }

}  // namespace rtw::adhoc
