#pragma once
/// \file protocols.hpp
/// The routing protocols compared in EXP-ROUTE, modeled after the families
/// evaluated by Broch et al. [12] (the paper's performance-comparison
/// reference):
///
///   * Flooding  -- the brute-force baseline: every node rebroadcasts each
///     unseen data packet once.  Maximal overhead, near-maximal delivery.
///   * DSDV-like -- proactive distance-vector with per-destination
///     sequence numbers and periodic full-table broadcasts.  Degrades with
///     mobility (tables go stale between updates).  Simplification vs the
///     full protocol: no triggered updates or broken-link (odd-sequence)
///     advertisements.
///   * DSR-like  -- on-demand source routing: route-request floods
///     accumulate the path, the destination returns a route reply along
///     the reversed path, data carries the full source route.
///     Simplification: no promiscuous route shortening, no route-error
///     packets (a broken source route loses the packet and is retried by
///     the origin's request timer).
///   * AODV-like -- on-demand distance vector: request floods install
///     reverse pointers, replies install forward entries, data is
///     forwarded hop by hop.  Simplification: only the destination
///     answers requests; no route-error propagation (stale entries age
///     out via lifetimes).
///
/// All four share the simulator's radio model; factories are provided for
/// plugging into Simulator.

#include <map>
#include <set>

#include "rtw/adhoc/simulator.hpp"

namespace rtw::adhoc {

class FloodingProtocol final : public RoutingProtocol {
public:
  /// `ttl` bounds rebroadcast depth (use >= network diameter).
  explicit FloodingProtocol(NodeId self, std::uint32_t ttl = 64);

  std::string name() const override { return "flooding"; }
  void on_tick(NodeContext&) override {}
  void on_receive(NodeContext& ctx, const Packet& packet) override;
  void originate(NodeContext& ctx, NodeId dst, std::uint64_t data_id) override;

private:
  NodeId self_;
  std::uint32_t ttl_;
  std::set<std::pair<NodeId, std::uint64_t>> seen_;  ///< (origin, data_id)
};

class DsdvProtocol final : public RoutingProtocol {
public:
  DsdvProtocol(NodeId self, Tick update_period = 15);

  std::string name() const override { return "dsdv"; }
  void on_tick(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Packet& packet) override;
  void originate(NodeContext& ctx, NodeId dst, std::uint64_t data_id) override;

private:
  struct Entry {
    NodeId next_hop = 0;
    std::uint32_t metric = 0;
    std::uint64_t seq = 0;
  };
  void forward_data(NodeContext& ctx, Packet p);

  NodeId self_;
  Tick update_period_;
  std::uint64_t own_seq_ = 0;
  std::map<NodeId, Entry> table_;
};

class DsrProtocol final : public RoutingProtocol {
public:
  DsrProtocol(NodeId self, Tick request_retry = 25,
              std::uint32_t max_retries = 4);

  std::string name() const override { return "dsr"; }
  void on_tick(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Packet& packet) override;
  void originate(NodeContext& ctx, NodeId dst, std::uint64_t data_id) override;

private:
  struct PendingData {
    std::uint64_t data_id = 0;
    NodeId dst = 0;
    Tick next_request = 0;
    std::uint32_t retries = 0;
  };
  void send_along_route(NodeContext& ctx, NodeId dst, std::uint64_t data_id,
                        const std::vector<NodeId>& route);
  void issue_request(NodeContext& ctx, NodeId dst);

  NodeId self_;
  Tick request_retry_;
  std::uint32_t max_retries_;
  std::uint64_t request_seq_ = 0;
  std::map<NodeId, std::vector<NodeId>> route_cache_;  ///< dst -> full path
  std::set<std::pair<NodeId, std::uint64_t>> seen_requests_;
  std::vector<PendingData> buffer_;
};

class AodvProtocol final : public RoutingProtocol {
public:
  AodvProtocol(NodeId self, Tick route_lifetime = 120, Tick request_retry = 25,
               std::uint32_t max_retries = 4);

  std::string name() const override { return "aodv"; }
  void on_tick(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Packet& packet) override;
  void originate(NodeContext& ctx, NodeId dst, std::uint64_t data_id) override;

private:
  struct Route {
    NodeId next_hop = 0;
    std::uint32_t hops = 0;
    std::uint64_t dst_seq = 0;
    Tick expires = 0;
  };
  struct PendingData {
    std::uint64_t data_id = 0;
    NodeId dst = 0;
    Tick next_request = 0;
    std::uint32_t retries = 0;
  };
  bool have_route(NodeId dst, Tick now) const;
  void install(NodeId dst, NodeId next_hop, std::uint32_t hops,
               std::uint64_t seq, Tick now);
  void issue_request(NodeContext& ctx, NodeId dst);

  NodeId self_;
  Tick lifetime_;
  Tick request_retry_;
  std::uint32_t max_retries_;
  std::uint64_t own_seq_ = 0;
  std::uint64_t rreq_seq_ = 0;
  std::map<NodeId, Route> table_;
  std::set<std::pair<NodeId, std::uint64_t>> seen_requests_;
  std::vector<PendingData> buffer_;
};

/// Gossip: probabilistic flooding -- each node rebroadcasts an unseen data
/// packet with probability `p` (deterministic per (seed, node, packet)).
/// The classic overhead/reliability dial between flooding (p = 1) and
/// nothing (p = 0).
class GossipProtocol final : public RoutingProtocol {
public:
  GossipProtocol(NodeId self, double forward_probability, std::uint64_t seed,
                 std::uint32_t ttl = 64);

  std::string name() const override { return "gossip"; }
  void on_tick(NodeContext&) override {}
  void on_receive(NodeContext& ctx, const Packet& packet) override;
  void originate(NodeContext& ctx, NodeId dst, std::uint64_t data_id) override;

private:
  NodeId self_;
  double p_;
  std::uint32_t ttl_;
  rtw::sim::Xoshiro256ss rng_;
  std::set<std::pair<NodeId, std::uint64_t>> seen_;
};

/// Factories for the Simulator.
ProtocolFactory flooding_factory(std::uint32_t ttl = 64);
ProtocolFactory gossip_factory(double forward_probability,
                               std::uint64_t seed = 1,
                               std::uint32_t ttl = 64);
ProtocolFactory dsdv_factory(Tick update_period = 15);
ProtocolFactory dsr_factory(Tick request_retry = 25,
                            std::uint32_t max_retries = 4);
ProtocolFactory aodv_factory(Tick route_lifetime = 120,
                             Tick request_retry = 25,
                             std::uint32_t max_retries = 4);

}  // namespace rtw::adhoc
