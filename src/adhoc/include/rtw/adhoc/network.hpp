#pragma once
/// \file network.hpp
/// The ad hoc network substrate (section 5.2): n mobile nodes, the
/// range(n1, n2, t) predicate, and the temporal-connectivity oracle used
/// for path-optimality metrics.
///
/// Radio model: unit disk -- range(n1, n2, t) holds iff the Euclidean
/// distance between the nodes' positions at t is at most `radio_range`.
/// Transmission takes one time unit (the paper's granularity assumption,
/// section 5.2.1): a message emitted at t is received at t + 1 by nodes in
/// range of the sender *at time t*.

#include <memory>
#include <optional>
#include <vector>

#include "rtw/adhoc/mobility.hpp"

namespace rtw::adhoc {

/// Configuration for a randomly generated mobile network.
struct NetworkConfig {
  NodeId nodes = 10;
  Region region{100.0, 100.0};
  double radio_range = 35.0;
  double min_speed = 0.5;
  double max_speed = 2.0;
  Tick pause_time = 20;
  std::uint64_t seed = 1;
};

/// An n-node network with per-node trajectories.
class Network {
public:
  /// Random-waypoint network per `config`.
  explicit Network(const NetworkConfig& config);

  /// Custom trajectories (for tests and hand-built scenarios).
  Network(std::vector<std::unique_ptr<Mobility>> trajectories,
          double radio_range);

  NodeId size() const noexcept { return static_cast<NodeId>(nodes_.size()); }
  double radio_range() const noexcept { return radio_range_; }

  Vec2 position(NodeId node, Tick t) const;

  /// The paper's range(n1, n2, t) predicate.  range(i, i, t) is false.
  bool range(NodeId a, NodeId b, Tick t) const;

  /// Neighbors of `node` at time t.
  std::vector<NodeId> neighbors(NodeId node, Tick t) const;

  /// Hop count of the shortest path in the *static* connectivity graph at
  /// time t (BFS); nullopt when disconnected.  This is the [12]
  /// path-optimality baseline ("length of the shortest path that physically
  /// existed ... when originated").
  std::optional<unsigned> static_shortest_hops(NodeId src, NodeId dst,
                                               Tick t) const;

  /// Earliest delivery time over the *temporal* graph: starting at `src`
  /// at time t0, a message can hop to any node in range of its holder at
  /// each tick (arriving one tick later).  nullopt if `dst` is unreachable
  /// by `deadline`.
  std::optional<Tick> earliest_delivery(NodeId src, NodeId dst, Tick t0,
                                        Tick deadline) const;

private:
  std::vector<std::unique_ptr<Mobility>> nodes_;
  double radio_range_;
};

}  // namespace rtw::adhoc
