#pragma once
/// \file corrections.hpp
/// The c-algorithm variant of section 4.2 at the word level: "data that
/// arrive during the computation consist in *corrections* to the initial
/// input rather than new input" ([16], [26, 27]).  The paper notes these
/// are "easily modeled using the same technique" as d-algorithms; this
/// module is that modeling.
///
/// Word layout: o $ v_1 ... v_n at time 0 (the initial input), then per
/// correction j (arriving per the law, beyond the initial n) the group
///   <c> at t_j - 1,  <fix> index value  at t_j
/// where index is the 0-based position being revised and value the new
/// content (both nat symbols).
///
/// The acceptor maintains the revisable input vector, re-applies each
/// correction at `correction_cost` work per fix, and terminates exactly
/// like the d-algorithm acceptor -- when everything arrived is absorbed at
/// the end of a tick.  Acceptance compares the aggregate (sum) of the
/// corrected input with the proposed output.

#include <deque>
#include <functional>
#include <optional>

#include "rtw/core/acceptor.hpp"
#include "rtw/dataacc/arrival_law.hpp"

namespace rtw::dataacc {

/// One revision: values[index] becomes value.
struct Correction {
  std::uint64_t index = 0;
  std::uint64_t value = 0;
};

/// A correcting-computation instance.
struct CorrectionInstance {
  ArrivalLaw law{1, 1.0, 0.0, 0.5};
  /// Initial value of position i (0-based, i < law.initial()).
  std::function<std::uint64_t(std::uint64_t)> initial;
  /// j-th correction (1-based, j = arrival_index - n).
  std::function<Correction(std::uint64_t)> correction;
  std::vector<rtw::core::Symbol> proposed_output;
};

/// The designated marker opening a correction group.
rtw::core::Symbol fix_mark();

/// Builds the c-algorithm timed omega-word.
rtw::core::TimedWord build_correction_word(const CorrectionInstance& instance,
                                           rtw::core::Tick horizon = 1 << 20);

/// The ground-truth corrected sum after the first `count` corrections.
std::uint64_t corrected_sum(const CorrectionInstance& instance,
                            std::uint64_t count);

/// The section 4.2 acceptor for correcting computations: P_w absorbs the
/// initial input (cost `base_cost` per datum) and each correction (cost
/// `correction_cost`); P_m locks at the termination moment, comparing the
/// running corrected sum with the proposed output.
class CorrectionAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  CorrectionAcceptor(rtw::core::Tick base_cost,
                     rtw::core::Tick correction_cost);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override { return "c-algorithm-acceptor"; }

  rtw::core::Tick termination_time() const noexcept { return termination_; }
  std::uint64_t corrections_applied() const noexcept { return applied_; }

private:
  enum class Phase { Header, Streaming, AcceptLock, RejectLock };

  rtw::core::Tick base_cost_;
  rtw::core::Tick correction_cost_;
  Phase phase_ = Phase::Header;
  std::vector<rtw::core::Symbol> proposed_;
  std::vector<std::uint64_t> values_;
  std::uint64_t sum_ = 0;

  // Work accounting (same elapsed-aware scheme as DataAccAcceptor).
  struct PendingItem {
    bool is_correction = false;
    std::uint64_t a = 0;  ///< datum value, or correction index
    std::uint64_t b = 0;  ///< correction value
  };
  std::deque<PendingItem> queue_;
  rtw::core::Tick current_job_done_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t applied_ = 0;
  rtw::core::Tick termination_ = 0;
  rtw::core::Tick last_tick_ = 0;

  // Parser state for the in-flight <fix> group.
  int fix_field_ = -1;  ///< -1: none, 0: expecting index, 1: expecting value
  std::uint64_t fix_index_ = 0;
};

}  // namespace rtw::dataacc
