#pragma once
/// \file arrival_law.hpp
/// Data arrival laws for the data-accumulating paradigm (section 4.2).
///
/// A d-algorithm works on a virtually endless input stream whose arrival
/// rate is given by a *data arrival law* f(n, t): the amount of data
/// available at time t, where n is the amount available beforehand.  The
/// paper's canonical family (equation 4) is
///
///     f(n, t) = n + k * n^gamma * t^beta ,   k, gamma, beta > 0.
///
/// The law is evaluated over discrete time; the available count is floored.

#include <cstdint>
#include <optional>
#include <string>

#include "rtw/core/timed_word.hpp"

namespace rtw::dataacc {

using rtw::core::Tick;

/// The polynomial arrival law of equation (4).
class ArrivalLaw {
public:
  /// n >= 1; k > 0; gamma, beta >= 0.
  ArrivalLaw(std::uint64_t n, double k, double gamma, double beta);

  std::uint64_t initial() const noexcept { return n_; }
  double k() const noexcept { return k_; }
  double gamma() const noexcept { return gamma_; }
  double beta() const noexcept { return beta_; }

  /// floor(f(n, t)): total data available at time t (>= n).
  std::uint64_t count_at(Tick t) const;

  /// Arrival time of the j-th datum (1-based).  Data 1..n arrive at time 0;
  /// for j > n this is the least t with count_at(t) >= j, searched up to
  /// `horizon` (nullopt if the law never delivers that many by then --
  /// possible only for beta == 0).
  std::optional<Tick> arrival_time(std::uint64_t j, Tick horizon) const;

  /// Human-readable form "n + k*n^g*t^b".
  std::string to_string() const;

private:
  std::uint64_t n_;
  double k_;
  double gamma_;
  double beta_;
};

/// Parameters of a data-accumulating execution: `cost` ticks of work per
/// datum on one processor, `processors` working in parallel (the paper's
/// rt-PROC angle: a p-processor implementation retires p work units per
/// tick).
struct ProcessingRate {
  Tick cost = 1;
  std::uint32_t processors = 1;
};

/// Predicted termination time of a d-algorithm: the least t such that all
/// data arrived by t can be processed within t, i.e.
/// ceil(cost * f(n,t) / processors) <= t.  This is the fixed point
/// t = C * f(n, t) of [15]/[27].  Returns nullopt (divergence: the
/// computation never catches up) if no such t exists below `horizon`.
std::optional<Tick> predicted_termination(const ArrivalLaw& law,
                                          const ProcessingRate& rate,
                                          Tick horizon);

}  // namespace rtw::dataacc
