#pragma once
/// \file word.hpp
/// The section 4.2 construction: wrapping a data-accumulating instance into
/// a timed omega-word.
///
/// Layout (the paper's construction, with a $ delimiter closing the
/// proposed output, per the preliminaries' delimiter license):
///
///   o $                    at time 0          (proposed solution)
///   iota_1 ... iota_n      at time 0          (initial data)
///   then, for each subsequent datum iota_j arriving at time t_j (per the
///   arrival law):  a marker `c` at time t_j - 1 and iota_j at time t_j.
///
/// Data arriving at the same tick are grouped (all their `c` markers first)
/// so the time sequence stays monotone.  The word is generator-backed and
/// proven monotone / progressing whenever the law has beta > 0.

#include <cstdint>
#include <functional>

#include "rtw/core/timed_word.hpp"
#include "rtw/dataacc/arrival_law.hpp"

namespace rtw::dataacc {

/// A data-accumulating instance: the law, the stream contents, and the
/// proposed solution to be verified by the acceptor.
struct DataAccInstance {
  ArrivalLaw law{1, 1.0, 0.0, 0.5};
  /// j-th stream datum, 1-based (must be pure/index-deterministic).
  std::function<rtw::core::Symbol(std::uint64_t)> datum;
  std::vector<rtw::core::Symbol> proposed_output;
};

/// Builds the section 4.2 timed omega-word for `instance`.  `horizon`
/// bounds the arrival-time search per datum (beta == 0 laws stop producing
/// data; the builder then repeats a harmless trailing `c` marker to keep
/// the word infinite and well-behaved).
rtw::core::TimedWord build_dataacc_word(const DataAccInstance& instance,
                                        rtw::core::Tick horizon = 1 << 20);

}  // namespace rtw::dataacc
