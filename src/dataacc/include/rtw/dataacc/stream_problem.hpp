#pragma once
/// \file stream_problem.hpp
/// On-line problems for d-algorithms.
///
/// The paper notes (citing [15]) that every d-algorithm is an *on-line*
/// algorithm: after processing the p-th datum it holds a partial solution
/// for the first p inputs.  A StreamProblem is that on-line core: an
/// incremental state with a snapshot, which both the executor (P_w) and the
/// section 4.2 acceptor's monitor (P_m) consult.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/symbol.hpp"

namespace rtw::dataacc {

using rtw::core::Symbol;

/// An incremental computation over a stream of symbols.
class StreamProblem {
public:
  virtual ~StreamProblem() = default;
  virtual std::string name() const = 0;
  /// Incorporates one datum.
  virtual void update(Symbol datum) = 0;
  /// The partial solution after the data consumed so far.
  virtual std::vector<Symbol> snapshot() const = 0;
  /// Fresh state.
  virtual void reset() = 0;
  /// A new instance of the same problem (factory for acceptors).
  virtual std::unique_ptr<StreamProblem> clone_fresh() const = 0;
};

/// Running sum of nat symbols (non-nat data contribute zero).
class RunningSum final : public StreamProblem {
public:
  std::string name() const override { return "running-sum"; }
  void update(Symbol datum) override;
  std::vector<Symbol> snapshot() const override;
  void reset() override { sum_ = 0; }
  std::unique_ptr<StreamProblem> clone_fresh() const override {
    return std::make_unique<RunningSum>();
  }

private:
  std::uint64_t sum_ = 0;
};

/// Running maximum of nat symbols.
class RunningMax final : public StreamProblem {
public:
  std::string name() const override { return "running-max"; }
  void update(Symbol datum) override;
  std::vector<Symbol> snapshot() const override;
  void reset() override { seen_ = false; max_ = 0; }
  std::unique_ptr<StreamProblem> clone_fresh() const override {
    return std::make_unique<RunningMax>();
  }

private:
  bool seen_ = false;
  std::uint64_t max_ = 0;
};

/// Count of data consumed.
class RunningCount final : public StreamProblem {
public:
  std::string name() const override { return "running-count"; }
  void update(Symbol) override { ++count_; }
  std::vector<Symbol> snapshot() const override {
    return {Symbol::nat(count_)};
  }
  void reset() override { count_ = 0; }
  std::unique_ptr<StreamProblem> clone_fresh() const override {
    return std::make_unique<RunningCount>();
  }

private:
  std::uint64_t count_ = 0;
};

}  // namespace rtw::dataacc
