#pragma once
/// \file d_algorithm.hpp
/// Executors for the data-accumulating paradigm (section 4.2).
///
/// A d-algorithm "works on an input considered as a virtually endless
/// stream.  The computation terminates when all the currently arrived data
/// have been processed before another datum arrives."  The executor runs
/// that semantics on the virtual clock: data arrive per an ArrivalLaw,
/// the processor(s) retire `processors` work units per tick at `cost`
/// ticks-per-datum, and termination is checked exactly.
///
/// c-algorithms ([16], [26, 27]) are the correcting variant: the stream
/// carries *corrections* to the initial input rather than new data; each
/// correction invalidates already-done work (a reprocessing charge).

#include <cstdint>
#include <functional>
#include <optional>

#include "rtw/dataacc/arrival_law.hpp"
#include "rtw/dataacc/stream_problem.hpp"

namespace rtw::dataacc {

/// Outcome of a d-algorithm execution.
struct DAlgorithmResult {
  bool terminated = false;
  Tick termination_time = 0;   ///< valid when terminated
  std::uint64_t processed = 0; ///< data fully processed
  std::uint64_t arrived = 0;   ///< data arrived by the end of the run
  std::vector<Symbol> solution;  ///< problem snapshot at the end
};

/// Runs a d-algorithm: `problem` consumes one datum per `rate.cost` ticks
/// of accumulated work, `rate.processors` work units retire per tick.
/// `datum(j)` supplies the j-th stream datum (1-based).  The run stops at
/// `horizon` if termination has not occurred (result.terminated == false).
DAlgorithmResult run_d_algorithm(
    const ArrivalLaw& law, const ProcessingRate& rate, StreamProblem& problem,
    const std::function<Symbol(std::uint64_t)>& datum, Tick horizon);

/// Outcome of a c-algorithm (correcting) execution.
struct CAlgorithmResult {
  bool terminated = false;
  Tick termination_time = 0;
  std::uint64_t corrections_applied = 0;
  std::uint64_t reprocessed_units = 0;  ///< extra work charged by corrections
};

/// Runs a c-algorithm over `initial_size` data: the base computation costs
/// `rate.cost` per datum; each correction arriving per `law` (counting only
/// arrivals beyond the initial n) charges `correction_cost` work units.
/// Terminates when base work and all arrived corrections are absorbed
/// before the next correction arrives.
CAlgorithmResult run_c_algorithm(const ArrivalLaw& law,
                                 const ProcessingRate& rate,
                                 Tick correction_cost, Tick horizon);

}  // namespace rtw::dataacc
