#pragma once
/// \file acceptor.hpp
/// The section 4.2 acceptor for data-accumulating languages.
///
/// Structure per the paper: P_w is the on-line algorithm (it signals P_m
/// each time it finishes processing one datum; after the p-th signal it
/// holds the partial solution for iota_1..iota_p).  P_m watches the input:
/// the only moment it interferes is when P_w has caught up with all data
/// that arrived and no further datum has arrived yet -- the d-algorithm's
/// termination moment.  At that point P_m compares the computed partial
/// solution with the proposed solution from the word and locks the acceptor
/// into s_f or s_r.
///
/// On a word whose arrival law outruns the processor, the termination
/// moment never comes, no lock happens, and no f is ever written -- the
/// word is (correctly) rejected.

#include <deque>
#include <memory>
#include <optional>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/language.hpp"
#include "rtw/dataacc/stream_problem.hpp"
#include "rtw/dataacc/word.hpp"

namespace rtw::dataacc {

class DataAccAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  /// `cost` virtual ticks of work per datum; `processors` work units retire
  /// per tick.
  DataAccAcceptor(std::unique_ptr<StreamProblem> problem, ProcessingRate rate);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override;

  rtw::core::Tick termination_time() const noexcept { return termination_; }
  std::uint64_t processed() const noexcept { return processed_; }

private:
  enum class Phase { Header, Streaming, AcceptLock, RejectLock };

  std::unique_ptr<StreamProblem> problem_;
  ProcessingRate rate_;
  Phase phase_ = Phase::Header;
  std::vector<rtw::core::Symbol> proposed_;
  std::deque<rtw::core::Symbol> queue_;  ///< arrived, unprocessed data
  rtw::core::Tick current_job_done_ = 0; ///< work units paid on queue front
  std::uint64_t processed_ = 0;
  rtw::core::Tick termination_ = 0;
  rtw::core::Tick last_tick_ = 0;  ///< last visited tick (work accounting)
  bool pending_arrival_marker_ = false;
};

/// L(Pi) for the data-accumulating problem: exact membership via the
/// acceptor when it locks; words whose computation never terminates are
/// rejected at the horizon (result.exact == false, accepted == false).
rtw::core::TimedLanguage dataacc_language(
    std::shared_ptr<const StreamProblem> prototype, ProcessingRate rate,
    rtw::core::Tick horizon = 20000);

}  // namespace rtw::dataacc
