#include "rtw/dataacc/arrival_law.hpp"

#include <cmath>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::dataacc {

ArrivalLaw::ArrivalLaw(std::uint64_t n, double k, double gamma, double beta)
    : n_(n), k_(k), gamma_(gamma), beta_(beta) {
  if (n == 0) throw rtw::core::ModelError("ArrivalLaw: n must be >= 1");
  if (k <= 0) throw rtw::core::ModelError("ArrivalLaw: k must be > 0");
  if (gamma < 0 || beta < 0)
    throw rtw::core::ModelError("ArrivalLaw: gamma/beta must be >= 0");
}

std::uint64_t ArrivalLaw::count_at(Tick t) const {
  const double extra = k_ * std::pow(static_cast<double>(n_), gamma_) *
                       std::pow(static_cast<double>(t), beta_);
  // Guard against overflow on steep laws: saturate.
  if (extra >= 9e15) return n_ + std::uint64_t{9000000000000000ULL};
  return n_ + static_cast<std::uint64_t>(extra);
}

std::optional<Tick> ArrivalLaw::arrival_time(std::uint64_t j,
                                             Tick horizon) const {
  if (j == 0) throw rtw::core::ModelError("arrival_time: 1-based index");
  if (j <= n_) return Tick{0};
  if (count_at(horizon) < j) return std::nullopt;
  // Binary search the monotone count function.
  Tick lo = 0, hi = horizon;  // count_at(lo) < j <= count_at(hi)
  while (lo + 1 < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (count_at(mid) >= j)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

std::string ArrivalLaw::to_string() const {
  std::ostringstream out;
  out << n_ << " + " << k_ << "*n^" << gamma_ << "*t^" << beta_;
  return out.str();
}

std::optional<Tick> predicted_termination(const ArrivalLaw& law,
                                          const ProcessingRate& rate,
                                          Tick horizon) {
  if (rate.cost == 0 || rate.processors == 0)
    throw rtw::core::ModelError("predicted_termination: degenerate rate");
  for (Tick t = 1; t <= horizon; ++t) {
    const std::uint64_t data = law.count_at(t);
    const std::uint64_t work = data * rate.cost;
    const std::uint64_t time_needed =
        (work + rate.processors - 1) / rate.processors;
    if (time_needed <= t) return t;
    // Prune: if even the initial workload cannot fit inside the remaining
    // horizon, fail fast on steep laws.
    if (time_needed > horizon && t > horizon / 2) break;
  }
  return std::nullopt;
}

}  // namespace rtw::dataacc
