#include "rtw/dataacc/acceptor.hpp"

#include "rtw/core/error.hpp"
#include "rtw/dataacc/d_algorithm.hpp"
#include "rtw/engine/engine.hpp"

namespace rtw::dataacc {

using rtw::core::StepContext;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedWord;

DataAccAcceptor::DataAccAcceptor(std::unique_ptr<StreamProblem> problem,
                                 ProcessingRate rate)
    : problem_(std::move(problem)), rate_(rate) {
  if (!problem_)
    throw rtw::core::ModelError("DataAccAcceptor: null problem");
  if (rate_.cost == 0 || rate_.processors == 0)
    throw rtw::core::ModelError("DataAccAcceptor: degenerate rate");
}

std::string DataAccAcceptor::name() const {
  return "dataacc-acceptor(" + problem_->name() + ")";
}

void DataAccAcceptor::reset() {
  problem_->reset();
  phase_ = Phase::Header;
  proposed_.clear();
  queue_.clear();
  current_job_done_ = 0;
  processed_ = 0;
  termination_ = 0;
  last_tick_ = 0;
  pending_arrival_marker_ = false;
}

void DataAccAcceptor::on_tick(const StepContext& ctx) {
  const Symbol dollar = rtw::core::marks::dollar();
  const Symbol marker = rtw::core::marks::arrival();

  if (phase_ == Phase::AcceptLock || phase_ == Phase::RejectLock) {
    if (phase_ == Phase::AcceptLock && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
    return;
  }

  if (phase_ == Phase::Header) {
    // The header (proposed output, $, initial data) arrives at time 0.
    for (const auto& ts : ctx.arrivals) {
      if (phase_ == Phase::Header) {
        if (ts.sym == dollar)
          phase_ = Phase::Streaming;
        else
          proposed_.push_back(ts.sym);
      } else if (!(ts.sym == marker)) {
        queue_.push_back(ts.sym);  // initial data, enqueued at end of tick 0
      }
    }
    last_tick_ = ctx.now;
    return;
  }

  // ---- P_w: the executor may fast-forward over quiet gaps, so work is
  // credited for every elapsed tick.  Semantics mirror run_d_algorithm:
  // arrivals land at the start of their tick, work applies afterwards, and
  // the termination moment is an end-of-tick empty queue.
  const Tick gap_base = last_tick_;
  const Tick elapsed = ctx.now - last_tick_;
  last_tick_ = ctx.now;

  auto apply_work = [this](Tick budget) -> Tick {
    // Returns the units actually spent (for drain-time accounting).
    Tick spent = 0;
    while (budget > 0 && !queue_.empty()) {
      const Tick needed = rate_.cost - current_job_done_;
      const Tick step = std::min<Tick>(budget, needed);
      current_job_done_ += step;
      budget -= step;
      spent += step;
      if (current_job_done_ == rate_.cost) {
        // Completion signal from P_w: the partial solution now covers
        // this datum.
        problem_->update(queue_.front());
        queue_.pop_front();
        current_job_done_ = 0;
        ++processed_;
      }
    }
    return spent;
  };

  auto lock_verdict = [this, &ctx](Tick at) {
    termination_ = at;
    phase_ = problem_->snapshot() == proposed_ ? Phase::AcceptLock
                                               : Phase::RejectLock;
    if (phase_ == Phase::AcceptLock && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
  };

  // Gap ticks gap_base+1 .. now-1 carry no arrivals (the executor visits
  // every arrival tick), so the queue can only drain there.
  if (elapsed > 1) {
    const Tick spent = apply_work((elapsed - 1) * rate_.processors);
    if (queue_.empty() && processed_ > 0) {
      const Tick drain_tick =
          gap_base + (spent + rate_.processors - 1) / rate_.processors;
      lock_verdict(std::min(drain_tick, ctx.now - 1));
      return;
    }
  }

  // ---- this tick: arrivals land first, then the tick's work.
  for (const auto& ts : ctx.arrivals) {
    if (ts.sym == marker) {
      pending_arrival_marker_ = true;  // heads-up: a datum lands next tick
      continue;
    }
    queue_.push_back(ts.sym);
  }
  apply_work(rate_.processors);

  if (queue_.empty() && processed_ > 0) lock_verdict(ctx.now);
}

std::optional<bool> DataAccAcceptor::locked() const {
  switch (phase_) {
    case Phase::AcceptLock:
      return true;
    case Phase::RejectLock:
      return false;
    default:
      return std::nullopt;
  }
}

rtw::core::TimedLanguage dataacc_language(
    std::shared_ptr<const StreamProblem> prototype, ProcessingRate rate,
    rtw::core::Tick horizon) {
  rtw::core::RunOptions options;
  options.horizon = horizon;
  auto member = rtw::engine::membership(
      [prototype, rate] {
        return std::make_unique<DataAccAcceptor>(prototype->clone_fresh(),
                                                 rate);
      },
      options, /*require_exact=*/true);
  auto sampler = [prototype, rate, horizon](std::uint64_t i) {
    // Successful instances: slow enough laws with the true solution.
    DataAccInstance instance;
    instance.law = ArrivalLaw(2 + i % 4, 1.0, 0.5, 0.5);
    instance.datum = [](std::uint64_t j) { return Symbol::nat(j % 10); };
    auto probe = prototype->clone_fresh();
    const auto run = run_d_algorithm(instance.law, rate, *probe,
                                     instance.datum, horizon);
    instance.proposed_output = run.solution;
    return build_dataacc_word(instance);
  };
  return rtw::core::TimedLanguage("L(dataacc:" + prototype->name() + ")",
                                  std::move(member), std::move(sampler));
}

}  // namespace rtw::dataacc
