#include "rtw/dataacc/stream_problem.hpp"

#include <algorithm>

namespace rtw::dataacc {

void RunningSum::update(Symbol datum) {
  if (datum.is_nat()) sum_ += datum.as_nat();
}

std::vector<Symbol> RunningSum::snapshot() const {
  return {Symbol::nat(sum_)};
}

void RunningMax::update(Symbol datum) {
  if (!datum.is_nat()) return;
  max_ = seen_ ? std::max(max_, datum.as_nat()) : datum.as_nat();
  seen_ = true;
}

std::vector<Symbol> RunningMax::snapshot() const {
  return {Symbol::nat(seen_ ? max_ : 0)};
}

}  // namespace rtw::dataacc
