#include "rtw/dataacc/corrections.hpp"

#include <memory>
#include <mutex>

#include "rtw/core/error.hpp"

namespace rtw::dataacc {

using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

Symbol fix_mark() { return Symbol::marker("fix"); }

TimedWord build_correction_word(const CorrectionInstance& instance,
                                Tick horizon) {
  if (!instance.initial || !instance.correction)
    throw rtw::core::ModelError("build_correction_word: null generators");
  struct State {
    CorrectionInstance instance;
    Tick horizon;
    std::vector<TimedSymbol> cache;
    std::uint64_t next_correction = 1;
    bool exhausted = false;
    Tick trail_time = 1;
    std::mutex mutex;

    void header() {
      for (const auto& s : instance.proposed_output) cache.push_back({s, 0});
      cache.push_back({rtw::core::marks::dollar(), 0});
      const std::uint64_t n = instance.law.initial();
      for (std::uint64_t i = 0; i < n; ++i)
        cache.push_back({Symbol::nat(instance.initial(i)), 0});
    }

    void extend() {
      if (cache.empty()) {
        header();
        return;
      }
      if (exhausted) {
        cache.push_back({rtw::core::marks::arrival(), trail_time});
        ++trail_time;
        return;
      }
      const std::uint64_t n = instance.law.initial();
      const auto t =
          instance.law.arrival_time(n + next_correction, horizon);
      if (!t) {
        exhausted = true;
        trail_time = cache.back().time + 1;
        extend();
        return;
      }
      const Correction fix = instance.correction(next_correction);
      const Tick marker_time = *t == 0 ? 0 : *t - 1;
      cache.push_back({rtw::core::marks::arrival(), marker_time});
      cache.push_back({fix_mark(), *t});
      cache.push_back({Symbol::nat(fix.index), *t});
      cache.push_back({Symbol::nat(fix.value), *t});
      ++next_correction;
    }
  };
  auto state = std::make_shared<State>();
  state->instance = instance;
  state->horizon = horizon;
  rtw::core::GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;
  return TimedWord::generator(
      [state](std::uint64_t i) {
        std::lock_guard lock(state->mutex);
        while (state->cache.size() <= i) state->extend();
        return state->cache[i];
      },
      traits, "c-algorithm-word");
}

std::uint64_t corrected_sum(const CorrectionInstance& instance,
                            std::uint64_t count) {
  std::vector<std::uint64_t> values;
  const std::uint64_t n = instance.law.initial();
  for (std::uint64_t i = 0; i < n; ++i) values.push_back(instance.initial(i));
  for (std::uint64_t j = 1; j <= count; ++j) {
    const Correction fix = instance.correction(j);
    if (fix.index < values.size()) values[fix.index] = fix.value;
  }
  std::uint64_t sum = 0;
  for (auto v : values) sum += v;
  return sum;
}

CorrectionAcceptor::CorrectionAcceptor(Tick base_cost, Tick correction_cost)
    : base_cost_(base_cost), correction_cost_(correction_cost) {
  if (base_cost == 0 || correction_cost == 0)
    throw rtw::core::ModelError("CorrectionAcceptor: zero costs");
}

void CorrectionAcceptor::reset() {
  phase_ = Phase::Header;
  proposed_.clear();
  values_.clear();
  sum_ = 0;
  queue_.clear();
  current_job_done_ = 0;
  processed_ = 0;
  applied_ = 0;
  termination_ = 0;
  last_tick_ = 0;
  fix_field_ = -1;
  fix_index_ = 0;
}

void CorrectionAcceptor::on_tick(const rtw::core::StepContext& ctx) {
  const Symbol dollar = rtw::core::marks::dollar();
  const Symbol arrival = rtw::core::marks::arrival();

  if (phase_ == Phase::AcceptLock || phase_ == Phase::RejectLock) {
    if (phase_ == Phase::AcceptLock && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
    return;
  }

  if (phase_ == Phase::Header) {
    for (const auto& ts : ctx.arrivals) {
      if (phase_ == Phase::Header) {
        if (ts.sym == dollar)
          phase_ = Phase::Streaming;
        else
          proposed_.push_back(ts.sym);
      } else if (ts.sym.is_nat()) {
        queue_.push_back({false, ts.sym.as_nat(), 0});
      }
    }
    last_tick_ = ctx.now;
    return;
  }

  const Tick gap_base = last_tick_;
  const Tick elapsed = ctx.now - last_tick_;
  last_tick_ = ctx.now;

  auto item_cost = [this](const PendingItem& item) {
    return item.is_correction ? correction_cost_ : base_cost_;
  };
  auto apply_work = [&](Tick budget) -> Tick {
    Tick spent = 0;
    while (budget > 0 && !queue_.empty()) {
      const Tick needed = item_cost(queue_.front()) - current_job_done_;
      const Tick step = std::min<Tick>(budget, needed);
      current_job_done_ += step;
      budget -= step;
      spent += step;
      if (current_job_done_ == item_cost(queue_.front())) {
        const PendingItem item = queue_.front();
        queue_.pop_front();
        current_job_done_ = 0;
        if (item.is_correction) {
          if (item.a < values_.size()) {
            sum_ -= values_[item.a];
            values_[item.a] = item.b;
            sum_ += item.b;
          }
          ++applied_;
        } else {
          values_.push_back(item.a);
          sum_ += item.a;
        }
        ++processed_;
      }
    }
    return spent;
  };
  auto lock_verdict = [&](Tick at) {
    termination_ = at;
    const bool matches =
        proposed_.size() == 1 && proposed_[0] == Symbol::nat(sum_);
    phase_ = matches ? Phase::AcceptLock : Phase::RejectLock;
    if (phase_ == Phase::AcceptLock && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
  };

  if (elapsed > 1) {
    const Tick spent = apply_work((elapsed - 1));
    if (queue_.empty() && processed_ > 0) {
      lock_verdict(std::min<Tick>(gap_base + spent, ctx.now - 1));
      return;
    }
  }

  // Intake: <fix> index value groups; bare `c` markers announce arrivals.
  for (const auto& ts : ctx.arrivals) {
    if (ts.sym == fix_mark()) {
      fix_field_ = 0;
      continue;
    }
    if (fix_field_ == 0 && ts.sym.is_nat()) {
      fix_index_ = ts.sym.as_nat();
      fix_field_ = 1;
      continue;
    }
    if (fix_field_ == 1 && ts.sym.is_nat()) {
      queue_.push_back({true, fix_index_, ts.sym.as_nat()});
      fix_field_ = -1;
      continue;
    }
    if (ts.sym == arrival) continue;
  }
  apply_work(1);

  if (queue_.empty() && processed_ > 0) lock_verdict(ctx.now);
}

std::optional<bool> CorrectionAcceptor::locked() const {
  switch (phase_) {
    case Phase::AcceptLock:
      return true;
    case Phase::RejectLock:
      return false;
    default:
      return std::nullopt;
  }
}

}  // namespace rtw::dataacc
