#include "rtw/dataacc/d_algorithm.hpp"

#include "rtw/core/error.hpp"

namespace rtw::dataacc {

DAlgorithmResult run_d_algorithm(
    const ArrivalLaw& law, const ProcessingRate& rate, StreamProblem& problem,
    const std::function<Symbol(std::uint64_t)>& datum, Tick horizon) {
  if (rate.cost == 0 || rate.processors == 0)
    throw rtw::core::ModelError("run_d_algorithm: degenerate rate");
  if (!datum) throw rtw::core::ModelError("run_d_algorithm: null datum fn");

  problem.reset();
  DAlgorithmResult result;

  std::uint64_t arrived = law.count_at(0);
  std::uint64_t consumed = 0;       // data fully processed
  std::uint64_t work_backlog = arrived * rate.cost;

  for (Tick now = 1; now <= horizon; ++now) {
    // Arrivals at `now` land first: a datum arriving during tick t is
    // workable within tick t.  This matches the fixed-point analysis
    // t = C f(n, t) of [15]/[27]: termination at the first tick whose
    // accumulated capacity covers all arrived work.
    const std::uint64_t total_now = law.count_at(now);
    if (total_now > arrived) {
      work_backlog += (total_now - arrived) * rate.cost;
      arrived = total_now;
    }

    // Work performed during tick `now` (processors units).
    std::uint64_t units = rate.processors;
    while (units > 0 && work_backlog > 0) {
      const std::uint64_t step = std::min<std::uint64_t>(units, work_backlog);
      work_backlog -= step;
      units -= step;
      // Retire data whose full cost is now paid: with FIFO processing the
      // next datum is done once the backlog fits within the *other*
      // unconsumed data's cost.
      while (consumed < arrived &&
             work_backlog <= (arrived - consumed - 1) * rate.cost) {
        ++consumed;
        problem.update(datum(consumed));
      }
    }

    if (work_backlog == 0) {
      // All data arrived by `now` are processed before any further datum
      // arrives: the d-algorithm terminates.
      result.terminated = true;
      result.termination_time = now;
      break;
    }
  }

  result.processed = consumed;
  result.arrived = arrived;
  result.solution = problem.snapshot();
  return result;
}

CAlgorithmResult run_c_algorithm(const ArrivalLaw& law,
                                 const ProcessingRate& rate,
                                 Tick correction_cost, Tick horizon) {
  if (rate.cost == 0 || rate.processors == 0)
    throw rtw::core::ModelError("run_c_algorithm: degenerate rate");

  CAlgorithmResult result;
  const std::uint64_t base = law.initial();
  std::uint64_t corrections_seen = 0;
  std::uint64_t work_backlog = base * rate.cost;

  for (Tick now = 1; now <= horizon; ++now) {
    // Corrections arriving at `now` land first (same ordering as the
    // d-algorithm executor), then the tick's work applies.
    const std::uint64_t total_now = law.count_at(now);
    const std::uint64_t new_corrections =
        total_now > base + corrections_seen ? total_now - base - corrections_seen
                                            : 0;
    if (new_corrections > 0) {
      corrections_seen += new_corrections;
      work_backlog += new_corrections * correction_cost;
      result.reprocessed_units += new_corrections * correction_cost;
    }

    const std::uint64_t retired =
        std::min<std::uint64_t>(rate.processors, work_backlog);
    work_backlog -= retired;

    if (work_backlog == 0) {
      result.terminated = true;
      result.termination_time = now;
      break;
    }
  }
  result.corrections_applied = corrections_seen;
  return result;
}

}  // namespace rtw::dataacc
