#include "rtw/dataacc/word.hpp"

#include <memory>

#include "rtw/core/error.hpp"

namespace rtw::dataacc {

using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

namespace {

/// Lazy element producer for the section 4.2 word.  Elements are appended
/// to a cache on demand; grouping of same-tick arrivals is handled when a
/// group is first materialized.
struct WordState {
  DataAccInstance instance;
  rtw::core::Tick horizon;
  std::vector<TimedSymbol> cache;
  std::uint64_t next_datum = 1;  // 1-based index of the next stream datum
  bool exhausted_stream = false;
  rtw::core::Tick trail_time = 1;

  void materialize_header() {
    for (const auto& s : instance.proposed_output) cache.push_back({s, 0});
    cache.push_back({rtw::core::marks::dollar(), 0});
    const std::uint64_t n = instance.law.initial();
    for (std::uint64_t j = 1; j <= n; ++j) {
      cache.push_back({instance.datum(j), 0});
    }
    next_datum = n + 1;
  }

  void extend() {
    if (cache.empty()) {
      materialize_header();
      return;
    }
    if (exhausted_stream) {
      // beta == 0 tail: keep the word infinite and well-behaved with
      // spaced-out `c` markers that carry no data.
      cache.push_back({rtw::core::marks::arrival(), trail_time});
      ++trail_time;
      return;
    }
    // Materialize the whole same-tick arrival group of the next datum.
    const auto t = instance.law.arrival_time(next_datum, horizon);
    if (!t) {
      exhausted_stream = true;
      trail_time = cache.back().time + 1;
      extend();
      return;
    }
    std::uint64_t group_end = next_datum;
    while (instance.law.arrival_time(group_end + 1, horizon) == *t)
      ++group_end;
    const rtw::core::Tick marker_time = *t == 0 ? 0 : *t - 1;
    for (std::uint64_t j = next_datum; j <= group_end; ++j)
      cache.push_back({rtw::core::marks::arrival(), marker_time});
    for (std::uint64_t j = next_datum; j <= group_end; ++j)
      cache.push_back({instance.datum(j), *t});
    next_datum = group_end + 1;
    trail_time = *t + 1;
  }

  TimedSymbol element(std::uint64_t i) {
    while (cache.size() <= i) extend();
    return cache[i];
  }
};

}  // namespace

TimedWord build_dataacc_word(const DataAccInstance& instance,
                             rtw::core::Tick horizon) {
  if (!instance.datum)
    throw rtw::core::ModelError("build_dataacc_word: null datum fn");
  auto state = std::make_shared<WordState>();
  state->instance = instance;
  state->horizon = horizon;
  rtw::core::GeneratorTraits traits;
  traits.monotone_proven = true;  // by the grouped construction above
  traits.progress_proven = true;  // arrivals or the trailing markers diverge
  return TimedWord::generator(
      [state](std::uint64_t i) { return state->element(i); }, traits,
      "dataacc-word");
}

}  // namespace rtw::dataacc
