#include "rtw/par/process.hpp"

#include <algorithm>

#include "rtw/core/error.hpp"

namespace rtw::par {

using rtw::core::ModelError;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

void ProcContext::send(ProcId to, Symbol payload) {
  system_->post(self_, to, payload, now_);
}

void ProcContext::emit(Symbol s) { system_->record_emit(self_, s, now_); }

ProcessSystem::ProcessSystem(ProcId processes, const ProcessFactory& factory) {
  if (processes == 0) throw ModelError("ProcessSystem: need processes");
  if (!factory) throw ModelError("ProcessSystem: null factory");
  for (ProcId i = 0; i < processes; ++i) {
    auto process = factory(i);
    if (!process) throw ModelError("ProcessSystem: factory returned null");
    processes_.push_back(std::move(process));
  }
  trace_.processes.resize(processes);
  last_emit_.assign(processes, ~Tick{0});
}

void ProcessSystem::post(ProcId from, ProcId to, Symbol payload, Tick now) {
  if (to >= processes_.size())
    throw ModelError("ProcessSystem: message to unknown process");
  airborne_.push_back({from, to, payload, now, now + 1});
}

void ProcessSystem::record_emit(ProcId self, Symbol s, Tick now) {
  if (last_emit_[self] == now)
    throw ModelError(
        "ProcessSystem: at most one computation symbol per tick");
  last_emit_[self] = now;
  trace_.processes[self].computation.push_back({s, now});
}

SystemTrace ProcessSystem::run(Tick horizon) {
  std::vector<ProcMessage> in_flight;
  for (Tick now = 0; now < horizon; ++now) {
    // Deliver messages sent last tick, grouped per addressee in send order.
    std::vector<std::vector<ProcMessage>> inboxes(processes_.size());
    for (const auto& m : in_flight) {
      inboxes[m.to].push_back(m);
      trace_.processes[m.to].received.push_back(m);
    }
    in_flight.clear();

    for (ProcId k = 0; k < processes_.size(); ++k) {
      ProcContext ctx(*this, k, now,
                      std::span<const ProcMessage>(inboxes[k]));
      processes_[k]->on_tick(ctx);
    }
    for (const auto& m : airborne_) trace_.processes[m.from].sent.push_back(m);
    in_flight = std::move(airborne_);
    airborne_.clear();
  }
  trace_.horizon = horizon;
  SystemTrace out = std::move(trace_);
  trace_ = {};
  trace_.processes.resize(processes_.size());
  std::fill(last_emit_.begin(), last_emit_.end(), ~Tick{0});
  return out;
}

namespace {

void append_message(std::vector<TimedSymbol>& out, std::uint64_t peer,
                    Symbol payload, Tick at) {
  out.push_back({rtw::core::marks::dollar(), at});
  out.push_back({Symbol::nat(peer), at});
  out.push_back({rtw::core::marks::at(), at});
  out.push_back({payload, at});
  out.push_back({rtw::core::marks::dollar(), at});
}

}  // namespace

TimedWord SystemTrace::computation_word(ProcId k) const {
  return TimedWord::finite(processes.at(k).computation);
}

TimedWord SystemTrace::send_word(ProcId k) const {
  std::vector<TimedSymbol> out;
  for (const auto& m : processes.at(k).sent)
    append_message(out, m.to, m.payload, m.sent_at);
  return TimedWord::finite(std::move(out));
}

TimedWord SystemTrace::receive_word(ProcId k) const {
  std::vector<TimedSymbol> out;
  for (const auto& m : processes.at(k).received)
    append_message(out, m.from, m.payload, m.received_at);
  return TimedWord::finite(std::move(out));
}

TimedWord SystemTrace::behavior_word(ProcId k) const {
  return rtw::core::concat(
      rtw::core::concat(computation_word(k), send_word(k)), receive_word(k));
}

}  // namespace rtw::par
