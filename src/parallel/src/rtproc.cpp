#include "rtw/par/rtproc.hpp"

#include <deque>
#include <memory>

#include "rtw/core/error.hpp"

namespace rtw::par {

namespace {

/// Shared tally across the trial's processes (the runtime is
/// single-threaded and deterministic, so plain counters suffice).
struct Tally {
  std::uint64_t retired = 0;
  std::uint64_t late = 0;
  std::uint64_t backlog = 0;
  std::uint64_t peak_backlog = 0;
};

/// A worker retires one queued token per tick; tokens carry their arrival
/// tick as a nat payload.
class Worker : public Process {
public:
  Worker(std::shared_ptr<Tally> tally, Tick slack)
      : tally_(std::move(tally)), slack_(slack) {}

  std::string name() const override { return "worker"; }

  void enqueue(Tick arrival) {
    queue_.push_back(arrival);
    ++tally_->backlog;
    tally_->peak_backlog = std::max(tally_->peak_backlog, tally_->backlog);
  }

  void on_tick(ProcContext& ctx) override {
    for (const auto& m : ctx.inbox()) enqueue(m.payload.as_nat());
    work(ctx);
  }

protected:
  void work(ProcContext& ctx) {
    if (queue_.empty()) return;
    const Tick arrival = queue_.front();
    queue_.pop_front();
    --tally_->backlog;
    const bool in_time = ctx.now() - arrival <= slack_;
    if (in_time) {
      ++tally_->retired;
      ctx.emit(rtw::core::marks::accept());
    } else {
      ++tally_->late;
    }
  }

  std::shared_ptr<Tally> tally_;
  Tick slack_;
  std::deque<Tick> queue_;
};

/// Process 0: receives the m tokens arriving each tick and deals them
/// round-robin across all p processes (keeping its own share local).
class Dispatcher final : public Worker {
public:
  Dispatcher(std::shared_ptr<Tally> tally, Tick slack, std::uint32_t tokens,
             ProcId processes)
      : Worker(std::move(tally), slack),
        tokens_(tokens),
        processes_(processes) {}

  std::string name() const override { return "dispatcher"; }

  void on_tick(ProcContext& ctx) override {
    for (const auto& m : ctx.inbox()) enqueue(m.payload.as_nat());
    // The L_m stream: m fresh tokens this tick.
    for (std::uint32_t i = 0; i < tokens_; ++i) {
      const ProcId target = next_++ % processes_;
      if (target == 0)
        enqueue(ctx.now());
      else
        ctx.send(target, rtw::core::Symbol::nat(ctx.now()));
    }
    work(ctx);
  }

private:
  std::uint32_t tokens_;
  ProcId processes_;
  ProcId next_ = 0;
};

}  // namespace

RtProcOutcome run_rtproc_trial(const RtProcTrial& trial) {
  if (trial.processes == 0 || trial.tokens == 0)
    throw rtw::core::ModelError("run_rtproc_trial: degenerate trial");
  auto tally = std::make_shared<Tally>();
  ProcessSystem system(
      trial.processes, [&](ProcId id) -> std::unique_ptr<Process> {
        if (id == 0)
          return std::make_unique<Dispatcher>(tally, trial.slack,
                                              trial.tokens, trial.processes);
        return std::make_unique<Worker>(tally, trial.slack);
      });
  system.run(trial.horizon);

  RtProcOutcome outcome;
  outcome.retired = tally->retired;
  outcome.late = tally->late;
  outcome.peak_backlog = tally->peak_backlog;
  outcome.accepted = tally->late == 0;
  return outcome;
}

std::vector<std::vector<bool>> rtproc_matrix(ProcId max_p, std::uint32_t max_m,
                                             Tick slack, Tick horizon) {
  std::vector<std::vector<bool>> matrix;
  for (ProcId p = 1; p <= max_p; ++p) {
    std::vector<bool> row;
    for (std::uint32_t m = 1; m <= max_m; ++m) {
      RtProcTrial trial;
      trial.processes = p;
      trial.tokens = m;
      trial.slack = slack;
      trial.horizon = horizon;
      row.push_back(run_rtproc_trial(trial).accepted);
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace rtw::par
