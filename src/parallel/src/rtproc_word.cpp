#include "rtw/par/rtproc_word.hpp"

#include <deque>

#include "rtw/core/error.hpp"
#include "rtw/engine/engine.hpp"

namespace rtw::par {

using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

TimedWord build_token_word(std::uint32_t tokens_per_tick) {
  if (tokens_per_tick == 0)
    throw rtw::core::ModelError("build_token_word: zero rate");
  // Lasso: one tick's worth of tokens, advancing one tick per lap.  Each
  // token's nat payload is its offset within the tick (the arrival tick is
  // the timestamp itself).
  std::vector<TimedSymbol> cycle;
  for (std::uint32_t i = 0; i < tokens_per_tick; ++i)
    cycle.push_back({Symbol::nat(i), 1});
  return TimedWord::lasso({}, std::move(cycle), 1);
}

TokenStreamAcceptor::TokenStreamAcceptor(std::uint32_t workers, Tick slack)
    : workers_(workers), slack_(slack) {
  if (workers == 0)
    throw rtw::core::ModelError("TokenStreamAcceptor: zero workers");
  queues_.resize(workers);
}

void TokenStreamAcceptor::reset() {
  for (auto& q : queues_) q.clear();
  next_queue_ = 0;
  retired_ = 0;
  backlog_ = 0;
  peak_ = 0;
  failed_ = false;
}

void TokenStreamAcceptor::on_tick(const rtw::core::StepContext& ctx) {
  if (failed_) return;

  // Deal this tick's tokens round-robin across the worker queues.
  for (const auto& ts : ctx.arrivals) {
    if (!ts.sym.is_nat()) continue;
    queues_[next_queue_++ % workers_].push_back(ts.time);
    ++backlog_;
  }
  peak_ = std::max(peak_, backlog_);

  // Each worker retires one token this tick; a token older than the slack
  // is a hard failure (s_r).
  bool all_in_time = true;
  for (auto& q : queues_) {
    if (q.empty()) continue;
    const Tick arrival = q.front();
    q.pop_front();
    --backlog_;
    ++retired_;
    if (ctx.now - arrival > slack_) all_in_time = false;
  }
  if (!all_in_time) {
    failed_ = true;
    return;
  }
  // Per-tick success: one f (the periodic-computation reading of
  // Definition 3.4 -- f per successfully served obligation).
  if (ctx.out.can_write(ctx.now))
    ctx.out.write(ctx.now, ctx.out.accept_symbol());
}

std::optional<bool> TokenStreamAcceptor::locked() const {
  if (failed_) return false;
  return std::nullopt;  // the obligation never ends: no s_f lock
}

rtw::core::TimedLanguage rtproc_language(std::uint32_t workers, Tick slack,
                                         Tick horizon) {
  rtw::core::RunOptions options;
  options.horizon = horizon;
  auto member = rtw::engine::membership(
      [workers, slack] {
        return std::make_unique<TokenStreamAcceptor>(workers, slack);
      },
      options);
  auto sampler = [workers](std::uint64_t i) {
    // Members: rates the acceptor can sustain (1..workers).
    return build_token_word(1 + static_cast<std::uint32_t>(i) % workers);
  };
  return rtw::core::TimedLanguage(
      "L(rt-PROC:" + std::to_string(workers) + ")", std::move(member),
      std::move(sampler));
}

}  // namespace rtw::par
