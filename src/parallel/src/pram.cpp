#include "rtw/par/pram.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "rtw/core/error.hpp"

namespace rtw::par {

using rtw::core::ModelError;

Pram::Pram(std::uint32_t processors, std::size_t cells, PramVariant variant)
    : processors_(processors), variant_(variant), memory_(cells, 0) {
  if (processors == 0) throw ModelError("Pram: need processors");
  if (cells == 0) throw ModelError("Pram: need memory");
}

Tick Pram::run(const PramProgram& program, Tick max_steps) {
  if (!program) throw ModelError("Pram: null program");
  for (Tick step = 0; step < max_steps; ++step) {
    // Collect this step's plans.
    std::vector<std::optional<PramStep>> plans(processors_);
    bool any = false;
    for (std::uint32_t p = 0; p < processors_; ++p) {
      plans[p] = program(p, step);
      any = any || plans[p].has_value();
    }
    if (!any) return step;

    // Read phase (with EREW conflict detection).
    std::set<std::size_t> read_cells;
    std::vector<std::vector<Word>> read_values(processors_);
    for (std::uint32_t p = 0; p < processors_; ++p) {
      if (!plans[p]) continue;
      for (std::size_t cell : plans[p]->reads) {
        if (cell >= memory_.size())
          throw ModelError("Pram: read out of bounds");
        if (variant_ == PramVariant::Erew && !read_cells.insert(cell).second)
          throw ModelError("Pram: concurrent read under EREW");
        read_values[p].push_back(memory_[cell]);
      }
    }

    // Write phase: conflicts are illegal under both variants.
    std::map<std::size_t, Word> writes;
    for (std::uint32_t p = 0; p < processors_; ++p) {
      if (!plans[p] || !plans[p]->compute) continue;
      for (const auto& [cell, value] :
           plans[p]->compute(std::span<const Word>(read_values[p]))) {
        if (cell >= memory_.size())
          throw ModelError("Pram: write out of bounds");
        if (!writes.emplace(cell, value).second)
          throw ModelError("Pram: concurrent write");
      }
    }
    for (const auto& [cell, value] : writes) memory_[cell] = value;
  }
  return max_steps;
}

Tick pram_prefix_sums(Pram& pram, std::size_t n) {
  // Hillis-Steele doubling: step s adds memory[i - 2^s] into memory[i].
  // CREW-safe: each step, processor i reads cells i and i - 2^s and writes
  // cell i (exclusive).
  const PramProgram program = [n](std::uint32_t proc,
                                  Tick step) -> std::optional<PramStep> {
    const std::size_t offset = std::size_t{1} << step;
    if (offset >= n) return std::nullopt;
    if (proc >= n || proc < offset) return std::nullopt;
    PramStep s;
    s.reads = {proc, proc - offset};
    s.compute = [proc](std::span<const Word> values) {
      return std::vector<std::pair<std::size_t, Word>>{
          {proc, values[0] + values[1]}};
    };
    return s;
  };
  return pram.run(program, 64);
}

Tick pram_max_reduce(Pram& pram, std::size_t n) {
  // Tree reduction: step s compares cells 2^{s+1} apart; processor i
  // handles cell i * 2^{s+1}, reading it and its sibling at +2^s.
  // Reads and writes are disjoint across processors: EREW-safe.
  const PramProgram program = [n](std::uint32_t proc,
                                  Tick step) -> std::optional<PramStep> {
    const std::size_t stride = std::size_t{1} << (step + 1);
    const std::size_t half = stride / 2;
    if (half >= n) return std::nullopt;
    const std::size_t base = static_cast<std::size_t>(proc) * stride;
    if (base >= n || base + half >= n) return std::nullopt;
    PramStep s;
    s.reads = {base, base + half};
    s.compute = [base](std::span<const Word> values) {
      return std::vector<std::pair<std::size_t, Word>>{
          {base, std::max(values[0], values[1])}};
    };
    return s;
  };
  return pram.run(program, 64);
}

}  // namespace rtw::par
