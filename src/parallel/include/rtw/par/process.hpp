#pragma once
/// \file process.hpp
/// The explicit parallel/distributed model of section 6.
///
/// "One can assume that the implementation is composed of a set of n
/// processes, that execute independently, and communicate with each other
/// by messages."  Process k's behavior is modeled by the timed omega-word
/// c_k l_k r_k, where c_k is its (real-time) computation, l_k the messages
/// it sends, and r_k the messages it receives.
///
/// The runtime is round-based and deterministic: at every tick each
/// process handles its inbox (messages sent at the previous tick), does a
/// unit of computation (possibly emitting a computation symbol), and may
/// send messages; the full behavior of the system is the tuple
/// (c_1 l_1 r_1, ..., c_p l_p r_p), available after the run as words.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rtw/core/concat.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::par {

using rtw::core::Symbol;
using rtw::core::Tick;
using ProcId = std::uint32_t;

/// An inter-process message.
struct ProcMessage {
  ProcId from = 0;
  ProcId to = 0;
  Symbol payload;
  Tick sent_at = 0;
  Tick received_at = 0;  ///< sent_at + 1 (unit message latency)
};

class ProcessSystem;

/// Per-tick view handed to a process.
class ProcContext {
public:
  ProcContext(ProcessSystem& system, ProcId self, Tick now,
              std::span<const ProcMessage> inbox)
      : system_(&system), self_(self), now_(now), inbox_(inbox) {}

  ProcId self() const noexcept { return self_; }
  Tick now() const noexcept { return now_; }
  /// Messages delivered this tick (sent at now - 1).
  std::span<const ProcMessage> inbox() const noexcept { return inbox_; }

  /// Sends `payload` to process `to` (arrives next tick).
  void send(ProcId to, Symbol payload);
  /// Emits one symbol of this process's computation word c_k.  At most one
  /// per tick (the Definition 3.3 output discipline).
  void emit(Symbol s);

private:
  ProcessSystem* system_;
  ProcId self_;
  Tick now_;
  std::span<const ProcMessage> inbox_;
};

/// A process: the "finite control" of one of the n cooperating real-time
/// algorithms.
class Process {
public:
  virtual ~Process() = default;
  virtual void on_tick(ProcContext& ctx) = 0;
  virtual std::string name() const { return "process"; }
};

using ProcessFactory = std::function<std::unique_ptr<Process>(ProcId)>;

/// Trace of one process: the raw material of c_k, l_k and r_k.
struct ProcessTrace {
  std::vector<rtw::core::TimedSymbol> computation;  ///< c_k
  std::vector<ProcMessage> sent;                    ///< l_k
  std::vector<ProcMessage> received;                ///< r_k
};

/// The whole system's behavior.
struct SystemTrace {
  std::vector<ProcessTrace> processes;
  Tick horizon = 0;

  /// c_k as a finite timed word.
  rtw::core::TimedWord computation_word(ProcId k) const;
  /// l_k: each sent message encoded "$ e(to) @ e(payload) $" at its send
  /// time.
  rtw::core::TimedWord send_word(ProcId k) const;
  /// r_k: each received message encoded "$ e(from) @ e(payload) $" at its
  /// receive time.
  rtw::core::TimedWord receive_word(ProcId k) const;
  /// The section 6 behavior word c_k l_k r_k (Definition 3.5 merges).
  rtw::core::TimedWord behavior_word(ProcId k) const;
};

/// Round-based deterministic multi-process runtime.
class ProcessSystem {
public:
  ProcessSystem(ProcId processes, const ProcessFactory& factory);

  /// Runs ticks 0..horizon-1 and returns the trace.
  SystemTrace run(Tick horizon);

  ProcId size() const noexcept {
    return static_cast<ProcId>(processes_.size());
  }

private:
  friend class ProcContext;
  void post(ProcId from, ProcId to, Symbol payload, Tick now);
  void record_emit(ProcId self, Symbol s, Tick now);

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<ProcMessage> airborne_;
  SystemTrace trace_;
  std::vector<Tick> last_emit_;  ///< per-process one-emit-per-tick guard
};

}  // namespace rtw::par
