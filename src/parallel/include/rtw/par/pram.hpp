#pragma once
/// \file pram.hpp
/// The PRAM as the degenerate case of the section 6 model: "Since the
/// communication between different processors is accomplished by
/// read/write operations from/to the shared memory, there is no
/// communication.  That is, both l_k and r_k are null words."
///
/// The machine is synchronous: each step has a read phase (all processors
/// read the shared cells they name) followed by a write phase.  The
/// variant is configurable: EREW forbids concurrent reads of one cell and
/// concurrent writes; CREW allows concurrent reads; a write conflict under
/// either raises ModelError (detecting illegal programs is the point of
/// the model).

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "rtw/core/timed_word.hpp"

namespace rtw::par {

using rtw::core::Tick;
using Word = std::int64_t;

enum class PramVariant { Erew, Crew };

/// One processor's step program: given its id, the step index and the
/// values it requested, produce the next requests/writes.
struct PramStep {
  std::vector<std::size_t> reads;  ///< cells to read this step
  /// (cell, value) writes, computed from the read results.
  std::function<std::vector<std::pair<std::size_t, Word>>(
      std::span<const Word>)>
      compute;
};

/// A PRAM program: per processor, per step.
using PramProgram =
    std::function<std::optional<PramStep>(std::uint32_t proc, Tick step)>;

/// A synchronous PRAM with `cells` shared memory cells (zero initialized).
class Pram {
public:
  Pram(std::uint32_t processors, std::size_t cells, PramVariant variant);

  /// Runs until every processor's program returns nullopt or `max_steps`
  /// elapse.  Returns the number of steps executed.
  Tick run(const PramProgram& program, Tick max_steps);

  const std::vector<Word>& memory() const noexcept { return memory_; }
  std::vector<Word>& memory() noexcept { return memory_; }
  std::uint32_t processors() const noexcept { return processors_; }

private:
  std::uint32_t processors_;
  PramVariant variant_;
  std::vector<Word> memory_;
};

/// Reference PRAM algorithm: parallel prefix sums over memory[0..n) using
/// the classic doubling scheme -- O(log n) steps on n processors.  Returns
/// the number of steps taken.
Tick pram_prefix_sums(Pram& pram, std::size_t n);

/// Parallel maximum of memory[0..n) by binary tree reduction; the result
/// lands in memory[0].  O(log n) steps; EREW-safe (disjoint reads and
/// writes each step).  Returns the number of steps taken.
Tick pram_max_reduce(Pram& pram, std::size_t n);

}  // namespace rtw::par
