#pragma once
/// \file rtproc.hpp
/// The rt-PROC(p) hierarchy experiment (sections 3.2 and 7).
///
/// The paper asks: "given any number k of processors, is there a
/// well-behaved timed omega-language that can be accepted by a k-processor
/// real-time algorithm but cannot be accepted by a (k-1)-processor one?"
///
/// This module builds the synthetic witness family L_m: the stream
/// delivers m work tokens every tick, and a token must be retired (one
/// process-tick of work each) before its slack expires.  A p-process
/// acceptor retires p tokens per tick, so the backlog stays bounded iff
/// p >= m -- making the hierarchy question concretely measurable on the
/// section 6 process model.

#include <vector>

#include "rtw/par/process.hpp"

namespace rtw::par {

/// Parameters of one rt-PROC trial.
struct RtProcTrial {
  ProcId processes = 1;       ///< p: acceptor parallelism
  std::uint32_t tokens = 1;   ///< m: tokens arriving per tick (L_m)
  Tick slack = 8;             ///< max queueing delay before a token is late
  Tick horizon = 256;         ///< simulated ticks
};

/// Outcome of one trial.
struct RtProcOutcome {
  bool accepted = false;        ///< no token ever exceeded its slack
  std::uint64_t retired = 0;    ///< tokens processed in time
  std::uint64_t late = 0;       ///< tokens that exceeded the slack
  std::uint64_t peak_backlog = 0;
};

/// Runs L_m against a p-process acceptor on the ProcessSystem runtime:
/// process 0 is the dispatcher (it receives the stream and deals tokens
/// round-robin); every process retires one token per tick.
RtProcOutcome run_rtproc_trial(const RtProcTrial& trial);

/// The full success matrix for p in [1, max_p] x m in [1, max_m]:
/// entry (p-1, m-1) is the trial's acceptance.  The hierarchy is strict
/// when every row p accepts exactly the columns m <= p.
std::vector<std::vector<bool>> rtproc_matrix(ProcId max_p,
                                             std::uint32_t max_m, Tick slack,
                                             Tick horizon);

}  // namespace rtw::par
