#pragma once
/// \file thread_pool.hpp
/// Tombstone.  ThreadPool moved to the sim infrastructure layer in the
/// execution-engine refactor (PR 1) and the `rtw::par::ThreadPool`
/// compatibility alias has now been removed.  This header stays for one
/// release so stale includes fail with a direction instead of a bare
/// file-not-found.

#error \
    "rtw/par/thread_pool.hpp is retired: include \"rtw/sim/thread_pool.hpp\" and use rtw::sim::ThreadPool"
