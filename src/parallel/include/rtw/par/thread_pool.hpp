#pragma once
/// \file thread_pool.hpp
/// Compatibility alias: ThreadPool moved to the sim infrastructure layer
/// (rtw/sim/thread_pool.hpp) when the execution engine was introduced --
/// the engine's BatchRunner and the parallel runtimes share it, and sim is
/// below both in the layer diagram.  Existing rtw::par::ThreadPool users
/// keep compiling through this alias; include the sim header in new code.

#include "rtw/sim/thread_pool.hpp"

namespace rtw::par {

using rtw::sim::ThreadPool;

}  // namespace rtw::par
