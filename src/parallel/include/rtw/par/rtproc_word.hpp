#pragma once
/// \file rtproc_word.hpp
/// The rt-PROC witness family L_m as genuine timed omega-words consumed
/// through the Definition 3.3 machinery.
///
/// rtproc.hpp runs the experiment on the section 6 process runtime with
/// internally generated tokens; this module closes the loop with the
/// language formalism: L_m's words deliver m token symbols per tick on
/// the input tape, and the acceptor is a RealTimeAlgorithm whose internal
/// parallelism is p worker queues.  Acceptance (Definition 3.4) holds iff
/// every token is retired within the slack -- which a p-worker control
/// can guarantee exactly when p >= m.

#include <deque>
#include <optional>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/language.hpp"

namespace rtw::par {

/// The L_m word: m token symbols per tick, forever (tokens are nats
/// carrying their arrival tick, so monitors need no extra bookkeeping).
rtw::core::TimedWord build_token_word(std::uint32_t tokens_per_tick);

/// A p-parallel acceptor for token words: arrivals are dealt round-robin
/// onto p queues, each retiring one token per tick.  While every retired
/// token is within `slack`, the acceptor writes f each tick (the
/// Definition 3.4 "periodic success" reading); the first late token locks
/// s_r.  It never locks s_f -- the obligation is genuinely infinite -- so
/// positive verdicts come from the executor's trailing-f heuristic.
class TokenStreamAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  TokenStreamAcceptor(std::uint32_t workers, rtw::core::Tick slack);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override { return "token-stream-acceptor"; }

  std::uint64_t retired() const noexcept { return retired_; }
  std::uint64_t peak_backlog() const noexcept { return peak_; }

private:
  std::uint32_t workers_;
  rtw::core::Tick slack_;
  std::vector<std::deque<rtw::core::Tick>> queues_;
  std::uint32_t next_queue_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t backlog_ = 0;
  std::uint64_t peak_ = 0;
  bool failed_ = false;
};

/// L_m as a TimedLanguage relative to a p-worker acceptor: contains the
/// token words an acceptor with `workers` queues serves without lateness
/// over `horizon` ticks.
rtw::core::TimedLanguage rtproc_language(std::uint32_t workers,
                                         rtw::core::Tick slack,
                                         rtw::core::Tick horizon = 512);

}  // namespace rtw::par
