#include "rtw/cer/reference.hpp"

#include <unordered_map>
#include <vector>

namespace rtw::cer {

namespace {

/// Memoized match-set computation.  ends(node, i) is the set of j > i
/// such that word[i..j) matches node, represented as a bitmap over
/// 0..n.  Every construct consumes >= 1 event, so j > i strictly and
/// the iteration fixpoint below terminates.
class Evaluator {
public:
  explicit Evaluator(std::span<const core::TimedSymbol> word) : word_(word) {}

  bool accepts(const NodeRef& root) {
    if (!root) return false;
    const std::vector<char>& e = ends(root, 0);
    return e[word_.size()] != 0;
  }

private:
  using Bitmap = std::vector<char>;  // index j in [0, n], 1 = match ends at j

  const Bitmap& ends(const NodeRef& node, std::size_t i) {
    const auto key = std::make_pair(node.get(), i);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Bitmap out(word_.size() + 1, 0);
    switch (node->kind) {
      case Node::Kind::Sym:
        if (i < word_.size() && node->pred.matches(word_[i].sym)) {
          out[i + 1] = 1;
        }
        break;
      case Node::Kind::Seq: {
        const Bitmap left = ends(node->left, i);
        for (std::size_t k = i + 1; k <= word_.size(); ++k) {
          if (!left[k]) continue;
          const Bitmap& right = ends(node->right, k);
          for (std::size_t j = k + 1; j <= word_.size(); ++j) {
            if (right[j]) out[j] = 1;
          }
        }
        break;
      }
      case Node::Kind::Alt: {
        const Bitmap left = ends(node->left, i);
        const Bitmap& right = ends(node->right, i);
        for (std::size_t j = 0; j <= word_.size(); ++j) {
          out[j] = static_cast<char>(left[j] | right[j]);
        }
        break;
      }
      case Node::Kind::Iter: {
        // Reachability fixpoint: one or more back-to-back body matches.
        // Work outward from i; since body matches strictly advance, a
        // single left-to-right frontier sweep reaches the closure.
        std::vector<char> frontier(word_.size() + 1, 0);
        frontier[i] = 1;
        for (std::size_t k = i; k <= word_.size(); ++k) {
          if (!frontier[k]) continue;
          const Bitmap body = ends(node->left, k);
          for (std::size_t j = k + 1; j <= word_.size(); ++j) {
            if (!body[j]) continue;
            out[j] = 1;
            frontier[j] = 1;
          }
        }
        break;
      }
      case Node::Kind::Within: {
        const Bitmap& inner = ends(node->left, i);
        for (std::size_t j = i + 1; j <= word_.size(); ++j) {
          if (!inner[j]) continue;
          // Span of word[i..j): first event i, last event j-1.
          if (word_[j - 1].time - word_[i].time <= node->window) out[j] = 1;
        }
        break;
      }
    }
    return memo_.emplace(key, std::move(out)).first->second;
  }

  struct KeyHash {
    std::size_t operator()(
        const std::pair<const Node*, std::size_t>& k) const noexcept {
      return std::hash<const void*>()(k.first) ^ (k.second * 0x9e3779b97f4a7c15ULL);
    }
  };

  std::span<const core::TimedSymbol> word_;
  std::unordered_map<std::pair<const Node*, std::size_t>, Bitmap, KeyHash>
      memo_;
};

}  // namespace

bool eval_reference(const Query& query,
                    std::span<const core::TimedSymbol> word) {
  if (query.empty() || word.empty()) return false;
  Evaluator ev(word);
  return ev.accepts(query.root());
}

}  // namespace rtw::cer
