#include "rtw/cer/compile.hpp"

#include <algorithm>
#include <utility>

namespace rtw::cer {

namespace {

using automata::ClockConstraint;
using automata::ClockId;

/// A half-transition into a fragment: the target position plus the
/// guard/resets accumulated from enclosing `within` nodes.  The source
/// state is bound later (by Seq gluing, Iter loop-backs, or the final
/// start-state binding).
struct Entry {
  StateId pos = 0;
  ClockConstraint guard = ClockConstraint::top();
  std::vector<ClockId> resets;
};

/// Glushkov fragment for one subtree.
struct Frag {
  std::vector<Entry> entries;   ///< ways to consume the first event
  std::vector<StateId> exits;   ///< positions a full sub-match can end in
};

class Compiler {
public:
  explicit Compiler(CompileLimits limits) : limits_(limits) {}

  CompileResult run(const Query& query) {
    if (query.empty()) return fail("empty query");
    preds_.push_back({});  // start state occupies position 0
    Frag root = build(query.root());
    if (!error_.empty()) return fail(error_);
    // Bind the root fragment's entries to the start state.
    for (const Entry& e : root.entries) add_transition(0, e);
    if (!error_.empty()) return fail(error_);

    CompiledQuery out;
    out.num_states = static_cast<std::uint32_t>(preds_.size());
    out.num_clocks = next_clock_;
    out.clock_cap = cmax_ + 1;
    out.accepting.assign(out.num_states, false);
    for (StateId s : root.exits) out.accepting[s] = true;
    std::stable_sort(transitions_.begin(), transitions_.end(),
                     [](const CompiledQuery::Transition& a,
                        const CompiledQuery::Transition& b) {
                       return a.from < b.from;
                     });
    out.first_out.assign(out.num_states + 1, 0);
    for (const auto& t : transitions_) ++out.first_out[t.from + 1];
    for (std::uint32_t s = 0; s < out.num_states; ++s)
      out.first_out[s + 1] += out.first_out[s];
    out.transitions = std::move(transitions_);
    out.source = query;
    CompileResult r;
    r.compiled = std::move(out);
    return r;
  }

private:
  static CompileResult fail(std::string msg) {
    CompileResult r;
    r.error = std::move(msg);
    return r;
  }

  Frag build(const NodeRef& node) {
    if (!error_.empty() || !node) return {};
    switch (node->kind) {
      case Node::Kind::Sym: {
        if (preds_.size() > limits_.max_states) {
          error_ = "query too large (state limit)";
          return {};
        }
        const StateId pos = static_cast<StateId>(preds_.size());
        preds_.push_back(node->pred);
        Frag f;
        f.entries.push_back(Entry{pos, ClockConstraint::top(), {}});
        f.exits.push_back(pos);
        return f;
      }
      case Node::Kind::Seq: {
        Frag a = build(node->left);
        Frag b = build(node->right);
        if (!error_.empty()) return {};
        // Glue: every way A can end continues into every way B starts.
        for (StateId e : a.exits)
          for (const Entry& en : b.entries) add_transition(e, en);
        a.exits = std::move(b.exits);
        return a;
      }
      case Node::Kind::Alt: {
        Frag a = build(node->left);
        Frag b = build(node->right);
        if (!error_.empty()) return {};
        a.entries.insert(a.entries.end(),
                         std::make_move_iterator(b.entries.begin()),
                         std::make_move_iterator(b.entries.end()));
        a.exits.insert(a.exits.end(), b.exits.begin(), b.exits.end());
        return a;
      }
      case Node::Kind::Iter: {
        Frag a = build(node->left);
        if (!error_.empty()) return {};
        // Loop-backs: a finished iteration starts the body again.  The
        // entry copies carry the body's `within` resets, so each pass
        // re-opens its windows.
        for (StateId e : a.exits)
          for (const Entry& en : a.entries) add_transition(e, en);
        return a;
      }
      case Node::Kind::Within: {
        if (next_clock_ >= limits_.max_clocks) {
          error_ = "query too large (clock limit)";
          return {};
        }
        const ClockId g = next_clock_++;
        cmax_ = std::max(cmax_, node->window);
        const std::size_t tr_before = transitions_.size();
        Frag a = build(node->left);
        if (!error_.empty()) return {};
        // Guard every transition internal to the subtree (those created
        // while building it) and reset g on every way in.
        const ClockConstraint guard = ClockConstraint::le(g, node->window);
        for (std::size_t i = tr_before; i < transitions_.size(); ++i) {
          transitions_[i].guard = transitions_[i].guard && guard;
        }
        for (Entry& en : a.entries) {
          en.resets.push_back(g);
        }
        return a;
      }
    }
    return {};
  }

  void add_transition(StateId from, const Entry& entry) {
    if (!error_.empty()) return;
    if (transitions_.size() >= limits_.max_transitions) {
      error_ = "query too large (transition limit)";
      return;
    }
    CompiledQuery::Transition t;
    t.from = from;
    t.to = entry.pos;
    t.pred = preds_[entry.pos];
    t.guard = entry.guard;
    t.resets = entry.resets;
    transitions_.push_back(std::move(t));
  }

  CompileLimits limits_;
  std::vector<SymbolPred> preds_;  ///< per position; [0] unused (start)
  std::vector<CompiledQuery::Transition> transitions_;
  ClockId next_clock_ = 0;
  automata::ClockValue cmax_ = 0;
  std::string error_;
};

}  // namespace

CompileResult compile(const Query& query, CompileLimits limits) {
  return Compiler(limits).run(query);
}

}  // namespace rtw::cer
