#include "rtw/cer/parser.hpp"

#include <cctype>
#include <cstdint>
#include <utility>

namespace rtw::cer {

namespace {

/// Recursion ceiling for nested `(`/`within{` groups.  Queries come from
/// untrusted clients; without a ceiling a kilobyte of '(' would overflow
/// the network thread's stack.
constexpr int kMaxDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    Query q = parse_alt(0);
    if (!failed_) {
      skip_ws();
      if (pos_ != text_.size()) fail("unexpected trailing input");
    }
    if (failed_) {
      ParseResult r;
      r.error = std::move(error_);
      r.offset = error_pos_;
      return r;
    }
    ParseResult r;
    r.query = Query(q.root(), std::string(text_));
    return r;
  }

private:
  // ---- character stream ------------------------------------------------
  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void expect(char c, const char* what) {
    if (!consume(c)) fail(what);
  }

  void fail(std::string msg) {
    if (failed_) return;  // keep the first error
    failed_ = true;
    error_ = std::move(msg);
    error_pos_ = pos_;
  }

  // ---- grammar ---------------------------------------------------------
  Query parse_alt(int depth) {
    Query q = parse_seq(depth);
    while (!failed_ && consume('|')) q = alt(std::move(q), parse_seq(depth));
    return q;
  }

  Query parse_seq(int depth) {
    Query q = parse_post(depth);
    while (!failed_ && consume(';')) q = seq(std::move(q), parse_post(depth));
    return q;
  }

  Query parse_post(int depth) {
    Query q = parse_prim(depth);
    while (!failed_ && consume('+')) q = iter(std::move(q));
    return q;
  }

  Query parse_prim(int depth) {
    skip_ws();
    if (failed_) return {};
    if (eof()) {
      fail("expected a pattern");
      return {};
    }
    if (depth >= kMaxDepth) {
      fail("query nesting too deep");
      return {};
    }
    const char c = peek();
    if (c == '(') {
      ++pos_;
      Query q = parse_alt(depth + 1);
      expect(')', "expected ')'");
      return q;
    }
    if (c == '.') {
      ++pos_;
      return any();
    }
    if (c == '\'') {
      ++pos_;
      if (eof()) {
        fail("unterminated character literal");
        return {};
      }
      const char lit = peek();
      ++pos_;
      expect('\'', "expected closing '''");
      return chr(lit);
    }
    if (c == '<') {
      ++pos_;
      const std::size_t start = pos_;
      while (!eof() && peek() != '>') ++pos_;
      if (eof()) {
        fail("unterminated marker name");
        return {};
      }
      if (pos_ == start) {
        fail("empty marker name");
        return {};
      }
      std::string_view name = text_.substr(start, pos_ - start);
      ++pos_;  // '>'
      return sym(core::Symbol::marker(name));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t n = 0;
      if (!parse_nat(n)) return {};
      return sym(core::Symbol::nat(n));
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      while (!eof() && std::isalpha(static_cast<unsigned char>(peek()))) ++pos_;
      std::string_view word = text_.substr(start, pos_ - start);
      if (word.size() == 1) return chr(word[0]);
      if (word == "within") return parse_within(depth);
      pos_ = start;
      fail("unknown keyword '" + std::string(word) + "'");
      return {};
    }
    fail(std::string("unexpected character '") + c + "'");
    return {};
  }

  /// `within` keyword already consumed.
  Query parse_within(int depth) {
    expect('(', "expected '(' after 'within'");
    skip_ws();
    std::uint64_t window = 0;
    if (!failed_ && (eof() || !std::isdigit(static_cast<unsigned char>(peek())))) {
      fail("expected a tick count in 'within(...)'");
    }
    if (!failed_) parse_nat(window);
    expect(')', "expected ')' after window");
    expect('{', "expected '{' after 'within(t)'");
    Query body = parse_alt(depth + 1);
    expect('}', "expected '}'");
    if (failed_) return {};
    return within(static_cast<core::Tick>(window), std::move(body));
  }

  bool parse_nat(std::uint64_t& out) {
    out = 0;
    const std::size_t start = pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      const std::uint64_t digit = static_cast<std::uint64_t>(peek() - '0');
      if (out > (UINT64_MAX - digit) / 10) {
        pos_ = start;
        fail("number too large");
        return false;
      }
      out = out * 10 + digit;
      ++pos_;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rtw::cer
