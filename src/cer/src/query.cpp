#include "rtw/cer/query.hpp"

#include <utility>

namespace rtw::cer {

namespace {

/// Binding strength for minimal-parenthesis rendering: Alt < Seq < Iter.
int precedence(Node::Kind kind) {
  switch (kind) {
    case Node::Kind::Alt: return 0;
    case Node::Kind::Seq: return 1;
    case Node::Kind::Iter: return 2;
    case Node::Kind::Sym:
    case Node::Kind::Within: return 3;  // self-delimiting
  }
  return 3;
}

void render(const NodeRef& node, int min_prec, std::string& out) {
  if (!node) return;
  const int prec = precedence(node->kind);
  const bool parens = prec < min_prec;
  if (parens) out += '(';
  switch (node->kind) {
    case Node::Kind::Sym:
      out += node->pred.to_string();
      break;
    case Node::Kind::Seq:
      render(node->left, 1, out);
      out += " ; ";
      render(node->right, 2, out);
      break;
    case Node::Kind::Alt:
      render(node->left, 0, out);
      out += " | ";
      render(node->right, 1, out);
      break;
    case Node::Kind::Iter:
      render(node->left, 3, out);
      out += '+';
      break;
    case Node::Kind::Within:
      out += "within(";
      out += std::to_string(node->window);
      out += "){ ";
      render(node->left, 0, out);
      out += " }";
      break;
  }
  if (parens) out += ')';
}

std::size_t count_nodes(const NodeRef& node) {
  if (!node) return 0;
  return 1 + count_nodes(node->left) + count_nodes(node->right);
}

}  // namespace

std::string SymbolPred::to_string() const {
  if (kind == Kind::Any) return ".";
  if (sym.is_char()) {
    const char c = sym.as_char();
    // Letters render bare; anything the parser could misread is quoted
    // (digits would parse as naturals, punctuation as operators).
    const bool bare = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    if (bare) return std::string(1, c);
    std::string out = "'";
    out += c;
    out += '\'';
    return out;
  }
  if (sym.is_nat()) return std::to_string(sym.as_nat());
  std::string out = "<";
  out += sym.name();
  out += '>';
  return out;
}

std::string Query::to_string() const {
  std::string out;
  render(root_, 0, out);
  return out;
}

std::size_t Query::size() const noexcept { return count_nodes(root_); }

Query sym(core::Symbol s) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Sym;
  node->pred = SymbolPred{SymbolPred::Kind::Exact, s};
  return Query(std::move(node));
}

Query chr(char c) { return sym(core::Symbol::chr(c)); }

Query any() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Sym;
  node->pred = SymbolPred{SymbolPred::Kind::Any, {}};
  return Query(std::move(node));
}

namespace {
Query binary(Node::Kind kind, Query a, Query b) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->left = a.root();
  node->right = b.root();
  return Query(std::move(node));
}
}  // namespace

Query seq(Query a, Query b) { return binary(Node::Kind::Seq, std::move(a), std::move(b)); }
Query alt(Query a, Query b) { return binary(Node::Kind::Alt, std::move(a), std::move(b)); }

Query iter(Query a) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Iter;
  node->left = a.root();
  return Query(std::move(node));
}

Query within(core::Tick window, Query a) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Within;
  node->window = window;
  node->left = a.root();
  return Query(std::move(node));
}

}  // namespace rtw::cer
