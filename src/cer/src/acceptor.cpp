#include "rtw/cer/acceptor.hpp"

#include <algorithm>
#include <utility>

#include "rtw/core/error.hpp"

namespace rtw::cer {

namespace {

/// nu' subsumes nu when nu' <= nu pointwise: every guard is an upper
/// bound, so anything nu can still do, nu' can too.
bool dominates(const automata::ClockValuation& lo,
               const automata::ClockValuation& hi) {
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) return false;
  }
  return true;
}

}  // namespace

CerAcceptor::CerAcceptor(CompiledQuery compiled)
    : compiled_(std::move(compiled)) {
  reset();
}

void CerAcceptor::reset() {
  configs_.clear();
  configs_.push_back(
      Config{0, automata::ClockValuation(compiled_.num_clocks, 0)});
  next_.clear();
  verdict_ = core::Verdict::Undetermined;
  result_ = {};
  last_time_ = 0;
  any_fed_ = false;
  finished_ = false;
}

core::Verdict CerAcceptor::feed(core::Symbol symbol, core::Tick at) {
  if (finished_ || core::final_verdict(verdict_)) return verdict_;
  if (any_fed_ && at < last_time_) {
    throw core::ModelError("CerAcceptor: non-monotone feed time");
  }
  step(symbol, at);
  last_time_ = at;
  any_fed_ = true;
  ++result_.symbols_consumed;
  result_.ticks = at;
  if (configs_.empty()) {
    // No configuration survives: no extension of the stream is in the
    // language, the strongest statement an anchored matcher can make.
    verdict_ = core::Verdict::Rejecting;
    result_.accepted = false;
    result_.exact = true;
  } else if (any_accepting()) {
    ++result_.f_count;
    if (!result_.first_f) result_.first_f = at;
  }
  return verdict_;
}

void CerAcceptor::step(core::Symbol symbol, core::Tick at) {
  const core::Tick elapsed = any_fed_ ? at - last_time_ : 0;
  next_.clear();
  for (const Config& c : configs_) {
    // Clock values are time since reset; the first event's elapsed time
    // is immaterial because every guard's clock is reset on some
    // earlier transition of the same run.
    automata::ClockValuation nu =
        automata::advance(c.clocks, elapsed, compiled_.clock_cap);
    const auto [begin, end] = compiled_.out_range(c.state);
    for (std::uint32_t i = begin; i < end; ++i) {
      const auto& t = compiled_.transitions[i];
      if (!t.pred.matches(symbol)) continue;
      if (!t.guard.satisfied(nu)) continue;
      Config succ{t.to, automata::reset(nu, t.resets)};
      bool subsumed = false;
      for (Config& existing : next_) {
        if (existing.state != succ.state) continue;
        if (dominates(existing.clocks, succ.clocks)) {
          subsumed = true;
          break;
        }
        if (dominates(succ.clocks, existing.clocks)) {
          existing.clocks = succ.clocks;
          subsumed = true;  // replaced in place
          break;
        }
      }
      if (!subsumed) next_.push_back(std::move(succ));
    }
  }
  configs_.swap(next_);
}

bool CerAcceptor::any_accepting() const {
  return std::any_of(configs_.begin(), configs_.end(), [&](const Config& c) {
    return compiled_.accepting[c.state];
  });
}

core::Verdict CerAcceptor::finish(core::StreamEnd end) {
  if (finished_) return verdict_;
  finished_ = true;
  if (core::final_verdict(verdict_)) return verdict_;
  const bool accepted = any_accepting();
  verdict_ = accepted ? core::Verdict::Accepting : core::Verdict::Rejecting;
  result_.accepted = accepted;
  // A truncated stream settles over the visible prefix only: the full
  // word could extend past the cut, so the verdict is heuristic.
  result_.exact = (end == core::StreamEnd::EndOfWord);
  return verdict_;
}

std::string CerAcceptor::name() const {
  std::string text = compiled_.source.to_string();
  constexpr std::size_t kMax = 48;
  if (text.size() > kMax) {
    text.resize(kMax - 3);
    text += "...";
  }
  return "cer:" + text;
}

std::unique_ptr<core::OnlineAcceptor> make_online_acceptor(
    const Query& query, CompileLimits limits) {
  CompileResult r = compile(query, limits);
  if (!r.ok()) return nullptr;
  return std::make_unique<CerAcceptor>(std::move(*r.compiled));
}

std::unique_ptr<core::OnlineAcceptor> make_online_acceptor(
    CompiledQuery compiled) {
  return std::make_unique<CerAcceptor>(std::move(compiled));
}

}  // namespace rtw::cer
