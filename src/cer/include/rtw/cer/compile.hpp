#pragma once
/// \file compile.hpp
/// Query -> timed-automaton compilation.
///
/// The compiler lowers a query AST to an epsilon-free nondeterministic
/// timed automaton by a Glushkov-style position construction extended
/// with the clock semantics of automata/clocks.hpp:
///
///   * one automaton state per Sym leaf ("position"), plus a start
///     state; a transition into position p consumes one stream event
///     matching p's predicate (no epsilon moves -- possible because
///     every query construct consumes at least one event);
///   * each `within(t)` node allocates one clock g: g is reset on
///     every transition *entering* the node's subtree and the guard
///     g <= t decorates every transition *internal* to the subtree.
///     Since the last event of a sub-match is consumed by an internal
///     transition (or is the entry event itself, when the sub-match is
///     a single event and the window holds trivially), and time is
///     monotone, guarding every internal step is equivalent to the
///     declarative first-to-last constraint tau_j - tau_i <= t;
///   * guards are evaluated against the valuation advanced to the
///     event's timestamp *before* the transition's resets apply, so a
///     step can simultaneously close one window check and open the
///     next (iteration loop-backs re-entering a `within` body).
///
/// All guards are upper bounds (x <= c), which makes two runtime
/// simplifications sound: valuations are capped at cmax+1 (clocks.hpp
/// capping argument), and a configuration (q, nu) is subsumed by
/// (q, nu') with nu' <= nu pointwise.
///
/// Compilation is total: structural blow-ups (Glushkov is O(n^2) in
/// transitions) are caught by CompileLimits and reported as an error
/// result -- queries come from untrusted clients, so the serving layer
/// turns a limit hit into a refused open, never an allocation storm.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtw/automata/clocks.hpp"
#include "rtw/cer/query.hpp"

namespace rtw::cer {

using StateId = std::uint32_t;

/// Structural ceilings applied during compilation.  Defaults are sized
/// for wire-submitted queries (a few hundred bytes of text).
struct CompileLimits {
  std::uint32_t max_states = 256;
  std::uint32_t max_transitions = 4096;
  std::uint32_t max_clocks = 32;
};

/// The compiled automaton.  States are 0..num_states-1 with 0 the
/// (non-accepting) start state; transitions are grouped by source in
/// CSR form for the runtime's config-set sweep.
struct CompiledQuery {
  struct Transition {
    StateId from = 0;
    StateId to = 0;
    SymbolPred pred;                       ///< event filter
    automata::ClockConstraint guard = automata::ClockConstraint::top();
    std::vector<automata::ClockId> resets;
  };

  std::uint32_t num_states = 0;
  automata::ClockId num_clocks = 0;
  /// cmax + 1: valuations advanced past this value are indistinguishable
  /// to every guard, so the runtime caps them here (finite config space).
  automata::ClockValue clock_cap = 1;
  std::vector<Transition> transitions;   ///< sorted by `from`
  std::vector<std::uint32_t> first_out;  ///< CSR: num_states+1 offsets
  std::vector<bool> accepting;           ///< per state
  Query source;

  /// Transitions leaving `s` as a [begin, end) index pair.
  std::pair<std::uint32_t, std::uint32_t> out_range(StateId s) const {
    return {first_out[s], first_out[s + 1]};
  }
};

/// Outcome of compilation: `ok()` implies `compiled` is set, otherwise
/// `error` says which limit (or structural rule) was violated.
struct CompileResult {
  std::optional<CompiledQuery> compiled;
  std::string error;

  bool ok() const noexcept { return compiled.has_value(); }
};

CompileResult compile(const Query& query, CompileLimits limits = {});

}  // namespace rtw::cer
