#pragma once
/// \file acceptor.hpp
/// Compiled queries as core::OnlineAcceptor sessions.
///
/// CerAcceptor runs the compiled automaton as a subset ("config set")
/// simulation: a configuration is a state plus a capped clock
/// valuation; feeding an event advances every configuration's clocks
/// to the event's timestamp, fires all transitions whose predicate and
/// guard hold (guards checked before the transition's resets apply),
/// and dedups the successor set with pointwise-dominance subsumption
/// (sound because every guard is an upper bound).
///
/// Matching is anchored: the stream as a whole must be a word of the
/// query's language.  The verdict therefore stays Undetermined until
/// the stream finishes -- with one exception: an empty configuration
/// set means no extension can ever match, which locks Rejecting with
/// exact = true.  finish(EndOfWord) settles Accepting/Rejecting with
/// exact = true; finish(Truncated) settles the same verdict over the
/// visible prefix with exact = false (the full word could differ).
///
/// RunResult mirrors Definition 3.4 bookkeeping: f_count counts feeds
/// after which some accepting configuration existed (the ticks where a
/// hypothetical output tape would carry f), first_f the first such
/// timestamp.

#include <memory>

#include "rtw/cer/compile.hpp"
#include "rtw/core/online.hpp"

namespace rtw::cer {

class CerAcceptor final : public core::OnlineAcceptor {
public:
  explicit CerAcceptor(CompiledQuery compiled);

  core::Verdict feed(core::Symbol symbol, core::Tick at) override;
  using core::OnlineAcceptor::feed;
  core::Verdict finish(core::StreamEnd end) override;
  core::Verdict verdict() const override { return verdict_; }
  const core::RunResult& result() const override { return result_; }
  void reset() override;
  std::string name() const override;

  const CompiledQuery& compiled() const noexcept { return compiled_; }
  /// Live configurations (post-dedup) -- exposed for tests/bench.
  std::size_t config_count() const noexcept { return configs_.size(); }

private:
  struct Config {
    StateId state = 0;
    automata::ClockValuation clocks;
  };

  void step(core::Symbol symbol, core::Tick at);
  bool any_accepting() const;

  CompiledQuery compiled_;
  std::vector<Config> configs_;
  std::vector<Config> next_;  ///< scratch, reused across feeds
  core::Verdict verdict_ = core::Verdict::Undetermined;
  core::RunResult result_;
  core::Tick last_time_ = 0;
  bool any_fed_ = false;
  bool finished_ = false;
};

/// Compiles `query` and wraps it; returns nullptr when a CompileLimits
/// ceiling is hit (callers that need the reason use compile() directly).
std::unique_ptr<core::OnlineAcceptor> make_online_acceptor(
    const Query& query, CompileLimits limits = {});

/// Wraps an already-compiled query (no failure path).
std::unique_ptr<core::OnlineAcceptor> make_online_acceptor(
    CompiledQuery compiled);

}  // namespace rtw::cer
