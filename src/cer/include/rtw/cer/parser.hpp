#pragma once
/// \file parser.hpp
/// Text form of timed-pattern queries.
///
/// Concrete grammar (whitespace-insensitive):
///
///   query   :=  alt
///   alt     :=  seq  ( '|' seq )*
///   seq     :=  post ( ';' post )*
///   post    :=  prim ( '+' )*
///   prim    :=  atom
///            |  '(' alt ')'
///            |  'within' '(' NAT ')' '{' alt '}'
///   atom    :=  LETTER          one event equal to that character
///            |  '\'' CHAR '\''  quoted character (for digits/punctuation)
///            |  NAT             one event equal to that natural number
///            |  '<' NAME '>'    one event equal to the interned marker
///            |  '.'             one event, any symbol
///
/// Precedence, loosest to tightest: `|` < `;` < `+`.  So
/// `a ; b | c+` parses as `(a ; b) | (c+)`.
///
/// `parse` never throws: queries arrive over the wire from untrusted
/// clients, and the svc Decoder validates SubmitQuery bodies on the
/// network thread, where an exception would tear down the connection
/// loop rather than the one bad frame.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "rtw/cer/query.hpp"

namespace rtw::cer {

/// Outcome of parsing a query string.  Exactly one of `query` /
/// `error` is meaningful: `ok()` implies `query` holds the AST,
/// otherwise `error` is a human-readable message and `offset` is the
/// byte position in the input where parsing failed.
struct ParseResult {
  std::optional<Query> query;
  std::string error;
  std::size_t offset = 0;

  bool ok() const noexcept { return query.has_value(); }
};

/// Parses `text` into a Query.  Total: malformed input (including
/// pathological nesting past an internal depth limit) yields an error
/// result, never a throw or a crash.
ParseResult parse(std::string_view text);

}  // namespace rtw::cer
