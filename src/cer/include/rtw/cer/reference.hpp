#pragma once
/// \file reference.hpp
/// Naive reference evaluator: the compiled acceptor's ground truth.
///
/// eval_reference interprets the query AST directly over a fully
/// materialized word: memoized match sets "word[i..j) matches node"
/// computed bottom-up (O(size(query) * n^2) time, no automata, no
/// clocks).  It is deliberately written from the declarative semantics
/// of query.hpp -- sequence splits, disjunction unions, iteration as a
/// reachability fixpoint, `within` as a filter on first-to-last
/// timestamp span -- so that agreement with CerAcceptor (which takes
/// the Glushkov + clock-guard route) is evidence for both.  The
/// property suite in tests/test_cer.cpp differential-tests the two on
/// random queries x fault-mutated words, comparing verdicts after
/// every element.

#include <span>

#include "rtw/cer/query.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::cer {

/// True iff the whole word (anchored: all of it) is in the query's
/// language.  The empty word is never in the language.
bool eval_reference(const Query& query,
                    std::span<const core::TimedSymbol> word);

}  // namespace rtw::cer
