#pragma once
/// \file query.hpp
/// Timed-pattern query AST: the complex-event-recognition (CER) workload.
///
/// García & Riveros ("Complex event recognition under time constraints",
/// PAPERS.md) formalize pattern queries with time-window constraints
/// evaluated online over event streams -- the general version of the
/// paper's four fixed acceptor families.  A query describes a timed
/// language over the core Symbol alphabet:
///
///   P  ::=  sym            one event matching a symbol predicate
///        |  P ; P          sequence (concatenation)
///        |  P | P          disjunction
///        |  P +            iteration, one or more times
///        |  within(t){ P } P, with the constraint that the time between
///                          its first and last matched event is <= t
///
/// Every operator consumes at least one event (iteration is one-or-more,
/// predicates consume exactly one), so the language never contains the
/// empty word and a `within` group's "first matched event" is always
/// defined.  Times are the discrete Ticks of Definition 3.1; a window
/// constraint `within(t)` over a sub-match spanning elements i..j demands
/// tau_j - tau_i <= t.
///
/// The AST is immutable and shared (cheap Query copies); construction
/// goes through the combinator functions below or the text parser in
/// parser.hpp.  Compilation onto the serving stack lives in compile.hpp
/// (timed-automaton product) and acceptor.hpp (core::OnlineAcceptor
/// adapter); reference.hpp holds the naive direct-AST evaluator the
/// property suite differential-tests the compiled form against.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/symbol.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::cer {

/// Per-event predicate: matches one symbol of the stream.
struct SymbolPred {
  enum class Kind : std::uint8_t {
    Exact,  ///< equal to `sym` (Symbol disjointness does the rest)
    Any,    ///< wildcard `.`: matches every symbol
  };

  Kind kind = Kind::Any;
  core::Symbol sym;

  bool matches(core::Symbol s) const noexcept {
    return kind == Kind::Any || s == sym;
  }

  std::string to_string() const;
};

/// One AST node.  Interior nodes own their children through the shared
/// Query handles, so subtrees can be reused across queries.
struct Node;
using NodeRef = std::shared_ptr<const Node>;

struct Node {
  enum class Kind : std::uint8_t {
    Sym,     ///< leaf: one event matching `pred`
    Seq,     ///< left then right
    Alt,     ///< left or right
    Iter,    ///< left, one or more times
    Within,  ///< left, with first-to-last span <= `window`
  };

  Kind kind = Kind::Sym;
  SymbolPred pred;        ///< Sym only
  NodeRef left;           ///< Seq/Alt/Iter/Within
  NodeRef right;          ///< Seq/Alt only
  core::Tick window = 0;  ///< Within only
};

/// A parsed timed-pattern query: shared immutable AST plus the source
/// text it was parsed from (empty for combinator-built queries).
class Query {
public:
  Query() = default;
  explicit Query(NodeRef root, std::string text = {})
      : root_(std::move(root)), text_(std::move(text)) {}

  const NodeRef& root() const noexcept { return root_; }
  bool empty() const noexcept { return root_ == nullptr; }
  /// The source text, when the query came from parse().
  const std::string& text() const noexcept { return text_; }

  /// Canonical rendering (re-parseable; minimal parentheses).
  std::string to_string() const;

  /// Node count of the AST (shared subtrees counted once per reference).
  std::size_t size() const noexcept;

private:
  NodeRef root_;
  std::string text_;
};

// ------------------------------------------------------------ combinators

/// One event equal to `s`.
Query sym(core::Symbol s);
/// Convenience: one event equal to the character `c`.
Query chr(char c);
/// One event, any symbol (`.`).
Query any();
/// a then b.
Query seq(Query a, Query b);
/// a or b.
Query alt(Query a, Query b);
/// a, one or more times.
Query iter(Query a);
/// a, first-to-last span within `window` ticks.
Query within(core::Tick window, Query a);

}  // namespace rtw::cer
