// Portable reference kernel: one lane at a time through the shared inline
// step.  Every SIMD variant must be bit-identical to this TU; the SIMD TUs
// also call into it for remainder lanes and post-lock tails.

#include "rtw/deadline/lane.hpp"

namespace rtw::deadline {

void step_lanes_scalar(const core::LaneRun* runs, std::size_t count,
                       std::uint64_t d_id) noexcept {
  for (std::size_t lane = 0; lane < count; ++lane) {
    const core::LaneRun& run = runs[lane];
    auto& filter = *run.filter;
    auto& state = *static_cast<DeadlineLaneState*>(run.state);
    for (std::size_t i = 0; i < run.size; ++i)
      lane_step_element(filter, state, run.data[i], d_id);
  }
}

}  // namespace rtw::deadline
