#include "rtw/deadline/online.hpp"

#include "rtw/core/error.hpp"
#include "rtw/deadline/acceptor.hpp"

namespace rtw::deadline {

std::unique_ptr<rtw::core::OnlineAcceptor> make_online_acceptor(
    std::shared_ptr<const Problem> problem, rtw::core::RunOptions options) {
  if (!problem)
    throw rtw::core::ModelError("deadline::make_online_acceptor: null problem");
  auto algorithm = std::make_unique<DeadlineAcceptor>(*problem);
  return std::make_unique<rtw::core::EngineOnlineAcceptor>(
      std::move(algorithm), options, std::move(problem));
}

}  // namespace rtw::deadline
