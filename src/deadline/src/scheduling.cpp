#include "rtw/deadline/scheduling.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "rtw/core/error.hpp"

namespace rtw::deadline {

std::string to_string(Policy p) {
  switch (p) {
    case Policy::Edf:
      return "EDF";
    case Policy::RateMonotonic:
      return "RM";
    case Policy::Fifo:
      return "FIFO";
    case Policy::Llf:
      return "LLF";
  }
  return "?";
}

namespace {

/// Index of the job the policy runs at `now`, or nullopt when idle.
std::optional<std::size_t> pick(const std::vector<Job>& jobs,
                                const std::map<std::uint32_t, Tick>& periods,
                                Policy policy, Tick now) {
  std::optional<std::size_t> best;
  auto better = [&](std::size_t a, std::size_t b) {
    const Job& ja = jobs[a];
    const Job& jb = jobs[b];
    switch (policy) {
      case Policy::Edf:
        if (ja.absolute_deadline != jb.absolute_deadline)
          return ja.absolute_deadline < jb.absolute_deadline;
        break;
      case Policy::RateMonotonic: {
        // Shorter period = higher priority; aperiodic jobs (period 0) rank
        // by deadline behind all periodic tasks.
        const Tick pa = periods.at(ja.task_id);
        const Tick pb = periods.at(jb.task_id);
        const bool a_per = pa > 0, b_per = pb > 0;
        if (a_per != b_per) return a_per;
        if (a_per && pa != pb) return pa < pb;
        if (!a_per && ja.absolute_deadline != jb.absolute_deadline)
          return ja.absolute_deadline < jb.absolute_deadline;
        break;
      }
      case Policy::Fifo:
        if (ja.release != jb.release) return ja.release < jb.release;
        break;
      case Policy::Llf:
        if (ja.laxity(now) != jb.laxity(now))
          return ja.laxity(now) < jb.laxity(now);
        break;
    }
    // Deterministic tie-break: task id then job index.
    if (ja.task_id != jb.task_id) return ja.task_id < jb.task_id;
    return ja.job_index < jb.job_index;
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    if (j.finish || j.release > now || j.remaining == 0) continue;
    if (!best || better(i, *best)) best = i;
  }
  return best;
}

}  // namespace

ScheduleResult simulate_schedule(const std::vector<Task>& tasks, Policy policy,
                                 Tick horizon) {
  ScheduleResult result;
  result.policy = policy;
  result.horizon = horizon;

  std::map<std::uint32_t, Tick> periods;
  for (const auto& t : tasks) {
    if (t.wcet == 0)
      throw rtw::core::ModelError("simulate_schedule: zero wcet");
    if (periods.count(t.id))
      throw rtw::core::ModelError("simulate_schedule: duplicate task id");
    periods[t.id] = t.period;
  }

  // Release all jobs up front (deterministic workload).  Only jobs whose
  // absolute deadline fits inside the horizon are released: jobs truncated
  // by the end of the simulation would otherwise count as spurious misses.
  for (const auto& t : tasks) {
    if (t.period == 0) {
      if (t.release + t.relative_deadline <= horizon)
        result.jobs.push_back(Job{t.id, 0, t.release,
                                  t.release + t.relative_deadline, t.wcet,
                                  t.wcet, std::nullopt});
      continue;
    }
    std::uint32_t index = 0;
    for (Tick r = t.release; r + t.relative_deadline <= horizon;
         r += t.period, ++index)
      result.jobs.push_back(Job{t.id, index, r, r + t.relative_deadline,
                                t.wcet, t.wcet, std::nullopt});
  }

  std::optional<std::size_t> running;
  for (Tick now = 0; now < horizon; ++now) {
    const auto next = pick(result.jobs, periods, policy, now);
    if (next && running && *next != *running &&
        !result.jobs[*running].finish &&
        result.jobs[*running].remaining > 0)
      ++result.preemptions;
    running = next;
    if (!running) continue;
    Job& job = result.jobs[*running];
    --job.remaining;
    if (job.remaining == 0) job.finish = now + 1;
  }

  for (const auto& j : result.jobs) {
    if (j.finish) {
      ++result.completed;
      result.response_time.add(static_cast<double>(*j.finish - j.release));
    }
    if (j.missed()) ++result.missed;
  }
  return result;
}

double utilization(const std::vector<Task>& tasks) {
  double u = 0.0;
  for (const auto& t : tasks)
    if (t.period > 0)
      u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  return u;
}

std::vector<Task> random_task_set(std::uint32_t count, double target,
                                  rtw::sim::Xoshiro256ss& rng) {
  if (count == 0)
    throw rtw::core::ModelError("random_task_set: zero tasks");
  // UUniFast: split `target` into `count` utilizations uniformly over the
  // simplex.
  std::vector<double> shares;
  double remaining = target;
  for (std::uint32_t i = 1; i < count; ++i) {
    const double next =
        remaining *
        std::pow(rng.uniform_real(), 1.0 / static_cast<double>(count - i));
    shares.push_back(remaining - next);
    remaining = next;
  }
  shares.push_back(remaining);

  std::vector<Task> tasks;
  for (std::uint32_t i = 0; i < count; ++i) {
    Task t;
    t.id = i;
    t.release = 0;
    t.period = 20 + 10 * rng.uniform(std::uint64_t{9});  // 20..110
    // wcet = utilization * period, at least 1, at most the period.
    const double u = std::clamp(shares[i], 0.001, 1.0);
    t.wcet = std::clamp<Tick>(
        static_cast<Tick>(std::llround(u * static_cast<double>(t.period))), 1,
        t.period);
    t.relative_deadline = t.period;  // implicit deadlines
    tasks.push_back(t);
  }
  return tasks;
}

}  // namespace rtw::deadline
