// SSE2 deadline lane kernel: 2 sessions per instruction.
//
// Register file per wave (one __m128i = 2 u64 lanes of one field):
//   HW (filter high-water = live frontier), FED, STALE, ANY  -- the filter;
//   TICKS, C (completion), U (usefulness), PEND, DELIV, DP, HORIZON,
//   SETTLED -- the DeadlineLaneState registers lane_hot_feed touches.
// Per element j the wave evaluates the stale filter and the hot transition
// as mask algebra (see lane.hpp for the derivation).  Lock/end events are
// terminal and at most one per lane lifetime, so the wave does not fix them
// up in-register: it commits the SoA state and finishes the wave through
// the scalar reference from element j -- rare by construction, and the two
// paths share lane_step_element so they cannot drift.
//
// SSE2 is x86-64 baseline, so this TU needs no extra ISA flags; on non-x86
// targets it degrades to a forward to the scalar kernel.

#include "rtw/deadline/lane.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define RTW_LANE_SSE2 1
#include <emmintrin.h>
#endif

namespace rtw::deadline {

#if defined(RTW_LANE_SSE2)

namespace {

inline __m128i blendv_u64(__m128i a, __m128i b, __m128i mask) {
  return _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a));
}

/// Unsigned 64-bit a > b without pcmpgtq (SSE4.2+): bias both 32-bit
/// halves so pcmpgtd orders them unsigned, then hi_gt | (hi_eq & lo_gt).
inline __m128i cmpgt_u64(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i a_biased = _mm_xor_si128(a, bias);
  const __m128i b_biased = _mm_xor_si128(b, bias);
  const __m128i gt32 = _mm_cmpgt_epi32(a_biased, b_biased);
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  const __m128i gt_hi = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i gt_lo = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i eq_hi = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
}

inline __m128i cmpeq_u64(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32,
                       _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

/// One wave of 2 lanes.  Commits SoA registers back to the filters/states;
/// on the first lock/end event it commits and finishes scalar from there.
void step_wave2(const core::LaneRun* runs, std::uint64_t d_id) {
  DeadlineLaneState* states[2];
  core::LaneFilter* filters[2];
  for (int k = 0; k < 2; ++k) {
    states[k] = static_cast<DeadlineLaneState*>(runs[k].state);
    filters[k] = runs[k].filter;
  }
  const std::size_t maxlen = std::max(runs[0].size, runs[1].size);

  const auto pack = [](std::uint64_t lo, std::uint64_t hi) {
    return _mm_set_epi64x(static_cast<long long>(hi),
                          static_cast<long long>(lo));
  };
  const auto pack_mask = [&pack](bool lo, bool hi) {
    return pack(lo ? ~0ULL : 0, hi ? ~0ULL : 0);
  };

  __m128i hw = pack(filters[0]->high_water, filters[1]->high_water);
  __m128i fed = pack(filters[0]->fed, filters[1]->fed);
  __m128i stale = pack(filters[0]->stale, filters[1]->stale);
  __m128i any = pack_mask(filters[0]->any, filters[1]->any);
  __m128i ticks = pack(states[0]->ticks, states[1]->ticks);
  __m128i completion = pack(states[0]->completion, states[1]->completion);
  __m128i usefulness = pack(states[0]->usefulness, states[1]->usefulness);
  __m128i pend = pack(states[0]->pending, states[1]->pending);
  __m128i deliv = pack(states[0]->delivered, states[1]->delivered);
  __m128i dp = pack_mask(states[0]->deadline_passed, states[1]->deadline_passed);
  const __m128i horizon = pack(states[0]->horizon, states[1]->horizon);
  const __m128i settled = pack_mask(states[0]->status != kLaneLive,
                                    states[1]->status != kLaneLive);
  const __m128i d_vec = pack(d_id, d_id);
  const __m128i kind_nat = pack(kLaneKindNat, kLaneKindNat);
  const __m128i kind_marker = pack(kLaneKindMarker, kLaneKindMarker);
  const __m128i one = pack(1, 1);

  const auto commit = [&](std::size_t upto) {
    alignas(16) std::uint64_t hw_a[2], fed_a[2], stale_a[2], ticks_a[2],
        u_a[2], pend_a[2], deliv_a[2], any_a[2], dp_a[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(hw_a), hw);
    _mm_store_si128(reinterpret_cast<__m128i*>(fed_a), fed);
    _mm_store_si128(reinterpret_cast<__m128i*>(stale_a), stale);
    _mm_store_si128(reinterpret_cast<__m128i*>(ticks_a), ticks);
    _mm_store_si128(reinterpret_cast<__m128i*>(u_a), usefulness);
    _mm_store_si128(reinterpret_cast<__m128i*>(pend_a), pend);
    _mm_store_si128(reinterpret_cast<__m128i*>(deliv_a), deliv);
    _mm_store_si128(reinterpret_cast<__m128i*>(any_a), any);
    _mm_store_si128(reinterpret_cast<__m128i*>(dp_a), dp);
    for (int k = 0; k < 2; ++k) {
      filters[k]->high_water = hw_a[k];
      filters[k]->fed = fed_a[k];
      filters[k]->stale = stale_a[k];
      filters[k]->any = any_a[k] != 0;
      if (states[k]->status == kLaneLive) {
        states[k]->frontier = hw_a[k];
        states[k]->ticks = ticks_a[k];
        states[k]->usefulness = u_a[k];
        states[k]->pending = pend_a[k];
        states[k]->delivered = deliv_a[k];
        states[k]->deadline_passed = dp_a[k] != 0;
      }
    }
    // Finish the tail scalar (no-op when upto == maxlen).
    for (int k = 0; k < 2; ++k)
      for (std::size_t i = upto; i < runs[k].size; ++i)
        lane_step_element(*filters[k], *states[k], runs[k].data[i], d_id);
  };

  for (std::size_t j = 0; j < maxlen; ++j) {
    const bool a0 = j < runs[0].size;
    const bool a1 = j < runs[1].size;
    const auto load = [&](auto&& field) {
      return pack(a0 ? field(runs[0].data[j]) : 0,
                  a1 ? field(runs[1].data[j]) : 0);
    };
    const __m128i t = load([](const core::TimedSymbol& ts) { return ts.time; });
    const __m128i kind = load(
        [](const core::TimedSymbol& ts) -> std::uint64_t {
          return lane_raw_kind(ts);
        });
    const __m128i value =
        load([](const core::TimedSymbol& ts) { return lane_raw_value(ts); });
    const __m128i active = pack_mask(a0, a1);

    // Session stale filter: drop (and count) below the high-water mark.
    const __m128i is_stale =
        _mm_and_si128(active, _mm_and_si128(any, cmpgt_u64(hw, t)));
    const __m128i passed = _mm_andnot_si128(is_stale, active);

    // Hot transition masks (live lanes only).  No register may change
    // before the event check: on a bailout the scalar tail reprocesses
    // element j from scratch, so updating first would double-count it.
    const __m128i live = _mm_andnot_si128(settled, passed);
    const __m128i newer = _mm_and_si128(live, cmpgt_u64(t, hw));
    const __m128i c_gt_hw = cmpgt_u64(completion, hw);
    const __m128i lock_event = _mm_andnot_si128(c_gt_hw, newer);
    const __m128i end_event = _mm_and_si128(
        newer, _mm_and_si128(c_gt_hw, cmpgt_u64(t, horizon)));
    const __m128i event = _mm_or_si128(lock_event, end_event);
    if (_mm_movemask_epi8(event) != 0) {
      commit(j);
      return;
    }

    // Eventless transition, pure mask algebra.
    stale = _mm_sub_epi64(stale, is_stale);  // mask is -1 per stale lane
    fed = _mm_sub_epi64(fed, passed);
    deliv = _mm_add_epi64(deliv, _mm_and_si128(pend, newer));
    ticks = blendv_u64(ticks, hw, newer);
    const __m128i tie = _mm_andnot_si128(newer, live);
    pend = _mm_sub_epi64(pend, tie);  // ++pending on same-frontier ties
    pend = blendv_u64(pend, one, newer);
    const __m128i fold = _mm_andnot_si128(cmpgt_u64(t, completion), live);
    const __m128i is_d = _mm_and_si128(cmpeq_u64(kind, kind_marker),
                                       cmpeq_u64(value, d_vec));
    const __m128i is_nat = cmpeq_u64(kind, kind_nat);
    dp = _mm_or_si128(dp, _mm_and_si128(fold, is_d));
    usefulness = blendv_u64(usefulness, value, _mm_and_si128(fold, is_nat));
    hw = blendv_u64(hw, t, passed);
    any = _mm_or_si128(any, passed);
  }
  commit(maxlen);
}

}  // namespace

void step_lanes_sse2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) step_wave2(runs + i, d_id);
  if (i < count) step_lanes_scalar(runs + i, count - i, d_id);
}

bool sse2_kernel_compiled() noexcept { return true; }

#else  // !RTW_LANE_SSE2

void step_lanes_sse2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept {
  step_lanes_scalar(runs, count, d_id);
}

bool sse2_kernel_compiled() noexcept { return false; }

#endif

}  // namespace rtw::deadline
