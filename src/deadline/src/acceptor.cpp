#include "rtw/deadline/acceptor.hpp"

#include "rtw/core/error.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/engine/engine.hpp"

namespace rtw::deadline {

using rtw::core::StepContext;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedWord;

DeadlineAcceptor::DeadlineAcceptor(const Problem& problem)
    : problem_(&problem) {}

std::string DeadlineAcceptor::name() const {
  return "deadline-acceptor(" + problem_->name() + ")";
}

void DeadlineAcceptor::reset() {
  phase_ = Phase::Reading;
  header_ = {};
  solution_.clear();
  completion_ = 0;
  deadline_passed_ = false;
  usefulness_seen_ = 0;
  saw_header_ = false;
}

void DeadlineAcceptor::on_tick(const StepContext& ctx) {
  // --- P_m: monitor the stream.  Track the latest w/d/usefulness symbols
  // whose timestamps do not exceed P_w's completion time (observations past
  // completion are irrelevant to the verdict).
  for (const auto& ts : ctx.arrivals) {
    if (phase_ == Phase::Working && ts.time > completion_) continue;
    if (ts.sym == rtw::core::marks::deadline()) {
      deadline_passed_ = true;
    } else if (ts.sym.is_nat() && saw_header_ && ts.time > 0) {
      usefulness_seen_ = ts.sym.as_nat();  // the pair partner of a `d`
    }
  }

  switch (phase_) {
    case Phase::Reading: {
      if (ctx.now != 0 || ctx.arrivals.empty()) {
        // A section 4.1 word always carries its header at time 0.
        if (ctx.now > 0) phase_ = Phase::RejectLock;
        return;
      }
      std::vector<rtw::core::TimedSymbol> at_zero(ctx.arrivals.begin(),
                                                  ctx.arrivals.end());
      try {
        header_ = parse_deadline_header(at_zero);
      } catch (const rtw::core::ModelError&) {
        phase_ = Phase::RejectLock;
        return;
      }
      saw_header_ = true;
      // P_w starts: solution ready after the simulated work cost.
      solution_ = problem_->solve(header_.input);
      completion_ = std::max<Tick>(1, problem_->work_cost(header_.input));
      // Within the deadline the usefulness is implicitly the maximum; we
      // model "acceptable unless shown otherwise at completion".
      usefulness_seen_ = header_.min_acceptable;
      phase_ = Phase::Working;
      return;
    }

    case Phase::Working: {
      if (ctx.now < completion_) return;
      // --- P_w terminates now.  P_m renders the verdict.
      bool acceptable = true;
      if (deadline_passed_)
        acceptable = usefulness_seen_ >= header_.min_acceptable;
      const bool matches = solution_ == header_.proposed_output;
      phase_ = (acceptable && matches) ? Phase::AcceptLock : Phase::RejectLock;
      break;  // fall through to the lock handling below
    }

    case Phase::AcceptLock:
    case Phase::RejectLock:
      break;
  }

  if (phase_ == Phase::AcceptLock && ctx.out.can_write(ctx.now))
    ctx.out.write(ctx.now, ctx.out.accept_symbol());
}

std::optional<DeadlineAcceptor::WorkingSnapshot>
DeadlineAcceptor::working_snapshot() const {
  if (phase_ != Phase::Working) return std::nullopt;
  WorkingSnapshot snapshot;
  snapshot.completion = completion_;
  snapshot.min_acceptable = header_.min_acceptable;
  snapshot.usefulness = usefulness_seen_;
  snapshot.deadline_passed = deadline_passed_;
  snapshot.matches = solution_ == header_.proposed_output;
  return snapshot;
}

std::optional<bool> DeadlineAcceptor::locked() const {
  switch (phase_) {
    case Phase::AcceptLock:
      return true;
    case Phase::RejectLock:
      return false;
    default:
      return std::nullopt;
  }
}

bool accepts_instance(const Problem& pi, const DeadlineInstance& instance) {
  DeadlineAcceptor acceptor(pi);
  const TimedWord word = build_deadline_word(instance);
  const auto run = rtw::engine::run(acceptor, word);
  return run.result.exact && run.result.accepted;
}

std::vector<bool> accepts_instances(
    const Problem& pi, const std::vector<DeadlineInstance>& instances,
    const rtw::engine::BatchOptions& batch) {
  std::vector<TimedWord> words;
  words.reserve(instances.size());
  for (const auto& instance : instances)
    words.push_back(build_deadline_word(instance));
  return rtw::engine::membership_sweep(
      [&pi] { return std::make_unique<DeadlineAcceptor>(pi); }, words, {},
      /*require_exact=*/true, batch);
}

rtw::core::TimedLanguage deadline_language(std::shared_ptr<const Problem> pi) {
  auto member = rtw::engine::membership(
      [pi] { return std::make_unique<DeadlineAcceptor>(*pi); }, {},
      /*require_exact=*/true);
  auto sampler = [pi](std::uint64_t i) {
    DeadlineInstance instance;
    // Inputs of growing size; nat payloads descending so sorting does work.
    const std::uint64_t n = 2 + i % 6;
    for (std::uint64_t k = 0; k < n; ++k)
      instance.input.push_back(Symbol::nat((7 * (i + 1) + n - k) % 17));
    instance.proposed_output = pi->solve(instance.input);
    const Tick cost = pi->work_cost(instance.input);
    instance.usefulness = Usefulness::firm(cost + 4 + i % 3, 10);
    instance.min_acceptable = 1;
    return build_deadline_word(instance);
  };
  return rtw::core::TimedLanguage("L(" + pi->name() + ")", std::move(member),
                                  std::move(sampler));
}

}  // namespace rtw::deadline
