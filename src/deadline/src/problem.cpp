#include "rtw/deadline/problem.hpp"

#include <algorithm>
#include <bit>

namespace rtw::deadline {

std::vector<Symbol> SortProblem::solve(
    const std::vector<Symbol>& input) const {
  std::vector<Symbol> out = input;
  std::sort(out.begin(), out.end());
  return out;
}

Tick SortProblem::work_cost(const std::vector<Symbol>& input) const {
  const auto n = static_cast<Tick>(input.size());
  if (n < 2) return 1;
  return n * std::bit_width(n);
}

std::vector<Symbol> ReverseProblem::solve(
    const std::vector<Symbol>& input) const {
  return {input.rbegin(), input.rend()};
}

Tick ReverseProblem::work_cost(const std::vector<Symbol>& input) const {
  return std::max<Tick>(1, input.size());
}

std::vector<Symbol> PrefixSumProblem::solve(
    const std::vector<Symbol>& input) const {
  std::vector<Symbol> out;
  out.reserve(input.size());
  std::uint64_t acc = 0;
  for (const auto& s : input) {
    acc += s.is_nat() ? s.as_nat() : 0;
    out.push_back(Symbol::nat(acc));
  }
  return out;
}

Tick PrefixSumProblem::work_cost(const std::vector<Symbol>& input) const {
  return std::max<Tick>(1, input.size());
}

}  // namespace rtw::deadline
