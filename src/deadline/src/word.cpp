#include "rtw/deadline/word.hpp"

#include "rtw/core/error.hpp"

namespace rtw::deadline {

using rtw::core::ModelError;
using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

TimedWord build_deadline_word(const DeadlineInstance& instance,
                              rtw::core::Tick decay_span) {
  const auto& u = instance.usefulness;
  std::vector<TimedSymbol> prefix;

  // Header at time 0: [<min> min] o $ iota $.  The <min> marker makes the
  // parse unambiguous even when o itself starts with a natural (the
  // delimiter license of the paper's section 4 preliminaries).
  if (u.kind() != DeadlineKind::None) {
    if (instance.min_acceptable > u.max())
      throw ModelError("build_deadline_word: min acceptable above max");
    prefix.push_back({Symbol::marker("min"), 0});
    prefix.push_back({Symbol::nat(instance.min_acceptable), 0});
  }
  for (const auto& s : instance.proposed_output) prefix.push_back({s, 0});
  prefix.push_back({rtw::core::marks::dollar(), 0});
  for (const auto& s : instance.input) prefix.push_back({s, 0});
  prefix.push_back({rtw::core::marks::dollar(), 0});

  const Symbol w = rtw::core::marks::waiting();
  const Symbol d = rtw::core::marks::deadline();

  if (u.kind() == DeadlineKind::None) {
    // w at 1, 2, 3, ... forever.
    return TimedWord::lasso(std::move(prefix), {{w, 1}}, 1);
  }

  const Tick t_d = u.deadline();
  if (t_d == 0)
    throw ModelError("build_deadline_word: deadline at time 0");
  for (Tick t = 1; t < t_d; ++t) prefix.push_back({w, t});

  if (u.kind() == DeadlineKind::Firm) {
    // Pairs (d, 0) each tick from t_d on.
    return TimedWord::lasso(std::move(prefix),
                            {{d, t_d}, {Symbol::nat(0), t_d}}, 1);
  }

  // Soft: transient (d, u(t)) pairs until the decay hits zero, then the
  // periodic (d, 0) tail.
  Tick zero_at = u.first_below(1, t_d + decay_span);
  if (u.at(zero_at) != 0)
    throw ModelError(
        "build_deadline_word: soft decay does not reach zero within span");
  for (Tick t = t_d; t < zero_at; ++t) {
    prefix.push_back({d, t});
    prefix.push_back({Symbol::nat(u.at(t)), t});
  }
  return TimedWord::lasso(std::move(prefix),
                          {{d, zero_at}, {Symbol::nat(0), zero_at}}, 1);
}

ParsedHeader parse_deadline_header(const std::vector<TimedSymbol>& at_zero) {
  ParsedHeader header;
  const Symbol dollar = rtw::core::marks::dollar();
  std::size_t i = 0;
  if (i + 1 < at_zero.size() && at_zero[i].sym == Symbol::marker("min") &&
      at_zero[i + 1].sym.is_nat()) {
    header.has_min = true;
    header.min_acceptable = at_zero[i + 1].sym.as_nat();
    i += 2;
  }
  bool closed_output = false;
  for (; i < at_zero.size(); ++i) {
    if (at_zero[i].sym == dollar) {
      closed_output = true;
      ++i;
      break;
    }
    header.proposed_output.push_back(at_zero[i].sym);
  }
  if (!closed_output)
    throw ModelError("parse_deadline_header: missing output delimiter");
  bool closed_input = false;
  for (; i < at_zero.size(); ++i) {
    if (at_zero[i].sym == dollar) {
      closed_input = true;
      ++i;
      break;
    }
    header.input.push_back(at_zero[i].sym);
  }
  if (!closed_input)
    throw ModelError("parse_deadline_header: missing input delimiter");
  return header;
}

}  // namespace rtw::deadline
