#include "rtw/deadline/lane.hpp"

#include "rtw/core/error.hpp"

namespace rtw::deadline {

using rtw::core::KernelVariant;
using rtw::core::LaneRun;
using rtw::core::RunOptions;
using rtw::core::RunResult;
using rtw::core::StreamEnd;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::Verdict;

bool lane_layout_ok() noexcept {
  static const bool ok = [] {
    const core::TimedSymbol probe{Symbol::nat(0x0123456789abcdefULL), 42};
    return lane_raw_kind(probe) == kLaneKindNat &&
           lane_raw_value(probe) == 0x0123456789abcdefULL && probe.time == 42;
  }();
  return ok;
}

std::uint64_t deadline_marker_id() noexcept {
  static const std::uint64_t id = [] {
    const core::TimedSymbol d{core::marks::deadline(), 0};
    return lane_raw_value(d);
  }();
  return id;
}

// ---------------------------------------------------------------------------
// Stepper factory

namespace {

/// Clamp the requested variant to what this build + CPU can execute.  The
/// kernel TUs always link (non-ISA builds forward to scalar), so the clamp
/// only decides which entry point the hot loop calls.
KernelVariant effective_variant(KernelVariant requested) noexcept {
  if (requested == KernelVariant::AVX2 && avx2_kernel_compiled() &&
      core::variant_supported(KernelVariant::AVX2))
    return KernelVariant::AVX2;
  if (requested != KernelVariant::Scalar && sse2_kernel_compiled() &&
      core::variant_supported(KernelVariant::SSE2))
    return KernelVariant::SSE2;
  return KernelVariant::Scalar;
}

class DeadlineStepper final : public core::BatchStepper {
public:
  explicit DeadlineStepper(KernelVariant variant)
      : variant_(effective_variant(variant)), d_id_(deadline_marker_id()) {}

  core::LaneFamily family() const noexcept override {
    return core::LaneFamily::Deadline;
  }
  KernelVariant variant() const noexcept override { return variant_; }

  void step(const LaneRun* runs, std::size_t count) override {
    switch (variant_) {
      case KernelVariant::AVX2: step_lanes_avx2(runs, count, d_id_); return;
      case KernelVariant::SSE2: step_lanes_sse2(runs, count, d_id_); return;
      case KernelVariant::Scalar: step_lanes_scalar(runs, count, d_id_); return;
    }
  }

private:
  KernelVariant variant_;
  std::uint64_t d_id_;
};

}  // namespace

std::unique_ptr<core::BatchStepper> make_deadline_stepper(
    KernelVariant variant) {
  if (!lane_layout_ok()) return nullptr;
  return std::make_unique<DeadlineStepper>(variant);
}

// ---------------------------------------------------------------------------
// DeadlineLaneAcceptor

DeadlineLaneAcceptor::DeadlineLaneAcceptor(
    std::shared_ptr<const Problem> problem, RunOptions options)
    : problem_(std::move(problem)) {
  if (!problem_)
    throw core::ModelError("deadline::DeadlineLaneAcceptor: null problem");
  auto algorithm = std::make_unique<DeadlineAcceptor>(*problem_);
  algorithm_ = algorithm.get();
  engine_ = std::make_unique<core::EngineOnlineAcceptor>(std::move(algorithm),
                                                         options, problem_);
}

std::string DeadlineLaneAcceptor::name() const {
  return "deadline-lane(" + problem_->name() + ")";
}

void DeadlineLaneAcceptor::reset() {
  engine_->reset();
  state_ = DeadlineLaneState{};
  hot_ = false;
  finished_ = false;
}

/// Promotion gate: the engine must be provably in the compressed phase.
/// Fast-forward is load-bearing -- without it the engine emulates every
/// idle tick, which the one-transition-per-feed automaton does not model,
/// so non-fast-forward streams simply stay on the engine path forever.
void DeadlineLaneAcceptor::try_promote() {
  if (hot_ || finished_) return;
  if (!engine_->options().fast_forward) return;
  if (engine_->finished() || engine_->lock() || engine_->ended()) return;
  const auto snapshot = algorithm_->working_snapshot();
  if (!snapshot) return;
  if (!lane_layout_ok()) return;

  state_ = DeadlineLaneState{};
  state_.frontier = engine_->frontier();
  state_.ticks = engine_->result().ticks;
  state_.completion = snapshot->completion;
  state_.horizon = engine_->options().horizon;
  state_.delivered = engine_->result().symbols_consumed;
  state_.usefulness = snapshot->usefulness;
  state_.min_acceptable = snapshot->min_acceptable;
  state_.deadline_passed = snapshot->deadline_passed;
  state_.matches = snapshot->matches;
  // Fold the engine's undelivered buffer (all stamped at the frontier):
  // P_m's gate depends only on the element's timestamp, so folding before
  // delivery commutes -- see lane_hot_feed.
  const std::uint64_t d_id = deadline_marker_id();
  for (const auto& ts : engine_->pending_buffer()) {
    ++state_.pending;
    if (ts.time <= state_.completion) {
      const auto kind = lane_raw_kind(ts);
      const auto value = lane_raw_value(ts);
      if (kind == kLaneKindMarker && value == d_id)
        state_.deadline_passed = true;
      else if (kind == kLaneKindNat)
        state_.usefulness = value;
    }
  }
  hot_ = true;
}

Verdict DeadlineLaneAcceptor::feed(Symbol symbol, Tick at) {
  if (!hot_) {
    const auto verdict = engine_->feed(symbol, at);
    try_promote();
    return verdict;
  }
  if (finished_ || state_.status != kLaneLive) return verdict();
  if (at < state_.frontier)
    throw core::ModelError("DeadlineLaneAcceptor::feed: time went backwards");
  const core::TimedSymbol ts{symbol, at};
  lane_hot_feed(state_, lane_raw_kind(ts), lane_raw_value(ts), at,
                deadline_marker_id());
  return verdict();
}

Verdict DeadlineLaneAcceptor::finish(StreamEnd end) {
  if (!hot_) return engine_->finish(end);
  if (!finished_) {
    finished_ = true;
    lane_hot_finish(state_, end);
  }
  return verdict();
}

Verdict DeadlineLaneAcceptor::verdict() const {
  if (!hot_) return engine_->verdict();
  if (state_.status == kLaneLocked)
    return state_.accepted ? Verdict::Accepting : Verdict::Rejecting;
  // Ended + finished settles by the trailing-window heuristic: a deadline
  // acceptor writes f only after an accept lock, so the window is empty.
  if (finished_) return Verdict::Rejecting;
  return Verdict::Undetermined;
}

const RunResult& DeadlineLaneAcceptor::result() const {
  if (!hot_) return engine_->result();
  result_.symbols_consumed = state_.delivered;
  result_.ticks = state_.ticks;
  if (state_.status == kLaneLocked) {
    result_.accepted = state_.accepted;
    result_.exact = true;
    result_.f_count = state_.accepted ? 1 : 0;
    result_.first_f = state_.accepted ? std::optional<Tick>(state_.lock_tick)
                                      : std::nullopt;
  } else {
    result_.accepted = false;
    result_.exact = false;
    result_.f_count = 0;
    result_.first_f = std::nullopt;
  }
  return result_;
}

std::unique_ptr<core::OnlineAcceptor> make_lane_acceptor(
    std::shared_ptr<const Problem> problem, RunOptions options) {
  return std::make_unique<DeadlineLaneAcceptor>(std::move(problem), options);
}

}  // namespace rtw::deadline
