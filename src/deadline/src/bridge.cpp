#include "rtw/deadline/bridge.hpp"

#include <algorithm>

#include "rtw/core/error.hpp"

namespace rtw::deadline {

using rtw::core::Symbol;

DeadlineInstance job_instance(const Job& job) {
  DeadlineInstance inst;
  // The job's "input" identifies it; the "output" is the completion
  // witness the acceptor's P_w reproduces.
  inst.input = {Symbol::nat(job.task_id), Symbol::nat(job.job_index)};
  inst.proposed_output = {Symbol::marker("done")};
  // The scheduler's deadline is inclusive (finish == deadline meets it);
  // in the word model the first *late* instant carries the `d` symbol, so
  // the firm deadline sits one tick past the job's relative deadline.
  inst.usefulness =
      Usefulness::firm((job.absolute_deadline - job.release) + 1, 1);
  inst.min_acceptable = 1;
  return inst;
}

namespace {

/// P_w for a job: completes exactly at the job's measured response time
/// (finish - release); an unfinished job never completes before any
/// deadline.
class JobExecution final : public Problem {
public:
  explicit JobExecution(const Job& job) : job_(job) {}
  std::string name() const override { return "job-execution"; }
  std::vector<Symbol> solve(const std::vector<Symbol>&) const override {
    return {Symbol::marker("done")};
  }
  Tick work_cost(const std::vector<Symbol>&) const override {
    if (job_.finish) return std::max<Tick>(1, *job_.finish - job_.release);
    // Unfinished: model as completing far beyond the deadline window.
    return (job_.absolute_deadline - job_.release) + 1000;
  }

private:
  Job job_;
};

}  // namespace

rtw::core::TimedWord job_word(const Job& job) {
  return build_deadline_word(job_instance(job));
}

bool job_accepted(const Job& job) {
  JobExecution pi(job);
  return accepts_instance(pi, job_instance(job));
}

std::optional<Tick> response_time_rm(const std::vector<Task>& tasks,
                                     std::size_t index) {
  if (index >= tasks.size())
    throw rtw::core::ModelError("response_time_rm: index out of range");
  const Task& task = tasks[index];
  if (task.period == 0 || task.release != 0)
    throw rtw::core::ModelError(
        "response_time_rm: synchronous periodic tasks only");

  // Higher priority: shorter period, ties by smaller id (matching the
  // simulator's deterministic tie-break).
  std::vector<const Task*> higher;
  for (const auto& other : tasks) {
    if (&other == &task) continue;
    if (other.period < task.period ||
        (other.period == task.period && other.id < task.id))
      higher.push_back(&other);
  }

  Tick r = task.wcet;
  for (int iterations = 0; iterations < 10000; ++iterations) {
    Tick interference = 0;
    for (const Task* h : higher)
      interference += ((r + h->period - 1) / h->period) * h->wcet;
    const Tick next = task.wcet + interference;
    if (next == r) return r <= task.relative_deadline ? std::optional(r)
                                                      : std::nullopt;
    if (next > task.relative_deadline) return std::nullopt;
    r = next;
  }
  return std::nullopt;  // did not converge within the bound
}

bool rm_schedulable(const std::vector<Task>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (!response_time_rm(tasks, i)) return false;
  return true;
}

}  // namespace rtw::deadline
