#include "rtw/deadline/usefulness.hpp"

#include "rtw/core/error.hpp"

namespace rtw::deadline {

std::string to_string(DeadlineKind k) {
  switch (k) {
    case DeadlineKind::None:
      return "none";
    case DeadlineKind::Firm:
      return "firm";
    case DeadlineKind::Soft:
      return "soft";
  }
  return "?";
}

Usefulness::Usefulness(DeadlineKind kind, Tick t_d, std::uint64_t max,
                       Decay decay)
    : kind_(kind), t_d_(t_d), max_(max), decay_(std::move(decay)) {}

Usefulness Usefulness::none(std::uint64_t max) {
  return Usefulness(DeadlineKind::None, 0, max,
                    [](Tick, Tick, std::uint64_t m) { return m; });
}

Usefulness Usefulness::firm(Tick t_d, std::uint64_t max) {
  return Usefulness(DeadlineKind::Firm, t_d, max,
                    [](Tick, Tick, std::uint64_t) { return std::uint64_t{0}; });
}

Usefulness Usefulness::soft(Tick t_d, std::uint64_t max, Decay decay) {
  if (!decay) throw rtw::core::ModelError("Usefulness::soft: null decay");
  return Usefulness(DeadlineKind::Soft, t_d, max, std::move(decay));
}

Usefulness Usefulness::hyperbolic(Tick t_d, std::uint64_t max) {
  return soft(t_d, max, [](Tick t, Tick td, std::uint64_t m) {
    // The paper's u(t) = max / (t - t_d); at t == t_d keep full usefulness.
    if (t <= td) return m;
    return m / (t - td);
  });
}

Usefulness Usefulness::linear(Tick t_d, std::uint64_t max, Tick span) {
  if (span == 0) throw rtw::core::ModelError("Usefulness::linear: zero span");
  return soft(t_d, max, [span](Tick t, Tick td, std::uint64_t m) {
    const Tick late = t - td;
    if (late >= span) return std::uint64_t{0};
    return m - m * late / span;
  });
}

std::uint64_t Usefulness::at(Tick t) const {
  if (kind_ == DeadlineKind::None || t < t_d_) return max_;
  return decay_(t, t_d_, max_);
}

Tick Usefulness::first_below(std::uint64_t floor, Tick horizon) const {
  for (Tick t = t_d_; t < horizon; ++t)
    if (at(t) < floor) return t;
  return horizon;
}

}  // namespace rtw::deadline
