// AVX2 deadline lane kernel: 4 sessions per instruction.
//
// Same mask algebra as the SSE2 wave (see lane_sse2.cpp for the field
// walkthrough); the differences are width (4 u64 lanes), native 64-bit
// compares (vpcmpgtq after a sign bias) and masked vpgatherqq element
// loads: the wave gathers each element's kind/payload/time directly from
// the four runs' TimedSymbol arrays by absolute address, with exhausted
// lanes masked off so no out-of-bounds address is ever dereferenced.  The
// kind byte sits at offset 0 of a 24-byte element, so its gather drags in
// 7 payload bytes that must be masked to the low byte before comparing.
//
// This TU is compiled with -mavx2 when the toolchain allows (see
// src/deadline/CMakeLists.txt); otherwise it degrades to a forward to the
// scalar kernel and the dispatch factory clamps AVX2 requests down.

#include "rtw/deadline/lane.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__) && \
    !defined(RTW_LANE_NO_AVX2)
#define RTW_LANE_AVX2 1
#include <immintrin.h>
#endif

namespace rtw::deadline {

#if defined(RTW_LANE_AVX2)

namespace {

inline __m256i cmpgt_u64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                            _mm256_xor_si256(b, bias));
}

/// One wave of 4 lanes; commits SoA registers on exit, finishes scalar
/// from the first lock/end event (terminal and rare; see lane_sse2.cpp).
void step_wave4(const core::LaneRun* runs, std::uint64_t d_id) {
  DeadlineLaneState* states[4];
  core::LaneFilter* filters[4];
  std::size_t maxlen = 0;
  for (int k = 0; k < 4; ++k) {
    states[k] = static_cast<DeadlineLaneState*>(runs[k].state);
    filters[k] = runs[k].filter;
    maxlen = std::max(maxlen, runs[k].size);
  }

  const auto pack = [](std::uint64_t e0, std::uint64_t e1, std::uint64_t e2,
                       std::uint64_t e3) {
    return _mm256_set_epi64x(static_cast<long long>(e3),
                             static_cast<long long>(e2),
                             static_cast<long long>(e1),
                             static_cast<long long>(e0));
  };
  const auto pack_field = [&pack](auto&& get) {
    return pack(get(0), get(1), get(2), get(3));
  };

  __m256i hw = pack_field([&](int k) { return filters[k]->high_water; });
  __m256i fed = pack_field([&](int k) { return filters[k]->fed; });
  __m256i stale = pack_field([&](int k) { return filters[k]->stale; });
  __m256i any =
      pack_field([&](int k) { return filters[k]->any ? ~0ULL : 0ULL; });
  __m256i ticks = pack_field([&](int k) { return states[k]->ticks; });
  __m256i usefulness =
      pack_field([&](int k) { return states[k]->usefulness; });
  __m256i pend = pack_field([&](int k) { return states[k]->pending; });
  __m256i deliv = pack_field([&](int k) { return states[k]->delivered; });
  __m256i dp = pack_field(
      [&](int k) { return states[k]->deadline_passed ? ~0ULL : 0ULL; });
  const __m256i completion =
      pack_field([&](int k) { return states[k]->completion; });
  const __m256i horizon = pack_field([&](int k) { return states[k]->horizon; });
  const __m256i settled = pack_field(
      [&](int k) { return states[k]->status != kLaneLive ? ~0ULL : 0ULL; });
  const __m256i base = pack_field([&](int k) {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(runs[k].data));
  });
  const __m256i sizes = pack_field([&](int k) {
    return static_cast<std::uint64_t>(runs[k].size);
  });
  const __m256i d_vec = _mm256_set1_epi64x(static_cast<long long>(d_id));
  const __m256i kind_nat = _mm256_set1_epi64x(kLaneKindNat);
  const __m256i kind_marker = _mm256_set1_epi64x(kLaneKindMarker);
  const __m256i byte_mask = _mm256_set1_epi64x(0xff);
  const __m256i one = _mm256_set1_epi64x(1);

  const auto commit = [&](std::size_t upto) {
    alignas(32) std::uint64_t hw_a[4], fed_a[4], stale_a[4], any_a[4],
        ticks_a[4], u_a[4], pend_a[4], deliv_a[4], dp_a[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(hw_a), hw);
    _mm256_store_si256(reinterpret_cast<__m256i*>(fed_a), fed);
    _mm256_store_si256(reinterpret_cast<__m256i*>(stale_a), stale);
    _mm256_store_si256(reinterpret_cast<__m256i*>(any_a), any);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ticks_a), ticks);
    _mm256_store_si256(reinterpret_cast<__m256i*>(u_a), usefulness);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pend_a), pend);
    _mm256_store_si256(reinterpret_cast<__m256i*>(deliv_a), deliv);
    _mm256_store_si256(reinterpret_cast<__m256i*>(dp_a), dp);
    for (int k = 0; k < 4; ++k) {
      filters[k]->high_water = hw_a[k];
      filters[k]->fed = fed_a[k];
      filters[k]->stale = stale_a[k];
      filters[k]->any = any_a[k] != 0;
      if (states[k]->status == kLaneLive) {
        states[k]->frontier = hw_a[k];
        states[k]->ticks = ticks_a[k];
        states[k]->usefulness = u_a[k];
        states[k]->pending = pend_a[k];
        states[k]->delivered = deliv_a[k];
        states[k]->deadline_passed = dp_a[k] != 0;
      }
    }
    for (int k = 0; k < 4; ++k)
      for (std::size_t i = upto; i < runs[k].size; ++i)
        lane_step_element(*filters[k], *states[k], runs[k].data[i], d_id);
  };

  for (std::size_t j = 0; j < maxlen; ++j) {
    const __m256i jv = _mm256_set1_epi64x(static_cast<long long>(j));
    const __m256i active = cmpgt_u64(sizes, jv);  // j < size
    const __m256i addr = _mm256_add_epi64(
        base, _mm256_set1_epi64x(static_cast<long long>(
                  j * sizeof(core::TimedSymbol))));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i kind_raw = _mm256_mask_i64gather_epi64(
        zero, reinterpret_cast<const long long*>(0), addr, active, 1);
    const __m256i value = _mm256_mask_i64gather_epi64(
        zero, reinterpret_cast<const long long*>(0),
        _mm256_add_epi64(addr, _mm256_set1_epi64x(8)), active, 1);
    const __m256i t = _mm256_mask_i64gather_epi64(
        zero, reinterpret_cast<const long long*>(0),
        _mm256_add_epi64(addr, _mm256_set1_epi64x(16)), active, 1);
    const __m256i kind = _mm256_and_si256(kind_raw, byte_mask);

    // Session stale filter.
    const __m256i is_stale =
        _mm256_and_si256(active, _mm256_and_si256(any, cmpgt_u64(hw, t)));
    const __m256i passed = _mm256_andnot_si256(is_stale, active);

    // Hot transition masks (live lanes only).  No register may change
    // before the event check (the scalar tail reprocesses element j).
    const __m256i live = _mm256_andnot_si256(settled, passed);
    const __m256i newer = _mm256_and_si256(live, cmpgt_u64(t, hw));
    const __m256i c_gt_hw = cmpgt_u64(completion, hw);
    const __m256i lock_event = _mm256_andnot_si256(c_gt_hw, newer);
    const __m256i end_event = _mm256_and_si256(
        newer, _mm256_and_si256(c_gt_hw, cmpgt_u64(t, horizon)));
    const __m256i event = _mm256_or_si256(lock_event, end_event);
    if (!_mm256_testz_si256(event, event)) {
      commit(j);
      return;
    }

    // Eventless transition.
    stale = _mm256_sub_epi64(stale, is_stale);
    fed = _mm256_sub_epi64(fed, passed);
    deliv = _mm256_add_epi64(deliv, _mm256_and_si256(pend, newer));
    ticks = _mm256_blendv_epi8(ticks, hw, newer);
    const __m256i tie = _mm256_andnot_si256(newer, live);
    pend = _mm256_sub_epi64(pend, tie);
    pend = _mm256_blendv_epi8(pend, one, newer);
    const __m256i fold =
        _mm256_andnot_si256(cmpgt_u64(t, completion), live);
    const __m256i is_d =
        _mm256_and_si256(_mm256_cmpeq_epi64(kind, kind_marker),
                         _mm256_cmpeq_epi64(value, d_vec));
    const __m256i is_nat = _mm256_cmpeq_epi64(kind, kind_nat);
    dp = _mm256_or_si256(dp, _mm256_and_si256(fold, is_d));
    usefulness = _mm256_blendv_epi8(usefulness, value,
                                    _mm256_and_si256(fold, is_nat));
    hw = _mm256_blendv_epi8(hw, t, passed);
    any = _mm256_or_si256(any, passed);
  }
  commit(maxlen);
}

}  // namespace

void step_lanes_avx2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) step_wave4(runs + i, d_id);
  if (i < count) step_lanes_sse2(runs + i, count - i, d_id);
}

bool avx2_kernel_compiled() noexcept { return true; }

#else  // !RTW_LANE_AVX2

void step_lanes_avx2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept {
  step_lanes_sse2(runs, count, d_id);
}

bool avx2_kernel_compiled() noexcept { return false; }

#endif

}  // namespace rtw::deadline
