#pragma once
/// \file problem.hpp
/// The abstract problem Pi whose instances section 4.1 wraps into timed
/// omega-words, plus a small library of concrete problems.
///
/// The paper's acceptor contains "an algorithm that solves Pi" (P_w) as a
/// black box.  A Problem supplies that black box: given an input it
/// computes the solution *and* the number of virtual ticks the computation
/// takes.  The work cost is a simulated cost model (the substitution rule:
/// no real hardware timing), which keeps deadline semantics deterministic
/// and machine-independent.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtw/core/symbol.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::deadline {

using rtw::core::Symbol;
using rtw::core::Tick;

/// A computational problem Pi with a deterministic solver and cost model.
class Problem {
public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;

  /// The (unique, for these model problems) solution for `input`.
  virtual std::vector<Symbol> solve(
      const std::vector<Symbol>& input) const = 0;

  /// Virtual ticks P_w needs to produce the solution.
  virtual Tick work_cost(const std::vector<Symbol>& input) const = 0;
};

/// Sorts the input symbols ascending; cost ~ n * ceil(log2 n).
class SortProblem final : public Problem {
public:
  std::string name() const override { return "sort"; }
  std::vector<Symbol> solve(const std::vector<Symbol>& input) const override;
  Tick work_cost(const std::vector<Symbol>& input) const override;
};

/// Reverses the input; cost ~ n.
class ReverseProblem final : public Problem {
public:
  std::string name() const override { return "reverse"; }
  std::vector<Symbol> solve(const std::vector<Symbol>& input) const override;
  Tick work_cost(const std::vector<Symbol>& input) const override;
};

/// Outputs the input's nat-symbol prefix sums; cost ~ n.
class PrefixSumProblem final : public Problem {
public:
  std::string name() const override { return "prefix-sum"; }
  std::vector<Symbol> solve(const std::vector<Symbol>& input) const override;
  Tick work_cost(const std::vector<Symbol>& input) const override;
};

/// A tunable problem: identity output with an explicit cost, for sweeping
/// deadline tightness precisely in experiments.
class FixedCostProblem final : public Problem {
public:
  explicit FixedCostProblem(Tick cost) : cost_(cost) {}
  std::string name() const override { return "fixed-cost"; }
  std::vector<Symbol> solve(const std::vector<Symbol>& input) const override {
    return input;
  }
  Tick work_cost(const std::vector<Symbol>&) const override { return cost_; }

private:
  Tick cost_;
};

}  // namespace rtw::deadline
