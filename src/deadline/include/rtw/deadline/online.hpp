#pragma once
/// \file online.hpp
/// Streaming face of the section 4.1 acceptor: an OnlineAcceptor that
/// evaluates L(Pi) membership as the deadline word arrives, for serving
/// through rtw::svc.
///
/// The adapter is EngineOnlineAcceptor over a fresh DeadlineAcceptor, so
/// its verdicts are *provably* the batch engine's (same drive loop,
/// replayed incrementally); the shared_ptr keeps the Problem alive for
/// the acceptor's non-owning reference.

#include <memory>

#include "rtw/core/online.hpp"
#include "rtw/deadline/problem.hpp"

namespace rtw::deadline {

/// An online acceptor for L(Pi).  The (P_w, P_m) pair always locks on a
/// complete instance word, so finish() is only needed for abandoned
/// streams.
std::unique_ptr<rtw::core::OnlineAcceptor> make_online_acceptor(
    std::shared_ptr<const Problem> problem, rtw::core::RunOptions options = {});

}  // namespace rtw::deadline
