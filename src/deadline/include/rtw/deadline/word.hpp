#pragma once
/// \file word.hpp
/// The section 4.1 construction: wrapping a problem instance with a
/// deadline profile into a timed omega-word.
///
/// Layout (the paper's three cases; we add the $ delimiters the paper's
/// preliminaries permit between the output, the input, and the stream):
///
///   (i)   o $ iota $            all at time 0,
///         w at times 1, 2, 3, ...                       (forever)
///
///   (ii)  min o $ iota $        all at time 0 (min ∈ N ∩ [max, 0)),
///         w at times 1 .. t_d - 1,
///         pairs (d, 0) at times t_d, t_d + 1, ...        (forever)
///
///   (iii) like (ii) but the pair is (d, floor(u(t)))
///
/// Every constructed word is a proven well-behaved timed omega-word (the
/// trailing structure is ultimately periodic, so the word uses the lasso
/// representation and acceptance on it is exact).

#include <cstdint>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/deadline/usefulness.hpp"

namespace rtw::deadline {

/// One instance of the problem Pi, packaged with its deadline profile and
/// a *proposed* output (the word encodes a claimed solution; the acceptor
/// checks it -- Definition 5.1-style recognition).
struct DeadlineInstance {
  std::vector<rtw::core::Symbol> input;            ///< iota
  std::vector<rtw::core::Symbol> proposed_output;  ///< o
  Usefulness usefulness = Usefulness::none(1);     ///< kind, t_d, max, u
  std::uint64_t min_acceptable = 0;                ///< sigma_1 of cases ii/iii
};

/// Builds the section 4.1 timed omega-word for `instance`.
///
/// For soft profiles the decay must reach zero within `decay_span` ticks of
/// the deadline (the paper's hyperbolic and linear examples do); the word
/// is then exactly ultimately periodic.  Throws ModelError otherwise.
rtw::core::TimedWord build_deadline_word(const DeadlineInstance& instance,
                                         rtw::core::Tick decay_span = 4096);

/// The inverse: parses the time-0 block of a section 4.1 word back into
/// (min_acceptable?, proposed_output, input).  Used by the acceptor.
struct ParsedHeader {
  bool has_min = false;
  std::uint64_t min_acceptable = 0;
  std::vector<rtw::core::Symbol> proposed_output;
  std::vector<rtw::core::Symbol> input;
};

/// Parses symbols arriving at time 0 (the header).  Throws ModelError on a
/// malformed header (missing delimiters).
ParsedHeader parse_deadline_header(
    const std::vector<rtw::core::TimedSymbol>& at_zero);

}  // namespace rtw::deadline
