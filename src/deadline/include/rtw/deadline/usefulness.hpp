#pragma once
/// \file usefulness.hpp
/// Deadlines and usefulness functions (section 4.1).
///
/// The paper classifies deadlines as *firm* (a computation exceeding the
/// deadline is useless) and *soft* (usefulness decreases as time elapses),
/// citing [24].  A soft deadline carries a usefulness function
/// u : [t_d, inf) -> N ∩ [max, 0]; the paper's running example is
/// u(t) = max * 1/(t - 20) for a 20-second deadline.  Instances may also
/// carry no deadline at all -- case (i) of the construction.

#include <cstdint>
#include <functional>
#include <string>

#include "rtw/core/timed_word.hpp"

namespace rtw::deadline {

using rtw::core::Tick;

enum class DeadlineKind {
  None,  ///< case (i): no deadline imposed
  Firm,  ///< case (ii): usefulness drops to 0 at t_d
  Soft,  ///< case (iii): usefulness decays per u(t) after t_d
};

std::string to_string(DeadlineKind k);

/// A usefulness profile: full value `max` before the deadline; after it,
/// firm profiles give 0 and soft profiles evaluate the decay function.
class Usefulness {
public:
  /// The decay function receives (t, t_d, max) with t >= t_d and must
  /// return a value in [0, max].
  using Decay = std::function<std::uint64_t(Tick, Tick, std::uint64_t)>;

  /// No-deadline profile: usefulness is `max` forever (case (i)).
  static Usefulness none(std::uint64_t max);

  /// Firm profile: max before t_d, 0 from t_d on.
  static Usefulness firm(Tick t_d, std::uint64_t max);

  /// Soft profile with a custom decay.
  static Usefulness soft(Tick t_d, std::uint64_t max, Decay decay);

  /// The paper's example decay: u(t) = max * 1/(t - t_d), floored, with
  /// u(t_d) = max (the instant of the deadline still has full usefulness).
  static Usefulness hyperbolic(Tick t_d, std::uint64_t max);

  /// Linear decay reaching zero `span` ticks after the deadline.
  static Usefulness linear(Tick t_d, std::uint64_t max, Tick span);

  DeadlineKind kind() const noexcept { return kind_; }
  Tick deadline() const noexcept { return t_d_; }
  std::uint64_t max() const noexcept { return max_; }

  /// u(t): max before the deadline, the profile's value after.
  std::uint64_t at(Tick t) const;

  /// First time at which usefulness is strictly below `floor`, searching up
  /// to `horizon` (useful for sizing acceptance windows).  Returns horizon
  /// if the floor is never crossed.
  Tick first_below(std::uint64_t floor, Tick horizon) const;

private:
  Usefulness(DeadlineKind kind, Tick t_d, std::uint64_t max, Decay decay);

  DeadlineKind kind_;
  Tick t_d_;
  std::uint64_t max_;
  Decay decay_;
};

}  // namespace rtw::deadline
