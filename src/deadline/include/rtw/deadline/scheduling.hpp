#pragma once
/// \file scheduling.hpp
/// A preemptive uniprocessor scheduling substrate for "computing with
/// deadlines" workloads.
///
/// Section 4.1 models individual deadline computations; real-time systems
/// run many of them concurrently under a scheduling policy.  This module
/// provides the classic task/job model (periodic and aperiodic tasks with
/// relative deadlines) and four schedulers -- EDF, Rate-Monotonic, FIFO and
/// Least-Laxity-First -- on the shared virtual clock.  The EXP-DL
/// experiment harness turns each job into a section 4.1 word (firm deadline
/// at its absolute deadline, completion at its scheduled finish time) and
/// cross-checks the scheduler's miss verdicts against the L(Pi) acceptor.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/stats.hpp"

namespace rtw::deadline {

using rtw::core::Tick;

/// A (possibly periodic) task.
struct Task {
  std::uint32_t id = 0;
  Tick release = 0;        ///< first release time
  Tick wcet = 1;           ///< worst-case execution time (ticks of work)
  Tick relative_deadline = 1;  ///< deadline, relative to each release
  Tick period = 0;         ///< 0 = aperiodic (single job)
};

/// One released instance of a task.
struct Job {
  std::uint32_t task_id = 0;
  std::uint32_t job_index = 0;  ///< 0-based instance counter within the task
  Tick release = 0;
  Tick absolute_deadline = 0;
  Tick wcet = 0;
  Tick remaining = 0;
  std::optional<Tick> finish;  ///< set when the job completes

  bool missed() const noexcept {
    return !finish.has_value() || *finish > absolute_deadline;
  }
  /// Laxity at time `now`: slack before the deadline given remaining work.
  std::int64_t laxity(Tick now) const noexcept {
    return static_cast<std::int64_t>(absolute_deadline) -
           static_cast<std::int64_t>(now) -
           static_cast<std::int64_t>(remaining);
  }
};

enum class Policy { Edf, RateMonotonic, Fifo, Llf };

std::string to_string(Policy p);

/// Result of a scheduling simulation.
struct ScheduleResult {
  Policy policy{};
  Tick horizon = 0;
  std::vector<Job> jobs;          ///< all released jobs, with finish times
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;       ///< finished late or unfinished at horizon
  std::uint64_t preemptions = 0;
  rtw::sim::OnlineStats response_time;  ///< finish - release, completed jobs

  double miss_rate() const noexcept {
    const auto total = jobs.size();
    return total ? static_cast<double>(missed) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Simulates the task set under `policy` for `horizon` ticks.  Jobs release
/// per their tasks' periods; one unit of work executes per tick; the runner
/// is preemptive (the policy re-evaluates every tick).  Jobs that miss firm
/// deadlines keep running (miss accounting is separate), matching the
/// "verdict by acceptor" framing rather than an abort semantics.
ScheduleResult simulate_schedule(const std::vector<Task>& tasks, Policy policy,
                                 Tick horizon);

/// Total utilization sum(wcet/period) of the periodic tasks.
double utilization(const std::vector<Task>& tasks);

/// Generates a random periodic task set with total utilization ~`target`
/// (UUniFast-style split across `count` tasks; implicit deadlines
/// = periods).  Deterministic in `rng`.
std::vector<Task> random_task_set(std::uint32_t count, double target,
                                  rtw::sim::Xoshiro256ss& rng);

}  // namespace rtw::deadline
