#pragma once
/// \file lane.hpp
/// The deadline lane: section 4.1 acceptance compressed to a register file.
///
/// Once a deadline word's header is parsed the acceptor is a pure
/// counter/threshold automaton -- P_w is a countdown to `completion`, P_m
/// folds each arrival into two registers (deadline_passed, usefulness), and
/// the lock verdict is a comparison tree over those registers.  Nothing in
/// that phase needs the Reading-phase machinery (header parsing, problem
/// dispatch) or even per-tick emulation: with fast-forward on, the engine
/// emulates exactly one driver tick per *newer* fed element (the previous
/// input frontier), so the whole drive loop collapses to the constant-work
/// transition in lane_hot_feed below.  That is what makes the family ideal
/// for SIMD lanes: DeadlineLaneState is a handful of u64 registers, and an
/// SSE2/AVX2 kernel steps 2/4 sessions per instruction (see lane_sse2.cpp /
/// lane_avx2.cpp; the scalar kernel is the portable reference).
///
/// Equivalence contract: DeadlineLaneAcceptor wraps an EngineOnlineAcceptor
/// and *delegates* every cold phase (header at time 0, malformed headers,
/// fast-forward off, pre-Working streams) verbatim, then promotes to the
/// compressed automaton only when the engine is provably in the compressed
/// phase: Working, unlocked, not ended, fast-forward on.  From there every
/// transition below is derived case by case from EngineOnlineAcceptor's
/// drive loop, and tests/test_lane_kernel.cpp proves bit-identity of
/// verdicts, RunResult fields and stale counters per compiled variant.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>

#include "rtw/core/error.hpp"
#include "rtw/core/lane.hpp"
#include "rtw/core/online.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/problem.hpp"

namespace rtw::deadline {

/// Lane status bytes.  Live lanes take the full transition; settled lanes
/// only keep their session's stale filter moving.
inline constexpr std::uint8_t kLaneLive = 0;
inline constexpr std::uint8_t kLaneLocked = 1;
inline constexpr std::uint8_t kLaneEnded = 2;

/// Raw Symbol::Kind values as the kernels read them (one gathered byte).
inline constexpr std::uint8_t kLaneKindChar = 0;
inline constexpr std::uint8_t kLaneKindNat = 1;
inline constexpr std::uint8_t kLaneKindMarker = 2;
static_assert(static_cast<std::uint8_t>(core::Symbol::Kind::Char) ==
              kLaneKindChar);
static_assert(static_cast<std::uint8_t>(core::Symbol::Kind::Nat) ==
              kLaneKindNat);
static_assert(static_cast<std::uint8_t>(core::Symbol::Kind::Marker) ==
              kLaneKindMarker);

/// The kernels read TimedSymbol fields as raw loads (SIMD gathers can't
/// call accessors): kind byte at offset 0, payload u64 at offset 8, time
/// u64 at offset 16.  The static asserts pin the layout the gathers
/// assume; lane_layout_ok() re-verifies the member offsets at runtime with
/// a probe element (offsetof into Symbol's private members is not ours to
/// write down).
static_assert(std::is_standard_layout_v<core::TimedSymbol>);
static_assert(sizeof(core::Symbol) == 16);
static_assert(sizeof(core::TimedSymbol) == 24);
static_assert(offsetof(core::TimedSymbol, time) == 16);

inline std::uint8_t lane_raw_kind(const core::TimedSymbol& ts) noexcept {
  std::uint8_t kind;
  std::memcpy(&kind, &ts, 1);
  return kind;
}

inline std::uint64_t lane_raw_value(const core::TimedSymbol& ts) noexcept {
  std::uint64_t value;
  std::memcpy(&value, reinterpret_cast<const unsigned char*>(&ts) + 8, 8);
  return value;
}

/// Probe check that the raw loads above really land on kind/payload/time.
bool lane_layout_ok() noexcept;

/// The interned id of section 4.1's `d` marker, as lane_raw_value reads it.
std::uint64_t deadline_marker_id() noexcept;

/// One session's compressed Working-phase state.  Plain u64 registers so a
/// kernel can hold W lanes of each field in one SIMD register.
struct DeadlineLaneState {
  core::Tick frontier = 0;    ///< next emulable driver tick (= last fed time)
  core::Tick ticks = 0;       ///< RunResult::ticks (last emulated tick)
  core::Tick completion = 0;  ///< P_w terminates at this tick
  core::Tick horizon = 0;     ///< RunOptions::horizon
  std::uint64_t pending = 0;    ///< fed, undelivered (all at `frontier`)
  std::uint64_t delivered = 0;  ///< RunResult::symbols_consumed
  std::uint64_t usefulness = 0;     ///< P_m register (latest nat <= completion)
  std::uint64_t min_acceptable = 0; ///< header threshold
  core::Tick lock_tick = 0;   ///< lock time (first_f when accepted)
  std::uint8_t status = kLaneLive;
  bool accepted = false;        ///< lock verdict (valid when kLaneLocked)
  bool deadline_passed = false; ///< P_m register (`d` seen <= completion)
  bool matches = false;         ///< P_w solution == proposed output
};

/// The Definition 3.4 lock verdict P_m renders when P_w's completion tick
/// is emulated: within the deadline any solution match accepts; past it the
/// last usefulness must also clear the header's threshold.
inline bool lane_lock_verdict(const DeadlineLaneState& s) noexcept {
  const bool acceptable =
      s.deadline_passed ? s.usefulness >= s.min_acceptable : true;
  return acceptable && s.matches;
}

/// One fed element, exactly EngineOnlineAcceptor::feed on a hot lane.
/// Precondition (the session stale filter, or the acceptor's own
/// monotonicity check): t >= s.frontier whenever the lane is live.
///
/// Derivation from the engine drive loop, case by case:
///  * settled lane: feeds are no-ops returning the settled verdict;
///  * t == frontier: the tick's arrival set is still open -- nothing is
///    emulable (drive breaks at limit == t), the element just buffers;
///  * t > frontier: tick `frontier` became emulable.  Its pending arrivals
///    deliver; if P_w already completed (frontier >= completion) P_m locks
///    *at the frontier tick* -- with fast-forward on, ticks strictly
///    between completion and the next arrival are never emulated, so the
///    lock lands on the arrival tick, not on `completion`; otherwise the
///    tick is recorded and fast-forward jumps the frontier straight to t
///    (ended instead if t overshoots the horizon).
///  * P_m's fold runs at feed time rather than delivery time: its gate
///    (timestamp <= completion) depends only on the element, never on the
///    tick that delivers it, so folding early commutes.  Working implies
///    frontier >= 1, so the fold's time>0 guard is vacuous here.
inline void lane_hot_feed(DeadlineLaneState& s, std::uint8_t kind,
                          std::uint64_t value, core::Tick t,
                          std::uint64_t d_id) noexcept {
  if (s.status != kLaneLive) return;
  if (t > s.frontier) {
    s.delivered += s.pending;
    if (s.frontier >= s.completion) {
      s.accepted = lane_lock_verdict(s);
      s.lock_tick = s.frontier;
      s.ticks = s.frontier;
      s.status = kLaneLocked;
      return;
    }
    s.ticks = s.frontier;
    if (t > s.horizon) {
      s.status = kLaneEnded;
      return;
    }
    s.pending = 1;
    s.frontier = t;
  } else {
    ++s.pending;
  }
  if (t <= s.completion) {
    if (kind == kLaneKindMarker && value == d_id) s.deadline_passed = true;
    else if (kind == kLaneKindNat) s.usefulness = value;
  }
}

/// Stream end on a hot lane, exactly EngineOnlineAcceptor::finish:
///  * EndOfWord keeps single-stepping idle ticks, so P_w's completion is
///    always reached -- lock at max(frontier, completion) unless that
///    overshoots the horizon (then the run ends at the horizon);
///  * Truncated stops right after the frontier tick: lock only if P_w had
///    already completed there.
/// Already-settled lanes keep their verdict (first finish wins upstream).
inline void lane_hot_finish(DeadlineLaneState& s, core::StreamEnd end) noexcept {
  if (s.status != kLaneLive) return;
  s.delivered += s.pending;
  s.pending = 0;
  if (end == core::StreamEnd::EndOfWord) {
    const core::Tick lock_tick = std::max(s.frontier, s.completion);
    if (lock_tick <= s.horizon) {
      s.accepted = lane_lock_verdict(s);
      s.lock_tick = lock_tick;
      s.ticks = lock_tick;
      s.status = kLaneLocked;
    } else {
      s.ticks = s.horizon;
      s.status = kLaneEnded;
    }
  } else {
    if (s.frontier >= s.completion) {
      s.accepted = lane_lock_verdict(s);
      s.lock_tick = s.frontier;
      s.ticks = s.frontier;
      s.status = kLaneLocked;
    } else {
      s.ticks = s.frontier;
      s.status = kLaneEnded;
    }
  }
}

/// One run element through the session stale filter, then the lane step --
/// exactly Session::feed on an in-table session.  Shared by the scalar
/// kernel and the SIMD kernels' remainder lanes, so every variant's
/// reference semantics are literally the same code.
inline void lane_step_element(core::LaneFilter& filter, DeadlineLaneState& s,
                              const core::TimedSymbol& ts,
                              std::uint64_t d_id) noexcept {
  const core::Tick t = ts.time;
  if (filter.any && t < filter.high_water) {
    ++filter.stale;
    return;
  }
  filter.high_water = t;
  filter.any = true;
  ++filter.fed;
  lane_hot_feed(s, lane_raw_kind(ts), lane_raw_value(ts), t, d_id);
}

/// \name Kernel entry points (one TU per ISA; see deadline/src/lane_*.cpp)
/// Each advances every lane in `runs` by its whole run.  On builds or CPUs
/// without the ISA the symbol still links and forwards to the scalar
/// kernel; *_compiled() reports whether the real vector body is present.
///@{
void step_lanes_scalar(const core::LaneRun* runs, std::size_t count,
                       std::uint64_t d_id) noexcept;
void step_lanes_sse2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept;
void step_lanes_avx2(const core::LaneRun* runs, std::size_t count,
                     std::uint64_t d_id) noexcept;
bool sse2_kernel_compiled() noexcept;
bool avx2_kernel_compiled() noexcept;
///@}

/// The deadline family's batch kernel for `variant`, clamped to the best
/// variant this build + CPU can actually run.  Returns nullptr if the
/// TimedSymbol layout probe fails (then every session stays on the
/// per-symbol path -- slower, never wrong).
std::unique_ptr<core::BatchStepper> make_deadline_stepper(
    core::KernelVariant variant);

/// An online acceptor for L(Pi) that is vectorizable: delegates to the
/// engine replica while cold, promotes itself to a DeadlineLaneState lane
/// once the engine reaches the compressed phase.  Drop-in replacement for
/// deadline::make_online_acceptor with identical verdicts and RunResults.
class DeadlineLaneAcceptor final : public core::OnlineAcceptor {
public:
  DeadlineLaneAcceptor(std::shared_ptr<const Problem> problem,
                       core::RunOptions options = {});

  core::Verdict feed(core::Symbol symbol, core::Tick at) override;
  using core::OnlineAcceptor::feed;
  core::Verdict finish(core::StreamEnd end) override;
  core::Verdict verdict() const override;
  const core::RunResult& result() const override;
  void reset() override;
  std::string name() const override;

  core::LaneFamily lane_family() const noexcept override {
    return core::LaneFamily::Deadline;
  }
  void* lane_state() noexcept override { return hot_ ? &state_ : nullptr; }
  std::unique_ptr<core::BatchStepper> make_lane_stepper(
      core::KernelVariant variant) const override {
    return make_deadline_stepper(variant);
  }

  /// True once promoted to the compressed automaton (tests/bench probe).
  bool hot() const noexcept { return hot_; }

private:
  void try_promote();

  std::shared_ptr<const Problem> problem_;
  DeadlineAcceptor* algorithm_ = nullptr;  ///< owned by engine_
  std::unique_ptr<core::EngineOnlineAcceptor> engine_;
  DeadlineLaneState state_{};
  bool hot_ = false;
  bool finished_ = false;
  mutable core::RunResult result_;  ///< synthesized from state_ when hot
};

/// Factory mirroring deadline::make_online_acceptor.
std::unique_ptr<core::OnlineAcceptor> make_lane_acceptor(
    std::shared_ptr<const Problem> problem, core::RunOptions options = {});

}  // namespace rtw::deadline
