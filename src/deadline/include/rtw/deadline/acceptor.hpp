#pragma once
/// \file acceptor.hpp
/// The section 4.1 acceptor for L(Pi): two cooperating "processes",
///   * P_w -- an algorithm that solves Pi, finishing after the problem's
///     simulated work cost and leaving the solution in designated storage;
///   * P_m -- a monitor watching the input stream.  At the moment P_w
///     terminates: if the current stream symbol is `w` the deadline has not
///     passed, so P_m compares the computed solution with the proposed one
///     and locks the acceptor into s_f or s_r; if the current symbol is `d`
///     the deadline passed, so P_m first checks the current usefulness
///     against the minimum acceptable value, then compares solutions.
///
/// In state s_f the acceptor writes `f` on the output tape every tick; in
/// s_r it never writes `f` again -- exactly the Definition 3.4 protocol.

#include <memory>
#include <optional>
#include <vector>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/language.hpp"
#include "rtw/deadline/problem.hpp"
#include "rtw/deadline/word.hpp"
#include "rtw/engine/batch.hpp"

namespace rtw::deadline {

class DeadlineAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  /// The acceptor keeps a non-owning reference to the problem; the problem
  /// must outlive the acceptor.
  explicit DeadlineAcceptor(const Problem& problem);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override;

  /// Introspection for tests and experiments (valid once locked).
  rtw::core::Tick completion_time() const noexcept { return completion_; }
  std::uint64_t usefulness_at_completion() const noexcept {
    return usefulness_seen_;
  }

  /// The registers a lane kernel needs to continue this acceptor's run
  /// without the Reading-phase machinery (header parsing, P_w dispatch):
  /// everything P_m consults between now and the lock.
  struct WorkingSnapshot {
    rtw::core::Tick completion = 0;
    std::uint64_t min_acceptable = 0;
    std::uint64_t usefulness = 0;
    bool deadline_passed = false;
    bool matches = false;  ///< solution == proposed output (fixed at parse)
  };

  /// Engaged exactly while P_w is still working: the header parsed, the
  /// verdict not yet locked.  This is the phase the deadline lane kernel
  /// compresses (see rtw/deadline/lane.hpp).
  std::optional<WorkingSnapshot> working_snapshot() const;

private:
  enum class Phase { Reading, Working, AcceptLock, RejectLock };

  const Problem* problem_;
  Phase phase_ = Phase::Reading;
  ParsedHeader header_;
  std::vector<rtw::core::Symbol> solution_;
  rtw::core::Tick completion_ = 0;
  // Monitor state: latest stream observation with timestamp <= completion.
  bool deadline_passed_ = false;
  std::uint64_t usefulness_seen_ = 0;
  bool saw_header_ = false;
};

/// L(Pi) as a timed omega-language: membership runs a fresh DeadlineAcceptor
/// over the word (exact verdicts -- the acceptor always locks).  The sampler
/// produces *successful* instances: inputs of growing size with the true
/// solution as the proposed output and a generous firm deadline.
rtw::core::TimedLanguage deadline_language(std::shared_ptr<const Problem> pi);

/// Convenience: build the word for `instance` and run the acceptor on it.
/// Returns the exact accept/reject verdict.
bool accepts_instance(const Problem& pi, const DeadlineInstance& instance);

/// Batch variant: fans the instances across the engine's BatchRunner and
/// returns the verdicts in instance order (bit-identical to calling
/// accepts_instance per instance, at any thread count).
std::vector<bool> accepts_instances(
    const Problem& pi, const std::vector<DeadlineInstance>& instances,
    const rtw::engine::BatchOptions& batch = {});

}  // namespace rtw::deadline
