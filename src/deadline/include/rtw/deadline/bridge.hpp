#pragma once
/// \file bridge.hpp
/// The bridge between the scheduling substrate and the section 4.1 word
/// model: every executed job becomes a timed omega-word whose acceptor
/// verdict must coincide with the scheduler's miss accounting.  This is
/// the library's concrete instance of the paper's thesis -- the
/// practically-defined notion ("the job met its deadline") and the
/// word-level notion ("the word is in L(Pi)") are the same predicate.
///
/// Also provides exact response-time analysis (RTA) for fixed-priority
/// (rate-monotonic) scheduling, cross-checked against the simulator in
/// the test-suite: the recurrence R = C_i + sum_{j higher} ceil(R/T_j) C_j.

#include <optional>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/scheduling.hpp"

namespace rtw::deadline {

/// Wraps one executed job into a section 4.1 instance: the problem is the
/// job's execution (FixedCost with its measured response time), the
/// deadline is the job's relative deadline, and the proposed output is
/// the trivial completion witness.  Times are relative to the release.
DeadlineInstance job_instance(const Job& job);

/// The section 4.1 word of an executed job.  Unfinished jobs get a word
/// whose computation never completes within any deadline (cost beyond the
/// deadline), so the acceptor rejects.
rtw::core::TimedWord job_word(const Job& job);

/// The acceptor verdict for a job's word.  Theorem-level property, tested
/// exhaustively: verdict == !job.missed() for every job of every
/// simulated schedule.
bool job_accepted(const Job& job);

/// Exact response-time analysis for task `index` under rate-monotonic
/// priorities (shorter period = higher; ties by id).  Returns nullopt if
/// the recurrence exceeds the deadline (unschedulable).  Tasks must be
/// periodic and released at 0 (synchronous case).
std::optional<Tick> response_time_rm(const std::vector<Task>& tasks,
                                     std::size_t index);

/// Whole-set RM schedulability by RTA.
bool rm_schedulable(const std::vector<Task>& tasks);

}  // namespace rtw::deadline
