#include "rtw/engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "rtw/core/tape.hpp"
#include "rtw/obs/sink.hpp"
#include "rtw/sim/event_queue.hpp"

namespace rtw::engine {

using rtw::core::RealTimeAlgorithm;
using rtw::core::RunOptions;
using rtw::core::StepContext;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

namespace {

/// Everything one driver event needs, reachable through a single pointer so
/// the scheduled callable's capture is 8 bytes -- comfortably inside the
/// EventQueue Action's inline buffer, making the per-tick reschedule
/// allocation-free.  The arrivals buffer is reused across ticks.
struct DriveState {
  RealTimeAlgorithm& algorithm;
  rtw::core::InputTape in;
  rtw::core::OutputTape out;
  rtw::core::RunResult& result;
  RunTrace& trace;
  rtw::sim::EventQueue queue;
  const RunOptions& options;
  std::vector<TimedSymbol> arrivals;
  bool locked = false;
};

/// One driver event per *visited* tick: deliver the arrivals that became
/// available, run one virtual time unit of the algorithm, consult the
/// lock protocol, then schedule the next wake-up.
void drive(DriveState& st, rtw::sim::Tick now) {
  st.in.take_available(now, st.arrivals);
  st.result.symbols_consumed += st.arrivals.size();
  StepContext ctx{now, std::span<const TimedSymbol>(st.arrivals), st.out};
  st.algorithm.on_tick(ctx);
  st.result.ticks = now;
  st.trace.final_tick = now;
  ++st.trace.ticks_executed;

  if (const auto lock = st.algorithm.locked()) {
    // Definition 3.4: the algorithm committed to s_f or s_r; the run is
    // decided and nothing further is scheduled.
    st.result.accepted = *lock;
    st.result.exact = true;
    st.locked = true;
    st.trace.lock_time = now;
    return;
  }

  // When the algorithm is unlocked and nothing is pending before the
  // next arrival, the next driver event lands directly on that arrival:
  // the idle gap is skipped inside the event heap instead of being
  // walked tick by tick.
  rtw::sim::Tick next = now + 1;
  if (st.options.fast_forward) {
    if (const auto arrival = st.in.next_arrival(); arrival && *arrival > next) {
      st.trace.ticks_skipped += *arrival - next;
      next = *arrival;
    }
    // A drained finite word keeps single-stepping so the algorithm can
    // finish trailing work.
  }
  if (next <= st.options.horizon)
    st.queue.schedule_at(next,
                         [s = &st](rtw::sim::Tick t) { drive(*s, t); });
}

}  // namespace

EngineResult Engine::run(RealTimeAlgorithm& algorithm,
                         const TimedWord& word) const {
  RTW_SPAN("engine.run");
  const auto wall_start = std::chrono::steady_clock::now();

  algorithm.reset();

  EngineResult er;
  rtw::core::RunResult& result = er.result;
  RunTrace& trace = er.trace;

  DriveState st{algorithm,
                rtw::core::InputTape(word),
                rtw::core::OutputTape(options_.accept_symbol),
                result,
                trace,
                {},
                options_,
                {},
                false};
  rtw::core::OutputTape& out = st.out;
  rtw::sim::EventQueue& queue = st.queue;
  bool& locked = st.locked;

  // Fault stage: a per-run injector (never shared, so per-run isolation is
  // structural) feeding the kernel's fault filter with clock jitter.
  std::optional<rtw::sim::FaultInjector> injector;
  if (faults_ && !faults_->is_noop()) {
    injector.emplace(*faults_);
    queue.set_fault_filter(
        [inj = &*injector](rtw::sim::Tick at, std::uint64_t seq) {
          const rtw::sim::Tick to = inj->jitter(at, seq);
          return to == at ? rtw::sim::FaultDecision::fire()
                          : rtw::sim::FaultDecision::defer(to);
        });
  }

  queue.schedule_at(0, [s = &st](rtw::sim::Tick t) { drive(*s, t); });
  while (!locked) {
    trace.queue_depth_hwm =
        std::max<std::uint64_t>(trace.queue_depth_hwm, queue.pending());
    if (!queue.step(options_.horizon)) break;
    ++trace.events_executed;
  }

  result.f_count = out.accept_count();
  result.first_f = out.first_accept();
  trace.f_count = result.f_count;
  trace.symbols_consumed = result.symbols_consumed;
  if (injector) {
    trace.faults = injector->counters();
    trace.fault_records = injector->records();
  }

  if (!result.exact) {
    // Heuristic at the horizon: treat "f written within the trailing
    // quarter of the run" as evidence of infinitely many f's.
    const auto window_start =
        options_.horizon -
        std::min<rtw::core::Tick>(options_.horizon / 4, options_.horizon);
    result.accepted =
        out.last_accept().has_value() && *out.last_accept() >= window_start;
  }

  trace.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  detail::record_run(trace, result.exact);
  return er;
}

EngineResult run(RealTimeAlgorithm& algorithm, const TimedWord& word,
                 const RunOptions& options) {
  return Engine(options).run(algorithm, word);
}

std::function<bool(const TimedWord&)> membership(AlgorithmFactory factory,
                                                 RunOptions options,
                                                 bool require_exact) {
  return [factory = std::move(factory), options,
          require_exact](const TimedWord& w) {
    auto algorithm = factory();
    const auto run = Engine(options).run(*algorithm, w);
    return require_exact ? run.result.exact && run.result.accepted
                         : run.result.accepted;
  };
}

}  // namespace rtw::engine
