/// Compatibility shim: core::run_acceptor is declared in
/// rtw/core/acceptor.hpp but, since the executor refactor, defined here in
/// the engine library -- one machine model, one implementation.  Callers of
/// run_acceptor link rtw_engine (every rtw_* application library already
/// does).

#include "rtw/core/acceptor.hpp"
#include "rtw/engine/engine.hpp"

namespace rtw::core {

RunResult run_acceptor(RealTimeAlgorithm& algorithm, const TimedWord& word,
                       const RunOptions& options) {
  return rtw::engine::Engine(options).run(algorithm, word).result;
}

}  // namespace rtw::core
