#include "rtw/engine/batch.hpp"

#include <algorithm>

namespace rtw::engine {

BatchRunner::BatchRunner(BatchOptions options)
    : options_(options), pool_(options.threads) {}

rtw::sim::Xoshiro256ss BatchRunner::rng_for(std::uint64_t seed,
                                            std::uint64_t index) noexcept {
  // Decorrelate the per-index streams through SplitMix64: adjacent indices
  // land 2^64/phi apart in its sequence.
  rtw::sim::SplitMix64 mix(seed ^ (index * 0x9e3779b97f4a7c15ULL));
  return rtw::sim::Xoshiro256ss(mix());
}

void BatchRunner::acquire() {
  if (options_.max_in_flight == 0) return;
  std::unique_lock lock(gate_mutex_);
  gate_cv_.wait(lock, [this] { return in_flight_ < options_.max_in_flight; });
  ++in_flight_;
}

void BatchRunner::release() {
  if (options_.max_in_flight == 0) return;
  {
    std::lock_guard lock(gate_mutex_);
    --in_flight_;
  }
  gate_cv_.notify_one();
}

std::vector<EngineResult> BatchRunner::run_words(
    const AlgorithmFactory& factory,
    const std::vector<rtw::core::TimedWord>& words,
    const rtw::core::RunOptions& options,
    const std::optional<rtw::sim::FaultPlan>& faults) {
  const Engine engine = faults ? Engine(options, *faults) : Engine(options);
  return map(words.size(),
             [&](std::size_t i, rtw::sim::Xoshiro256ss&) -> EngineResult {
               auto algorithm = factory();
               return engine.run(*algorithm, words[i]);
             });
}

std::vector<EngineResult> BatchRunner::run_sampled(
    const AlgorithmFactory& factory, std::size_t count,
    const std::function<rtw::core::TimedWord(std::uint64_t,
                                             rtw::sim::Xoshiro256ss&)>& sampler,
    const rtw::core::RunOptions& options,
    const std::optional<rtw::sim::FaultPlan>& faults) {
  const Engine engine = faults ? Engine(options, *faults) : Engine(options);
  return map(count,
             [&](std::size_t i, rtw::sim::Xoshiro256ss& rng) -> EngineResult {
               const auto word = sampler(i, rng);
               auto algorithm = factory();
               return engine.run(*algorithm, word);
             });
}

std::vector<bool> membership_sweep(const AlgorithmFactory& factory,
                                   const std::vector<rtw::core::TimedWord>& words,
                                   const rtw::core::RunOptions& options,
                                   bool require_exact,
                                   const BatchOptions& batch) {
  BatchRunner runner(batch);
  const auto runs = runner.run_words(factory, words, options);
  std::vector<bool> verdicts(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i)
    verdicts[i] = require_exact
                      ? runs[i].result.exact && runs[i].result.accepted
                      : runs[i].result.accepted;
  return verdicts;
}

}  // namespace rtw::engine
