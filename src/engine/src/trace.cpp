#include "rtw/engine/trace.hpp"

#include <atomic>

#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"
#include "rtw/sim/jsonl.hpp"

namespace rtw::engine {

std::string RunTrace::to_json() const {
  rtw::sim::JsonLine line;
  line.field("final_tick", final_tick)
      .field("ticks_executed", ticks_executed)
      .field("ticks_skipped", ticks_skipped)
      .field("events_executed", events_executed)
      .field("queue_depth_hwm", queue_depth_hwm);
  if (lock_time)
    line.field("lock_time", *lock_time);
  else
    line.field("locked", false);
  line.field("symbols_consumed", symbols_consumed)
      .field("f_count", f_count)
      .field("wall_ns", wall_ns);
  if (faults.injected()) {
    // Keys follow the obs::MetricsRegistry vocabulary (subsystem-first,
    // dot-joined) so a RunTrace line and a registry export line agree.
    line.field("faults.injected", faults.injected())
        .field("faults.jittered", faults.jittered)
        .field("faults.jitter_ticks", faults.jitter_ticks)
        .field("faults.dropped", faults.dropped)
        .field("faults.delayed", faults.delayed);
  }
  return line.str();
}

std::string CountersSnapshot::to_json() const {
  // Same names the obs::MetricsRegistry registers, so the legacy counter
  // export and the registry export can be diffed line against line.
  return rtw::sim::JsonLine()
      .field("engine.runs", runs)
      .field("engine.locked_runs", locked_runs)
      .field("engine.ticks", ticks)
      .field("engine.events", events)
      .field("engine.symbols", symbols)
      .field("engine.batch_jobs", batch_jobs)
      .field("engine.wall_ns", wall_ns)
      .field("faults.injected", faults)
      .str();
}

CountersSnapshot operator-(const CountersSnapshot& later,
                           const CountersSnapshot& earlier) {
  CountersSnapshot d;
  d.runs = later.runs - earlier.runs;
  d.locked_runs = later.locked_runs - earlier.locked_runs;
  d.ticks = later.ticks - earlier.ticks;
  d.events = later.events - earlier.events;
  d.symbols = later.symbols - earlier.symbols;
  d.batch_jobs = later.batch_jobs - earlier.batch_jobs;
  d.wall_ns = later.wall_ns - earlier.wall_ns;
  d.faults = later.faults - earlier.faults;
  return d;
}

namespace {

struct AtomicCounters {
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> locked_runs{0};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> symbols{0};
  std::atomic<std::uint64_t> batch_jobs{0};
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> faults{0};
};

AtomicCounters& counters() {
  static AtomicCounters instance;
  return instance;
}

}  // namespace

CountersSnapshot Counters::snapshot() noexcept {
  auto& c = counters();
  CountersSnapshot s;
  s.runs = c.runs.load(std::memory_order_relaxed);
  s.locked_runs = c.locked_runs.load(std::memory_order_relaxed);
  s.ticks = c.ticks.load(std::memory_order_relaxed);
  s.events = c.events.load(std::memory_order_relaxed);
  s.symbols = c.symbols.load(std::memory_order_relaxed);
  s.batch_jobs = c.batch_jobs.load(std::memory_order_relaxed);
  s.wall_ns = c.wall_ns.load(std::memory_order_relaxed);
  s.faults = c.faults.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() noexcept {
  auto& c = counters();
  c.runs.store(0, std::memory_order_relaxed);
  c.locked_runs.store(0, std::memory_order_relaxed);
  c.ticks.store(0, std::memory_order_relaxed);
  c.events.store(0, std::memory_order_relaxed);
  c.symbols.store(0, std::memory_order_relaxed);
  c.batch_jobs.store(0, std::memory_order_relaxed);
  c.wall_ns.store(0, std::memory_order_relaxed);
  c.faults.store(0, std::memory_order_relaxed);
}

namespace {

/// Folds a finished run into the rtw::obs MetricsRegistry -- the named,
/// exporter-visible mirror of the legacy Counters.  Handles resolve once
/// (function-local statics) so the per-run cost is a handful of relaxed
/// adds; the caller gates on obs::enabled().
void fold_run_into_registry(const RunTrace& trace, bool locked) noexcept {
  auto& reg = rtw::obs::MetricsRegistry::instance();
  static auto& runs = reg.counter("engine.runs");
  static auto& locked_runs = reg.counter("engine.locked_runs");
  static auto& ticks = reg.counter("engine.ticks");
  static auto& ticks_skipped = reg.counter("engine.ticks_skipped");
  static auto& events = reg.counter("engine.events");
  static auto& symbols = reg.counter("engine.symbols");
  static auto& wall_ns = reg.counter("engine.wall_ns");
  runs.add(1);
  if (locked) locked_runs.add(1);
  ticks.add(trace.ticks_executed);
  ticks_skipped.add(trace.ticks_skipped);
  events.add(trace.events_executed);
  symbols.add(trace.symbols_consumed);
  wall_ns.add(trace.wall_ns);

  if (!trace.faults.empty()) {
    static auto& dropped = reg.counter("faults.dropped");
    static auto& duplicated = reg.counter("faults.duplicated");
    static auto& delayed = reg.counter("faults.delayed");
    static auto& delay_ticks = reg.counter("faults.delay_ticks");
    static auto& jittered = reg.counter("faults.jittered");
    static auto& jitter_ticks = reg.counter("faults.jitter_ticks");
    static auto& crash_sends = reg.counter("faults.crash_sends");
    static auto& crash_receives = reg.counter("faults.crash_receives");
    dropped.add(trace.faults.dropped);
    duplicated.add(trace.faults.duplicated);
    delayed.add(trace.faults.delayed);
    delay_ticks.add(trace.faults.delay_ticks);
    jittered.add(trace.faults.jittered);
    jitter_ticks.add(trace.faults.jitter_ticks);
    crash_sends.add(trace.faults.crash_sends);
    crash_receives.add(trace.faults.crash_receives);
  }
}

}  // namespace

namespace detail {

void record_run(const RunTrace& trace, bool locked) noexcept {
  auto& c = counters();
  c.runs.fetch_add(1, std::memory_order_relaxed);
  if (locked) c.locked_runs.fetch_add(1, std::memory_order_relaxed);
  c.ticks.fetch_add(trace.ticks_executed, std::memory_order_relaxed);
  c.events.fetch_add(trace.events_executed, std::memory_order_relaxed);
  c.symbols.fetch_add(trace.symbols_consumed, std::memory_order_relaxed);
  c.wall_ns.fetch_add(trace.wall_ns, std::memory_order_relaxed);
  if (const auto injected = trace.faults.injected())
    c.faults.fetch_add(injected, std::memory_order_relaxed);
  if (rtw::obs::enabled()) fold_run_into_registry(trace, locked);
}

void record_batch_job() noexcept {
  counters().batch_jobs.fetch_add(1, std::memory_order_relaxed);
  if (rtw::obs::enabled()) {
    static auto& jobs =
        rtw::obs::MetricsRegistry::instance().counter("engine.batch_jobs");
    jobs.add(1);
  }
}

}  // namespace detail

}  // namespace rtw::engine
