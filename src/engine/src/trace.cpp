#include "rtw/engine/trace.hpp"

#include <atomic>

#include "rtw/sim/jsonl.hpp"

namespace rtw::engine {

std::string RunTrace::to_json() const {
  rtw::sim::JsonLine line;
  line.field("final_tick", final_tick)
      .field("ticks_executed", ticks_executed)
      .field("ticks_skipped", ticks_skipped)
      .field("events_executed", events_executed)
      .field("queue_depth_hwm", queue_depth_hwm);
  if (lock_time)
    line.field("lock_time", *lock_time);
  else
    line.field("locked", false);
  line.field("symbols_consumed", symbols_consumed)
      .field("f_count", f_count)
      .field("wall_ns", wall_ns);
  if (faults.injected()) {
    line.field("faults_injected", faults.injected())
        .field("faults_jittered", faults.jittered)
        .field("faults_jitter_ticks", faults.jitter_ticks)
        .field("faults_dropped", faults.dropped)
        .field("faults_delayed", faults.delayed);
  }
  return line.str();
}

std::string CountersSnapshot::to_json() const {
  return rtw::sim::JsonLine()
      .field("runs", runs)
      .field("locked_runs", locked_runs)
      .field("ticks", ticks)
      .field("events", events)
      .field("symbols", symbols)
      .field("batch_jobs", batch_jobs)
      .field("wall_ns", wall_ns)
      .field("faults", faults)
      .str();
}

CountersSnapshot operator-(const CountersSnapshot& later,
                           const CountersSnapshot& earlier) {
  CountersSnapshot d;
  d.runs = later.runs - earlier.runs;
  d.locked_runs = later.locked_runs - earlier.locked_runs;
  d.ticks = later.ticks - earlier.ticks;
  d.events = later.events - earlier.events;
  d.symbols = later.symbols - earlier.symbols;
  d.batch_jobs = later.batch_jobs - earlier.batch_jobs;
  d.wall_ns = later.wall_ns - earlier.wall_ns;
  d.faults = later.faults - earlier.faults;
  return d;
}

namespace {

struct AtomicCounters {
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> locked_runs{0};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> symbols{0};
  std::atomic<std::uint64_t> batch_jobs{0};
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> faults{0};
};

AtomicCounters& counters() {
  static AtomicCounters instance;
  return instance;
}

}  // namespace

CountersSnapshot Counters::snapshot() noexcept {
  auto& c = counters();
  CountersSnapshot s;
  s.runs = c.runs.load(std::memory_order_relaxed);
  s.locked_runs = c.locked_runs.load(std::memory_order_relaxed);
  s.ticks = c.ticks.load(std::memory_order_relaxed);
  s.events = c.events.load(std::memory_order_relaxed);
  s.symbols = c.symbols.load(std::memory_order_relaxed);
  s.batch_jobs = c.batch_jobs.load(std::memory_order_relaxed);
  s.wall_ns = c.wall_ns.load(std::memory_order_relaxed);
  s.faults = c.faults.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() noexcept {
  auto& c = counters();
  c.runs.store(0, std::memory_order_relaxed);
  c.locked_runs.store(0, std::memory_order_relaxed);
  c.ticks.store(0, std::memory_order_relaxed);
  c.events.store(0, std::memory_order_relaxed);
  c.symbols.store(0, std::memory_order_relaxed);
  c.batch_jobs.store(0, std::memory_order_relaxed);
  c.wall_ns.store(0, std::memory_order_relaxed);
  c.faults.store(0, std::memory_order_relaxed);
}

namespace detail {

void record_run(const RunTrace& trace, bool locked) noexcept {
  auto& c = counters();
  c.runs.fetch_add(1, std::memory_order_relaxed);
  if (locked) c.locked_runs.fetch_add(1, std::memory_order_relaxed);
  c.ticks.fetch_add(trace.ticks_executed, std::memory_order_relaxed);
  c.events.fetch_add(trace.events_executed, std::memory_order_relaxed);
  c.symbols.fetch_add(trace.symbols_consumed, std::memory_order_relaxed);
  c.wall_ns.fetch_add(trace.wall_ns, std::memory_order_relaxed);
  if (const auto injected = trace.faults.injected())
    c.faults.fetch_add(injected, std::memory_order_relaxed);
}

void record_batch_job() noexcept {
  counters().batch_jobs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace rtw::engine
