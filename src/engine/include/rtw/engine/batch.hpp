#pragma once
/// \file batch.hpp
/// BatchRunner: fans N independent acceptor runs (membership sweeps, Monte
/// Carlo instance samplers, bench sweeps) across a sim::ThreadPool.
///
/// Guarantees:
///   * deterministic per-run RNG -- each job's generator is derived from
///     (seed, job index) only, so results are bit-identical regardless of
///     thread count or scheduling order;
///   * deterministic result order -- results land at their job's index;
///   * a configurable concurrency cap (max_in_flight) independent of the
///     pool size, for jobs with large working sets;
///   * exceptions thrown by a job propagate to the caller of map().
///
/// Each engine run is already single-threaded and self-contained (private
/// EventQueue + tapes), which is what makes this fan-out safe.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <type_traits>
#include <vector>

#include "rtw/engine/engine.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/thread_pool.hpp"

namespace rtw::engine {

/// Fan-out configuration.
struct BatchOptions {
  unsigned threads = 0;        ///< pool size; 0 = hardware concurrency
  unsigned max_in_flight = 0;  ///< concurrency cap; 0 = uncapped (pool-wide)
  std::uint64_t seed = 0x72747765ULL;  ///< base seed for per-run RNG streams
};

class BatchRunner {
public:
  explicit BatchRunner(BatchOptions options = {});

  unsigned threads() const noexcept { return pool_.threads(); }
  const BatchOptions& options() const noexcept { return options_; }

  /// The deterministic per-run generator: a function of (seed, index) only.
  static rtw::sim::Xoshiro256ss rng_for(std::uint64_t seed,
                                        std::uint64_t index) noexcept;

  /// Runs `job(index, rng)` for index in [0, count) across the pool and
  /// returns the results in index order.  R must be default-constructible
  /// and must not be bool (std::vector<bool> packs bits -- concurrent
  /// element writes would race; return char or use membership_sweep).
  template <typename Job,
            typename R = std::invoke_result_t<Job, std::size_t,
                                              rtw::sim::Xoshiro256ss&>>
  std::vector<R> map(std::size_t count, Job job) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> bit-packing races under concurrent writes");
    std::vector<R> results(count);
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool_.submit([this, i, &results, &job] {
        Gate gate(*this);
        auto rng = rng_for(options_.seed, i);
        results[i] = job(i, rng);
        detail::record_batch_job();
      }));
    }
    for (auto& f : futures) f.get();  // rethrows job exceptions
    return results;
  }

  /// Runs every word through a fresh algorithm from `factory` (one engine
  /// run per word); results in word order.
  std::vector<EngineResult> run_words(
      const AlgorithmFactory& factory,
      const std::vector<rtw::core::TimedWord>& words,
      const rtw::core::RunOptions& options = {});

  /// Monte Carlo fan-out: runs `count` sampled words, where sample i is
  /// produced by `sampler(i, rng)` with the deterministic per-run RNG.
  std::vector<EngineResult> run_sampled(
      const AlgorithmFactory& factory, std::size_t count,
      const std::function<rtw::core::TimedWord(std::uint64_t,
                                               rtw::sim::Xoshiro256ss&)>&
          sampler,
      const rtw::core::RunOptions& options = {});

private:
  /// RAII slot in the max_in_flight window.
  struct Gate {
    explicit Gate(BatchRunner& runner) : runner(runner) { runner.acquire(); }
    ~Gate() { runner.release(); }
    BatchRunner& runner;
  };
  void acquire();
  void release();

  BatchOptions options_;
  rtw::sim::ThreadPool pool_;
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  unsigned in_flight_ = 0;
};

/// Batch membership: the engine verdict for every word, fanned across a
/// BatchRunner.  Semantics per word match engine::membership (including
/// `require_exact`); the result order matches the word order and is
/// bit-identical to a serial evaluation.
std::vector<bool> membership_sweep(
    const AlgorithmFactory& factory,
    const std::vector<rtw::core::TimedWord>& words,
    const rtw::core::RunOptions& options = {}, bool require_exact = false,
    const BatchOptions& batch = {});

}  // namespace rtw::engine
