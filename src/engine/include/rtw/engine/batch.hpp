#pragma once
/// \file batch.hpp
/// BatchRunner: fans N independent acceptor runs (membership sweeps, Monte
/// Carlo instance samplers, bench sweeps) across a sim::ThreadPool.
///
/// Guarantees:
///   * deterministic per-run RNG -- each job's generator is derived from
///     (seed, job index) only, so results are bit-identical regardless of
///     thread count or scheduling order;
///   * deterministic result order -- results land at their job's index;
///   * a configurable concurrency cap (max_in_flight) independent of the
///     pool size, for jobs with large working sets;
///   * exceptions thrown by a job propagate to the caller of map().
///
/// Each engine run is already single-threaded and self-contained (private
/// EventQueue + tapes), which is what makes this fan-out safe.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "rtw/engine/engine.hpp"
#include "rtw/obs/sink.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/thread_pool.hpp"

namespace rtw::engine {

/// Fan-out configuration.
struct BatchOptions {
  unsigned threads = 0;        ///< pool size; 0 = hardware concurrency
  unsigned max_in_flight = 0;  ///< concurrency cap; 0 = uncapped (pool-wide)
  std::uint64_t seed = 0x72747765ULL;  ///< base seed for per-run RNG streams
};

class BatchRunner {
public:
  explicit BatchRunner(BatchOptions options = {});

  unsigned threads() const noexcept { return pool_.threads(); }
  const BatchOptions& options() const noexcept { return options_; }

  /// The deterministic per-run generator: a function of (seed, index) only.
  static rtw::sim::Xoshiro256ss rng_for(std::uint64_t seed,
                                        std::uint64_t index) noexcept;

  /// Runs `job(index, rng)` for index in [0, count) across the pool and
  /// returns the results in index order.  R must be default-constructible
  /// and must not be bool (std::vector<bool> packs bits -- concurrent
  /// element writes would race; return char or use membership_sweep).
  ///
  /// Fan-out shape: instead of one pool task (and one future) per index,
  /// one task per worker claims index-range chunks from a shared atomic
  /// counter -- work-stealing at the chunk level, so a 100k-index sweep
  /// posts a handful of tasks and never funnels through a locked deque of
  /// 100k cells.  Each index still derives its RNG from (seed, index)
  /// alone, so results are bit-identical to the serial path at any thread
  /// count and any chunk schedule.
  template <typename Job,
            typename R = std::invoke_result_t<Job, std::size_t,
                                              rtw::sim::Xoshiro256ss&>>
  std::vector<R> map(std::size_t count, Job job) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> bit-packing races under concurrent writes");
    RTW_SPAN("engine.batch.map");
    std::vector<R> results(count);
    if (count == 0) return results;

    struct Shared {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> live{0};
      std::mutex mutex;
      std::condition_variable done;
      std::exception_ptr error;
      std::size_t error_index = 0;
    } shared;

    const std::size_t workers =
        std::min<std::size_t>(count, pool_.threads());
    // ~8 chunks per worker keeps the tail balanced without contending on
    // the atomic for every index.
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (workers * 8));
    shared.live.store(workers, std::memory_order_relaxed);

    for (std::size_t w = 0; w < workers; ++w) {
      pool_.post([this, count, chunk, &shared, &results, &job] {
        std::size_t begin;
        while ((begin = shared.next.fetch_add(chunk,
                                              std::memory_order_relaxed)) <
               count) {
          const std::size_t end = std::min(count, begin + chunk);
          for (std::size_t i = begin; i < end; ++i) {
            Gate gate(*this);
            try {
              auto rng = rng_for(options_.seed, i);
              results[i] = job(i, rng);
            } catch (...) {
              std::lock_guard lock(shared.mutex);
              // Keep the lowest-index exception (what the old
              // future-per-index loop rethrew).
              if (!shared.error || i < shared.error_index) {
                shared.error = std::current_exception();
                shared.error_index = i;
              }
            }
            detail::record_batch_job();
          }
        }
        // Decrement under the mutex: the waiter cannot observe live == 0
        // (and destroy `shared`) until this worker has released the lock
        // and stopped touching it.
        {
          std::lock_guard lock(shared.mutex);
          if (shared.live.fetch_sub(1, std::memory_order_acq_rel) == 1)
            shared.done.notify_all();
        }
      });
    }

    std::unique_lock lock(shared.mutex);
    shared.done.wait(lock, [&shared] {
      return shared.live.load(std::memory_order_acquire) == 0;
    });
    if (shared.error) std::rethrow_exception(shared.error);
    return results;
  }

  /// Runs every word through a fresh algorithm from `factory` (one engine
  /// run per word); results in word order.  With `faults`, every run
  /// executes under that fault plan (each engine run builds its own
  /// injector, so per-run RunTrace fault counters are isolated across
  /// batch entries and results stay thread-count invariant).
  std::vector<EngineResult> run_words(
      const AlgorithmFactory& factory,
      const std::vector<rtw::core::TimedWord>& words,
      const rtw::core::RunOptions& options = {},
      const std::optional<rtw::sim::FaultPlan>& faults = std::nullopt);

  /// Monte Carlo fan-out: runs `count` sampled words, where sample i is
  /// produced by `sampler(i, rng)` with the deterministic per-run RNG.
  std::vector<EngineResult> run_sampled(
      const AlgorithmFactory& factory, std::size_t count,
      const std::function<rtw::core::TimedWord(std::uint64_t,
                                               rtw::sim::Xoshiro256ss&)>&
          sampler,
      const rtw::core::RunOptions& options = {},
      const std::optional<rtw::sim::FaultPlan>& faults = std::nullopt);

private:
  /// RAII slot in the max_in_flight window.
  struct Gate {
    explicit Gate(BatchRunner& runner) : runner(runner) { runner.acquire(); }
    ~Gate() { runner.release(); }
    BatchRunner& runner;
  };
  void acquire();
  void release();

  BatchOptions options_;
  rtw::sim::ThreadPool pool_;
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  unsigned in_flight_ = 0;
};

/// Batch membership: the engine verdict for every word, fanned across a
/// BatchRunner.  Semantics per word match engine::membership (including
/// `require_exact`); the result order matches the word order and is
/// bit-identical to a serial evaluation.
std::vector<bool> membership_sweep(
    const AlgorithmFactory& factory,
    const std::vector<rtw::core::TimedWord>& words,
    const rtw::core::RunOptions& options = {}, bool require_exact = false,
    const BatchOptions& batch = {});

}  // namespace rtw::engine
