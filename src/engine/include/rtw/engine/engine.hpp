#pragma once
/// \file engine.hpp
/// The unified acceptor executor: drives any RealTimeAlgorithm (Definition
/// 3.3) on top of the sim::EventQueue kernel and evaluates acceptance
/// (Definition 3.4).
///
/// Before this engine every application re-implemented the drive loop
/// (core::run_acceptor, adhoc::Simulator::run, per-factory option
/// plumbing).  Now there is one machine model in one place:
///
///   * each *visited* tick is an EventQueue event: arrivals are delivered,
///     the algorithm runs one virtual time unit, the lock protocol is
///     consulted;
///   * idle gaps are skipped inside the event heap -- the next driver event
///     is scheduled directly at the next arrival's timestamp, so the gap is
///     never walked tick by tick (Definition 3.3 puts all timing
///     constraints on the input; idle time is unobservable);
///   * every run produces a RunTrace (observability) in addition to the
///     RunResult verdict, and feeds the process-wide engine::Counters.
///
/// Verdict semantics are exactly those of the original core::run_acceptor,
/// which has been fully retired (declaration deleted;
/// `rtw::engine::run(...).result` is the replacement).  The same semantics
/// are available incrementally through core::EngineOnlineAcceptor (see
/// rtw/core/online.hpp) and the rtw::svc serving layer built on it.

#include <functional>
#include <memory>
#include <optional>

#include "rtw/core/acceptor.hpp"
#include "rtw/engine/trace.hpp"
#include "rtw/sim/fault.hpp"

namespace rtw::engine {

/// Verdict plus observability for one acceptor run.
struct EngineResult {
  rtw::core::RunResult result;  ///< the Definition 3.4 verdict
  RunTrace trace;               ///< how the run unfolded
};

/// A configured executor.  Stateless apart from its options: the same
/// Engine may be used concurrently from many threads (each run owns its
/// private EventQueue and tapes).
class Engine {
public:
  explicit Engine(rtw::core::RunOptions options = {}) : options_(options) {}

  /// An engine with deterministic fault injection: the plan's clock-jitter
  /// section is applied through the EventQueue fault filter, so driver
  /// ticks fire late by bounded, seeded amounts -- an adversarial timing
  /// schedule for robustness testing.  (Drop faults are not applied to
  /// driver events: the drive chain is self-scheduling, and severing it
  /// would silently truncate the run rather than perturb it.)  Each run
  /// builds a private injector from the plan, so fault counters in one
  /// RunTrace never bleed into another -- batch entries included.  A noop
  /// plan installs nothing: traces are byte-identical to the plain engine.
  Engine(rtw::core::RunOptions options, rtw::sim::FaultPlan faults)
      : options_(options), faults_(std::move(faults)) {}

  const rtw::core::RunOptions& options() const noexcept { return options_; }
  const std::optional<rtw::sim::FaultPlan>& fault_plan() const noexcept {
    return faults_;
  }

  /// Runs `algorithm` on `word` under Definition 3.3 semantics and
  /// evaluates Definition 3.4.  Resets the algorithm first.
  EngineResult run(rtw::core::RealTimeAlgorithm& algorithm,
                   const rtw::core::TimedWord& word) const;

private:
  rtw::core::RunOptions options_;
  std::optional<rtw::sim::FaultPlan> faults_;
};

/// One-shot convenience wrapper.
EngineResult run(rtw::core::RealTimeAlgorithm& algorithm,
                 const rtw::core::TimedWord& word,
                 const rtw::core::RunOptions& options = {});

/// Creates a fresh algorithm instance per engine run (language membership
/// predicates, batch sweeps).
using AlgorithmFactory =
    std::function<std::unique_ptr<rtw::core::RealTimeAlgorithm>()>;

/// Builds a TimedLanguage membership predicate that runs a fresh algorithm
/// from `factory` through the engine for each queried word.  With
/// `require_exact` the word is a member only when the verdict came from a
/// lock (the honest reading for languages whose acceptors always lock);
/// otherwise the executor's trailing-window heuristic verdict is used
/// as-is.  Replaces the per-application copy of this lambda.
std::function<bool(const rtw::core::TimedWord&)> membership(
    AlgorithmFactory factory, rtw::core::RunOptions options = {},
    bool require_exact = false);

}  // namespace rtw::engine
