#pragma once
/// \file trace.hpp
/// Observability for the execution engine: a per-run RunTrace plus
/// process-wide atomic counters.
///
/// Every Engine::run produces a RunTrace alongside the Definition 3.4
/// verdict; BatchRunner aggregates them.  Both export one-line JSON
/// (rtw::sim::JsonLine) so bench harnesses can stream machine-readable
/// trajectories to stdout.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/sim/fault.hpp"

namespace rtw::engine {

using rtw::core::Tick;

/// Per-run observability record filled in by Engine::run.
struct RunTrace {
  Tick final_tick = 0;  ///< last virtual time the driver visited
  std::uint64_t ticks_executed = 0;  ///< driver steps actually run
  std::uint64_t ticks_skipped = 0;   ///< idle ticks bypassed by fast-forward
  std::uint64_t events_executed = 0; ///< EventQueue events fired
  std::uint64_t queue_depth_hwm = 0; ///< event-heap high-water mark
  std::optional<Tick> lock_time;     ///< virtual time of the s_f/s_r lock
  std::uint64_t symbols_consumed = 0;
  std::uint64_t f_count = 0;  ///< |o(A,w)|_f observed
  std::uint64_t wall_ns = 0;  ///< wall-clock duration of the run
  /// Per-run fault tally (clock jitter injected by a faulty Engine) plus
  /// the injected-event records.  Both stay empty -- and to_json stays
  /// byte-identical to the plain engine's -- when no fault fired.
  rtw::sim::FaultCounters faults;
  std::vector<rtw::sim::FaultRecord> fault_records;

  /// One-line JSON rendering for the BENCH_*.json trajectory.  Fault
  /// fields are appended only when at least one fault fired.
  std::string to_json() const;
};

/// A point-in-time copy of the process-wide engine counters.
struct CountersSnapshot {
  std::uint64_t runs = 0;         ///< Engine::run invocations completed
  std::uint64_t locked_runs = 0;  ///< runs decided by a lock (exact verdict)
  std::uint64_t ticks = 0;        ///< driver steps across all runs
  std::uint64_t events = 0;       ///< EventQueue events across all runs
  std::uint64_t symbols = 0;      ///< input symbols delivered
  std::uint64_t batch_jobs = 0;   ///< BatchRunner jobs completed
  std::uint64_t wall_ns = 0;      ///< summed wall-clock across runs
  std::uint64_t faults = 0;       ///< injected faults across all runs

  std::string to_json() const;

  friend bool operator==(const CountersSnapshot&,
                         const CountersSnapshot&) = default;
};

/// Field-wise difference of two snapshots -- the canonical way to measure
/// one section (a batch, a bench loop) against the process-wide
/// accumulators without a racy global reset.  Callers pass the earlier
/// snapshot on the right.
CountersSnapshot operator-(const CountersSnapshot& later,
                           const CountersSnapshot& earlier);

/// Process-wide atomic counters over every engine run in this process
/// (all threads).  Cheap relaxed atomics; intended for bench export and
/// coarse health checks, not for synchronization.
class Counters {
public:
  static CountersSnapshot snapshot() noexcept;
  /// Zeroes all counters (tests and bench section boundaries).
  static void reset() noexcept;
};

namespace detail {
/// Internal: folds a finished run into the process-wide counters.
void record_run(const RunTrace& trace, bool locked) noexcept;
/// Internal: counts one finished BatchRunner job.
void record_batch_job() noexcept;
}  // namespace detail

}  // namespace rtw::engine
