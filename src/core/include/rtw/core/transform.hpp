#pragma once
/// \file transform.hpp
/// Structural transformations on timed omega-words.  These are the
/// workhorse combinators the application modules use to massage words:
/// time translation (issuing the same query word at a different time),
/// symbol projection (extracting one node's symbols from a merged network
/// word), and bounded truncation (cutting an infinite word at a horizon).

#include <functional>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Shifts every timestamp by +delta.  Exact for all representations:
/// finite and lasso words stay finite/lasso; generator words wrap the
/// generator (traits preserved -- the shift preserves monotonicity and
/// progress).
TimedWord shift(const TimedWord& word, Tick delta);

/// Keeps only the symbols satisfying `keep`, preserving timestamps.
/// Finite words only (filtering an infinite word may not be a total
/// function -- the result's n-th element may not exist); throws ModelError
/// on infinite input.
TimedWord filter(const TimedWord& word,
                 const std::function<bool(const TimedSymbol&)>& keep);

/// The finite word of all elements with timestamp <= cutoff (scanning at
/// most `max_symbols` elements of an infinite word).
TimedWord take_until(const TimedWord& word, Tick cutoff,
                     std::uint64_t max_symbols = 1 << 20);

/// Replaces each symbol via `map`, preserving timestamps.  Works on every
/// representation (lazy for generators; traits preserved).
TimedWord map_symbols(const TimedWord& word,
                      const std::function<Symbol(Symbol)>& map);

}  // namespace rtw::core
