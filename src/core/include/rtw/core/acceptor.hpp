#pragma once
/// \file acceptor.hpp
/// Real-time algorithms (Definition 3.3) and acceptance (Definition 3.4).
///
/// A real-time algorithm is a finite control driven tick by tick: at each
/// virtual time unit it receives the input symbols that became available at
/// that tick and may write at most one output symbol.  It accepts a timed
/// omega-language L when, on input w, the designated symbol f appears
/// infinitely often on the output tape iff w ∈ L.
///
/// "Infinitely often" is decided via the *lock* protocol: every acceptor
/// construction in the paper eventually enters a designated state s_f (keep
/// writing f forever) or s_r (never write f again) and "keeps cycling in the
/// same state".  An algorithm reports that commitment through locked(); the
/// executor then returns an exact verdict.  Algorithms that never lock are
/// judged heuristically at the horizon (f written in the trailing window)
/// and the verdict is flagged as uncertain.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rtw/core/tape.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Per-tick view handed to the algorithm.
struct StepContext {
  Tick now;                              ///< current virtual time
  std::span<const TimedSymbol> arrivals; ///< symbols that became available
  OutputTape& out;                       ///< write-only output stream
};

/// Base class for real-time algorithms.  Implementations hold the "finite
/// control" plus whatever working storage they need ("A may have access to
/// an infinite amount of working storage space ... but only a finite amount
/// ... for any computation").
class RealTimeAlgorithm {
public:
  virtual ~RealTimeAlgorithm() = default;

  /// One virtual time unit of computation.
  virtual void on_tick(const StepContext& ctx) = 0;

  /// The lock protocol: nullopt while still undecided; true once the
  /// algorithm has committed to s_f (f forever), false once committed to
  /// s_r (no further f).  Default: never locks.
  virtual std::optional<bool> locked() const { return std::nullopt; }

  /// Restores the initial state so the same object can accept another word.
  virtual void reset() {}

  /// Diagnostic name.
  virtual std::string name() const { return "real-time-algorithm"; }
};

/// Result of executing an acceptor on a word.
struct RunResult {
  bool accepted = false;   ///< verdict on Definition 3.4
  bool exact = false;      ///< true when the verdict came from a lock
  Tick ticks = 0;          ///< virtual ticks executed
  std::uint64_t f_count = 0;          ///< |o(A,w)|_f observed
  std::optional<Tick> first_f;        ///< time of first f, if any
  std::uint64_t symbols_consumed = 0; ///< input symbols delivered
};

/// Executor options.
struct RunOptions {
  Tick horizon = 100000;    ///< virtual-time budget
  bool fast_forward = true; ///< jump idle gaps to the next arrival while
                            ///< the algorithm is unlocked and idle-stable
  Tick settle_ticks = 64;   ///< extra ticks granted after a lock to let the
                            ///< output window fill (diagnostics only)
  Symbol accept_symbol = marks::accept();
};

/// A trivial always-accepting algorithm (writes f every tick).  Useful as a
/// baseline and in tests.
class AcceptAll final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext& ctx) override {
    ctx.out.write(ctx.now, ctx.out.accept_symbol());
  }
  std::optional<bool> locked() const override { return true; }
  std::string name() const override { return "accept-all"; }
};

/// A trivial never-accepting algorithm.
class RejectAll final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext&) override {}
  std::optional<bool> locked() const override { return false; }
  std::string name() const override { return "reject-all"; }
};

}  // namespace rtw::core
