#pragma once
/// \file serialize.hpp
/// A round-trippable text format for timed words, so traces can be saved,
/// diffed and replayed by external tooling.
///
///   finite:  `finite: a@0 7@3 <w>@5`
///   lasso:   `lasso(period=4): p@0 | x@2 y@3`   (prefix | cycle)
///
/// Symbols render as: a bare character (`a`), a number (`7`), or an angle-
/// bracketed marker (`<w>`).  Characters that are digits or `<` are
/// escaped as `'c'`.  Generator words have no finite description and are
/// rejected by serialize(); snapshot them with take_until first.

#include <string>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Serializes a finite or lasso word.  Throws ModelError on generator
/// words.
std::string serialize(const TimedWord& word);

/// Parses the serialize() format back; throws ModelError on malformed
/// input.  Round-trip: parse_word(serialize(w)) equals w element-wise
/// (and structurally for lassos).
TimedWord parse_word(const std::string& text);

}  // namespace rtw::core
