#pragma once
/// \file serialize.hpp
/// A round-trippable text format for timed words, so traces can be saved,
/// diffed and replayed by external tooling.
///
///   finite:  `finite: a@0 7@3 <w>@5`
///   lasso:   `lasso(period=4): p@0 | x@2 y@3`   (prefix | cycle)
///
/// Symbols render as: a bare character (`a`), a number (`7`), or an angle-
/// bracketed marker (`<w>`).  Characters that are digits or `<` are
/// escaped as `'c'`.  Generator words have no finite description and are
/// rejected by serialize(); snapshot them with take_until first.
///
/// Two element-level entry points serve streaming consumers (the
/// rtw::svc::wire frame codec): serialize_elements() renders a bare
/// element list with no kind header, and parse_prefix() scans a *bounded*
/// number of elements from a possibly partial buffer, reporting bytes
/// consumed instead of throwing -- so a frame split across network reads
/// resumes where the previous scan stopped rather than re-parsing from
/// scratch.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Serializes a finite or lasso word.  Throws ModelError on generator
/// words.
std::string serialize(const TimedWord& word);

/// Parses the serialize() format back; throws ModelError on malformed
/// input.  Round-trip: parse_word(serialize(w)) equals w element-wise
/// (and structurally for lassos).
TimedWord parse_word(const std::string& text);

/// Renders a bare `sym@time sym@time ...` element list (the body format of
/// serialize(), without the `finite:`/`lasso(...)` header).  Inverse of
/// parse_prefix on complete input.
std::string serialize_elements(const std::vector<TimedSymbol>& elements);

/// Result of a bounded, non-throwing element scan.
struct ParsedPrefix {
  std::vector<TimedSymbol> symbols;  ///< complete elements, in order
  std::size_t consumed = 0;          ///< bytes consumed (resume point)
};

/// Scans up to `max_symbols` leading `sym@time` elements of `text`.
///
/// Never throws: the scan stops at the first incomplete or malformed
/// element and `consumed` reports how many bytes were used by the complete
/// elements before it (separator spaces included), so a caller holding a
/// growing buffer re-parses only the unconsumed tail.
///
/// `final_chunk` resolves end-of-buffer ambiguity: `a@3` at the end of a
/// chunk may continue as `a@35` in the next read, so with final_chunk =
/// false an element touching the end of the buffer is held back; with
/// final_chunk = true (no more bytes will ever come) it is consumed.
ParsedPrefix parse_prefix(std::string_view text, std::size_t max_symbols,
                          bool final_chunk = true);

}  // namespace rtw::core
