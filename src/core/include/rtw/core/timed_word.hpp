#pragma once
/// \file timed_word.hpp
/// Time sequences and timed omega-words (Definitions 3.1 and 3.2).
///
/// Definition 3.1 (paper): a *time sequence* tau in N^omega is a sequence of
/// positive values satisfying *monotonicity* (tau_i <= tau_{i+1}); finite
/// subsequences are also time sequences.  A *well-behaved* time sequence
/// additionally satisfies *progress* (for every t in N there is a finite i
/// with tau_i > t) and is therefore always infinite.
///
/// Definition 3.2: a timed omega-word over Sigma is a pair (sigma, tau) of
/// equal length k in N ∪ {omega}; tau_i is the time at which sigma_i becomes
/// available as input.
///
/// Infinite mathematical objects need a finite machine representation.  A
/// TimedWord is one of
///   * Finite      -- an explicit vector of (symbol, time) pairs;
///   * Lasso       -- prefix + cycle + per-iteration time advance `period`:
///                    an ultimately periodic word.  Every construction in
///                    the paper (deadline words, periodic queries, the
///                    acceptor output with its trailing f^omega, ...) is
///                    ultimately periodic, so lassos make acceptance
///                    *decidable* rather than merely testable;
///   * Generator   -- an arbitrary index -> (symbol, time) function for
///                    words produced by simulation (arrival laws, mobile
///                    node trajectories).  Properties of generator words are
///                    checked up to a caller-chosen horizon.
///
/// Property checks return a three-valued Certificate: for Finite and Lasso
/// words monotonicity and progress are decided exactly; for Generator words
/// the check is a bounded refutation search (Refuted is exact, otherwise
/// HoldsToHorizon), unless the generator was constructed with proof flags
/// asserted by the producing combinator (e.g. Definition 3.5 concatenation
/// of two proven-well-behaved words is well-behaved).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/symbol.hpp"

namespace rtw::core {

/// Discrete virtual time.  The paper argues for N-valued time ("the time
/// perceived by a computer is discrete as well").
using Tick = std::uint64_t;

/// One element of a timed omega-word: sigma_i with its timestamp tau_i.
struct TimedSymbol {
  Symbol sym;
  Tick time = 0;

  friend bool operator==(const TimedSymbol&, const TimedSymbol&) = default;
};

/// Outcome of a property check on a possibly-infinite object.
enum class Certificate {
  Proven,          ///< holds for the entire (infinite) word
  HoldsToHorizon,  ///< no violation found up to the inspection horizon
  Refuted,         ///< a concrete violation was found
};

/// True when the certificate is not a refutation.
constexpr bool holds(Certificate c) noexcept {
  return c != Certificate::Refuted;
}

std::string to_string(Certificate c);

/// Proof flags a combinator may assert when constructing a Generator word.
struct GeneratorTraits {
  bool monotone_proven = false;  ///< times are nondecreasing, by construction
  bool progress_proven = false;  ///< times diverge, by construction
};

/// A timed omega-word (Definition 3.2).  Cheap to copy (shared immutable
/// representation).
class TimedWord {
  struct Rep;  // internal representation (timed_word.cpp)

public:
  using Generator = std::function<TimedSymbol(std::uint64_t)>;

  /// The empty finite word.
  TimedWord();

  /// A finite timed word.  Throws ModelError if times are not nondecreasing.
  static TimedWord finite(std::vector<TimedSymbol> symbols);

  /// Convenience: finite word from parallel symbol/time vectors.
  static TimedWord finite(const std::vector<Symbol>& sigma,
                          const std::vector<Tick>& tau);

  /// Convenience: all symbols of `text` at time `at`.
  static TimedWord text_at(std::string_view text, Tick at);

  /// An ultimately periodic infinite word: `prefix` followed by `cycle`
  /// repeated forever, each full repetition shifting times by `period`.
  /// Element prefix.size() + j*cycle.size() + r has symbol cycle[r].sym and
  /// time cycle[r].time + j*period.
  ///
  /// Monotonicity requires: prefix nondecreasing; junction
  /// (prefix.back <= cycle.front); cycle nondecreasing; wraparound
  /// (cycle.front.time + period >= cycle.back.time).  Throws ModelError
  /// otherwise.  Progress holds iff period > 0 (decided exactly).
  static TimedWord lasso(std::vector<TimedSymbol> prefix,
                         std::vector<TimedSymbol> cycle, Tick period);

  /// A generator-backed infinite word.  The function must be pure
  /// (index-deterministic).  `traits` lets trusted combinators assert
  /// proofs; the default asserts nothing.
  static TimedWord generator(Generator fn, GeneratorTraits traits = {},
                             std::string label = "generator");

  /// Number of symbols, or nullopt for infinite words.
  std::optional<std::uint64_t> length() const noexcept;
  bool infinite() const noexcept { return !length().has_value(); }
  bool empty() const noexcept { return length() == std::uint64_t{0}; }

  /// i-th element (0-based).  Throws ModelError past the end of a finite
  /// word.  O(1) for Finite/Lasso; generator cost for Generator words
  /// (results of expensive generators are memoized internally).  This is
  /// the *random-access fallback*: sequential readers (tapes, executors,
  /// scanners) should use cursor(), which never touches the shared
  /// generator memo or its mutex.
  TimedSymbol at(std::uint64_t i) const;

  /// Sequential reader over the word.  Yields exactly the same
  /// (symbol, time) stream as at(0), at(1), ... but:
  ///   * Finite/Lasso: a pure pointer/arithmetic walk, no locking;
  ///   * Generator: elements are produced into a private per-cursor chunk
  ///     buffer, so concurrent cursors over one shared word never contend
  ///     on the Rep's memo mutex (the generator function must be pure,
  ///     which the Generator contract already requires).
  /// The cursor keeps the word's representation alive independently.
  class Cursor {
  public:
    /// Current element.  Contract: !done().
    TimedSymbol current() const;
    /// Index of the current element.
    std::uint64_t index() const noexcept { return index_; }
    /// True once a finite word is exhausted (never for infinite words).
    bool done() const noexcept;
    /// Moves to the next element.  Contract: !done().
    void advance();
    /// Convenience: current element then advance; nullopt when done.
    std::optional<TimedSymbol> next();

  private:
    friend class TimedWord;
    explicit Cursor(std::shared_ptr<const Rep> rep);

    std::shared_ptr<const Rep> rep_;
    std::uint64_t index_ = 0;
    // Lasso walk state: position within the cycle and the accumulated
    // per-lap time shift (index_ < prefix size means "still in prefix").
    std::uint64_t cycle_pos_ = 0;
    Tick lap_shift_ = 0;
    // Generator chunk: elements [chunk_base_, chunk_base_ + chunk_.size()).
    std::vector<TimedSymbol> chunk_;
    std::uint64_t chunk_base_ = 0;
    void refill_chunk();
  };

  /// A cursor positioned at element 0.
  Cursor cursor() const { return Cursor(rep_); }

  /// First index whose timestamp is strictly greater than `t`, searching up
  /// to `horizon` indices; nullopt if none found in range.  This is the
  /// paper's progress quantifier made executable.
  std::optional<std::uint64_t> first_after(Tick t, std::uint64_t horizon) const;

  /// Monotonicity check (Definition 3.1).  Exact for Finite/Lasso.
  Certificate monotone(std::uint64_t horizon = kDefaultHorizon) const;

  /// Well-behavedness check = monotone && progress && infinite
  /// (Definition 3.1/3.2).  Finite words are never well-behaved.
  Certificate well_behaved(std::uint64_t horizon = kDefaultHorizon) const;

  /// Materializes the first `n` elements (or all of a shorter finite word).
  std::vector<TimedSymbol> prefix(std::uint64_t n) const;

  /// Projection: the symbol sequence of prefix(n).
  std::vector<Symbol> symbols(std::uint64_t n) const;
  /// Projection: the time sequence of prefix(n).
  std::vector<Tick> times(std::uint64_t n) const;

  /// Structural kind queries (used by decision procedures that exploit the
  /// lasso representation).
  bool is_finite_rep() const noexcept;
  bool is_lasso_rep() const noexcept;
  /// Lasso accessors; contract: is_lasso_rep().
  const std::vector<TimedSymbol>& lasso_prefix() const;
  const std::vector<TimedSymbol>& lasso_cycle() const;
  Tick lasso_period() const;

  /// Human-readable rendering of the first `n` elements.
  std::string to_string(std::uint64_t n = 16) const;

  /// Default horizon for bounded checks on generator words.
  static constexpr std::uint64_t kDefaultHorizon = 4096;

private:
  explicit TimedWord(std::shared_ptr<const Rep> rep);
  std::shared_ptr<const Rep> rep_;
};

/// Subsequence test of section 2 ("sigma' ⊑ sigma"): order-preserving
/// embedding.  Greedy matching over the first `horizon` elements of `word`;
/// exact when both words are finite and horizon covers them.
bool is_subsequence(const std::vector<TimedSymbol>& sub,
                    const TimedWord& word, std::uint64_t horizon);

/// The classical-word embedding discussed in section 3.2: a conventional
/// word with the all-zero time sequence attached.  Never well-behaved --
/// the paper's "crisp delimitation between real-time and classical
/// algorithms".
TimedWord classical(std::string_view text);

}  // namespace rtw::core
