#pragma once
/// \file language.hpp
/// Timed omega-languages and the operations of Theorem 3.3.
///
/// A timed omega-language is a *set* of timed omega-words (Definition 3.2).
/// Sets of infinite objects are represented intensionally: a language is a
/// named membership predicate, optionally paired with a *sampler* that can
/// produce member words (used by the property-based tests and by the
/// Kleene-closure generator).  Union, intersection and complement are the
/// pointwise boolean combinations; concatenation and Kleene closure are
/// realized on the sampler side via Definition 3.5 merging (deciding
/// membership of a merge decomposition is NP-hard in general and is not
/// required by any construction in the paper).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/concat.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// An intensional timed omega-language.
class TimedLanguage {
public:
  using Membership = std::function<bool(const TimedWord&)>;
  /// Produces the i-th sample member (deterministic in i).
  using Sampler = std::function<TimedWord(std::uint64_t)>;

  TimedLanguage(std::string name, Membership member);
  TimedLanguage(std::string name, Membership member, Sampler sampler);

  const std::string& name() const noexcept { return name_; }
  bool contains(const TimedWord& w) const { return member_(w); }
  bool has_sampler() const noexcept { return static_cast<bool>(sampler_); }
  /// i-th sample member; contract: has_sampler().
  TimedWord sample(std::uint64_t i) const;

  /// Theorem 3.3 operations.  Union/intersection require both operands'
  /// predicates; complement flips the predicate.  Samplers are combined
  /// where possible (union alternates samples; the others drop the sampler).
  friend TimedLanguage operator|(const TimedLanguage& a,
                                 const TimedLanguage& b);
  friend TimedLanguage operator&(const TimedLanguage& a,
                                 const TimedLanguage& b);
  friend TimedLanguage operator~(const TimedLanguage& a);

  /// Concatenation L1 L2 on the sampler side: sample(i) is the Definition
  /// 3.5 merge of the operands' samples (pairing index i diagonally).
  /// Contract: both operands have samplers.
  friend TimedLanguage concat(const TimedLanguage& a, const TimedLanguage& b);

  /// Kleene closure sampler (Definition 3.6): sample(i) draws k in
  /// [1, max_power] and merges k member samples.  Membership is not
  /// decidable intensionally, so the resulting language's predicate accepts
  /// only words produced by its own sampler up to `max_power`; use for
  /// generation, not recognition.
  TimedLanguage kleene(std::uint64_t max_power = 4) const;

private:
  std::string name_;
  Membership member_;
  Sampler sampler_;
};

/// True iff every one of the first `count` samples of `language` is a
/// member of `language` and is well-behaved up to `horizon`.  Convenience
/// used by closure property tests (Theorem 3.3) and the experiment
/// harnesses' self-checks.
bool samples_self_consistent(const TimedLanguage& language,
                             std::uint64_t count, std::uint64_t horizon);

}  // namespace rtw::core
