#pragma once
/// \file tape.hpp
/// The input and output tapes of a real-time algorithm (Definition 3.3).
///
/// * InputTape — wraps a timed omega-word and enforces the availability
///   semantics: "a symbol sigma_i with the associated time value tau_i is
///   not available to the algorithm at any time t < tau_i".  The tape hands
///   out exactly the symbols whose timestamps have been reached, in word
///   order, each at most once.
///
/// * OutputTape — write-only ("A cannot read any symbol previously written")
///   and rate-limited ("during any time unit, A may add at most one symbol
///   to the output tape").  It records the positions of the designated
///   acceptance symbol f so the executor can evaluate Definition 3.4.

#include <cstdint>
#include <optional>
#include <vector>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Read head over a timed omega-word, gated by virtual time.  Reads the
/// word through a TimedWord::Cursor, so stepping an acceptor never touches
/// the shared generator memo (or its mutex) even when many engine runs
/// share one word across threads.
class InputTape {
public:
  explicit InputTape(TimedWord word);

  /// All not-yet-consumed symbols with timestamp <= now, in word order.
  /// Consumes them.
  std::vector<TimedSymbol> take_available(Tick now);

  /// Allocation-free variant for hot loops: clears `out` and appends the
  /// available symbols, reusing its capacity across calls.
  void take_available(Tick now, std::vector<TimedSymbol>& out);

  /// Timestamp of the next unconsumed symbol, or nullopt once a finite word
  /// is exhausted.  Lets executors fast-forward through idle time.
  std::optional<Tick> next_arrival() const;

  /// Number of symbols consumed so far.
  std::uint64_t consumed() const noexcept { return cursor_.index(); }

  /// True once a finite word has been fully consumed (always false for
  /// infinite words).
  bool exhausted() const { return cursor_.done(); }

  const TimedWord& word() const noexcept { return word_; }

private:
  TimedWord word_;
  TimedWord::Cursor cursor_;
};

/// Write-only output stream with the <=1 symbol/tick discipline.
class OutputTape {
public:
  /// `accept_symbol` is the designated f of Definition 3.4.
  explicit OutputTape(Symbol accept_symbol = marks::accept());

  /// Appends one symbol at virtual time `now`.  Throws ModelError on a
  /// second write within the same tick or on a write into the past.
  void write(Tick now, Symbol s);

  /// True when a write at `now` would be admissible.
  bool can_write(Tick now) const noexcept;

  std::uint64_t size() const noexcept { return content_.size(); }
  /// |o(A,w)|_f so far.
  std::uint64_t accept_count() const noexcept { return accept_count_; }
  /// Tick of the first f written, if any.
  std::optional<Tick> first_accept() const noexcept { return first_accept_; }
  /// Tick of the most recent f written, if any.
  std::optional<Tick> last_accept() const noexcept { return last_accept_; }

  /// The written content (symbol + the tick it was written at).  Exposed
  /// for inspection by the executor and tests only -- the *algorithm* side
  /// of the API never sees this (write-only semantics).
  const std::vector<TimedSymbol>& content() const noexcept { return content_; }

  Symbol accept_symbol() const noexcept { return accept_; }

private:
  Symbol accept_;
  std::vector<TimedSymbol> content_;
  std::optional<Tick> last_write_;
  std::uint64_t accept_count_ = 0;
  std::optional<Tick> first_accept_;
  std::optional<Tick> last_accept_;
};

}  // namespace rtw::core
