#pragma once
/// \file symbol.hpp
/// Symbols and alphabets.
///
/// The paper works over several alphabets at once: an input alphabet Sigma,
/// an output alphabet Omega, natural-number usefulness values (N ∩ [max,0]),
/// and designated markers such as `w` (waiting), `d` (deadline passed), `$`
/// and `@` (encoding delimiters), `c` (arrival marker of section 4.2) and
/// `f` (the acceptance symbol of Definition 3.4).  The paper assumes these
/// sets are disjoint ("We consider that Sigma, Omega, and N are disjoint").
///
/// `Symbol` realizes that union type compactly: a symbol is a character, a
/// natural number, or an interned named marker, and symbols of different
/// kinds never compare equal -- giving the disjointness the constructions
/// rely on without manual delimiter bookkeeping.

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace rtw::core {

/// A single symbol of a timed omega-word.  Value type; 16 bytes; totally
/// ordered (kind-major) so symbols can key ordered containers.
class Symbol {
public:
  enum class Kind : std::uint8_t {
    Char,    ///< a character drawn from a conventional alphabet
    Nat,     ///< a natural number (usefulness values, encodings of integers)
    Marker,  ///< an interned named marker: "w", "d", "$", "f", ...
  };

  /// Default-constructed symbol: the character '\0'.  Needed so containers
  /// of symbols are regular; never produced by the word builders.
  constexpr Symbol() noexcept : kind_(Kind::Char), value_(0) {}

  static constexpr Symbol chr(char c) noexcept {
    return Symbol(Kind::Char, static_cast<unsigned char>(c));
  }
  static constexpr Symbol nat(std::uint64_t n) noexcept {
    return Symbol(Kind::Nat, n);
  }
  /// Interns `name` in a process-wide registry (thread-safe) and returns the
  /// marker symbol.  Two calls with the same name yield equal symbols.
  static Symbol marker(std::string_view name);

  constexpr Kind kind() const noexcept { return kind_; }
  constexpr bool is_char() const noexcept { return kind_ == Kind::Char; }
  constexpr bool is_nat() const noexcept { return kind_ == Kind::Nat; }
  constexpr bool is_marker() const noexcept { return kind_ == Kind::Marker; }

  /// Character payload; contract: is_char().
  char as_char() const;
  /// Natural payload; contract: is_nat().
  std::uint64_t as_nat() const;
  /// Marker name; contract: is_marker().
  std::string_view name() const;

  /// Human-readable rendering: 'a', 7, <w>.
  std::string to_string() const;

  friend constexpr bool operator==(Symbol a, Symbol b) noexcept {
    return a.kind_ == b.kind_ && a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(Symbol a, Symbol b) noexcept {
    if (auto c = a.kind_ <=> b.kind_; c != 0) return c;
    return a.value_ <=> b.value_;
  }

  /// Stable 64-bit hash (for unordered containers).
  std::uint64_t hash() const noexcept {
    return (static_cast<std::uint64_t>(kind_) << 62) ^ value_;
  }

private:
  constexpr Symbol(Kind kind, std::uint64_t value) noexcept
      : kind_(kind), value_(value) {}

  Kind kind_;
  std::uint64_t value_;
};

/// Commonly used designated symbols.  Fetch lazily (marker interning), so
/// expose as functions rather than globals.
namespace marks {
/// Definition 3.4's designated acceptance symbol `f`.
Symbol accept();
/// Section 4.1's waiting symbol `w`.
Symbol waiting();
/// Section 4.1's deadline-passed symbol `d`.
Symbol deadline();
/// Encoding delimiter `$` of sections 5.1-5.2.
Symbol dollar();
/// Encoding delimiter `@` of section 5.2.
Symbol at();
/// Section 4.2's pre-arrival marker `c`.
Symbol arrival();
}  // namespace marks

/// Converts a conventional string into the character-symbol sequence the
/// encodings of sections 4-5 use.
std::vector<Symbol> symbols_of(std::string_view text);

/// Renders a symbol sequence back to text (markers render as <name>).
std::string to_string(const std::vector<Symbol>& symbols);

}  // namespace rtw::core

template <>
struct std::hash<rtw::core::Symbol> {
  std::size_t operator()(rtw::core::Symbol s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};
