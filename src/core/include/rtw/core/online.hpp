#pragma once
/// \file online.hpp
/// Online acceptance: the incremental face of Definitions 3.3-3.4.
///
/// The paper's acceptor model is inherently *online* -- a real-time
/// algorithm reads its timed omega-word as the symbols arrive, one virtual
/// time unit per tick.  The batch executor (rtw::engine::run) realizes that
/// model over a complete TimedWord; this header exposes the same semantics
/// as a push interface, so a serving layer (rtw::svc) can evaluate
/// membership over streams that are still arriving.
///
/// The verdict lattice has three points:
///
///           Accepting       Rejecting       (both final)
///                 \           /
///                Undetermined                (may still move up)
///
/// A verdict leaves Undetermined exactly when the wrapped algorithm locks
/// (s_f / s_r -- the exact Definition 3.4 protocol) or when the stream
/// finishes and the executor's trailing-window heuristic is applied.  Once
/// Accepting or Rejecting, the verdict never changes; further feeds are
/// no-ops returning the settled verdict.
///
/// EngineOnlineAcceptor is the reference implementation: it replays the
/// engine's drive loop *incrementally* -- identical visited ticks, idle-gap
/// fast-forward, lock consultation and horizon heuristic -- which is what
/// makes online and batch verdicts provably equal on the same word (the
/// tests/test_svc.cpp property suite checks RunResult equality field by
/// field across deadline, rtdb and adhoc workloads).  A driver tick can
/// only be emulated once its arrival set is complete; symbols timestamped
/// at or after the newest fed symbol may still arrive, so the adapter
/// drives strictly *behind* the input frontier and catches up at finish().

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/lane.hpp"
#include "rtw/core/tape.hpp"
#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Three-valued acceptance state of an online run.
enum class Verdict : std::uint8_t {
  Undetermined,  ///< no lock yet and the stream has not finished
  Accepting,     ///< locked s_f, or heuristically accepted at finish
  Rejecting,     ///< locked s_r, or heuristically rejected at finish
};

std::string to_string(Verdict v);

/// True once the verdict can no longer change.
constexpr bool final_verdict(Verdict v) noexcept {
  return v != Verdict::Undetermined;
}

/// How a finished stream relates to the word it was cut from.  The batch
/// engine behaves differently after the last delivered symbol depending on
/// whether the word *ended* or merely has no further arrivals inside the
/// horizon -- the online side must be told which.
enum class StreamEnd : std::uint8_t {
  /// The stream is the complete finite word.  The executor keeps
  /// single-stepping idle ticks up to the horizon so the algorithm can
  /// finish trailing work (matches engine::run on a drained finite word).
  EndOfWord,
  /// The stream is the visible prefix of an infinite word whose next
  /// arrival lies beyond the horizon.  The executor stops driving right
  /// after the last visited tick (matches engine::run on a lasso or
  /// generator word truncated at the horizon).
  Truncated,
};

/// The push-interface acceptor: feed symbols in word order, read verdicts.
///
/// Contract: feed times must be nondecreasing (Definition 3.1 monotonicity
/// -- the stream *is* a timed word); a time step backwards throws
/// ModelError.  Feeding after finish() or after a final verdict is a no-op
/// returning the settled verdict.
class OnlineAcceptor {
public:
  virtual ~OnlineAcceptor() = default;

  /// Ingests the next element sigma_i @ tau_i; returns the verdict after
  /// every driver tick that became emulable.
  virtual Verdict feed(Symbol symbol, Tick at) = 0;

  Verdict feed(const TimedSymbol& ts) { return feed(ts.sym, ts.time); }

  /// Declares the stream over and settles the verdict (exact if locked,
  /// otherwise the executor's trailing-window heuristic).  Idempotent; the
  /// `end` of the first call wins.
  virtual Verdict finish(StreamEnd end = StreamEnd::EndOfWord) = 0;

  /// Current verdict (Undetermined until a lock or finish()).
  virtual Verdict verdict() const = 0;

  /// The Definition 3.4 verdict record, populated exactly as
  /// rtw::engine::run would on the word fed so far (fully settled after
  /// finish()).
  virtual const RunResult& result() const = 0;

  /// Restores the initial state so the same object can accept a new stream.
  virtual void reset() = 0;

  virtual std::string name() const = 0;

  /// \name Batch-lane hooks (see rtw/core/lane.hpp)
  /// An acceptor whose automaton state compresses to fixed-width registers
  /// can advertise a lane family; the serving layer then steps many such
  /// sessions per SIMD instruction instead of one virtual feed per symbol.
  /// The defaults opt out: family None, no lane state, no stepper.
  ///@{

  /// The kernel family this acceptor belongs to (None = per-symbol only).
  virtual LaneFamily lane_family() const noexcept { return LaneFamily::None; }

  /// The lane-state POD a family stepper advances, or nullptr while the
  /// acceptor is not (yet, or no longer) in a vectorizable phase.  Callers
  /// must re-query before every batch: acceptors may enter the compressed
  /// phase mid-stream (e.g. once a header is parsed).
  virtual void* lane_state() noexcept { return nullptr; }

  /// Builds the family's batch kernel for `variant` (one stepper serves
  /// every lane of the family; it holds no per-session state).
  virtual std::unique_ptr<BatchStepper> make_lane_stepper(
      KernelVariant variant) const {
    (void)variant;
    return nullptr;
  }
  ///@}
};

/// Drives any RealTimeAlgorithm online with the batch engine's exact
/// semantics.  This is the adapter every application module wraps (see
/// deadline::make_online_acceptor, rtdb::make_online_recognition,
/// adhoc::make_online_route_acceptor).
///
/// `keepalive` pins whatever the algorithm borrows (a Problem, a Network,
/// a QueryCatalog's closure state) for the adapter's lifetime.
class EngineOnlineAcceptor final : public OnlineAcceptor {
public:
  EngineOnlineAcceptor(std::unique_ptr<RealTimeAlgorithm> algorithm,
                       RunOptions options = {},
                       std::shared_ptr<const void> keepalive = nullptr);

  Verdict feed(Symbol symbol, Tick at) override;
  using OnlineAcceptor::feed;
  Verdict finish(StreamEnd end = StreamEnd::EndOfWord) override;
  Verdict verdict() const override;
  const RunResult& result() const override { return result_; }
  void reset() override;
  std::string name() const override;

  const RunOptions& options() const noexcept { return options_; }
  bool finished() const noexcept { return finished_; }
  /// Virtual time of the next driver tick the adapter will emulate.
  Tick frontier() const noexcept { return next_tick_; }
  /// Lock state: engaged once the algorithm committed s_f / s_r.
  std::optional<bool> lock() const noexcept { return lock_; }
  /// True when the drive loop already stopped at the horizon.
  bool ended() const noexcept { return ended_; }
  /// Fed elements not yet delivered to the algorithm.  While streaming
  /// (pre-finish, unlocked, not ended) every buffered element is stamped at
  /// frontier(): older ticks were drained the moment a newer feed arrived.
  std::span<const TimedSymbol> pending_buffer() const noexcept {
    return {buffer_.data() + head_, buffer_.size() - head_};
  }

private:
  /// Emulates driver ticks while their arrival sets are complete.
  /// `limit`: exclusive upper bound on emulable ticks while streaming
  /// (nullopt once the stream has finished -- every tick is emulable).
  /// `truncated`: finish(Truncated) semantics (see StreamEnd).
  void drive(std::optional<Tick> limit, bool truncated);
  void settle_heuristic();

  std::unique_ptr<RealTimeAlgorithm> algorithm_;
  RunOptions options_;
  std::shared_ptr<const void> keepalive_;

  OutputTape out_;
  std::vector<TimedSymbol> buffer_;  ///< fed, not yet delivered
  std::size_t head_ = 0;             ///< first undelivered buffer index
  std::vector<TimedSymbol> arrivals_;  ///< per-tick scratch (reused)
  Tick next_tick_ = 0;       ///< next driver tick to emulate
  Tick last_fed_ = 0;        ///< monotonicity watermark
  bool any_fed_ = false;
  bool ended_ = false;       ///< the engine loop would have stopped
  bool finished_ = false;
  std::optional<bool> lock_;
  RunResult result_;
};

}  // namespace rtw::core
