#pragma once
/// \file concat.hpp
/// Concatenation of timed omega-words (Definition 3.5) and the Kleene
/// closure it induces (Definition 3.6).
///
/// The paper observes that naive sequence concatenation does not produce a
/// timed word (the time sequence would break), and instead defines
/// concatenation as the *time-ordered merge* of the two words, with two
/// tie-breaking constraints:
///
///   item 1: the result's time sequence is monotone and both operands are
///           subsequences of the result, which contains nothing else;
///   item 2: a maximal block of equal-time symbols coming from ONE operand
///           stays contiguous in the result;
///   item 3: when a symbol of the first operand and a symbol of the second
///           operand carry the same timestamp, the first operand's symbol
///           precedes.
///
/// A stable two-pointer merge that prefers the first operand on time ties
/// satisfies all three items simultaneously, and is what `concat`
/// implements.  For two finite operands the result is finite; whenever an
/// operand is infinite the result is a lazy generator word whose
/// monotonicity is proven by construction, and whose progress is proven iff
/// it is proven for the infinite operand(s) -- this matters for the paper's
/// db_B = db_0 db_1 ... db_r construction (section 5.1.3) and for the
/// periodic-query word of Lemma 5.1.

#include <cstdint>
#include <vector>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// (sigma, tau) = (sigma', tau')(sigma'', tau'') per Definition 3.5.
TimedWord concat(const TimedWord& first, const TimedWord& second);

/// Left fold of `concat` over a word list.  An empty list yields the empty
/// word.  Merging is associative for the stable first-wins merge when the
/// fold is left-to-right, matching the paper's db_0 db_1 ... db_r notation.
TimedWord concat_all(const std::vector<TimedWord>& words);

/// Validates that `merged` is the Definition 3.5 concatenation of `first`
/// and `second`, by checking items 1-3 over the first `horizon` elements.
/// Exact for finite operands with a covering horizon.  Used by the property
/// test-suite; returns a certificate rather than a bool so generator-backed
/// operands report HoldsToHorizon.
Certificate is_concatenation(const TimedWord& merged, const TimedWord& first,
                             const TimedWord& second, std::uint64_t horizon);

/// L^k of Definition 3.6 realized as a *word combinator*: the k-fold
/// concatenation of the given member words (one drawn from L per factor).
/// Definition 3.6's L^0 is the empty language, so k == 0 is a contract
/// violation here.
TimedWord power_word(const TimedWord& member, std::uint64_t k);

}  // namespace rtw::core
