#pragma once
/// \file lane.hpp
/// Batch acceptance lanes: the interface a shard worker uses to advance
/// *many* sessions per kernel call instead of one virtual feed per symbol.
///
/// The paper's acceptor step is per-tick and per-acceptor, but nothing in
/// Definition 3.4 couples two runs: distinct sessions never exchange state,
/// so a worker may evaluate N independent acceptors in lockstep (the
/// parallel-lanes reading formalized in Hui & Chikkagoudar's parallel
/// real-time model).  A *lane* is one session's automaton state laid out so
/// a family kernel can keep it in SIMD registers: the ingress filter
/// watermark, the verdict/lock bytes and the family's own counters live in
/// parallel arrays, and an SSE2/AVX2 kernel steps W lanes per instruction.
///
/// Contracts:
///  * A family kernel must be *bit-identical* to feeding the same elements
///    through Session::feed one at a time -- verdict lattice transitions
///    (Undetermined ⊑ {Accepting, Rejecting}, no downgrade ever), RunResult
///    fields, and the stale-filter counters all included.  The equivalence
///    proptests in tests/test_lane_kernel.cpp enforce this per variant.
///  * The kernel owns the session's stale filter while stepping: elements
///    below the high-water mark are dropped and counted per lane exactly
///    like Session::feed would.
///  * Variant selection is a process-wide runtime decision (CPUID probe,
///    overridable with RTW_FORCE_SCALAR=1); every compiled variant accepts
///    the same LaneRun batches.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "rtw/core/timed_word.hpp"

namespace rtw::core {

/// Kernel families.  A family is a set of acceptors whose automaton state
/// compresses to fixed-width registers; None means "no lane kernel, use the
/// per-symbol virtual path".
enum class LaneFamily : std::uint8_t {
  None,
  Deadline,  ///< section 4.1 counter/threshold automaton (deadline::*)
};

std::string_view to_string(LaneFamily family) noexcept;

/// The ingress hygiene state of one session (rtw::svc::Session's stale
/// filter), exposed as a POD so a kernel can update it in SIMD registers.
/// Semantics are Session::feed's: an element strictly below the high-water
/// mark is dropped and counted stale; anything else advances the mark and
/// counts as fed.
struct LaneFilter {
  Tick high_water = 0;
  std::uint64_t fed = 0;
  std::uint64_t stale = 0;
  bool any = false;  ///< false until the first element passes the filter
};

/// One lane's unit of work: a run of timed elements plus the session state
/// the kernel advances.  `state` points at the family's lane-state POD (the
/// acceptor's OnlineAcceptor::lane_state()); its concrete type is the
/// family's business -- a stepper must only ever receive runs of its own
/// family.
struct LaneRun {
  const TimedSymbol* data = nullptr;
  std::size_t size = 0;
  LaneFilter* filter = nullptr;
  void* state = nullptr;
};

/// Compiled kernel variants, ordered by preference.
enum class KernelVariant : std::uint8_t { Scalar, SSE2, AVX2 };

std::string_view to_string(KernelVariant variant) noexcept;

/// A family's batch kernel: advances every lane in `runs` by its whole run.
/// Implementations group lanes into SIMD waves internally; the scalar
/// variant is the portable reference.
class BatchStepper {
public:
  virtual ~BatchStepper() = default;
  virtual LaneFamily family() const noexcept = 0;
  /// The variant actually executing (after unavailable-ISA clamping).
  virtual KernelVariant variant() const noexcept = 0;
  virtual void step(const LaneRun* runs, std::size_t count) = 0;
};

/// Pure variant selection given the RTW_FORCE_SCALAR environment value
/// (nullptr when unset).  Exposed for tests; production code uses the
/// cached dispatch_variant().
KernelVariant detect_variant(const char* force_scalar_env) noexcept;

/// True when `variant` can run on this build *and* this CPU.
bool variant_supported(KernelVariant variant) noexcept;

/// The process-wide kernel variant: CPUID-probed once, best ISA first,
/// RTW_FORCE_SCALAR=1 (or a -DRTW_FORCE_SCALAR=ON build) forces Scalar.
KernelVariant dispatch_variant() noexcept;

}  // namespace rtw::core
