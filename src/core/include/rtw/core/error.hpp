#pragma once
/// \file error.hpp
/// Library-wide exception type for contract violations.  Data-path misses
/// (a rejected word, a lost message, an empty query result) are reported by
/// value; ModelError is reserved for programming errors against the formal
/// model, e.g. a non-monotone time sequence or a second output-tape write
/// within one tick.

#include <stdexcept>
#include <string>

namespace rtw::core {

class ModelError : public std::logic_error {
public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace rtw::core
