#include "rtw/core/online.hpp"

#include <algorithm>
#include <span>

#include "rtw/core/error.hpp"

namespace rtw::core {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::Undetermined:
      return "undetermined";
    case Verdict::Accepting:
      return "accepting";
    case Verdict::Rejecting:
      return "rejecting";
  }
  return "?";
}

EngineOnlineAcceptor::EngineOnlineAcceptor(
    std::unique_ptr<RealTimeAlgorithm> algorithm, RunOptions options,
    std::shared_ptr<const void> keepalive)
    : algorithm_(std::move(algorithm)),
      options_(options),
      keepalive_(std::move(keepalive)),
      out_(options.accept_symbol) {
  if (!algorithm_)
    throw ModelError("EngineOnlineAcceptor: null algorithm");
  // The batch engine resets the algorithm at the top of every run; the
  // online run starts here.
  algorithm_->reset();
}

void EngineOnlineAcceptor::drive(std::optional<Tick> limit, bool truncated) {
  while (!lock_ && !ended_) {
    const Tick nd = next_tick_;
    // Streaming: a driver tick is emulable only when its arrival set is
    // complete, i.e. strictly behind the newest fed timestamp (later feeds
    // may still carry symbols at `limit` itself).
    if (limit && nd >= *limit) break;

    // Deliver every buffered arrival with timestamp <= nd, in word order
    // (exactly InputTape::take_available under the engine).
    arrivals_.clear();
    while (head_ < buffer_.size() && buffer_[head_].time <= nd)
      arrivals_.push_back(buffer_[head_++]);
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    } else if (head_ > 1024 && head_ * 2 > buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    result_.symbols_consumed += arrivals_.size();

    StepContext ctx{nd, std::span<const TimedSymbol>(arrivals_), out_};
    algorithm_->on_tick(ctx);
    result_.ticks = nd;

    if (const auto lock = algorithm_->locked()) {
      // Definition 3.4: committed to s_f or s_r; the run is decided.
      result_.accepted = *lock;
      result_.exact = true;
      lock_ = lock;
      break;
    }

    // The engine's reschedule rule: next tick is now + 1, fast-forwarded
    // to the next arrival when the gap is idle; a next tick beyond the
    // horizon ends the run.
    Tick next = nd + 1;
    if (options_.fast_forward) {
      std::optional<Tick> arrival;
      if (head_ < buffer_.size()) {
        arrival = buffer_[head_].time;
      } else if (!limit && truncated) {
        // finish(Truncated): the word's next arrival exists but lies
        // beyond the horizon; modelling it as horizon + 1 (saturating)
        // makes the formula below stop the run, exactly as the engine
        // does when InputTape::next_arrival() overshoots the horizon.
        arrival = options_.horizon == ~Tick{0} ? ~Tick{0}
                                               : options_.horizon + 1;
      }
      // Streaming with an empty remainder cannot happen: the symbol at
      // `limit` is never delivered at a tick < limit, so the buffer keeps
      // at least one element while a limit is in force.
      if (arrival && *arrival > next) next = *arrival;
    }
    if (next > options_.horizon) {
      ended_ = true;
      break;
    }
    next_tick_ = next;
  }
  result_.f_count = out_.accept_count();
  result_.first_f = out_.first_accept();
}

void EngineOnlineAcceptor::settle_heuristic() {
  // Identical to the engine's horizon heuristic: f written within the
  // trailing quarter of the run counts as evidence of infinitely many f's.
  const auto window_start =
      options_.horizon -
      std::min<Tick>(options_.horizon / 4, options_.horizon);
  result_.accepted =
      out_.last_accept().has_value() && *out_.last_accept() >= window_start;
  result_.exact = false;
}

Verdict EngineOnlineAcceptor::feed(Symbol symbol, Tick at) {
  if (finished_ || lock_ || ended_) return verdict();
  if (any_fed_ && at < last_fed_)
    throw ModelError("OnlineAcceptor::feed: time went backwards (" +
                     std::to_string(at) + " after " +
                     std::to_string(last_fed_) + ")");
  any_fed_ = true;
  last_fed_ = at;
  buffer_.push_back({symbol, at});
  drive(at, /*truncated=*/false);
  return verdict();
}

Verdict EngineOnlineAcceptor::finish(StreamEnd end) {
  if (finished_) return verdict();
  finished_ = true;
  if (!lock_ && !ended_) drive(std::nullopt, end == StreamEnd::Truncated);
  if (!lock_) settle_heuristic();
  return verdict();
}

Verdict EngineOnlineAcceptor::verdict() const {
  if (lock_) return *lock_ ? Verdict::Accepting : Verdict::Rejecting;
  if (finished_)
    return result_.accepted ? Verdict::Accepting : Verdict::Rejecting;
  return Verdict::Undetermined;
}

void EngineOnlineAcceptor::reset() {
  algorithm_->reset();
  out_ = OutputTape(options_.accept_symbol);
  buffer_.clear();
  head_ = 0;
  arrivals_.clear();
  next_tick_ = 0;
  last_fed_ = 0;
  any_fed_ = false;
  ended_ = false;
  finished_ = false;
  lock_.reset();
  result_ = RunResult{};
}

std::string EngineOnlineAcceptor::name() const {
  return "online(" + algorithm_->name() + ")";
}

}  // namespace rtw::core
