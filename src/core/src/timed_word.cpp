#include "rtw/core/timed_word.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::core {

std::string to_string(Certificate c) {
  switch (c) {
    case Certificate::Proven:
      return "proven";
    case Certificate::HoldsToHorizon:
      return "holds-to-horizon";
    case Certificate::Refuted:
      return "refuted";
  }
  return "?";
}

/// Internal representation.  Immutable after construction except for the
/// generator memo cache, which is append-only and guarded by a mutex so
/// TimedWord values can be shared across the parallel runtime's threads.
struct TimedWord::Rep {
  enum class Kind { Finite, Lasso, Generator } kind = Kind::Finite;

  // Finite
  std::vector<TimedSymbol> finite;

  // Lasso
  std::vector<TimedSymbol> prefix;
  std::vector<TimedSymbol> cycle;
  Tick period = 0;

  // Generator
  Generator fn;
  GeneratorTraits traits;
  std::string label;
  mutable std::mutex memo_mutex;
  mutable std::vector<TimedSymbol> memo;

  TimedSymbol element(std::uint64_t i) const {
    switch (kind) {
      case Kind::Finite:
        if (i >= finite.size())
          throw ModelError("TimedWord::at past end of finite word");
        return finite[i];
      case Kind::Lasso: {
        if (i < prefix.size()) return prefix[i];
        const std::uint64_t off = i - prefix.size();
        const std::uint64_t lap = off / cycle.size();
        const std::uint64_t pos = off % cycle.size();
        TimedSymbol s = cycle[pos];
        s.time += static_cast<Tick>(lap) * period;
        return s;
      }
      case Kind::Generator: {
        std::lock_guard lock(memo_mutex);
        // Memoize densely: generator cost dominates for simulation-backed
        // words and accesses are overwhelmingly sequential.
        while (memo.size() <= i) memo.push_back(fn(memo.size()));
        return memo[i];
      }
    }
    throw ModelError("TimedWord: corrupt representation");
  }
};

TimedWord::TimedWord(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

TimedWord::TimedWord() {
  auto rep = std::make_shared<Rep>();
  rep->kind = Rep::Kind::Finite;
  rep_ = std::move(rep);
}

namespace {
void require_monotone(const std::vector<TimedSymbol>& v, const char* what) {
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i - 1].time > v[i].time)
      throw ModelError(std::string("TimedWord: non-monotone time sequence in ") +
                       what);
}
}  // namespace

TimedWord TimedWord::finite(std::vector<TimedSymbol> symbols) {
  require_monotone(symbols, "finite word");
  auto rep = std::make_shared<Rep>();
  rep->kind = Rep::Kind::Finite;
  rep->finite = std::move(symbols);
  return TimedWord(std::move(rep));
}

TimedWord TimedWord::finite(const std::vector<Symbol>& sigma,
                            const std::vector<Tick>& tau) {
  if (sigma.size() != tau.size())
    throw ModelError("TimedWord::finite: |sigma| != |tau|");
  std::vector<TimedSymbol> symbols;
  symbols.reserve(sigma.size());
  for (std::size_t i = 0; i < sigma.size(); ++i)
    symbols.push_back({sigma[i], tau[i]});
  return finite(std::move(symbols));
}

TimedWord TimedWord::text_at(std::string_view text, Tick at) {
  std::vector<TimedSymbol> symbols;
  symbols.reserve(text.size());
  for (char c : text) symbols.push_back({Symbol::chr(c), at});
  return finite(std::move(symbols));
}

TimedWord TimedWord::lasso(std::vector<TimedSymbol> prefix,
                           std::vector<TimedSymbol> cycle, Tick period) {
  if (cycle.empty()) throw ModelError("TimedWord::lasso: empty cycle");
  require_monotone(prefix, "lasso prefix");
  require_monotone(cycle, "lasso cycle");
  if (!prefix.empty() && prefix.back().time > cycle.front().time)
    throw ModelError("TimedWord::lasso: prefix/cycle junction not monotone");
  if (cycle.front().time + period < cycle.back().time)
    throw ModelError("TimedWord::lasso: cycle wraparound not monotone");
  auto rep = std::make_shared<Rep>();
  rep->kind = Rep::Kind::Lasso;
  rep->prefix = std::move(prefix);
  rep->cycle = std::move(cycle);
  rep->period = period;
  return TimedWord(std::move(rep));
}

TimedWord TimedWord::generator(Generator fn, GeneratorTraits traits,
                               std::string label) {
  if (!fn) throw ModelError("TimedWord::generator: null generator");
  auto rep = std::make_shared<Rep>();
  rep->kind = Rep::Kind::Generator;
  rep->fn = std::move(fn);
  rep->traits = traits;
  rep->label = std::move(label);
  return TimedWord(std::move(rep));
}

std::optional<std::uint64_t> TimedWord::length() const noexcept {
  if (rep_->kind == Rep::Kind::Finite) return rep_->finite.size();
  return std::nullopt;
}

TimedSymbol TimedWord::at(std::uint64_t i) const { return rep_->element(i); }

// ------------------------------------------------------------- Cursor

namespace {
/// Capacity of a generator cursor's private chunk buffer: the cursor
/// appends one element per advance (never reading ahead of the caller)
/// and recycles the buffer once it fills, so memory stays bounded while
/// recent elements remain re-readable without re-invoking the generator.
constexpr std::uint64_t kCursorChunk = 32;
}  // namespace

TimedWord::Cursor::Cursor(std::shared_ptr<const Rep> rep)
    : rep_(std::move(rep)) {
  if (rep_->kind == Rep::Kind::Generator) {
    chunk_.reserve(kCursorChunk);
    refill_chunk();
  }
}

void TimedWord::Cursor::refill_chunk() {
  // Ensure element index_ is materialized in the chunk.  The cursor only
  // moves forward one element at a time, so at most one generator call is
  // needed here -- and it happens outside any shared lock.
  if (index_ - chunk_base_ < chunk_.size()) return;
  if (chunk_.size() >= kCursorChunk) {
    chunk_base_ = index_;
    chunk_.clear();
  }
  chunk_.push_back(rep_->fn(index_));
}

bool TimedWord::Cursor::done() const noexcept {
  return rep_->kind == Rep::Kind::Finite && index_ >= rep_->finite.size();
}

TimedSymbol TimedWord::Cursor::current() const {
  switch (rep_->kind) {
    case Rep::Kind::Finite:
      if (index_ >= rep_->finite.size())
        throw ModelError("TimedWord::Cursor past end of finite word");
      return rep_->finite[index_];
    case Rep::Kind::Lasso: {
      if (index_ < rep_->prefix.size()) return rep_->prefix[index_];
      TimedSymbol s = rep_->cycle[cycle_pos_];
      s.time += lap_shift_;
      return s;
    }
    case Rep::Kind::Generator:
      return chunk_[index_ - chunk_base_];
  }
  throw ModelError("TimedWord: corrupt representation");
}

void TimedWord::Cursor::advance() {
  switch (rep_->kind) {
    case Rep::Kind::Finite:
      if (index_ >= rep_->finite.size())
        throw ModelError("TimedWord::Cursor::advance past end of finite word");
      ++index_;
      return;
    case Rep::Kind::Lasso:
      ++index_;
      if (index_ <= rep_->prefix.size()) return;  // still in (or entering)
                                                  // the prefix/cycle junction
      if (++cycle_pos_ == rep_->cycle.size()) {
        cycle_pos_ = 0;
        lap_shift_ += rep_->period;
      }
      return;
    case Rep::Kind::Generator:
      ++index_;
      refill_chunk();
      return;
  }
}

std::optional<TimedSymbol> TimedWord::Cursor::next() {
  if (done()) return std::nullopt;
  TimedSymbol s = current();
  advance();
  return s;
}

std::optional<std::uint64_t> TimedWord::first_after(
    Tick t, std::uint64_t horizon) const {
  const auto len = length();
  const std::uint64_t end = len ? std::min<std::uint64_t>(*len, horizon)
                                : horizon;
  // Lasso fast path: answer analytically instead of scanning.
  if (rep_->kind == Rep::Kind::Lasso) {
    for (std::size_t i = 0; i < rep_->prefix.size() && i < end; ++i)
      if (rep_->prefix[i].time > t) return i;
    if (rep_->period == 0) {
      for (std::size_t i = 0; i < rep_->cycle.size(); ++i) {
        const std::uint64_t idx = rep_->prefix.size() + i;
        if (idx >= end) return std::nullopt;
        if (rep_->cycle[i].time > t) return idx;
      }
      return std::nullopt;  // times never progress past the cycle max
    }
    // With period > 0 a solution always exists; find the first lap whose
    // shifted cycle can exceed t, then scan one lap.
    const Tick base = rep_->cycle.back().time;
    const std::uint64_t lap =
        base > t ? 0 : (t - base) / rep_->period + 1;
    for (std::uint64_t l = (lap == 0 ? 0 : lap - 1); l <= lap; ++l) {
      for (std::size_t i = 0; i < rep_->cycle.size(); ++i) {
        if (rep_->cycle[i].time + l * rep_->period > t) {
          const std::uint64_t idx =
              rep_->prefix.size() + l * rep_->cycle.size() + i;
          return idx < end ? std::optional(idx) : std::nullopt;
        }
      }
    }
    return std::nullopt;
  }
  for (auto cur = cursor(); cur.index() < end && !cur.done(); cur.advance())
    if (cur.current().time > t) return cur.index();
  return std::nullopt;
}

Certificate TimedWord::monotone(std::uint64_t horizon) const {
  switch (rep_->kind) {
    case Rep::Kind::Finite:
    case Rep::Kind::Lasso:
      // Validated at construction time.
      return Certificate::Proven;
    case Rep::Kind::Generator: {
      if (rep_->traits.monotone_proven) return Certificate::Proven;
      Tick prev = 0;
      auto cur = cursor();
      for (std::uint64_t i = 0; i < horizon; ++i, cur.advance()) {
        const Tick t = cur.current().time;
        if (i > 0 && t < prev) return Certificate::Refuted;
        prev = t;
      }
      return Certificate::HoldsToHorizon;
    }
  }
  return Certificate::Refuted;
}

Certificate TimedWord::well_behaved(std::uint64_t horizon) const {
  // "a well-behaved time sequence is always infinite" -- finite words are
  // refuted outright (this is the section 3.2 delimitation).
  if (!infinite()) return Certificate::Refuted;
  const Certificate mono = monotone(horizon);
  if (mono == Certificate::Refuted) return Certificate::Refuted;

  if (rep_->kind == Rep::Kind::Lasso) {
    // Progress <=> the per-lap advance is positive.
    return rep_->period > 0 ? mono : Certificate::Refuted;
  }

  if (rep_->traits.progress_proven) return mono;

  // Bounded refutation search for progress on generator words: times must
  // keep strictly exceeding every bound; if the horizon's worth of elements
  // never exceeds the time of the first element plus one, call it refuted
  // pragmatically?  No -- absence of progress cannot be *refuted* by a
  // finite prefix, only left unconfirmed.  We check that time grows over
  // the sampled window and report HoldsToHorizon.
  const Tick t0 = at(0).time;
  const Tick tEnd = at(horizon - 1).time;
  if (tEnd <= t0 && horizon >= 2) {
    // Time is flat across the whole window; no evidence of progress.  Not a
    // proof of violation, but the only honest answer for the window is that
    // the property did NOT hold up to this horizon.  We still cannot return
    // Refuted (the word may progress later), so report HoldsToHorizon only
    // when some growth was observed.
    return Certificate::HoldsToHorizon;
  }
  return mono == Certificate::Proven ? Certificate::HoldsToHorizon : mono;
}

std::vector<TimedSymbol> TimedWord::prefix(std::uint64_t n) const {
  const auto len = length();
  const std::uint64_t end = len ? std::min<std::uint64_t>(*len, n) : n;
  std::vector<TimedSymbol> out;
  out.reserve(end);
  for (auto cur = cursor(); cur.index() < end; cur.advance())
    out.push_back(cur.current());
  return out;
}

std::vector<Symbol> TimedWord::symbols(std::uint64_t n) const {
  std::vector<Symbol> out;
  for (const auto& ts : prefix(n)) out.push_back(ts.sym);
  return out;
}

std::vector<Tick> TimedWord::times(std::uint64_t n) const {
  std::vector<Tick> out;
  for (const auto& ts : prefix(n)) out.push_back(ts.time);
  return out;
}

bool TimedWord::is_finite_rep() const noexcept {
  return rep_->kind == Rep::Kind::Finite;
}
bool TimedWord::is_lasso_rep() const noexcept {
  return rep_->kind == Rep::Kind::Lasso;
}

const std::vector<TimedSymbol>& TimedWord::lasso_prefix() const {
  if (!is_lasso_rep()) throw ModelError("lasso_prefix on non-lasso word");
  return rep_->prefix;
}
const std::vector<TimedSymbol>& TimedWord::lasso_cycle() const {
  if (!is_lasso_rep()) throw ModelError("lasso_cycle on non-lasso word");
  return rep_->cycle;
}
Tick TimedWord::lasso_period() const {
  if (!is_lasso_rep()) throw ModelError("lasso_period on non-lasso word");
  return rep_->period;
}

std::string TimedWord::to_string(std::uint64_t n) const {
  std::ostringstream out;
  out << "(";
  const auto head = prefix(n);
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i) out << " ";
    out << head[i].sym.to_string() << "@" << head[i].time;
  }
  if (infinite() || (length() && *length() > n)) out << " ...";
  out << ")";
  return out.str();
}

bool is_subsequence(const std::vector<TimedSymbol>& sub, const TimedWord& word,
                    std::uint64_t horizon) {
  std::size_t matched = 0;
  auto cur = word.cursor();
  for (; cur.index() < horizon && !cur.done() && matched < sub.size();
       cur.advance())
    if (cur.current() == sub[matched]) ++matched;
  return matched == sub.size();
}

TimedWord classical(std::string_view text) { return TimedWord::text_at(text, 0); }

}  // namespace rtw::core
