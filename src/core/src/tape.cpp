#include "rtw/core/tape.hpp"

#include "rtw/core/error.hpp"

namespace rtw::core {

InputTape::InputTape(TimedWord word)
    : word_(std::move(word)), cursor_(word_.cursor()) {}

std::vector<TimedSymbol> InputTape::take_available(Tick now) {
  std::vector<TimedSymbol> out;
  take_available(now, out);
  return out;
}

void InputTape::take_available(Tick now, std::vector<TimedSymbol>& out) {
  out.clear();
  while (!cursor_.done()) {
    const TimedSymbol ts = cursor_.current();
    if (ts.time > now) break;
    out.push_back(ts);
    cursor_.advance();
  }
}

std::optional<Tick> InputTape::next_arrival() const {
  if (cursor_.done()) return std::nullopt;
  return cursor_.current().time;
}

OutputTape::OutputTape(Symbol accept_symbol) : accept_(accept_symbol) {}

bool OutputTape::can_write(Tick now) const noexcept {
  return !last_write_ || *last_write_ < now;
}

void OutputTape::write(Tick now, Symbol s) {
  if (last_write_ && *last_write_ >= now)
    throw ModelError(
        "OutputTape: at most one symbol per time unit (Definition 3.3)");
  last_write_ = now;
  content_.push_back({s, now});
  if (s == accept_) {
    ++accept_count_;
    if (!first_accept_) first_accept_ = now;
    last_accept_ = now;
  }
}

}  // namespace rtw::core
