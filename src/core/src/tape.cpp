#include "rtw/core/tape.hpp"

#include "rtw/core/error.hpp"

namespace rtw::core {

InputTape::InputTape(TimedWord word) : word_(std::move(word)) {}

std::vector<TimedSymbol> InputTape::take_available(Tick now) {
  std::vector<TimedSymbol> out;
  const auto len = word_.length();
  while (!len || next_ < *len) {
    const TimedSymbol ts = word_.at(next_);
    if (ts.time > now) break;
    out.push_back(ts);
    ++next_;
  }
  return out;
}

std::optional<Tick> InputTape::next_arrival() const {
  const auto len = word_.length();
  if (len && next_ >= *len) return std::nullopt;
  return word_.at(next_).time;
}

bool InputTape::exhausted() const {
  const auto len = word_.length();
  return len && next_ >= *len;
}

OutputTape::OutputTape(Symbol accept_symbol) : accept_(accept_symbol) {}

bool OutputTape::can_write(Tick now) const noexcept {
  return !last_write_ || *last_write_ < now;
}

void OutputTape::write(Tick now, Symbol s) {
  if (last_write_ && *last_write_ >= now)
    throw ModelError(
        "OutputTape: at most one symbol per time unit (Definition 3.3)");
  last_write_ = now;
  content_.push_back({s, now});
  if (s == accept_) {
    ++accept_count_;
    if (!first_accept_) first_accept_ = now;
    last_accept_ = now;
  }
}

}  // namespace rtw::core
