#include "rtw/core/lane.hpp"

#include <cstdlib>

namespace rtw::core {

namespace {

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || \
    defined(_M_IX86)
constexpr bool kX86 = true;
#else
constexpr bool kX86 = false;
#endif

bool cpu_supports(KernelVariant variant) noexcept {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || \
    defined(_M_IX86)
  switch (variant) {
    case KernelVariant::Scalar: return true;
    case KernelVariant::SSE2: return __builtin_cpu_supports("sse2") != 0;
    case KernelVariant::AVX2: return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return variant == KernelVariant::Scalar;
#endif
}

}  // namespace

std::string_view to_string(LaneFamily family) noexcept {
  switch (family) {
    case LaneFamily::None: return "none";
    case LaneFamily::Deadline: return "deadline";
  }
  return "?";
}

std::string_view to_string(KernelVariant variant) noexcept {
  switch (variant) {
    case KernelVariant::Scalar: return "scalar";
    case KernelVariant::SSE2: return "sse2";
    case KernelVariant::AVX2: return "avx2";
  }
  return "?";
}

KernelVariant detect_variant(const char* force_scalar_env) noexcept {
  // The env override wins over everything, including SIMD-enabled builds:
  // the CI forced-scalar leg sets RTW_FORCE_SCALAR=1 on a normal binary.
  if (force_scalar_env && *force_scalar_env && *force_scalar_env != '0')
    return KernelVariant::Scalar;
#if defined(RTW_FORCE_SCALAR_BUILD)
  return KernelVariant::Scalar;
#else
  if (kX86) {
    if (cpu_supports(KernelVariant::AVX2)) return KernelVariant::AVX2;
    if (cpu_supports(KernelVariant::SSE2)) return KernelVariant::SSE2;
  }
  return KernelVariant::Scalar;
#endif
}

bool variant_supported(KernelVariant variant) noexcept {
#if defined(RTW_FORCE_SCALAR_BUILD)
  return variant == KernelVariant::Scalar;
#else
  return cpu_supports(variant);
#endif
}

KernelVariant dispatch_variant() noexcept {
  static const KernelVariant variant =
      detect_variant(std::getenv("RTW_FORCE_SCALAR"));
  return variant;
}

}  // namespace rtw::core
