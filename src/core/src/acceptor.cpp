#include "rtw/core/acceptor.hpp"

#include <algorithm>

namespace rtw::core {

RunResult run_acceptor(RealTimeAlgorithm& algorithm, const TimedWord& word,
                       const RunOptions& options) {
  algorithm.reset();
  InputTape in(word);
  OutputTape out(options.accept_symbol);
  RunResult result;

  Tick now = 0;
  while (now <= options.horizon) {
    const std::vector<TimedSymbol> arrivals = in.take_available(now);
    result.symbols_consumed += arrivals.size();
    StepContext ctx{now, std::span<const TimedSymbol>(arrivals), out};
    algorithm.on_tick(ctx);
    result.ticks = now;

    if (const auto lock = algorithm.locked()) {
      result.accepted = *lock;
      result.exact = true;
      break;
    }

    // Advance virtual time.  When the algorithm is unlocked and nothing is
    // pending before the next arrival, jump straight to it -- Definition
    // 3.3's semantics put all timing constraints on the input, so idle time
    // is unobservable to the algorithm.
    Tick next = now + 1;
    if (options.fast_forward) {
      if (const auto arrival = in.next_arrival(); arrival && *arrival > next)
        next = *arrival;
      else if (!arrival && in.exhausted())
        next = now + 1;  // finite word drained; keep single-stepping so the
                         // algorithm can finish trailing work
    }
    now = next;
  }

  result.f_count = out.accept_count();
  result.first_f = out.first_accept();

  if (!result.exact) {
    // Heuristic at the horizon: treat "f written within the trailing
    // quarter of the run" as evidence of infinitely many f's.
    const Tick window_start =
        options.horizon - std::min<Tick>(options.horizon / 4, options.horizon);
    result.accepted =
        out.last_accept().has_value() && *out.last_accept() >= window_start;
  }
  return result;
}

}  // namespace rtw::core
