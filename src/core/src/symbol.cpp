#include "rtw/core/symbol.hpp"

#include <mutex>
#include <unordered_map>

#include "rtw/core/error.hpp"

namespace rtw::core {

namespace {

/// Process-wide marker intern table.  Names are stored once; Symbol carries
/// only the index.  Guarded by a mutex: interning is rare (markers are
/// created at startup) while lookups by id are lock-free via the stable
/// deque-like storage below.
class MarkerRegistry {
public:
  static MarkerRegistry& instance() {
    static MarkerRegistry registry;
    return registry;
  }

  std::uint64_t intern(std::string_view name) {
    std::lock_guard lock(mutex_);
    if (auto it = ids_.find(std::string(name)); it != ids_.end())
      return it->second;
    names_.push_back(std::string(name));
    const std::uint64_t id = names_.size() - 1;
    ids_.emplace(names_.back(), id);
    return id;
  }

  std::string_view name(std::uint64_t id) const {
    std::lock_guard lock(mutex_);
    return names_.at(id);
  }

private:
  mutable std::mutex mutex_;
  // Names never move after insertion (vector of std::string: the string
  // buffers are heap-allocated and stable even if the vector reallocates,
  // but the map keys are separate copies anyway).
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint64_t> ids_;
};

}  // namespace

Symbol Symbol::marker(std::string_view name) {
  return Symbol(Kind::Marker, MarkerRegistry::instance().intern(name));
}

char Symbol::as_char() const {
  if (!is_char()) throw ModelError("Symbol::as_char on non-char symbol");
  return static_cast<char>(value_);
}

std::uint64_t Symbol::as_nat() const {
  if (!is_nat()) throw ModelError("Symbol::as_nat on non-nat symbol");
  return value_;
}

std::string_view Symbol::name() const {
  if (!is_marker()) throw ModelError("Symbol::name on non-marker symbol");
  return MarkerRegistry::instance().name(value_);
}

std::string Symbol::to_string() const {
  switch (kind_) {
    case Kind::Char:
      return std::string(1, static_cast<char>(value_));
    case Kind::Nat:
      return std::to_string(value_);
    case Kind::Marker:
      return "<" + std::string(name()) + ">";
  }
  return "?";
}

namespace marks {
Symbol accept() { return Symbol::marker("f"); }
Symbol waiting() { return Symbol::marker("w"); }
Symbol deadline() { return Symbol::marker("d"); }
Symbol dollar() { return Symbol::marker("$"); }
Symbol at() { return Symbol::marker("@"); }
Symbol arrival() { return Symbol::marker("c"); }
}  // namespace marks

std::vector<Symbol> symbols_of(std::string_view text) {
  std::vector<Symbol> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(Symbol::chr(c));
  return out;
}

std::string to_string(const std::vector<Symbol>& symbols) {
  std::string out;
  for (const auto& s : symbols) out += s.to_string();
  return out;
}

}  // namespace rtw::core
