#include "rtw/core/concat.hpp"

#include <limits>
#include <memory>
#include <mutex>

#include "rtw/core/error.hpp"

namespace rtw::core {

namespace {

/// Shared lazy state of a two-way merge.  The merge is advanced on demand
/// and its outputs cached; TimedWord generator functions capture this state
/// by shared_ptr.  A mutex keeps the state safe if the resulting word is
/// shared across threads (the parallel runtime does this).
struct MergeState {
  TimedWord::Cursor first;   // sequential readers: the merge only ever
  TimedWord::Cursor second;  // walks each operand forward
  std::vector<TimedSymbol> out;
  std::mutex mutex;

  MergeState(const TimedWord& a, const TimedWord& b)
      : first(a.cursor()), second(b.cursor()) {}

  TimedSymbol element(std::uint64_t k) {
    std::lock_guard lock(mutex);
    while (out.size() <= k) {
      if (first.done() && second.done())
        throw ModelError("concat: index past end of merged finite word");
      if (first.done()) {
        out.push_back(*second.next());
      } else if (second.done()) {
        out.push_back(*first.next());
      } else {
        const TimedSymbol a = first.current();
        const TimedSymbol b = second.current();
        // Definition 3.5 item 3: on equal timestamps the first operand's
        // symbol precedes, hence <= (not <).
        if (a.time <= b.time) {
          out.push_back(a);
          first.advance();
        } else {
          out.push_back(b);
          second.advance();
        }
      }
    }
    return out[k];
  }
};

TimedWord merge_finite(const TimedWord& a, const TimedWord& b) {
  std::vector<TimedSymbol> out;
  out.reserve(*a.length() + *b.length());
  auto ca = a.cursor();
  auto cb = b.cursor();
  while (!ca.done() && !cb.done()) {
    const TimedSymbol x = ca.current();
    const TimedSymbol y = cb.current();
    if (x.time <= y.time) {
      out.push_back(x);
      ca.advance();
    } else {
      out.push_back(y);
      cb.advance();
    }
  }
  while (auto x = ca.next()) out.push_back(*x);
  while (auto y = cb.next()) out.push_back(*y);
  return TimedWord::finite(std::move(out));
}

}  // namespace

TimedWord concat(const TimedWord& first, const TimedWord& second) {
  // Merging assumes each operand is individually monotone; generator
  // operands are trusted (they carry their own certificates).
  if (first.length() && second.length()) return merge_finite(first, second);

  auto state = std::make_shared<MergeState>(first, second);
  GeneratorTraits traits;
  traits.monotone_proven = holds(first.monotone()) && holds(second.monotone());
  // Progress of the merge follows from progress of the infinite operand(s):
  // every element of the merge at index k >= i+j is drawn from one of the
  // operands at an index that also tends to infinity.
  const bool first_ok =
      first.length().has_value() ||
      first.well_behaved() == Certificate::Proven;
  const bool second_ok =
      second.length().has_value() ||
      second.well_behaved() == Certificate::Proven;
  traits.progress_proven = first_ok && second_ok &&
                           (first.infinite() || second.infinite());
  return TimedWord::generator(
      [state](std::uint64_t k) { return state->element(k); }, traits,
      "concat");
}

TimedWord concat_all(const std::vector<TimedWord>& words) {
  TimedWord acc;  // empty
  for (const auto& w : words) acc = concat(acc, w);
  return acc;
}

Certificate is_concatenation(const TimedWord& merged, const TimedWord& first,
                             const TimedWord& second, std::uint64_t horizon) {
  const bool all_finite = merged.length() && first.length() && second.length();
  if (all_finite &&
      *merged.length() != *first.length() + *second.length())
    return Certificate::Refuted;

  // Walk the merged word, matching each element against the next unmatched
  // element of one operand.  This simultaneously checks item 1 (both are
  // subsequences, nothing extra), item 3 (ties resolved first-first), and
  // monotonicity; item 2 (block contiguity) follows because we insist on the
  // canonical stable-merge order.
  Tick prev = 0;
  const auto mlen = merged.length();
  const std::uint64_t end =
      mlen ? std::min<std::uint64_t>(*mlen, horizon) : horizon;
  auto cm = merged.cursor();
  auto ca = first.cursor();
  auto cb = second.cursor();
  for (std::uint64_t k = 0; k < end; ++k, cm.advance()) {
    const TimedSymbol m = cm.current();
    if (k > 0 && m.time < prev) return Certificate::Refuted;
    prev = m.time;
    if (ca.done() && cb.done()) return Certificate::Refuted;
    TimedSymbol expected;
    if (!ca.done() && !cb.done()) {
      const TimedSymbol a = ca.current();
      const TimedSymbol b = cb.current();
      expected = (a.time <= b.time) ? a : b;
      (a.time <= b.time ? ca : cb).advance();
    } else {
      expected = *(ca.done() ? cb : ca).next();
    }
    if (!(expected == m)) return Certificate::Refuted;
  }
  if (all_finite && end == *mlen) return Certificate::Proven;
  return Certificate::HoldsToHorizon;
}

TimedWord power_word(const TimedWord& member, std::uint64_t k) {
  if (k == 0)
    throw ModelError(
        "power_word: L^0 is the empty language (Definition 3.6); no word");
  TimedWord acc = member;
  for (std::uint64_t n = 1; n < k; ++n) acc = concat(acc, member);
  return acc;
}

}  // namespace rtw::core
