#include "rtw/core/transform.hpp"

#include "rtw/core/error.hpp"

namespace rtw::core {

TimedWord shift(const TimedWord& word, Tick delta) {
  if (word.length()) {
    auto symbols = word.prefix(*word.length());
    for (auto& ts : symbols) ts.time += delta;
    return TimedWord::finite(std::move(symbols));
  }
  if (word.is_lasso_rep()) {
    auto prefix = word.lasso_prefix();
    auto cycle = word.lasso_cycle();
    for (auto& ts : prefix) ts.time += delta;
    for (auto& ts : cycle) ts.time += delta;
    return TimedWord::lasso(std::move(prefix), std::move(cycle),
                            word.lasso_period());
  }
  GeneratorTraits traits;
  traits.monotone_proven = word.monotone() == Certificate::Proven;
  traits.progress_proven = word.well_behaved() == Certificate::Proven;
  return TimedWord::generator(
      [word, delta](std::uint64_t i) {
        TimedSymbol ts = word.at(i);
        ts.time += delta;
        return ts;
      },
      traits, "shift");
}

TimedWord filter(const TimedWord& word,
                 const std::function<bool(const TimedSymbol&)>& keep) {
  const auto len = word.length();
  if (!len)
    throw ModelError("filter: infinite words cannot be filtered totally");
  std::vector<TimedSymbol> out;
  for (std::uint64_t i = 0; i < *len; ++i) {
    const TimedSymbol ts = word.at(i);
    if (keep(ts)) out.push_back(ts);
  }
  return TimedWord::finite(std::move(out));
}

TimedWord take_until(const TimedWord& word, Tick cutoff,
                     std::uint64_t max_symbols) {
  std::vector<TimedSymbol> out;
  const auto len = word.length();
  const std::uint64_t end =
      len ? std::min<std::uint64_t>(*len, max_symbols) : max_symbols;
  for (std::uint64_t i = 0; i < end; ++i) {
    const TimedSymbol ts = word.at(i);
    if (ts.time > cutoff) break;
    out.push_back(ts);
  }
  return TimedWord::finite(std::move(out));
}

TimedWord map_symbols(const TimedWord& word,
                      const std::function<Symbol(Symbol)>& map) {
  if (word.length()) {
    auto symbols = word.prefix(*word.length());
    for (auto& ts : symbols) ts.sym = map(ts.sym);
    return TimedWord::finite(std::move(symbols));
  }
  if (word.is_lasso_rep()) {
    auto prefix = word.lasso_prefix();
    auto cycle = word.lasso_cycle();
    for (auto& ts : prefix) ts.sym = map(ts.sym);
    for (auto& ts : cycle) ts.sym = map(ts.sym);
    return TimedWord::lasso(std::move(prefix), std::move(cycle),
                            word.lasso_period());
  }
  GeneratorTraits traits;
  traits.monotone_proven = word.monotone() == Certificate::Proven;
  traits.progress_proven = word.well_behaved() == Certificate::Proven;
  return TimedWord::generator(
      [word, map](std::uint64_t i) {
        TimedSymbol ts = word.at(i);
        ts.sym = map(ts.sym);
        return ts;
      },
      traits, "map");
}

}  // namespace rtw::core
