#include "rtw/core/serialize.hpp"

#include <cctype>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::core {

namespace {

void emit_symbol(std::ostringstream& out, Symbol s) {
  switch (s.kind()) {
    case Symbol::Kind::Char: {
      const char c = s.as_char();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '<' ||
          c == '\'' || c == '@' || c == '|' || c == ' ')
        out << '\'' << c << '\'';
      else
        out << c;
      return;
    }
    case Symbol::Kind::Nat:
      out << s.as_nat();
      return;
    case Symbol::Kind::Marker:
      out << '<' << s.name() << '>';
      return;
  }
}

void emit_elements(std::ostringstream& out,
                   const std::vector<TimedSymbol>& elements) {
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) out << ' ';
    emit_symbol(out, elements[i].sym);
    out << '@' << elements[i].time;
  }
}

/// Token scanner over the serialized element list.
class Scanner {
public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool done() {
    skip_spaces();
    return pos_ >= text_.size();
  }

  TimedSymbol next() {
    skip_spaces();
    if (pos_ >= text_.size()) throw ModelError("parse_word: unexpected end");
    Symbol sym = scan_symbol();
    if (pos_ >= text_.size() || text_[pos_] != '@')
      throw ModelError("parse_word: expected @time");
    ++pos_;
    return {sym, scan_number()};
  }

private:
  void skip_spaces() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  Symbol scan_symbol() {
    const char c = text_[pos_];
    if (c == '\'') {
      if (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '\'')
        throw ModelError("parse_word: bad quoted character");
      const char payload = text_[pos_ + 1];
      pos_ += 3;
      return Symbol::chr(payload);
    }
    if (c == '<') {
      const auto close = text_.find('>', pos_);
      if (close == std::string_view::npos)
        throw ModelError("parse_word: unterminated marker");
      const auto name = text_.substr(pos_ + 1, close - pos_ - 1);
      pos_ = close + 1;
      return Symbol::marker(std::string(name));
    }
    if (std::isdigit(static_cast<unsigned char>(c)))
      return Symbol::nat(scan_number());
    ++pos_;
    return Symbol::chr(c);
  }

  Tick scan_number() {
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      throw ModelError("parse_word: expected a number");
    Tick value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      value = value * 10 + static_cast<Tick>(text_[pos_++] - '0');
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<TimedSymbol> parse_elements(std::string_view text) {
  Scanner scanner(text);
  std::vector<TimedSymbol> out;
  while (!scanner.done()) out.push_back(scanner.next());
  return out;
}

}  // namespace

std::string serialize_elements(const std::vector<TimedSymbol>& elements) {
  std::ostringstream out;
  emit_elements(out, elements);
  return out.str();
}

ParsedPrefix parse_prefix(std::string_view text, std::size_t max_symbols,
                          bool final_chunk) {
  ParsedPrefix out;
  std::size_t pos = 0;
  while (out.symbols.size() < max_symbols) {
    // Separator spaces are unambiguous: consume them eagerly so the resume
    // point always sits on the start of an element.
    while (pos < text.size() && text[pos] == ' ') ++pos;
    out.consumed = pos;
    if (pos >= text.size()) break;

    // --- symbol ---------------------------------------------------------
    std::size_t p = pos;
    Symbol sym = Symbol::chr('?');
    const char c = text[p];
    if (c == '\'') {
      if (p + 2 >= text.size()) {
        if (!final_chunk) break;  // quote may complete in the next chunk
        break;                    // final: malformed tail, stop unconsumed
      }
      if (text[p + 2] != '\'') break;  // malformed in any mode
      sym = Symbol::chr(text[p + 1]);
      p += 3;
    } else if (c == '<') {
      const auto close = text.find('>', p);
      if (close == std::string_view::npos) break;  // partial or malformed
      sym = Symbol::marker(std::string(text.substr(p + 1, close - p - 1)));
      p = close + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      while (p < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[p])))
        value = value * 10 + static_cast<std::uint64_t>(text[p++] - '0');
      if (p >= text.size()) break;  // `7` needs its `@` (or more digits)
      sym = Symbol::nat(value);
    } else {
      sym = Symbol::chr(c);
      ++p;
    }

    // --- @time ----------------------------------------------------------
    if (p >= text.size()) break;        // `a` with no `@` yet
    if (text[p] != '@') break;          // malformed in any mode
    ++p;
    if (p >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[p])))
      break;  // `a@` or `a@x`: partial or malformed
    Tick time = 0;
    while (p < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[p])))
      time = time * 10 + static_cast<Tick>(text[p++] - '0');
    if (p >= text.size() && !final_chunk) break;  // `a@3`: 3 may grow to 35

    out.symbols.push_back({sym, time});
    pos = p;
    out.consumed = pos;
  }
  return out;
}

std::string serialize(const TimedWord& word) {
  std::ostringstream out;
  if (word.length()) {
    out << "finite:";
    const auto elements = word.prefix(*word.length());
    if (!elements.empty()) out << ' ';
    emit_elements(out, elements);
    return out.str();
  }
  if (word.is_lasso_rep()) {
    out << "lasso(period=" << word.lasso_period() << "): ";
    emit_elements(out, word.lasso_prefix());
    out << " | ";
    emit_elements(out, word.lasso_cycle());
    return out.str();
  }
  throw ModelError(
      "serialize: generator words have no finite description (snapshot "
      "with take_until first)");
}

TimedWord parse_word(const std::string& text) {
  if (text.rfind("finite:", 0) == 0)
    return TimedWord::finite(parse_elements(
        std::string_view(text).substr(std::string_view("finite:").size())));
  const std::string_view lasso_prefix = "lasso(period=";
  if (text.rfind(std::string(lasso_prefix), 0) == 0) {
    const auto close = text.find("):");
    if (close == std::string::npos)
      throw ModelError("parse_word: malformed lasso header");
    Tick period = 0;
    for (std::size_t i = lasso_prefix.size(); i < close; ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i])))
        throw ModelError("parse_word: bad period");
      period = period * 10 + static_cast<Tick>(text[i] - '0');
    }
    const auto bar = text.find(" | ", close);
    if (bar == std::string::npos)
      throw ModelError("parse_word: lasso needs a ' | ' separator");
    const auto prefix =
        parse_elements(std::string_view(text).substr(close + 2,
                                                     bar - close - 2));
    const auto cycle = parse_elements(std::string_view(text).substr(bar + 3));
    return TimedWord::lasso(prefix, cycle, period);
  }
  throw ModelError("parse_word: unknown word kind");
}

}  // namespace rtw::core
