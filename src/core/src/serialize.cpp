#include "rtw/core/serialize.hpp"

#include <cctype>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::core {

namespace {

void emit_symbol(std::ostringstream& out, Symbol s) {
  switch (s.kind()) {
    case Symbol::Kind::Char: {
      const char c = s.as_char();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '<' ||
          c == '\'' || c == '@' || c == '|' || c == ' ')
        out << '\'' << c << '\'';
      else
        out << c;
      return;
    }
    case Symbol::Kind::Nat:
      out << s.as_nat();
      return;
    case Symbol::Kind::Marker:
      out << '<' << s.name() << '>';
      return;
  }
}

void emit_elements(std::ostringstream& out,
                   const std::vector<TimedSymbol>& elements) {
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) out << ' ';
    emit_symbol(out, elements[i].sym);
    out << '@' << elements[i].time;
  }
}

/// Token scanner over the serialized element list.
class Scanner {
public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool done() {
    skip_spaces();
    return pos_ >= text_.size();
  }

  TimedSymbol next() {
    skip_spaces();
    if (pos_ >= text_.size()) throw ModelError("parse_word: unexpected end");
    Symbol sym = scan_symbol();
    if (pos_ >= text_.size() || text_[pos_] != '@')
      throw ModelError("parse_word: expected @time");
    ++pos_;
    return {sym, scan_number()};
  }

private:
  void skip_spaces() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  Symbol scan_symbol() {
    const char c = text_[pos_];
    if (c == '\'') {
      if (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '\'')
        throw ModelError("parse_word: bad quoted character");
      const char payload = text_[pos_ + 1];
      pos_ += 3;
      return Symbol::chr(payload);
    }
    if (c == '<') {
      const auto close = text_.find('>', pos_);
      if (close == std::string_view::npos)
        throw ModelError("parse_word: unterminated marker");
      const auto name = text_.substr(pos_ + 1, close - pos_ - 1);
      pos_ = close + 1;
      return Symbol::marker(std::string(name));
    }
    if (std::isdigit(static_cast<unsigned char>(c)))
      return Symbol::nat(scan_number());
    ++pos_;
    return Symbol::chr(c);
  }

  Tick scan_number() {
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      throw ModelError("parse_word: expected a number");
    Tick value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      value = value * 10 + static_cast<Tick>(text_[pos_++] - '0');
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<TimedSymbol> parse_elements(std::string_view text) {
  Scanner scanner(text);
  std::vector<TimedSymbol> out;
  while (!scanner.done()) out.push_back(scanner.next());
  return out;
}

}  // namespace

std::string serialize(const TimedWord& word) {
  std::ostringstream out;
  if (word.length()) {
    out << "finite:";
    const auto elements = word.prefix(*word.length());
    if (!elements.empty()) out << ' ';
    emit_elements(out, elements);
    return out.str();
  }
  if (word.is_lasso_rep()) {
    out << "lasso(period=" << word.lasso_period() << "): ";
    emit_elements(out, word.lasso_prefix());
    out << " | ";
    emit_elements(out, word.lasso_cycle());
    return out.str();
  }
  throw ModelError(
      "serialize: generator words have no finite description (snapshot "
      "with take_until first)");
}

TimedWord parse_word(const std::string& text) {
  if (text.rfind("finite:", 0) == 0)
    return TimedWord::finite(parse_elements(
        std::string_view(text).substr(std::string_view("finite:").size())));
  const std::string_view lasso_prefix = "lasso(period=";
  if (text.rfind(std::string(lasso_prefix), 0) == 0) {
    const auto close = text.find("):");
    if (close == std::string::npos)
      throw ModelError("parse_word: malformed lasso header");
    Tick period = 0;
    for (std::size_t i = lasso_prefix.size(); i < close; ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i])))
        throw ModelError("parse_word: bad period");
      period = period * 10 + static_cast<Tick>(text[i] - '0');
    }
    const auto bar = text.find(" | ", close);
    if (bar == std::string::npos)
      throw ModelError("parse_word: lasso needs a ' | ' separator");
    const auto prefix =
        parse_elements(std::string_view(text).substr(close + 2,
                                                     bar - close - 2));
    const auto cycle = parse_elements(std::string_view(text).substr(bar + 3));
    return TimedWord::lasso(prefix, cycle, period);
  }
  throw ModelError("parse_word: unknown word kind");
}

}  // namespace rtw::core
