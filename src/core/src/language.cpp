#include "rtw/core/language.hpp"

#include <utility>

#include "rtw/core/error.hpp"

namespace rtw::core {

TimedLanguage::TimedLanguage(std::string name, Membership member)
    : name_(std::move(name)), member_(std::move(member)) {
  if (!member_) throw ModelError("TimedLanguage: null membership predicate");
}

TimedLanguage::TimedLanguage(std::string name, Membership member,
                             Sampler sampler)
    : name_(std::move(name)),
      member_(std::move(member)),
      sampler_(std::move(sampler)) {
  if (!member_) throw ModelError("TimedLanguage: null membership predicate");
}

TimedWord TimedLanguage::sample(std::uint64_t i) const {
  if (!sampler_) throw ModelError("TimedLanguage::sample: no sampler");
  return sampler_(i);
}

TimedLanguage operator|(const TimedLanguage& a, const TimedLanguage& b) {
  auto member = [ma = a.member_, mb = b.member_](const TimedWord& w) {
    return ma(w) || mb(w);
  };
  if (a.sampler_ && b.sampler_) {
    auto sampler = [sa = a.sampler_, sb = b.sampler_](std::uint64_t i) {
      return (i % 2 == 0) ? sa(i / 2) : sb(i / 2);
    };
    return TimedLanguage("(" + a.name_ + " | " + b.name_ + ")",
                         std::move(member), std::move(sampler));
  }
  return TimedLanguage("(" + a.name_ + " | " + b.name_ + ")",
                       std::move(member));
}

TimedLanguage operator&(const TimedLanguage& a, const TimedLanguage& b) {
  auto member = [ma = a.member_, mb = b.member_](const TimedWord& w) {
    return ma(w) && mb(w);
  };
  return TimedLanguage("(" + a.name_ + " & " + b.name_ + ")",
                       std::move(member));
}

TimedLanguage operator~(const TimedLanguage& a) {
  auto member = [ma = a.member_](const TimedWord& w) { return !ma(w); };
  return TimedLanguage("~" + a.name_, std::move(member));
}

TimedLanguage concat(const TimedLanguage& a, const TimedLanguage& b) {
  if (!a.sampler_ || !b.sampler_)
    throw ModelError("concat(TimedLanguage): both operands need samplers");
  // Diagonal pairing (i -> (i, i)) keeps sampling deterministic while still
  // exercising matched growth of both factors.
  auto sampler = [sa = a.sampler_, sb = b.sampler_](std::uint64_t i) {
    return concat(sa(i), sb(i));
  };
  auto member = [sampler](const TimedWord&) {
    // Merge-decomposition membership is not decidable from predicates alone;
    // the concatenated language is generation-only (see header).
    return false;
  };
  return TimedLanguage(a.name_ + " " + b.name_, std::move(member),
                       std::move(sampler));
}

TimedLanguage TimedLanguage::kleene(std::uint64_t max_power) const {
  if (!sampler_) throw ModelError("kleene: language needs a sampler");
  if (max_power == 0) throw ModelError("kleene: max_power must be positive");
  auto base = sampler_;
  auto sampler = [base, max_power](std::uint64_t i) {
    const std::uint64_t k = 1 + i % max_power;
    TimedWord acc = base(i);
    for (std::uint64_t n = 1; n < k; ++n) acc = concat(acc, base(i + n));
    return acc;
  };
  auto member = [](const TimedWord&) { return false; };
  return TimedLanguage(name_ + "*", std::move(member), std::move(sampler));
}

bool samples_self_consistent(const TimedLanguage& language,
                             std::uint64_t count, std::uint64_t horizon) {
  if (!language.has_sampler()) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const TimedWord w = language.sample(i);
    if (!language.contains(w)) return false;
    if (!holds(w.well_behaved(horizon))) return false;
  }
  return true;
}

}  // namespace rtw::core
