#pragma once
/// \file wire.hpp
/// Length-prefixed binary frame codec for the serving layer.
///
/// A session's life on the wire is a frame sequence:
///
///       [u32le len][u64le session][u8 op][body ...]
///       `--------'  `--------------------------- len bytes ------'
///
///   op 1  Open            body = profile string (acceptor selector,
///                         handed to the caller's factory verbatim)
///   op 2  Feed            body = core::serialize_elements text
///                         ("a@3 <m>@5 7@9 ...")
///   op 3  Close           stream complete (StreamEnd::EndOfWord)
///   op 4  CloseTruncated  stream cut at the horizon (StreamEnd::Truncated)
///   op 5  FeedBatch       body = serialize_elements text, decoded only as
///                         a complete frame: the whole run surfaces as ONE
///                         Symbols event, so the serving layer admits it
///                         as one all-or-nothing batched ring slot
///   op 6  OpenPri         body = [u8 priority][profile string]; an Open
///                         carrying an admission priority for the
///                         adaptive-shedding ingress
///
/// Protocol v1 (this PR) adds a version handshake and the server->client
/// notification plane.  Ops 1-6 are byte-identical to the v0 wiring; a
/// client that never sends Hello speaks v0 and simply receives no
/// notifications.
///
///   op 7  Hello           client->server, body = [u8 min][u8 max]: the
///                         closed version range the client can speak
///   op 8  HelloAck        server->client, body = [u8 version]: the
///                         version the server selected (today: 1)
///   op 9  Verdict         server->client, body = [u8 verdict][u8 exact]
///                         [u8 evicted][u64le fed][u64le stale]: the
///                         session's settled acceptance verdict
///                         (core::Verdict) the moment the stream finishes
///   op 10 ShedNotice      server->client, body = [u8 admit][u8 reason]
///                         [u64le symbols]: an admission refusal surfaced
///                         to the client that sent the refused frame
///   op 11 SubmitQuery     body = timed-pattern query text (cer/parser.hpp
///                         grammar); opens the session with a compiled
///                         per-session acceptor instead of a named
///                         profile.  The decoder parses the query during
///                         frame validation: a syntax error is a sticky
///                         MalformedBody, exactly like a bad Feed body.
///                         Structural blow-ups (CompileLimits) are not a
///                         framing matter and surface as a refused open
///                         (ShedNotice) instead.
///
/// The payload is textual on purpose: it reuses core/serialize.hpp, so a
/// frame body is greppable in a capture and replay files double as fixture
/// text.  The *codec* is still binary -- the length prefix makes framing
/// O(1) and splittable at arbitrary byte boundaries.
///
/// Decoder is fully incremental: push() accepts any byte-chunking
/// (including mid-header and mid-element splits) and next() surfaces
/// events as soon as they are decodable.  A Feed frame does not need to
/// be complete before its symbols start flowing: the decoder runs
/// core::parse_prefix over the received part of the body
/// (final_chunk = false) and emits partial Symbols events, holding back
/// only the element that might still grow ("a@3" could become "a@35").
/// This is the satellite fix for the old full-reparse-per-split behavior.
///
/// apply_faults() subjects an encoded frame sequence to a
/// sim::FaultPlan at *frame* granularity (drop / duplicate / delay as
/// reordering) -- the soak harness feeds the mangled stream through a
/// Decoder into the SessionManager and checks verdicts never diverge.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/core/serialize.hpp"
#include "rtw/core/timed_word.hpp"
#include "rtw/sim/fault.hpp"
#include "rtw/svc/admit.hpp"
#include "rtw/svc/ring.hpp"

namespace rtw::svc {

using SessionId = std::uint64_t;

/// Frame opcodes (the u8 after the session id).
enum class Op : std::uint8_t {
  Open = 1,
  Feed = 2,
  Close = 3,
  CloseTruncated = 4,
  FeedBatch = 5,
  OpenPri = 6,
  Hello = 7,
  HelloAck = 8,
  Verdict = 9,
  ShedNotice = 10,
  SubmitQuery = 11,
};

std::string to_string(Op op);

/// The protocol version this build speaks.  Version 0 is the pre-Hello
/// frame set (ops 1-6); version 1 adds the handshake and notifications.
inline constexpr std::uint8_t kWireVersion = 1;

/// Frame size cap the Decoder enforces by default (a corrupt length
/// prefix must not look like a 4 GiB allocation request).
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

// ------------------------------------------------------------ encoding

/// Emits op 1 for Priority::Normal, op 6 otherwise (so streams that never
/// touch priorities stay byte-identical to the PR-5 format).
std::string encode_open(SessionId session, std::string_view profile = {},
                        Priority priority = Priority::Normal);
std::string encode_feed(SessionId session,
                        const std::vector<core::TimedSymbol>& symbols);
/// Op 5: the run decodes as one event and admits as one ring slot.
std::string encode_feed_batch(SessionId session,
                              const std::vector<core::TimedSymbol>& symbols);
std::string encode_close(SessionId session,
                         core::StreamEnd end = core::StreamEnd::EndOfWord);
/// Op 7: client hello advertising the closed version range [min, max].
std::string encode_hello(std::uint8_t min_version = kWireVersion,
                         std::uint8_t max_version = kWireVersion);
/// Op 8: the server's selected version.
std::string encode_hello_ack(std::uint8_t version);
/// Op 9: a finished session's settled verdict (session id ties the
/// notification back to the client's Open).
std::string encode_verdict(SessionId session, core::Verdict verdict,
                           bool exact, bool evicted, std::uint64_t fed,
                           std::uint64_t stale);
/// Op 10: an admission refusal, surfaced to the client that sent the
/// refused frame.  `symbols` is the size of the refused run.
std::string encode_shed(SessionId session, AdmitResult admit,
                        std::uint64_t symbols);
/// Op 11: open a session evaluating an inline timed-pattern query.
std::string encode_submit_query(SessionId session, std::string_view query);

// ------------------------------------------------------------ decoding

/// One decoded unit of the stream.  A single Feed frame may surface as
/// several Symbols events (partial-body decoding); their concatenation is
/// exactly the frame's element list.  A FeedBatch frame always surfaces
/// as exactly one Symbols event.
struct WireEvent {
  enum class Kind : std::uint8_t {
    Open,
    Symbols,
    Close,
    Hello,     ///< op 7: client version advertisement
    HelloAck,  ///< op 8: server version selection
    Verdict,   ///< op 9: settled session verdict notification
    Shed,      ///< op 10: admission-refusal notification
    SubmitQuery,  ///< op 11: open with an inline query (text in `profile`)
  };

  Kind kind = Kind::Symbols;
  SessionId session = 0;
  core::StreamEnd end = core::StreamEnd::EndOfWord;  ///< Close only
  Priority priority = Priority::Normal;              ///< Open only
  std::string profile;  ///< Open: profile; SubmitQuery: query text
  std::vector<core::TimedSymbol> symbols;            ///< Symbols only

  // Protocol-plane payloads (v1).
  std::uint8_t version_min = 0;  ///< Hello
  std::uint8_t version_max = 0;  ///< Hello
  std::uint8_t version = 0;      ///< HelloAck
  core::Verdict verdict = core::Verdict::Undetermined;  ///< Verdict
  bool exact = false;            ///< Verdict: acceptance was exactly timed
  bool evicted = false;          ///< Verdict: closed by idle eviction
  std::uint64_t fed = 0;         ///< Verdict: symbols the session consumed
  std::uint64_t stale = 0;       ///< Verdict: symbols the time filter dropped
  AdmitResult admit;             ///< Shed: the refusal and its reason
  std::uint64_t shed_symbols = 0;  ///< Shed: size of the refused run
};

/// Typed decode failure, exposed alongside the human-readable error().
enum class DecodeError : std::uint8_t {
  None,           ///< stream healthy
  ShortFrame,     ///< length prefix smaller than the payload header
  Oversized,      ///< length prefix exceeds the frame size cap
  UnknownOp,      ///< opcode outside the known set (typed rejection)
  MalformedBody,  ///< body failed its op-specific validation
};

std::string to_string(DecodeError e);

/// Incremental frame decoder.  Not thread-safe (one per byte stream).
/// Errors (bad opcode, oversized or undersized length, malformed feed
/// body) are sticky: the decoder refuses further input, because a framing
/// error means byte alignment is lost for good.
class Decoder {
public:
  explicit Decoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes (any chunking) and decodes as far as possible.
  void push(std::string_view bytes);

  /// Pops the next decoded event; false when none is ready yet.
  bool next(WireEvent& out);

  bool ok() const noexcept { return error_code_ == DecodeError::None; }
  const std::string& error() const noexcept { return error_; }
  /// The typed form of error(); DecodeError::None while ok().
  DecodeError error_code() const noexcept { return error_code_; }
  /// Complete frames decoded so far (a multi-event Feed counts once).
  std::uint64_t frames() const noexcept { return frames_; }

private:
  void decode();
  void fail(DecodeError code, std::string message);

  std::size_t max_frame_bytes_;
  std::string buffer_;        ///< undecoded bytes
  std::size_t scan_ = 0;      ///< consumed prefix of buffer_
  std::deque<WireEvent> ready_;
  std::string error_;
  DecodeError error_code_ = DecodeError::None;
  std::uint64_t frames_ = 0;

  // Streaming-body state: set while inside a Feed frame whose body has
  // not fully arrived.
  bool in_feed_ = false;
  SessionId feed_session_ = 0;
  std::size_t feed_remaining_ = 0;  ///< body bytes not yet consumed
};

/// Runs an encoded frame sequence through a fault plan at frame
/// granularity.  Deterministic: decisions are drawn from
/// sim::FaultInjector keyed on the frame index, so the same (frames,
/// plan) pair always yields the same mangled sequence.  Drop removes the
/// frame; duplicate emits an extra copy; delay pushes the frame later in
/// the sequence by the drawn number of slots (reordering it past
/// neighbors, which is how the stale-symbol filter in svc::Session gets
/// exercised).  `counters`, when given, receives the injection tally.
std::vector<std::string> apply_faults(const std::vector<std::string>& frames,
                                      const sim::FaultPlan& plan,
                                      sim::FaultCounters* counters = nullptr);

}  // namespace rtw::svc
