#pragma once
/// \file server.hpp
/// Transport-agnostic serving facade: byte streams in, byte streams out.
///
/// `Server` is the redesigned public entry point of the serving layer.
/// It owns a SessionManager and speaks the wire protocol, but knows
/// nothing about sockets: a transport (net::TcpServer, a test harness, a
/// future UDS/QUIC front-end) hands it byte chunks per *connection* and
/// drains the bytes the server wants written back.  Everything between --
/// incremental decoding, session multiplexing, admission, verdict
/// routing -- is the server's business, so every transport gets identical
/// semantics and the hermetic tests can drive the facade without a single
/// syscall.
///
/// Connection model:
///
///   transport          Server / Connection               SessionManager
///   ---------          -------------------               --------------
///   bytes arrive  -->  Decoder -> WireEvents
///                      Open: client id -> fresh global id,
///                            owner registered         --> open()
///                      Symbols: id remapped           --> feed_batch()
///                      Close: id remapped             --> close()
///                      Hello: version negotiated,
///                             HelloAck queued on the output buffer
///   writable      <--  take_output(): HelloAck / Verdict / ShedNotice
///                      frames, byte-exact wire format
///                                                     <-- report sink:
///                      finished sessions route back to their owning
///                      connection as Verdict frames (client-side ids)
///
/// Session ids on the wire are *client-chosen*; two connections may both
/// open "session 1".  The connection remaps every client id to a fresh
/// global id before it touches the manager, so wire sessions never
/// collide with each other or with in-process open() callers.
///
/// Thread model: a connection's input plane (on_bytes / finish_input /
/// retry_pending) is single-threaded -- the transport's event loop.  The
/// output buffer is also fed by shard workers delivering verdicts, so it
/// is mutex-guarded; take_output() may race deliver_report() safely.
/// Lock order is Server::mutex_ before Connection::mutex_ (never
/// inverted: the input plane takes the server mutex only between
/// connection-mutex critical sections).
///
/// Fault tolerance mirrors the manager: duplicate Opens, Closes for
/// unknown ids and Symbols for never-opened sessions are counted and
/// ignored, not fatal -- fault-injected streams legitimately duplicate
/// and reorder frames.  Only *framing* damage (Decoder errors) kills a
/// connection, because byte alignment is unrecoverable.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rtw/svc/service.hpp"
#include "rtw/svc/wire.hpp"

namespace rtw::svc {

class Server;

/// Per-connection tallies (input plane unless noted).
struct ConnectionStats {
  std::uint64_t opens = 0;           ///< sessions opened through this conn
  std::uint64_t dup_opens = 0;       ///< duplicate client ids, ignored
  std::uint64_t refused_opens = 0;   ///< factory returned nullptr
  std::uint64_t unknown_frames = 0;  ///< Symbols/Close for unmapped ids
  std::uint64_t sheds = 0;           ///< admission refusals (runs, not symbols)
  std::uint64_t verdicts = 0;        ///< Verdict frames queued (output plane)
};

/// One client byte stream.  Created by Server::connect(); the transport
/// drives the input plane and drains the output plane.
class Connection : public std::enable_shared_from_this<Connection> {
public:
  /// Feeds received bytes through the decoder and applies every decodable
  /// event.  Returns false when the connection has died (framing error):
  /// the transport should stop reading and tear it down via
  /// Server::disconnect().  Safe to call with the connection paused; the
  /// bytes queue behind the pending event.
  bool on_bytes(std::string_view bytes);

  /// Half-close (client FIN): no more input will arrive.  Sessions the
  /// client left open are truncate-closed; the connection stays alive
  /// until their verdicts have been delivered and drained.
  void finish_input();

  /// Retries the admission-blocked event, if any.  Returns true when the
  /// connection is unblocked (event admitted, or nothing was pending) and
  /// the transport may resume reading.
  bool retry_pending();

  /// Moves up to max_bytes of queued output into `out` (appended).
  /// Returns the number of bytes appended.
  std::size_t take_output(std::string& out, std::size_t max_bytes);
  /// Re-queues the unwritten tail of a partial write, in front.
  void push_front_output(std::string_view bytes);

  std::size_t output_size() const;
  bool has_output() const { return output_size() > 0; }

  /// True while an admission-blocked event is parked (shed_on_full off).
  /// The transport should stop reading until retry_pending() succeeds.
  bool paused() const noexcept { return paused_.load(std::memory_order_acquire); }
  /// True once a framing error killed the stream.
  bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }
  const std::string& error() const noexcept { return error_; }

  /// True when the connection has nothing left to do: input finished,
  /// every owned session settled, output drained.  The transport closes
  /// such connections.
  bool complete() const;

  std::uint64_t id() const noexcept { return id_; }
  /// Sessions opened on this connection whose verdict has not yet been
  /// delivered.
  std::size_t owned_sessions() const;
  bool input_finished() const noexcept {
    return input_finished_.load(std::memory_order_acquire);
  }
  /// Negotiated protocol version (0 until a Hello arrives).
  std::uint8_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }
  ConnectionStats stats() const;

private:
  friend class Server;

  struct Owned {
    SessionId global = 0;
    bool close_sent = false;  ///< client Close observed (or FIN sweep)
  };

  Connection(Server& server, std::uint64_t id, std::size_t max_frame_bytes);

  /// Drains decoder events (and the parked event first); false = died.
  bool pump();
  bool apply_event(WireEvent& event);
  /// Feeds one remapped run; parks it when admission blocks.
  bool submit_symbols(SessionId client, std::vector<core::TimedSymbol> run);
  void queue_output(std::string frame);
  void fail_stream(std::string message);

  /// Report delivery (shard-worker thread, via Server::on_report).
  void deliver_report(SessionId client, const SessionReport& report);

  Server& server_;
  const std::uint64_t id_;
  Decoder decoder_;

  // Input-plane state (event-loop thread only).
  struct Pending {
    SessionId client = 0;
    std::vector<core::TimedSymbol> run;
  };
  std::optional<Pending> pending_;

  std::atomic<bool> paused_{false};
  std::atomic<bool> dead_{false};
  std::atomic<bool> input_finished_{false};
  std::atomic<std::uint8_t> version_{0};
  std::string error_;  ///< written once before dead_ is published

  mutable std::mutex mutex_;  ///< guards everything below
  std::string output_;
  std::unordered_map<SessionId, Owned> sessions_;   ///< client id -> state
  std::unordered_map<SessionId, SessionId> remap_;  ///< global -> client id
  ConnectionStats stats_;
};

/// The serving facade.  Owns the SessionManager; transports own the
/// Server.
class Server {
public:
  /// `factory` builds acceptors for wire-opened sessions (profile =
  /// the Open frame's body, verbatim).
  Server(ServerConfig config, AcceptorFactory factory);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a new logical client stream.  The transport keeps the
  /// shared_ptr; the server holds a registry entry until disconnect().
  std::shared_ptr<Connection> connect();

  /// Hard teardown: truncate-closes the connection's live sessions and
  /// drops it from the registry.  Verdicts still in flight for it are
  /// consumed and discarded (never leak into collect()).
  void disconnect(const std::shared_ptr<Connection>& conn);

  /// Graceful drain: truncate-closes every session (wire and direct),
  /// which routes the final verdicts into their connections' output
  /// buffers.  The transport then flushes and closes.  Idempotent.
  void shutdown();

  /// Transport hook: invoked (possibly from a shard worker) whenever a
  /// connection gains output outside the input plane -- i.e. a verdict
  /// landed.  The callback must be thread-safe and must not call back
  /// into the Server.  Mutex-guarded against concurrent wake(): safe to
  /// install or clear (nullptr) while shard workers are still reporting.
  void set_wakeup(std::function<void(const std::shared_ptr<Connection>&)> fn) {
    std::lock_guard lock(wakeup_mutex_);
    wakeup_ = std::move(fn);
  }

  SessionManager& manager() noexcept { return manager_; }
  const ServerConfig& config() const noexcept { return config_; }
  std::size_t connection_count() const;

private:
  friend class Connection;

  /// Report sink installed on the manager: routes a finished session's
  /// report to its owning connection as a Verdict frame.  Returns true
  /// (consumed) for wire-owned sessions, false for direct open() callers.
  bool on_report(const SessionReport& report);

  SessionId allocate_session();
  void register_owner(SessionId global, std::shared_ptr<Connection> conn);
  void wake(const std::shared_ptr<Connection>& conn);

  ServerConfig config_;
  AcceptorFactory factory_;
  SessionManager manager_;

  mutable std::mutex mutex_;  ///< guards owners_ and connections_
  /// Global session id -> owning connection.  A null mapped value is a
  /// tombstone: the owner died, consume and discard the report.
  std::unordered_map<SessionId, std::shared_ptr<Connection>> owners_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> connections_;

  mutable std::mutex wakeup_mutex_;  ///< guards wakeup_ (workers vs teardown)
  std::function<void(const std::shared_ptr<Connection>&)> wakeup_;
  std::atomic<std::uint64_t> next_conn_id_{1};
  /// Wire-session ids start far above the manager's own open() counter so
  /// mixed wire + direct workloads never collide on an id.
  std::atomic<SessionId> next_session_{SessionId{1} << 32};
};

}  // namespace rtw::svc
