#pragma once
/// \file net/socket.hpp
/// Thin POSIX socket helpers for the TCP front-end: an RAII fd, a bound
/// nonblocking listener, and the option twiddles the reactor needs.
/// Everything returns errors by value (errno captured into a string);
/// nothing throws, because transport setup failures are operational, not
/// logic bugs.

#include <cstdint>
#include <string>
#include <utility>

namespace rtw::svc::net {

/// Owning file descriptor.  Move-only; closes on destruction.
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

private:
  int fd_ = -1;
};

/// Result of listener setup: the listening fd plus the port the kernel
/// actually bound (meaningful when the config asked for port 0).
struct Listener {
  Fd fd;
  std::uint16_t port = 0;
  std::string error;  ///< non-empty = setup failed, fd invalid

  bool ok() const noexcept { return error.empty(); }
};

/// Creates a nonblocking, SO_REUSEADDR listening socket bound to
/// `address:port` with the given backlog.
Listener make_listener(const std::string& address, std::uint16_t port,
                       int backlog);

/// Connects a nonblocking client socket to `address:port`.  The connect
/// may still be in flight (EINPROGRESS) when this returns; the caller's
/// event loop observes writability for completion.
struct ConnectResult {
  Fd fd;
  std::string error;
  bool ok() const noexcept { return error.empty(); }
};
ConnectResult connect_nonblocking(const std::string& address,
                                  std::uint16_t port);

bool set_nonblocking(int fd);
/// Disables Nagle; latency benches would otherwise measure the 40 ms
/// delayed-ack dance, not the server.
bool set_tcp_nodelay(int fd);
bool set_sndbuf(int fd, int bytes);
bool set_rcvbuf(int fd, int bytes);

/// Raises RLIMIT_NOFILE toward `want` (clamped to the hard limit).
/// Returns the resulting soft limit.  10k-connection runs need this on
/// stock 1024-fd defaults.
std::uint64_t raise_nofile_limit(std::uint64_t want);

}  // namespace rtw::svc::net
