#pragma once
/// \file net/epoll.hpp
/// RAII wrappers over epoll(7) and eventfd(2), the two kernel objects
/// the reactor is built on.  Edge-triggered by convention: every
/// interest set this codebase registers carries EPOLLET, so handlers
/// must always drain to EAGAIN.

#include <sys/epoll.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rtw/svc/net/socket.hpp"

namespace rtw::svc::net {

/// The epoll instance plus a reusable event buffer.
class Epoll {
public:
  Epoll();
  bool ok() const noexcept { return fd_.valid(); }
  const std::string& error() const noexcept { return error_; }

  bool add(int fd, std::uint32_t events, std::uint64_t tag);
  bool mod(int fd, std::uint32_t events, std::uint64_t tag);
  bool del(int fd);

  /// Waits up to timeout_ms (-1 = forever).  Returns the ready events
  /// (valid until the next wait call); empty on timeout or EINTR.
  const std::vector<epoll_event>& wait(int timeout_ms);

private:
  Fd fd_;
  std::string error_;
  std::vector<epoll_event> events_;  ///< kernel-filled buffer
  std::vector<epoll_event> ready_;   ///< the n ready entries handed out
};

/// Cross-thread doorbell: any thread rings, the event loop wakes.
/// Registered in the epoll set like any other fd (level semantics are
/// fine under ET because drain() zeroes the counter).
class EventFd {
public:
  EventFd();
  bool ok() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }

  void ring() noexcept;   ///< async-signal-safe, callable from any thread
  void drain() noexcept;  ///< zero the counter (event-loop side)

private:
  Fd fd_;
};

}  // namespace rtw::svc::net
