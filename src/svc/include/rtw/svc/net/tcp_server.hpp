#pragma once
/// \file net/tcp_server.hpp
/// The epoll TCP front-end: one reactor thread multiplexing every client
/// connection onto a transport-agnostic svc::Server.
///
/// Event-loop states per connection:
///
///   READING   default: EPOLLIN edges drain read(2) to EAGAIN, each chunk
///             feeds Connection::on_bytes (incremental decode -> session
///             commands).
///   PAUSED    reads stop, socket backpressure does the rest.  Two ways
///             in: the logical connection parked an admission-Blocked
///             event (resume via retry_pending once the rings drain), or
///             its output buffer crossed NetConfig::write_buffer_limit (a
///             slow reader must not balloon server memory; resume when
///             the flush drains it below half).  Bytes the kernel already
///             buffered stay put -- pausing is just "stop calling read".
///   DRAINING  input finished (FIN/RDHUP) but verdicts are still being
///             delivered or flushed; the write side lives until
///             Connection::complete().
///   CLOSED    torn down: framing error, write error, hard hangup, or
///             complete.
///
/// Buffer ownership: the reactor owns a per-connection staging buffer
/// (`outbuf`) it is mid-write on; the logical Connection owns the queued
/// frame bytes behind it.  Shard workers append verdict frames to the
/// logical buffer and ring the eventfd; only the reactor thread touches
/// sockets.
///
/// Graceful drain (stop()): close the listener, finish_input() every
/// connection (truncate-closing abandoned sessions), Server::shutdown()
/// to settle every verdict into the output buffers, then flush until all
/// connections complete or NetConfig::drain_timeout_ms elapses; whatever
/// lingers is force-closed.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rtw/svc/net/epoll.hpp"
#include "rtw/svc/net/socket.hpp"
#include "rtw/svc/server.hpp"

namespace rtw::svc::net {

/// Reactor tallies (atomics: written by the loop, read by anyone).
struct TcpServerStats {
  std::uint64_t accepted = 0;           ///< connections accepted
  std::uint64_t rejected_capacity = 0;  ///< closed at max_connections
  std::uint64_t closed = 0;             ///< connections torn down
  std::uint64_t active = 0;             ///< currently open
  std::uint64_t read_bytes = 0;
  std::uint64_t written_bytes = 0;
  std::uint64_t read_pauses = 0;   ///< times a conn entered PAUSED
  std::uint64_t frame_errors = 0;  ///< conns killed by a Decoder error
};

class TcpServer {
public:
  /// Binds to `server.config().net` (address, port, buffers, drain).
  explicit TcpServer(Server& server);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and spawns the reactor thread.  False on setup
  /// failure (see error()).
  bool start();
  /// Graceful drain as described above; idempotent; joins the reactor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (after start(); meaningful when config asked for 0).
  std::uint16_t port() const noexcept { return port_; }
  const std::string& error() const noexcept { return error_; }
  TcpServerStats stats() const;

private:
  struct Conn {
    Fd fd;
    std::shared_ptr<Connection> logical;
    std::string outbuf;        ///< staged bytes mid-write
    std::size_t out_off = 0;   ///< written prefix of outbuf
    bool read_paused = false;  ///< PAUSED state (either cause)
    bool admission_paused = false;  ///< paused on a parked Blocked event
    bool read_ready = false;   ///< EPOLLIN edge arrived while paused
    bool peer_eof = false;     ///< FIN/RDHUP observed
  };

  void loop();
  void do_accept();
  /// Drains read(2) to EAGAIN (or a pause/teardown condition).
  void handle_readable(int fd, Conn& conn);
  /// Flushes staged + queued output; false = connection torn down.
  bool flush_writes(int fd, Conn& conn);
  void maybe_resume_reads(int fd, Conn& conn);
  /// True when the conn should be torn down (complete or dead).
  bool reap_if_finished(int fd, Conn& conn);
  void close_conn(int fd);
  void drain_wakeups();

  Server& server_;
  const NetConfig net_;
  Epoll epoll_;
  EventFd wakeup_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::string error_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unordered_map<int, Conn> conns_;                 ///< fd -> state
  std::unordered_map<std::uint64_t, int> by_logical_;   ///< conn id -> fd
  std::size_t admission_paused_count_ = 0;
  /// accept4 failed with EMFILE/ENFILE-class errno: the edge-triggered
  /// listener event is spent, so poll-retry accepts each loop tick.
  bool accept_retry_ = false;
  std::vector<char> read_buffer_;

  std::mutex pending_mutex_;  ///< guards pending_ (shard workers ring in)
  std::vector<std::uint64_t> pending_;  ///< logical ids with fresh output

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0}, rejected_capacity{0}, closed{0},
        active{0}, read_bytes{0}, written_bytes{0}, read_pauses{0},
        frame_errors{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace rtw::svc::net
