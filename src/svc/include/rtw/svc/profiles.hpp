#pragma once
/// \file profiles.hpp
/// Wire-profile acceptors: tiny deterministic OnlineAcceptors the network
/// front-end, the load generator and the hermetic tests all share.
///
/// The Open frame's body selects the acceptor ("profile"):
///
///   "accept"    settles Accepting at finish, whatever arrived
///   "reject"    settles Rejecting at finish
///   "count:K"   accepts iff exactly K symbols arrive; the (K+1)-th
///               symbol locks Rejecting *early* (exact verdict), so the
///               profile exercises both the heuristic and the locked path
///
/// Determinism is the point: the verdict is a pure function of the fed
/// symbol sequence, so the load generator can replay the same words
/// through an in-process SessionManager and demand bit-identical
/// verdicts -- the acceptance criterion for the TCP path.  Verdict-bearing
/// paper workloads (deadline, rtdb, adhoc) plug into the same factory
/// seam via their own make_online_* adapters; these profiles exist so the
/// transport can be validated without dragging an application module into
/// every net binary.

#include <charconv>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/online.hpp"
#include "rtw/svc/service.hpp"

namespace rtw::svc {

/// Counts symbols; accepts iff the total equals `target`.  Overshooting
/// locks Rejecting immediately (exact), undershoot/exact-hit settle at
/// finish (heuristic).
class CountAcceptor final : public core::OnlineAcceptor {
public:
  explicit CountAcceptor(std::uint64_t target) : target_(target) {}

  core::Verdict feed(core::Symbol, core::Tick at) override {
    if (finished_ || core::final_verdict(verdict_)) return verdict_;
    ++count_;
    high_water_ = at;
    result_.symbols_consumed = count_;
    result_.ticks = at;
    if (count_ > target_) {
      verdict_ = core::Verdict::Rejecting;  // can never be exactly K again
      result_.accepted = false;
      result_.exact = true;
    }
    return verdict_;
  }

  core::Verdict finish(core::StreamEnd) override {
    if (finished_) return verdict_;
    finished_ = true;
    if (!core::final_verdict(verdict_)) {
      const bool hit = count_ == target_;
      verdict_ = hit ? core::Verdict::Accepting : core::Verdict::Rejecting;
      result_.accepted = hit;
      result_.exact = false;
      if (hit) {
        result_.f_count = 1;
        result_.first_f = high_water_;
      }
    }
    return verdict_;
  }

  core::Verdict verdict() const override { return verdict_; }
  const core::RunResult& result() const override { return result_; }
  void reset() override {
    count_ = 0;
    high_water_ = 0;
    finished_ = false;
    verdict_ = core::Verdict::Undetermined;
    result_ = {};
  }
  std::string name() const override {
    return "count:" + std::to_string(target_);
  }

private:
  std::uint64_t target_;
  std::uint64_t count_ = 0;
  core::Tick high_water_ = 0;
  bool finished_ = false;
  core::Verdict verdict_ = core::Verdict::Undetermined;
  core::RunResult result_;
};

/// Settles to a fixed verdict at finish; Undetermined while streaming.
class FixedAcceptor final : public core::OnlineAcceptor {
public:
  explicit FixedAcceptor(bool accept) : accept_(accept) {}

  core::Verdict feed(core::Symbol, core::Tick at) override {
    if (finished_) return verdict_;
    ++count_;
    result_.symbols_consumed = count_;
    result_.ticks = at;
    return verdict_;
  }

  core::Verdict finish(core::StreamEnd) override {
    if (finished_) return verdict_;
    finished_ = true;
    verdict_ = accept_ ? core::Verdict::Accepting : core::Verdict::Rejecting;
    result_.accepted = accept_;
    result_.exact = false;
    return verdict_;
  }

  core::Verdict verdict() const override { return verdict_; }
  const core::RunResult& result() const override { return result_; }
  void reset() override {
    count_ = 0;
    finished_ = false;
    verdict_ = core::Verdict::Undetermined;
    result_ = {};
  }
  std::string name() const override { return accept_ ? "accept" : "reject"; }

private:
  bool accept_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
  core::Verdict verdict_ = core::Verdict::Undetermined;
  core::RunResult result_;
};

/// Builds the acceptor a profile string names; nullptr refuses (unknown
/// profile -> the server refuses the Open, clients see a shed notice).
inline std::unique_ptr<core::OnlineAcceptor> make_profile_acceptor(
    std::string_view profile) {
  if (profile == "accept") return std::make_unique<FixedAcceptor>(true);
  if (profile == "reject") return std::make_unique<FixedAcceptor>(false);
  constexpr std::string_view kCount = "count:";
  if (profile.substr(0, kCount.size()) == kCount) {
    const std::string_view digits = profile.substr(kCount.size());
    std::uint64_t target = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), target);
    if (ec != std::errc{} || ptr != digits.data() + digits.size())
      return nullptr;
    return std::make_unique<CountAcceptor>(target);
  }
  return nullptr;
}

/// The factory form the Server facade and SessionManager::apply consume.
inline AcceptorFactory profile_factory() {
  return [](SessionId, std::string_view profile) {
    return make_profile_acceptor(profile);
  };
}

}  // namespace rtw::svc
