#pragma once
/// \file ring.hpp
/// Lock-free ingress primitives for the serving layer.
///
/// `MpscRing<T>` is a bounded multi-producer ring (Vyukov's bounded-queue
/// slot-sequencing scheme): each cell carries a sequence number, producers
/// claim a cell by CAS on the tail, publish with a release store of the
/// cell's sequence, and the consumer observes it with an acquire load --
/// no mutex anywhere on the enqueue path.  Capacity is rounded up to a
/// power of two so the cell index is one mask.  The head and tail live on
/// their own cache lines: producers only contend on the tail, the (single
/// elected) consumer only writes the head, and neither invalidates the
/// other's line on every operation.
///
/// The queue is formally MPMC-safe, but the serving layer uses it MPSC:
/// the shard election protocol (`Shard::scheduled`) guarantees at most one
/// consumer at a time, which lets `try_pop` update the head with a plain
/// store instead of a CAS.
///
/// `SessionTable` is a fixed-capacity open-addressed hash table of
/// admission *hints* -- session priority and in-flight symbol count --
/// readable and writable from any thread with only relaxed/acq-rel
/// atomics.  It is deliberately a hint structure: a missed lookup (table
/// full, or a slot reused mid-flight) degrades the admission decision to
/// the default priority and an untracked quota, never the verdict of any
/// session.  That is what makes a lock-free table this small safe to use.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace rtw::svc {

/// Rounds up to the next power of two (minimum 1).
constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Destructive-interference distance.  A fixed 64 rather than
/// std::hardware_destructive_interference_size: the constant is part of
/// the ring's layout, and the std value varies with -mtune (gcc even
/// warns about it); 64 is right for every target this builds on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class MpscRing {
 public:
  /// Allocates `ceil_pow2(capacity)` cells; every cell's sequence starts
  /// at its own index (the "empty, writable at lap 0" state).  Minimum 2:
  /// the slot-sequencing invariant (a full cell has seq == claim-pos + 1,
  /// an empty next-lap cell has seq == claim-pos + capacity) needs those
  /// two values distinct, which a 1-cell ring cannot provide.
  explicit MpscRing(std::size_t capacity)
      : mask_(ceil_pow2(capacity < 2 ? 2 : capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  ~MpscRing() {
    T scratch;
    while (try_pop(scratch)) {
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Multi-producer enqueue.  On success the value is moved into the ring;
  /// on failure (ring full) the value is left untouched so the caller can
  /// shed it, retry it, or hand it to a fallback lane.
  bool try_push(T& value) noexcept {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // The cell is writable for this lap; claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          ::new (static_cast<void*>(cell.storage)) T(std::move(value));
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh tail.
      } else if (dif < 0) {
        // The cell still holds last lap's element: the ring is full.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }
  bool try_push(T&& value) noexcept { return try_push(value); }

  /// Single-consumer dequeue (callers must hold the shard election).
  bool try_pop(T& out) noexcept {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0)
      return false;  // the cell has not been published for this lap yet
    head_.store(pos + 1, std::memory_order_relaxed);
    T* stored = std::launder(reinterpret_cast<T*>(cell.storage));
    out = std::move(*stored);
    stored->~T();
    // Mark the cell writable for the next lap.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Occupancy estimate for admission watermarks.  Exact when quiescent;
  /// under concurrency it may lag either counter by the number of
  /// in-flight operations, which is fine for a shedding heuristic.
  std::size_t approx_size() const noexcept {
    const auto tail = static_cast<std::intptr_t>(
        tail_.load(std::memory_order_acquire));
    const auto head = static_cast<std::intptr_t>(
        head_.load(std::memory_order_acquire));
    const std::intptr_t n = tail - head;
    if (n < 0) return 0;
    const auto size = static_cast<std::size_t>(n);
    return size > mask_ + 1 ? mask_ + 1 : size;
  }

  bool empty() const noexcept { return approx_size() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    alignas(T) unsigned char storage[sizeof(T)];
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producers
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer
};

/// Session priority for adaptive admission.  Ordered: higher survives
/// deeper ring occupancy before being shed.
enum class Priority : std::uint8_t {
  Low = 0,
  Normal = 1,
  High = 2,
};

/// Fixed-capacity lock-free hint table: session id -> (priority, in-flight
/// symbol count).  Linear probing, tombstone deletion, bounded probe runs.
/// All operations are wait-free apart from the insert CAS.
class SessionTable {
 public:
  struct Slot {
    std::atomic<std::uint64_t> id{kEmpty};
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint8_t> priority{
        static_cast<std::uint8_t>(Priority::Normal)};
  };

  explicit SessionTable(std::size_t slots)
      : mask_(ceil_pow2(slots < 2 ? 2 : slots) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// Records a session's priority.  Returns false when the probe run finds
  /// no free slot (table effectively full) -- the session is then simply
  /// untracked and admission falls back to Priority::Normal, no quota.
  bool insert(std::uint64_t id, Priority priority) noexcept {
    if (id == kEmpty || id == kTombstone) return false;
    std::size_t pos = hash(id);
    for (std::size_t probe = 0; probe <= kMaxProbe; ++probe, ++pos) {
      Slot& slot = slots_[pos & mask_];
      std::uint64_t seen = slot.id.load(std::memory_order_acquire);
      if (seen == id) {  // re-open under the same id: refresh the priority
        slot.priority.store(static_cast<std::uint8_t>(priority),
                            std::memory_order_relaxed);
        return true;
      }
      if (seen == kEmpty || seen == kTombstone) {
        if (slot.id.compare_exchange_strong(seen, id,
                                            std::memory_order_acq_rel)) {
          // Stored after the claim: a concurrent finder may briefly read
          // the slot's previous priority -- acceptable for a hint, unlike
          // clobbering a slot another session just won.
          slot.priority.store(static_cast<std::uint8_t>(priority),
                              std::memory_order_relaxed);
          return true;
        }
        if (seen == id) {
          slot.priority.store(static_cast<std::uint8_t>(priority),
                              std::memory_order_relaxed);
          return true;
        }
        // Lost the slot to a different session; keep probing.
      }
    }
    return false;
  }

  /// Looks a session up; nullptr when untracked.  The returned pointer is
  /// stable for the table's lifetime (slots are never deallocated), so it
  /// can ride along in a queued command for the paired in-flight
  /// decrement even if the session closes meanwhile.
  Slot* find(std::uint64_t id) noexcept {
    if (id == kEmpty || id == kTombstone) return nullptr;
    std::size_t pos = hash(id);
    for (std::size_t probe = 0; probe <= kMaxProbe; ++probe, ++pos) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seen = slot.id.load(std::memory_order_acquire);
      if (seen == id) return &slot;
      if (seen == kEmpty) return nullptr;  // tombstones keep the probe going
    }
    return nullptr;
  }

  /// Tombstones the session's slot (worker side, at close/eviction).
  void erase(std::uint64_t id) noexcept {
    if (Slot* slot = find(id))
      slot->id.store(kTombstone, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0};
  static constexpr std::size_t kMaxProbe = 64;

  std::size_t hash(std::uint64_t id) const noexcept {
    // splitmix64 finalizer, same spreading the shard router uses.
    id += 0x9e3779b97f4a7c15ULL;
    id = (id ^ (id >> 30)) * 0xbf58476d1ce4e5b9ULL;
    id = (id ^ (id >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(id ^ (id >> 31)) & mask_;
  }

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace rtw::svc
