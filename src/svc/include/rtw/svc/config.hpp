#pragma once
/// \file config.hpp
/// Split serving-layer configuration.
///
/// Serving-layer configuration is three sub-structs with different
/// owners -- how the shard workers run, how the bounded ingress admits,
/// and how a transport behaves -- assembled into one `ServerConfig`:
///
///   ShardConfig    worker count, drain batching, eviction, lane kernel
///   IngressConfig  ring bound, shed policy, watermarks, quota, latency
///   NetConfig      listener address, buffers, notification policy, drain
///
/// `SessionManager` consumes shard + ingress; `Server`/`net::TcpServer`
/// consume all three.

#include <cstddef>
#include <cstdint>
#include <string>

namespace rtw::svc {

/// Shard-worker behavior: how many workers, how they drain, when they
/// evict, and whether runs go through the SIMD lane kernel.
struct ShardConfig {
  unsigned count = 1;             ///< worker count (and ring count)
  std::size_t drain_batch = 256;  ///< ring slots per shard epoch
  /// Sessions idle for this many shard epochs are finished
  /// (StreamEnd::Truncated) and reported with `evicted = true`.
  /// 0 disables eviction.
  std::uint64_t idle_epochs = 0;
  /// Route batched runs of lane-family sessions through the SIMD batch
  /// kernel (rtw/core/lane.hpp) instead of per-symbol feed_run.  Verdicts
  /// are bit-identical either way; off = always the virtual path.
  bool lane_kernel = true;
  /// Max staged lane runs before the worker flushes a kernel wave.
  std::size_t lane_wave = 256;
};

/// Bounded-ingress admission policy: the data-plane bound and everything
/// that sheds under it.
struct IngressConfig {
  /// Data-plane bound per shard, in ring slots (a slot holds one command:
  /// a single symbol or a whole batched run).  The physical ring is
  /// allocated with extra headroom so control commands always land.
  std::size_t ring_capacity = 1024;
  bool shed_on_full = true;  ///< full ring: true = Shed, false = Blocked
  /// Max in-flight (admitted, not yet processed) symbols per session;
  /// 0 disables the quota.  Exceeding it sheds with `SessionBound`.
  std::size_t session_quota = 0;
  /// Occupancy fraction above which Priority::Low data is shed.
  double watermark_low = 0.5;
  /// Occupancy fraction above which Priority::Normal data is also shed
  /// (High survives until the ring is physically full).
  double watermark_high = 0.875;
  /// Worker-side age watermark: a non-High data command that waited in
  /// the ring longer than this many steady-clock ns is dropped (counted
  /// as a Priority shed) instead of fed.  0 disables.
  std::uint64_t max_queue_delay_ns = 0;
  /// Per-shard capacity of the lock-free priority/quota hint table.
  std::size_t session_slots = 8192;
  /// Stamp every Nth data command with its enqueue time and record the
  /// enqueue->process delta (the true feed latency) on the worker.
  /// 0 disables sampling; age shedding stamps every command regardless.
  std::size_t latency_sample_every = 16;
};

/// Transport behavior for the network front-end.  `SessionManager`
/// ignores this block; `Server` uses the notification policy and
/// `net::TcpServer` uses all of it.
struct NetConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (read back via port())
  int backlog = 1024;      ///< listen(2) backlog hint
  std::size_t max_connections = 65536;  ///< accepted fds beyond this are closed
  std::size_t read_chunk = 64 * 1024;   ///< bytes per read(2) on a readable conn
  /// Frame size cap handed to each connection's Decoder.
  std::size_t max_frame_bytes = 1u << 20;
  /// Write-side backpressure: a connection whose unflushed output exceeds
  /// this stops being *read* (slow readers cannot balloon server memory);
  /// reading resumes once the buffer drains below half the limit.
  std::size_t write_buffer_limit = 1u << 20;
  bool shed_notices = true;     ///< emit ShedNotice frames on Shed verdicts
  bool verdict_notices = true;  ///< emit Verdict frames on session finish
  /// Graceful-drain budget: stop() flushes pending verdict frames for at
  /// most this long before force-closing lingering connections.
  std::uint64_t drain_timeout_ms = 5000;
  /// Test hooks: when nonzero, applied as SO_SNDBUF / SO_RCVBUF on
  /// accepted sockets (small values force partial writes, exercising the
  /// EPOLLOUT resumption path deterministically).
  int sndbuf = 0;
  int rcvbuf = 0;
};

/// The assembled serving-layer configuration.
struct ServerConfig {
  ShardConfig shard;
  IngressConfig ingress;
  NetConfig net;
};

}  // namespace rtw::svc
