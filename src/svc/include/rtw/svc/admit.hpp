#pragma once
/// \file admit.hpp
/// Admission verdicts for the serving layer's bounded data plane.
///
/// `Admit` is the three-way outcome of offering a command to a shard
/// ring; `AdmitResult` is the structured form the redesigned API returns:
/// the outcome *plus the reason* a non-Accepted verdict was handed out,
/// so callers (and the wire, via the ShedNotice frame) can distinguish a
/// physically full ring from a quota hit or a priority watermark without
/// diffing service-wide counters.  `AdmitResult` converts implicitly to
/// `Admit`, so pre-split call sites comparing against the enum compile
/// unchanged.

#include <cstdint>
#include <string>

namespace rtw::svc {

/// Ingress verdict for one command (or one batched run of symbols --
/// batched admission is all-or-nothing, a run never tears).
enum class Admit : std::uint8_t {
  Accepted,  ///< enqueued on the session's shard
  Shed,      ///< dropped at admission (shed_on_full = true)
  Blocked,   ///< not admitted, caller should retry (shed_on_full = false)
};

/// Why a Shed (or Blocked) verdict was returned.
enum class ShedReason : std::uint8_t {
  None,          ///< admitted
  RingFull,      ///< the shard ring had no free data-plane slot
  SessionBound,  ///< the session's in-flight quota was exhausted
  Priority,      ///< priority/age watermark shed under load
};

std::string to_string(Admit a);
std::string to_string(ShedReason r);

/// Admission outcome with its structured shed reason.  The implicit
/// conversion keeps `feed(...) == Admit::Shed` style call sites working;
/// new code reads `.reason` instead of correlating counters.
struct AdmitResult {
  Admit admit = Admit::Accepted;
  ShedReason reason = ShedReason::None;

  constexpr operator Admit() const noexcept { return admit; }
  constexpr bool accepted() const noexcept {
    return admit == Admit::Accepted;
  }
};

std::string to_string(const AdmitResult& r);

}  // namespace rtw::svc
