#pragma once
/// \file service.hpp
/// The sharded streaming acceptance service: thousands of concurrent
/// online-acceptor sessions multiplexed over N shard workers.
///
/// Threading model (the whole point of the design):
///
///   producers --> per-shard lock-free MPSC ring (Vyukov slot sequencing)
///                      |
///                      v   at-most-one worker per shard (atomic handoff)
///                 shard worker on the sim::ThreadPool
///                      |   drains up to drain_batch ring slots per
///                      |   EventQueue epoch; a slot may carry a whole
///                      v   run of symbols (batched admission)
///                 sessions (hash-sharded by id; worker-private, lock-free)
///
/// A session id hashes to exactly one shard, every command for it goes
/// through that shard's FIFO ring, and the shard's state is only ever
/// touched by the one worker currently holding the shard's `scheduled`
/// flag -- so per-session processing needs no locks at all, and a
/// session's commands are processed in submission order.  The handoff
/// protocol is the classic lost-wakeup-free pattern, built entirely on
/// RMW operations so it composes with the lock-free ring: a producer that
/// flips `scheduled` false->true posts a worker task; the worker parks by
/// *exchanging* `scheduled` to false (the RMW reads the latest producer
/// election attempt, so the producer's ring publication happens-before
/// the worker's re-check) and re-elects itself if a command slipped in.
///
/// Hot-path cost for a producer: one approx-occupancy read, at most one
/// hint-table probe, one CAS ring claim, one release store, one RMW on
/// the election flag.  No mutex, no syscall, no allocation beyond the
/// command's own payload.
///
/// Backpressure is explicit and adaptive.  The data plane is bounded by
/// `ring_capacity` ring slots; instead of first-come-first-shed, admission
/// sheds by *priority watermarks*: above `watermark_low` occupancy only
/// Normal and High priority sessions are admitted, above `watermark_high`
/// only High, and a genuinely full ring sheds (or blocks) everything.
/// A per-session in-flight quota (`session_quota`) prevents one hot
/// session from monopolizing the ring, and an optional age watermark
/// (`max_queue_delay_ns`) lets the worker drop data that waited in the
/// ring past its freshness bound.  Every shed is counted under its
/// reason: `ring_full`, `session_bound`, or `priority` (watermark + age).
/// Control commands (open/close/shutdown) bypass every bound through the
/// physical headroom the ring over-allocates: shedding a Close would leak
/// the session, so only the data plane sheds.
///
/// Each shard advances a private sim::EventQueue one tick per drained
/// batch; that tick count is the shard's *epoch* clock, against which
/// idle sessions are aged and evicted.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/thread_pool.hpp"
#include "rtw/svc/admit.hpp"
#include "rtw/svc/config.hpp"
#include "rtw/svc/ring.hpp"
#include "rtw/svc/session.hpp"
#include "rtw/svc/wire.hpp"

namespace rtw::svc {

/// Monotone service-wide tallies (mirrored into obs metrics when a sink
/// is installed).
struct ServiceStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;       ///< includes evicted
  std::uint64_t ingested = 0;     ///< symbols delivered to a session
  std::uint64_t shed = 0;         ///< symbols shed, all reasons
  std::uint64_t shed_ring_full = 0;      ///< ... at a physically full ring
  std::uint64_t shed_session_bound = 0;  ///< ... by the per-session quota
  std::uint64_t shed_priority = 0;       ///< ... by priority/age watermarks
  std::uint64_t blocked = 0;      ///< Blocked verdicts returned
  std::uint64_t stale = 0;        ///< symbols dropped by the time filter
  std::uint64_t evicted = 0;      ///< sessions closed by idle eviction
  std::uint64_t unknown = 0;      ///< commands for sessions that don't exist
  std::uint64_t active = 0;       ///< currently open sessions
  std::uint64_t epochs = 0;       ///< summed shard epoch count
  std::uint64_t batches = 0;      ///< ring slots drained (batch granularity)
  std::uint64_t lane_symbols = 0; ///< symbols advanced by the batch kernel
  std::uint64_t lane_waves = 0;   ///< kernel wave dispatches
  std::uint64_t query_compiled = 0;  ///< SubmitQuery opens that compiled
  std::uint64_t query_rejected = 0;  ///< ... refused by a CompileLimits cap
};

/// Builds the acceptor for a wire-opened session; `profile` is the Open
/// frame's body, verbatim.  Returning nullptr refuses the session.
using AcceptorFactory = std::function<std::unique_ptr<core::OnlineAcceptor>(
    SessionId, std::string_view profile)>;

/// Observer for finished sessions, installed with set_report_sink().
/// Invoked on the shard worker that finished the session, outside any
/// manager lock.  Return true to consume the report (it will NOT be
/// queued for collect()); false to fall through to the collect() queue.
/// The Server facade uses this to push Verdict frames to the owning
/// connection the moment a stream settles.
using ReportSink = std::function<bool(const SessionReport&)>;

class SessionManager {
public:
  explicit SessionManager(ServerConfig config = {});
  /// Convenience: shard + ingress blocks without a NetConfig.
  SessionManager(ShardConfig shard, IngressConfig ingress);
  /// Drains and truncation-closes every remaining session.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // ------------------------------------------------------- direct API

  /// Opens a session under a fresh id (control plane: never shed).
  SessionId open(std::unique_ptr<core::OnlineAcceptor> acceptor,
                 Priority priority = Priority::Normal);
  /// Opens a session under a caller-chosen id (wire replay).  Opening an
  /// id that is already live is counted as `unknown` and ignored by the
  /// shard worker.
  void open(SessionId id, std::unique_ptr<core::OnlineAcceptor> acceptor,
            Priority priority = Priority::Normal);

  /// Routes one symbol to the session's shard (data plane: bounded).
  /// Returns the admission outcome with its structured shed reason;
  /// converts implicitly to the bare Admit for pre-split call sites.
  AdmitResult feed(SessionId id, core::Symbol symbol, core::Tick at);

  /// Batched admission: publishes the whole run in one ring slot,
  /// all-or-nothing.  Element times must be nondecreasing (they share the
  /// session's stale filter symbol by symbol).  Admission cost -- the
  /// occupancy read, table probe, ring claim and election -- is paid once
  /// for the run instead of once per symbol.
  AdmitResult feed_batch(SessionId id, std::vector<core::TimedSymbol> run);

  /// Finishes the session and queues its SessionReport for collect()
  /// (or hands it to the report sink when one is installed).
  void close(SessionId id, core::StreamEnd end = core::StreamEnd::EndOfWord);

  // --------------------------------------------------- wire-driven API

  /// Applies one decoded wire event.  Open events build their acceptor
  /// through `factory`; Symbols events are admitted as one batched run
  /// per event, waiting out Blocked verdicts (the wire reader *is* the
  /// backpressure point) and reporting Shed if the run was shed.
  /// Protocol-level events (Hello and the server->client notifications)
  /// are not servable traffic and report Shed; the Server facade handles
  /// those before they reach the manager.
  AdmitResult apply(const WireEvent& event, const AcceptorFactory& factory);

  /// Compiles a SubmitQuery body into a per-session acceptor.  The text
  /// is already syntax-checked by the wire Decoder, but this method
  /// re-parses defensively (direct callers exist) and applies the
  /// CompileLimits resource policy; nullptr refuses the session, with
  /// the attempt tallied under query_compiled / query_rejected and the
  /// svc.query.* metrics (including the compile-latency histogram).
  std::unique_ptr<core::OnlineAcceptor> build_query_acceptor(
      SessionId id, std::string_view query);

  // ----------------------------------------------------- lifecycle

  /// Blocks until every command enqueued before this call has been
  /// processed and all shard workers are parked.
  void drain();

  /// Graceful shutdown: closes every live session with `end`, then
  /// drains.  Idempotent; the manager stays usable afterwards.
  void shutdown(core::StreamEnd end = core::StreamEnd::Truncated);

  /// Takes the reports of sessions that finished since the last call.
  std::vector<SessionReport> collect();

  /// Installs (or clears, with nullptr) the report sink.  Not
  /// thread-safe against in-flight traffic: install before feeding, on
  /// the thread that owns the manager.
  void set_report_sink(ReportSink sink) { report_sink_ = std::move(sink); }

  /// Takes the sampled enqueue->process feed latencies (steady-clock ns)
  /// accumulated since the last call.  Call only while drained (the
  /// samples are worker-private between drains).
  std::vector<std::uint64_t> take_feed_latency_samples();

  ServiceStats stats() const;
  unsigned shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// The shard a session id routes to (exposed for tests and benches).
  unsigned shard_of(SessionId id) const noexcept;
  /// Current occupancy of a shard's ingress ring, in slots.
  std::size_t ring_depth(unsigned shard) const noexcept;

private:
  struct Command {
    enum class Kind : std::uint8_t { Open, Feed, Close, CloseAll };
    Kind kind = Kind::Feed;
    Priority priority = Priority::Normal;
    SessionId id = 0;
    core::Symbol symbol;
    core::Tick at = 0;
    core::StreamEnd end = core::StreamEnd::EndOfWord;
    std::uint64_t enqueue_ns = 0;  ///< steady-clock stamp; 0 = unstamped
    SessionTable::Slot* slot = nullptr;  ///< paired in-flight decrement
    std::vector<core::TimedSymbol> run;  ///< batched Feed; empty = single
    std::unique_ptr<core::OnlineAcceptor> acceptor;  ///< Open only

    std::size_t symbols() const noexcept {
      return kind == Kind::Feed ? (run.empty() ? 1 : run.size()) : 0;
    }
  };

  struct Entry {
    Session session;
    sim::Tick last_active;
    Entry(Session s, sim::Tick epoch)
        : session(std::move(s)), last_active(epoch) {}
  };

  struct Shard {
    explicit Shard(const IngressConfig& ingress);

    MpscRing<Command> ring;
    SessionTable table;           ///< producer-readable priority/quota hints
    std::atomic<bool> scheduled{false};

    // Worker-private state (protected by the `scheduled` handoff).
    sim::EventQueue queue;        ///< epoch clock + in-shard timers
    std::unordered_map<SessionId, Entry> sessions;
    std::vector<Command> staging;
    std::vector<std::uint64_t> latency_samples;

    // Lane-kernel wave, staged during one process() pass and always
    // flushed before it returns (the LaneRuns point into `staging`).
    // One stepper per shard, built lazily from the first lane-family
    // acceptor; sessions of other families fall back to feed_run.
    std::unique_ptr<core::BatchStepper> stepper;
    bool stepper_probed = false;
    std::vector<core::LaneRun> wave;
    std::vector<Session*> wave_sessions;

    std::mutex reports_mutex;
    std::vector<SessionReport> reports;
  };

  /// Data-plane admission: watermarks, quota, ring claim, election.
  AdmitResult admit_data(Command command, std::size_t symbols);
  /// Control-plane enqueue: never sheds; spins into the ring's headroom.
  void enqueue_control(Command command);
  void elect(Shard& shard);
  void count_shed(ShedReason reason, std::size_t symbols);
  void run_shard(Shard& shard);
  void process(Shard& shard, sim::Tick epoch);
  /// Dispatches the staged lane wave through the shard's batch stepper and
  /// folds the per-lane stale deltas into the service stats.
  void flush_wave(Shard& shard);
  void finish_session(Shard& shard, Entry& entry, core::StreamEnd end,
                      bool evicted);
  void evict_idle(Shard& shard, sim::Tick epoch);

  ShardConfig shard_cfg_;
  IngressConfig ingress_cfg_;
  std::size_t watermark_low_slots_ = 0;   ///< precomputed slot thresholds
  std::size_t watermark_high_slots_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  sim::ThreadPool pool_;
  std::atomic<SessionId> next_id_{1};
  std::atomic<std::uint64_t> sample_tick_{0};
  ReportSink report_sink_;

  struct AtomicStats {
    std::atomic<std::uint64_t> opened{0}, closed{0}, ingested{0}, shed{0},
        shed_ring_full{0}, shed_session_bound{0}, shed_priority{0},
        blocked{0}, stale{0}, evicted{0}, unknown{0}, active{0}, epochs{0},
        batches{0}, lane_symbols{0}, lane_waves{0}, query_compiled{0},
        query_rejected{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace rtw::svc
