#pragma once
/// \file service.hpp
/// The sharded streaming acceptance service: thousands of concurrent
/// online-acceptor sessions multiplexed over N shard workers.
///
/// Threading model (the whole point of the design):
///
///   producers --> per-shard lock-free MPSC ring (Vyukov slot sequencing)
///                      |
///                      v   at-most-one worker per shard (atomic handoff)
///                 shard worker on the sim::ThreadPool
///                      |   drains up to drain_batch ring slots per
///                      |   EventQueue epoch; a slot may carry a whole
///                      v   run of symbols (batched admission)
///                 sessions (hash-sharded by id; worker-private, lock-free)
///
/// A session id hashes to exactly one shard, every command for it goes
/// through that shard's FIFO ring, and the shard's state is only ever
/// touched by the one worker currently holding the shard's `scheduled`
/// flag -- so per-session processing needs no locks at all, and a
/// session's commands are processed in submission order.  The handoff
/// protocol is the classic lost-wakeup-free pattern, built entirely on
/// RMW operations so it composes with the lock-free ring: a producer that
/// flips `scheduled` false->true posts a worker task; the worker parks by
/// *exchanging* `scheduled` to false (the RMW reads the latest producer
/// election attempt, so the producer's ring publication happens-before
/// the worker's re-check) and re-elects itself if a command slipped in.
///
/// Hot-path cost for a producer: one approx-occupancy read, at most one
/// hint-table probe, one CAS ring claim, one release store, one RMW on
/// the election flag.  No mutex, no syscall, no allocation beyond the
/// command's own payload.
///
/// Backpressure is explicit and adaptive.  The data plane is bounded by
/// `ring_capacity` ring slots; instead of first-come-first-shed, admission
/// sheds by *priority watermarks*: above `watermark_low` occupancy only
/// Normal and High priority sessions are admitted, above `watermark_high`
/// only High, and a genuinely full ring sheds (or blocks) everything.
/// A per-session in-flight quota (`session_quota`) prevents one hot
/// session from monopolizing the ring, and an optional age watermark
/// (`max_queue_delay_ns`) lets the worker drop data that waited in the
/// ring past its freshness bound.  Every shed is counted under its
/// reason: `ring_full`, `session_bound`, or `priority` (watermark + age).
/// Control commands (open/close/shutdown) bypass every bound through the
/// physical headroom the ring over-allocates: shedding a Close would leak
/// the session, so only the data plane sheds.
///
/// Each shard advances a private sim::EventQueue one tick per drained
/// batch; that tick count is the shard's *epoch* clock, against which
/// idle sessions are aged and evicted.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/thread_pool.hpp"
#include "rtw/svc/ring.hpp"
#include "rtw/svc/session.hpp"
#include "rtw/svc/wire.hpp"

namespace rtw::svc {

/// Ingress verdict for one command (or one batched run of symbols --
/// batched admission is all-or-nothing, a run never tears).
enum class Admit : std::uint8_t {
  Accepted,  ///< enqueued on the session's shard
  Shed,      ///< dropped at admission (shed_on_full = true)
  Blocked,   ///< not admitted, caller should retry (shed_on_full = false)
};

/// Why a Shed (or Blocked) verdict was returned.
enum class ShedReason : std::uint8_t {
  None,          ///< admitted
  RingFull,      ///< the shard ring had no free data-plane slot
  SessionBound,  ///< the session's in-flight quota was exhausted
  Priority,      ///< priority/age watermark shed under load
};

std::string to_string(Admit a);
std::string to_string(ShedReason r);

struct ServiceConfig {
  unsigned shards = 1;  ///< worker count (and ring count)
  /// Data-plane bound per shard, in ring slots (a slot holds one command:
  /// a single symbol or a whole batched run).  The physical ring is
  /// allocated with extra headroom so control commands always land.
  std::size_t ring_capacity = 1024;
  bool shed_on_full = true;  ///< full ring: true = Shed, false = Blocked
  /// Sessions idle for this many shard epochs are finished
  /// (StreamEnd::Truncated) and reported with `evicted = true`.
  /// 0 disables eviction.
  std::uint64_t idle_epochs = 0;
  std::size_t drain_batch = 256;  ///< ring slots per shard epoch
  /// Max in-flight (admitted, not yet processed) symbols per session;
  /// 0 disables the quota.  Exceeding it sheds with `SessionBound`.
  std::size_t session_quota = 0;
  /// Occupancy fraction above which Priority::Low data is shed.
  double watermark_low = 0.5;
  /// Occupancy fraction above which Priority::Normal data is also shed
  /// (High survives until the ring is physically full).
  double watermark_high = 0.875;
  /// Worker-side age watermark: a non-High data command that waited in
  /// the ring longer than this many steady-clock ns is dropped (counted
  /// as a Priority shed) instead of fed.  0 disables.
  std::uint64_t max_queue_delay_ns = 0;
  /// Per-shard capacity of the lock-free priority/quota hint table.
  std::size_t session_slots = 8192;
  /// Stamp every Nth data command with its enqueue time and record the
  /// enqueue->process delta (the true feed latency) on the worker.
  /// 0 disables sampling; age shedding stamps every command regardless.
  std::size_t latency_sample_every = 16;
  /// Route batched runs of lane-family sessions through the SIMD batch
  /// kernel (rtw/core/lane.hpp) instead of per-symbol feed_run.  Verdicts
  /// are bit-identical either way; off = always the virtual path.
  bool lane_kernel = true;
  /// Max staged lane runs before the worker flushes a kernel wave.
  std::size_t lane_wave = 256;
};

/// Monotone service-wide tallies (mirrored into obs metrics when a sink
/// is installed).
struct ServiceStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;       ///< includes evicted
  std::uint64_t ingested = 0;     ///< symbols delivered to a session
  std::uint64_t shed = 0;         ///< symbols shed, all reasons
  std::uint64_t shed_ring_full = 0;      ///< ... at a physically full ring
  std::uint64_t shed_session_bound = 0;  ///< ... by the per-session quota
  std::uint64_t shed_priority = 0;       ///< ... by priority/age watermarks
  std::uint64_t blocked = 0;      ///< Blocked verdicts returned
  std::uint64_t stale = 0;        ///< symbols dropped by the time filter
  std::uint64_t evicted = 0;      ///< sessions closed by idle eviction
  std::uint64_t unknown = 0;      ///< commands for sessions that don't exist
  std::uint64_t active = 0;       ///< currently open sessions
  std::uint64_t epochs = 0;       ///< summed shard epoch count
  std::uint64_t batches = 0;      ///< ring slots drained (batch granularity)
  std::uint64_t lane_symbols = 0; ///< symbols advanced by the batch kernel
  std::uint64_t lane_waves = 0;   ///< kernel wave dispatches
};

/// Builds the acceptor for a wire-opened session; `profile` is the Open
/// frame's body, verbatim.  Returning nullptr refuses the session.
using AcceptorFactory = std::function<std::unique_ptr<core::OnlineAcceptor>(
    SessionId, std::string_view profile)>;

class SessionManager {
public:
  explicit SessionManager(ServiceConfig config = {});
  /// Drains and truncation-closes every remaining session.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // ------------------------------------------------------- direct API

  /// Opens a session under a fresh id (control plane: never shed).
  SessionId open(std::unique_ptr<core::OnlineAcceptor> acceptor,
                 Priority priority = Priority::Normal);
  /// Opens a session under a caller-chosen id (wire replay).  Opening an
  /// id that is already live is counted as `unknown` and ignored by the
  /// shard worker.
  void open(SessionId id, std::unique_ptr<core::OnlineAcceptor> acceptor,
            Priority priority = Priority::Normal);

  /// Routes one symbol to the session's shard (data plane: bounded).
  Admit feed(SessionId id, core::Symbol symbol, core::Tick at);

  /// Batched admission: publishes the whole run in one ring slot,
  /// all-or-nothing.  Element times must be nondecreasing (they share the
  /// session's stale filter symbol by symbol).  Admission cost -- the
  /// occupancy read, table probe, ring claim and election -- is paid once
  /// for the run instead of once per symbol.
  Admit feed_batch(SessionId id, std::vector<core::TimedSymbol> run);

  /// Finishes the session and queues its SessionReport for collect().
  void close(SessionId id, core::StreamEnd end = core::StreamEnd::EndOfWord);

  // --------------------------------------------------- wire-driven API

  /// Applies one decoded wire event.  Open events build their acceptor
  /// through `factory`; Symbols events are admitted as one batched run
  /// per event, waiting out Blocked verdicts (the wire reader *is* the
  /// backpressure point) and reporting Shed if the run was shed.
  Admit apply(const WireEvent& event, const AcceptorFactory& factory);

  // ----------------------------------------------------- lifecycle

  /// Blocks until every command enqueued before this call has been
  /// processed and all shard workers are parked.
  void drain();

  /// Graceful shutdown: closes every live session with `end`, then
  /// drains.  Idempotent; the manager stays usable afterwards.
  void shutdown(core::StreamEnd end = core::StreamEnd::Truncated);

  /// Takes the reports of sessions that finished since the last call.
  std::vector<SessionReport> collect();

  /// Takes the sampled enqueue->process feed latencies (steady-clock ns)
  /// accumulated since the last call.  Call only while drained (the
  /// samples are worker-private between drains).
  std::vector<std::uint64_t> take_feed_latency_samples();

  ServiceStats stats() const;
  unsigned shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// The shard a session id routes to (exposed for tests and benches).
  unsigned shard_of(SessionId id) const noexcept;
  /// Current occupancy of a shard's ingress ring, in slots.
  std::size_t ring_depth(unsigned shard) const noexcept;

private:
  struct Command {
    enum class Kind : std::uint8_t { Open, Feed, Close, CloseAll };
    Kind kind = Kind::Feed;
    Priority priority = Priority::Normal;
    SessionId id = 0;
    core::Symbol symbol;
    core::Tick at = 0;
    core::StreamEnd end = core::StreamEnd::EndOfWord;
    std::uint64_t enqueue_ns = 0;  ///< steady-clock stamp; 0 = unstamped
    SessionTable::Slot* slot = nullptr;  ///< paired in-flight decrement
    std::vector<core::TimedSymbol> run;  ///< batched Feed; empty = single
    std::unique_ptr<core::OnlineAcceptor> acceptor;  ///< Open only

    std::size_t symbols() const noexcept {
      return kind == Kind::Feed ? (run.empty() ? 1 : run.size()) : 0;
    }
  };

  struct Entry {
    Session session;
    sim::Tick last_active;
    Entry(Session s, sim::Tick epoch)
        : session(std::move(s)), last_active(epoch) {}
  };

  struct Shard {
    explicit Shard(const ServiceConfig& config);

    MpscRing<Command> ring;
    SessionTable table;           ///< producer-readable priority/quota hints
    std::atomic<bool> scheduled{false};

    // Worker-private state (protected by the `scheduled` handoff).
    sim::EventQueue queue;        ///< epoch clock + in-shard timers
    std::unordered_map<SessionId, Entry> sessions;
    std::vector<Command> staging;
    std::vector<std::uint64_t> latency_samples;

    // Lane-kernel wave, staged during one process() pass and always
    // flushed before it returns (the LaneRuns point into `staging`).
    // One stepper per shard, built lazily from the first lane-family
    // acceptor; sessions of other families fall back to feed_run.
    std::unique_ptr<core::BatchStepper> stepper;
    bool stepper_probed = false;
    std::vector<core::LaneRun> wave;
    std::vector<Session*> wave_sessions;

    std::mutex reports_mutex;
    std::vector<SessionReport> reports;
  };

  /// Data-plane admission: watermarks, quota, ring claim, election.
  Admit admit_data(Command command, std::size_t symbols);
  /// Control-plane enqueue: never sheds; spins into the ring's headroom.
  void enqueue_control(Command command);
  void elect(Shard& shard);
  void count_shed(ShedReason reason, std::size_t symbols);
  void run_shard(Shard& shard);
  void process(Shard& shard, sim::Tick epoch);
  /// Dispatches the staged lane wave through the shard's batch stepper and
  /// folds the per-lane stale deltas into the service stats.
  void flush_wave(Shard& shard);
  void finish_session(Shard& shard, Entry& entry, core::StreamEnd end,
                      bool evicted);
  void evict_idle(Shard& shard, sim::Tick epoch);

  ServiceConfig config_;
  std::size_t watermark_low_slots_ = 0;   ///< precomputed slot thresholds
  std::size_t watermark_high_slots_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  sim::ThreadPool pool_;
  std::atomic<SessionId> next_id_{1};
  std::atomic<std::uint64_t> sample_tick_{0};

  struct AtomicStats {
    std::atomic<std::uint64_t> opened{0}, closed{0}, ingested{0}, shed{0},
        shed_ring_full{0}, shed_session_bound{0}, shed_priority{0},
        blocked{0}, stale{0}, evicted{0}, unknown{0}, active{0}, epochs{0},
        batches{0}, lane_symbols{0}, lane_waves{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace rtw::svc
