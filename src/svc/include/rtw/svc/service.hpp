#pragma once
/// \file service.hpp
/// The sharded streaming acceptance service: thousands of concurrent
/// online-acceptor sessions multiplexed over N shard workers.
///
/// Threading model (the whole point of the design):
///
///   producers --> per-shard bounded ingress ring (mutex-guarded MPSC)
///                      |
///                      v   at-most-one worker per shard (atomic handoff)
///                 shard worker on the sim::ThreadPool
///                      |   drains a batch per EventQueue epoch
///                      v
///                 sessions (hash-sharded by id; worker-private, lock-free)
///
/// A session id hashes to exactly one shard, every command for it goes
/// through that shard's FIFO ring, and the shard's state is only ever
/// touched by the one worker currently holding the shard's `scheduled`
/// flag -- so per-session processing needs no locks at all, and a
/// session's commands are processed in submission order.  The handoff
/// protocol is the classic lost-wakeup-free pattern: a producer that
/// flips `scheduled` false->true posts a worker task; the worker, after
/// draining, stores false and re-checks the ring, re-electing itself if
/// a command slipped in between.
///
/// Each shard advances a private sim::EventQueue one tick per drained
/// batch; that tick count is the shard's *epoch* clock, against which
/// idle sessions are aged and evicted.  (The queue also keeps the door
/// open for in-shard timers -- periodic snapshots, per-session deadlines
/// -- without changing the threading story.)
///
/// Backpressure is explicit: feed() returns Admit::Accepted when the
/// command was enqueued, Admit::Shed when the shard's ring was full and
/// the config says to drop (counted, never silent), or Admit::Blocked
/// when the config says the *caller* should wait and retry.  Control
/// commands (open/close/shutdown) bypass the bound: shedding a Close
/// would leak the session, so only the data plane sheds.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rtw/core/online.hpp"
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/thread_pool.hpp"
#include "rtw/svc/session.hpp"
#include "rtw/svc/wire.hpp"

namespace rtw::svc {

/// Ingress verdict for one command.
enum class Admit : std::uint8_t {
  Accepted,  ///< enqueued on the session's shard
  Shed,      ///< ring full, command dropped (shed_on_full = true)
  Blocked,   ///< ring full, caller should retry (shed_on_full = false)
};

std::string to_string(Admit a);

struct ServiceConfig {
  unsigned shards = 1;            ///< worker count (and ring count)
  std::size_t ring_capacity = 1024;  ///< per-shard ingress bound (data plane)
  bool shed_on_full = true;       ///< full ring: true = Shed, false = Blocked
  /// Sessions idle for this many shard epochs are finished
  /// (StreamEnd::Truncated) and reported with `evicted = true`.
  /// 0 disables eviction.
  std::uint64_t idle_epochs = 0;
  std::size_t drain_batch = 256;  ///< commands per shard epoch
};

/// Monotone service-wide tallies (mirrored into obs metrics when a sink
/// is installed).
struct ServiceStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;      ///< includes evicted
  std::uint64_t ingested = 0;    ///< symbols delivered to a session
  std::uint64_t shed = 0;        ///< symbols dropped at a full ring
  std::uint64_t blocked = 0;     ///< Blocked verdicts returned
  std::uint64_t stale = 0;       ///< symbols dropped by the time filter
  std::uint64_t evicted = 0;     ///< sessions closed by idle eviction
  std::uint64_t unknown = 0;     ///< commands for sessions that don't exist
  std::uint64_t active = 0;      ///< currently open sessions
  std::uint64_t epochs = 0;      ///< summed shard epoch count
};

/// Builds the acceptor for a wire-opened session; `profile` is the Open
/// frame's body, verbatim.  Returning nullptr refuses the session.
using AcceptorFactory = std::function<std::unique_ptr<core::OnlineAcceptor>(
    SessionId, std::string_view profile)>;

class SessionManager {
public:
  explicit SessionManager(ServiceConfig config = {});
  /// Drains and truncation-closes every remaining session.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // ------------------------------------------------------- direct API

  /// Opens a session under a fresh id (control plane: never shed).
  SessionId open(std::unique_ptr<core::OnlineAcceptor> acceptor);
  /// Opens a session under a caller-chosen id (wire replay).  Opening an
  /// id that is already live is counted as `unknown` and ignored by the
  /// shard worker.
  void open(SessionId id, std::unique_ptr<core::OnlineAcceptor> acceptor);

  /// Routes one symbol to the session's shard (data plane: bounded).
  Admit feed(SessionId id, core::Symbol symbol, core::Tick at);

  /// Finishes the session and queues its SessionReport for collect().
  void close(SessionId id, core::StreamEnd end = core::StreamEnd::EndOfWord);

  // --------------------------------------------------- wire-driven API

  /// Applies one decoded wire event.  Open events build their acceptor
  /// through `factory`; Symbols events feed element-by-element, waiting
  /// out Blocked verdicts (the wire reader *is* the backpressure point)
  /// and reporting Shed if any element was shed.
  Admit apply(const WireEvent& event, const AcceptorFactory& factory);

  // ----------------------------------------------------- lifecycle

  /// Blocks until every command enqueued before this call has been
  /// processed and all shard workers are parked.
  void drain();

  /// Graceful shutdown: closes every live session with `end`, then
  /// drains.  Idempotent; the manager stays usable afterwards.
  void shutdown(core::StreamEnd end = core::StreamEnd::Truncated);

  /// Takes the reports of sessions that finished since the last call.
  std::vector<SessionReport> collect();

  ServiceStats stats() const;
  unsigned shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// The shard a session id routes to (exposed for tests and benches).
  unsigned shard_of(SessionId id) const noexcept;

private:
  struct Command {
    enum class Kind : std::uint8_t { Open, Feed, Close, CloseAll };
    Kind kind = Kind::Feed;
    SessionId id = 0;
    core::Symbol symbol;
    core::Tick at = 0;
    core::StreamEnd end = core::StreamEnd::EndOfWord;
    std::unique_ptr<core::OnlineAcceptor> acceptor;  ///< Open only
  };

  struct Entry {
    Session session;
    sim::Tick last_active;
    Entry(Session s, sim::Tick epoch)
        : session(std::move(s)), last_active(epoch) {}
  };

  struct Shard {
    std::mutex mutex;             ///< guards `ring` only
    std::deque<Command> ring;
    std::atomic<bool> scheduled{false};

    // Worker-private state (protected by the `scheduled` handoff).
    sim::EventQueue queue;        ///< epoch clock + in-shard timers
    std::unordered_map<SessionId, Entry> sessions;
    std::vector<Command> staging;

    std::mutex reports_mutex;
    std::vector<SessionReport> reports;
  };

  Admit enqueue(Command command, bool bounded);
  void run_shard(Shard& shard);
  void process(Shard& shard, sim::Tick epoch);
  void finish_session(Shard& shard, Entry& entry, core::StreamEnd end,
                      bool evicted);
  void evict_idle(Shard& shard, sim::Tick epoch);

  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  sim::ThreadPool pool_;
  std::atomic<SessionId> next_id_{1};

  struct AtomicStats {
    std::atomic<std::uint64_t> opened{0}, closed{0}, ingested{0}, shed{0},
        blocked{0}, stale{0}, evicted{0}, unknown{0}, active{0}, epochs{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace rtw::svc
