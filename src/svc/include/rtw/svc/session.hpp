#pragma once
/// \file session.hpp
/// One stream's server-side state: an OnlineAcceptor plus the ingress
/// hygiene a real wire needs.
///
/// The OnlineAcceptor contract requires nondecreasing feed times (the
/// stream *is* a timed word, Definition 3.1) and enforces it with a
/// thrown ModelError.  A served stream cannot afford that strictness:
/// fault-injected wire traffic reorders frames (delay faults), so a
/// symbol can arrive carrying a timestamp below the session's high-water
/// mark.  The Session absorbs those as *stale* -- dropped and counted,
/// never fed -- which keeps the acceptor's view a well-formed timed word
/// no matter what the wire did.  Duplicated frames pass through: a timed
/// word may legitimately repeat (symbol, time) pairs, so deduplication is
/// the acceptor's business (and the acceptors in this library are
/// duplicate-tolerant by construction or lock first).

#include <cstdint>
#include <memory>
#include <utility>

#include "rtw/core/lane.hpp"
#include "rtw/core/online.hpp"
#include "rtw/svc/ring.hpp"

namespace rtw::svc {

using SessionId = std::uint64_t;

/// Terminal record for one stream, produced when the session closes (or
/// is evicted / swept up by shutdown).
struct SessionReport {
  SessionId id = 0;
  core::Verdict verdict = core::Verdict::Undetermined;
  core::RunResult result;            ///< the acceptor's Definition 3.4 record
  std::uint64_t fed = 0;             ///< symbols delivered to the acceptor
  std::uint64_t stale_dropped = 0;   ///< symbols rejected by the time filter
  Priority priority = Priority::Normal;  ///< admission class of the stream
  bool evicted = false;              ///< closed by idle eviction, not a Close
};

/// A single stream.  Not thread-safe: a session lives on exactly one
/// shard and is only touched by that shard's worker.
class Session {
public:
  Session(SessionId id, std::unique_ptr<core::OnlineAcceptor> acceptor,
          Priority priority = Priority::Normal)
      : id_(id), acceptor_(std::move(acceptor)), priority_(priority) {}

  SessionId id() const noexcept { return id_; }
  Priority priority() const noexcept { return priority_; }

  /// Wall-clock enqueue stamp (steady-clock ns) of the most recent command
  /// the shard worker processed for this session; 0 until a stamped
  /// command arrives.  Feeds the age watermark and latency accounting.
  std::uint64_t last_enqueue_ns() const noexcept { return last_enqueue_ns_; }
  void note_enqueue_ns(std::uint64_t ns) noexcept {
    if (ns) last_enqueue_ns_ = ns;
  }

  /// Feeds one symbol, dropping it as stale when its time is below the
  /// session's high-water mark.  Returns the (possibly unchanged) verdict.
  core::Verdict feed(core::Symbol symbol, core::Tick at) {
    if (finished_) return acceptor_->verdict();
    if (filter_.any && at < filter_.high_water) {
      ++filter_.stale;
      return acceptor_->verdict();
    }
    filter_.high_water = at;
    filter_.any = true;
    ++filter_.fed;
    return acceptor_->feed(symbol, at);
  }

  /// Feeds a run of symbols (one batched ring slot) through the same
  /// stale filter; returns the verdict after the last element.  The
  /// per-symbol filter is unchanged, so a batched stream is verdict-bit
  /// identical to feeding the same elements one call at a time.
  core::Verdict feed_run(const core::TimedSymbol* elements, std::size_t n) {
    if (finished_) return acceptor_->verdict();
    const core::Verdict settled = acceptor_->verdict();
    if (core::final_verdict(settled)) {
      // Settled acceptor: every feed is a no-op, but the stale filter
      // still counts -- run it without n virtual calls.
      for (std::size_t i = 0; i < n; ++i) {
        const core::Tick at = elements[i].time;
        if (filter_.any && at < filter_.high_water) {
          ++filter_.stale;
          continue;
        }
        filter_.high_water = at;
        filter_.any = true;
        ++filter_.fed;
      }
      return settled;
    }
    for (std::size_t i = 0; i < n; ++i) feed(elements[i].sym, elements[i].time);
    return acceptor_->verdict();
  }

  /// Settles the verdict; idempotent.
  core::Verdict finish(core::StreamEnd end) {
    finished_ = true;
    return acceptor_->finish(end);
  }

  core::Verdict verdict() const { return acceptor_->verdict(); }
  bool finished() const noexcept { return finished_; }
  std::uint64_t fed() const noexcept { return filter_.fed; }
  std::uint64_t stale_dropped() const noexcept { return filter_.stale; }
  const core::OnlineAcceptor& acceptor() const { return *acceptor_; }
  core::OnlineAcceptor& acceptor() { return *acceptor_; }

  /// The stale filter as lane-kernel state: a batch stepper advances it in
  /// SIMD registers with feed()'s exact semantics (see rtw/core/lane.hpp).
  core::LaneFilter& lane_filter() noexcept { return filter_; }

  /// Wave membership flag, owned by the shard worker: set while a run for
  /// this session sits in the staged lane wave, so a second run (or a
  /// close) for the same session flushes the wave first to preserve
  /// submission order.
  bool in_wave() const noexcept { return in_wave_; }
  void set_in_wave(bool in_wave) noexcept { in_wave_ = in_wave; }

  /// The terminal record (call after finish()).
  SessionReport report(bool evicted) const {
    SessionReport r;
    r.id = id_;
    r.verdict = acceptor_->verdict();
    r.result = acceptor_->result();
    r.fed = filter_.fed;
    r.stale_dropped = filter_.stale;
    r.priority = priority_;
    r.evicted = evicted;
    return r;
  }

private:
  SessionId id_;
  std::unique_ptr<core::OnlineAcceptor> acceptor_;
  core::LaneFilter filter_;
  Priority priority_ = Priority::Normal;
  std::uint64_t last_enqueue_ns_ = 0;
  bool finished_ = false;
  bool in_wave_ = false;
};

}  // namespace rtw::svc
