#include "rtw/svc/wire.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "rtw/cer/parser.hpp"

namespace rtw::svc {

namespace {

constexpr std::size_t kHeaderBytes = 4;              ///< u32le payload length
constexpr std::size_t kPayloadHeaderBytes = 8 + 1;   ///< session + op

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string encode(SessionId session, Op op, std::string_view body) {
  std::string out;
  out.reserve(kHeaderBytes + kPayloadHeaderBytes + body.size());
  put_u32le(out,
            static_cast<std::uint32_t>(kPayloadHeaderBytes + body.size()));
  put_u64le(out, session);
  out.push_back(static_cast<char>(op));
  out.append(body);
  return out;
}

}  // namespace

std::string to_string(Op op) {
  switch (op) {
    case Op::Open: return "open";
    case Op::Feed: return "feed";
    case Op::Close: return "close";
    case Op::CloseTruncated: return "close_truncated";
    case Op::FeedBatch: return "feed_batch";
    case Op::OpenPri: return "open_pri";
    case Op::Hello: return "hello";
    case Op::HelloAck: return "hello_ack";
    case Op::Verdict: return "verdict";
    case Op::ShedNotice: return "shed_notice";
    case Op::SubmitQuery: return "submit_query";
  }
  return "op?" + std::to_string(static_cast<unsigned>(op));
}

std::string to_string(DecodeError e) {
  switch (e) {
    case DecodeError::None: return "none";
    case DecodeError::ShortFrame: return "short_frame";
    case DecodeError::Oversized: return "oversized";
    case DecodeError::UnknownOp: return "unknown_op";
    case DecodeError::MalformedBody: return "malformed_body";
  }
  return "decode_error?";
}

std::string encode_open(SessionId session, std::string_view profile,
                        Priority priority) {
  if (priority == Priority::Normal) return encode(session, Op::Open, profile);
  std::string body;
  body.reserve(1 + profile.size());
  body.push_back(static_cast<char>(priority));
  body.append(profile);
  return encode(session, Op::OpenPri, body);
}

std::string encode_feed(SessionId session,
                        const std::vector<core::TimedSymbol>& symbols) {
  return encode(session, Op::Feed, core::serialize_elements(symbols));
}

std::string encode_feed_batch(SessionId session,
                              const std::vector<core::TimedSymbol>& symbols) {
  return encode(session, Op::FeedBatch, core::serialize_elements(symbols));
}

std::string encode_close(SessionId session, core::StreamEnd end) {
  return encode(session,
                end == core::StreamEnd::EndOfWord ? Op::Close
                                                  : Op::CloseTruncated,
                {});
}

std::string encode_hello(std::uint8_t min_version, std::uint8_t max_version) {
  std::string body;
  body.push_back(static_cast<char>(min_version));
  body.push_back(static_cast<char>(max_version));
  return encode(/*session=*/0, Op::Hello, body);
}

std::string encode_hello_ack(std::uint8_t version) {
  std::string body(1, static_cast<char>(version));
  return encode(/*session=*/0, Op::HelloAck, body);
}

std::string encode_verdict(SessionId session, core::Verdict verdict,
                           bool exact, bool evicted, std::uint64_t fed,
                           std::uint64_t stale) {
  std::string body;
  body.reserve(3 + 8 + 8);
  body.push_back(static_cast<char>(verdict));
  body.push_back(static_cast<char>(exact ? 1 : 0));
  body.push_back(static_cast<char>(evicted ? 1 : 0));
  put_u64le(body, fed);
  put_u64le(body, stale);
  return encode(session, Op::Verdict, body);
}

std::string encode_submit_query(SessionId session, std::string_view query) {
  return encode(session, Op::SubmitQuery, query);
}

std::string encode_shed(SessionId session, AdmitResult admit,
                        std::uint64_t symbols) {
  std::string body;
  body.reserve(2 + 8);
  body.push_back(static_cast<char>(admit.admit));
  body.push_back(static_cast<char>(admit.reason));
  put_u64le(body, symbols);
  return encode(session, Op::ShedNotice, body);
}

void Decoder::push(std::string_view bytes) {
  if (!ok()) return;
  buffer_.append(bytes);
  decode();
  // Reclaim the consumed prefix so a long-lived stream stays O(frame).
  if (scan_ > 0) {
    buffer_.erase(0, scan_);
    scan_ = 0;
  }
}

bool Decoder::next(WireEvent& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void Decoder::fail(DecodeError code, std::string message) {
  error_code_ = code;
  error_ = std::move(message);
  buffer_.clear();
  scan_ = 0;
  in_feed_ = false;
}

void Decoder::decode() {
  while (ok()) {
    const std::size_t available = buffer_.size() - scan_;

    if (in_feed_) {
      // Stream the Feed body: parse as many complete elements as the
      // received bytes allow, holding back an element that might still
      // grow across the chunk boundary (final_chunk = false) until the
      // rest of the body arrives.
      if (feed_remaining_ == 0) {
        in_feed_ = false;
        ++frames_;
        continue;
      }
      if (available == 0) return;
      const std::size_t take = std::min(available, feed_remaining_);
      const bool final_chunk = take == feed_remaining_;
      auto parsed =
          core::parse_prefix(std::string_view(buffer_).substr(scan_, take),
                             ~std::size_t{0}, final_chunk);
      if (!parsed.symbols.empty()) {
        WireEvent ev;
        ev.kind = WireEvent::Kind::Symbols;
        ev.session = feed_session_;
        ev.symbols = std::move(parsed.symbols);
        ready_.push_back(std::move(ev));
      }
      scan_ += parsed.consumed;
      feed_remaining_ -= parsed.consumed;
      if (final_chunk) {
        if (parsed.consumed < take)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: malformed feed body");
        continue;  // frame complete; the branch above closes it
      }
      return;  // need more body bytes
    }

    if (available < kHeaderBytes + kPayloadHeaderBytes) return;
    const std::size_t len = get_u32le(buffer_.data() + scan_);
    if (len < kPayloadHeaderBytes)
      return fail(DecodeError::ShortFrame,
                  "svc::Decoder: frame shorter than its payload header");
    if (len > max_frame_bytes_)
      return fail(DecodeError::Oversized,
                  "svc::Decoder: frame exceeds the size cap");

    const SessionId session = get_u64le(buffer_.data() + scan_ + kHeaderBytes);
    const auto op = static_cast<Op>(
        static_cast<unsigned char>(buffer_[scan_ + kHeaderBytes + 8]));
    const std::size_t body_len = len - kPayloadHeaderBytes;

    if (op == Op::Feed) {
      // Body may be consumed incrementally; commit to the frame now.
      scan_ += kHeaderBytes + kPayloadHeaderBytes;
      in_feed_ = true;
      feed_session_ = session;
      feed_remaining_ = body_len;
      continue;
    }

    // Control frames are tiny, and a FeedBatch is one all-or-nothing
    // admission unit: wait for the whole frame.
    if (available < kHeaderBytes + len) return;
    const std::string_view body =
        std::string_view(buffer_).substr(scan_ + kHeaderBytes +
                                             kPayloadHeaderBytes,
                                         body_len);
    WireEvent ev;
    ev.session = session;
    switch (op) {
      case Op::Open:
        ev.kind = WireEvent::Kind::Open;
        ev.profile = std::string(body);
        break;
      case Op::OpenPri: {
        if (body.empty())
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: OpenPri frame without a priority byte");
        const auto raw = static_cast<unsigned char>(body[0]);
        if (raw > static_cast<unsigned char>(Priority::High))
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: OpenPri with an unknown priority");
        ev.kind = WireEvent::Kind::Open;
        ev.priority = static_cast<Priority>(raw);
        ev.profile = std::string(body.substr(1));
        break;
      }
      case Op::FeedBatch: {
        auto parsed = core::parse_prefix(body, ~std::size_t{0},
                                         /*final_chunk=*/true);
        if (parsed.consumed < body.size())
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: malformed feed-batch body");
        ev.kind = WireEvent::Kind::Symbols;
        ev.symbols = std::move(parsed.symbols);
        break;
      }
      case Op::Close:
        ev.kind = WireEvent::Kind::Close;
        ev.end = core::StreamEnd::EndOfWord;
        break;
      case Op::CloseTruncated:
        ev.kind = WireEvent::Kind::Close;
        ev.end = core::StreamEnd::Truncated;
        break;
      case Op::Hello:
        if (body.size() != 2)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: Hello body must be [min][max]");
        ev.kind = WireEvent::Kind::Hello;
        ev.version_min = static_cast<std::uint8_t>(body[0]);
        ev.version_max = static_cast<std::uint8_t>(body[1]);
        if (ev.version_min > ev.version_max)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: Hello with an inverted version range");
        break;
      case Op::HelloAck:
        if (body.size() != 1)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: HelloAck body must be [version]");
        ev.kind = WireEvent::Kind::HelloAck;
        ev.version = static_cast<std::uint8_t>(body[0]);
        break;
      case Op::Verdict: {
        if (body.size() != 3 + 8 + 8)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: Verdict body has a fixed 19-byte layout");
        const auto raw = static_cast<unsigned char>(body[0]);
        if (raw > static_cast<unsigned char>(core::Verdict::Rejecting))
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: Verdict with an unknown verdict byte");
        ev.kind = WireEvent::Kind::Verdict;
        ev.verdict = static_cast<core::Verdict>(raw);
        ev.exact = body[1] != 0;
        ev.evicted = body[2] != 0;
        ev.fed = get_u64le(body.data() + 3);
        ev.stale = get_u64le(body.data() + 11);
        break;
      }
      case Op::SubmitQuery: {
        // Validate the query text while the frame is in hand: a client
        // that cannot even form a syntactically valid query is as broken
        // as one sending a garbled Feed body, and gets the same sticky
        // treatment.  (Compile limits are a resource policy, not a
        // framing error -- the session layer handles those.)
        auto parsed = cer::parse(body);
        if (!parsed.ok()) {
          std::string msg = "svc::Decoder: malformed query: ";
          msg += parsed.error;
          msg += " at offset ";
          msg += std::to_string(parsed.offset);
          return fail(DecodeError::MalformedBody, std::move(msg));
        }
        ev.kind = WireEvent::Kind::SubmitQuery;
        ev.profile = std::string(body);
        break;
      }
      case Op::ShedNotice: {
        if (body.size() != 2 + 8)
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: ShedNotice body has a fixed "
                      "10-byte layout");
        const auto raw_admit = static_cast<unsigned char>(body[0]);
        const auto raw_reason = static_cast<unsigned char>(body[1]);
        if (raw_admit > static_cast<unsigned char>(Admit::Blocked) ||
            raw_reason > static_cast<unsigned char>(ShedReason::Priority))
          return fail(DecodeError::MalformedBody,
                      "svc::Decoder: ShedNotice with an unknown "
                      "admit/reason byte");
        ev.kind = WireEvent::Kind::Shed;
        ev.admit = AdmitResult{static_cast<Admit>(raw_admit),
                               static_cast<ShedReason>(raw_reason)};
        ev.shed_symbols = get_u64le(body.data() + 2);
        break;
      }
      default:
        return fail(DecodeError::UnknownOp, "svc::Decoder: unknown opcode");
    }
    ready_.push_back(std::move(ev));
    scan_ += kHeaderBytes + len;
    ++frames_;
  }
}

std::vector<std::string> apply_faults(const std::vector<std::string>& frames,
                                      const sim::FaultPlan& plan,
                                      sim::FaultCounters* counters) {
  sim::FaultInjector injector(plan);

  // Each surviving copy is slotted at (original index + drawn delay); a
  // stable sort on the slot reorders delayed frames past their neighbors
  // while preserving emission order among ties -- deterministic for a
  // given (frames, plan).
  struct Slot {
    std::uint64_t position;
    const std::string* frame;
  };
  std::vector<Slot> slots;
  slots.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto verdict = injector.link_verdict(
        0, 1, static_cast<std::uint64_t>(i), static_cast<sim::Tick>(i));
    if (!verdict.deliver) continue;
    for (std::uint32_t c = 0; c < verdict.copies; ++c)
      slots.push_back(Slot{static_cast<std::uint64_t>(i) +
                               verdict.extra_delay,
                           &frames[i]});
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.position < b.position;
                   });

  std::vector<std::string> out;
  out.reserve(slots.size());
  for (const auto& slot : slots) out.push_back(*slot.frame);
  if (counters) *counters = injector.counters();
  return out;
}

}  // namespace rtw::svc
