#include "rtw/svc/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rtw::svc::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& address, std::uint16_t port,
                sockaddr_in& out, std::string& error) {
  out = {};
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &out.sin_addr) != 1) {
    error = "inet_pton: invalid IPv4 address '" + address + "'";
    return false;
  }
  return true;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Listener make_listener(const std::string& address, std::uint16_t port,
                       int backlog) {
  Listener out;
  sockaddr_in addr{};
  if (!parse_addr(address, port, addr, out.error)) return out;

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    out.error = errno_string("socket");
    return out;
  }
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    out.error = errno_string("setsockopt(SO_REUSEADDR)");
    return out;
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    out.error = errno_string("bind");
    return out;
  }
  if (::listen(fd.get(), backlog) < 0) {
    out.error = errno_string("listen");
    return out;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    out.error = errno_string("getsockname");
    return out;
  }
  out.port = ntohs(bound.sin_port);
  out.fd = std::move(fd);
  return out;
}

ConnectResult connect_nonblocking(const std::string& address,
                                  std::uint16_t port) {
  ConnectResult out;
  sockaddr_in addr{};
  if (!parse_addr(address, port, addr, out.error)) return out;
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    out.error = errno_string("socket");
    return out;
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    out.error = errno_string("connect");
    return out;
  }
  out.fd = std::move(fd);
  return out;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_tcp_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool set_sndbuf(int fd, int bytes) {
  return ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) == 0;
}

bool set_rcvbuf(int fd, int bytes) {
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

std::uint64_t raise_nofile_limit(std::uint64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  rlimit raised = lim;
  raised.rlim_cur = want > lim.rlim_max ? lim.rlim_max : want;
  if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) return lim.rlim_cur;
  return raised.rlim_cur;
}

}  // namespace rtw::svc::net
