#include "rtw/svc/net/epoll.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rtw::svc::net {

Epoll::Epoll() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!fd_.valid())
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
  events_.resize(1024);
}

bool Epoll::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  return ::epoll_ctl(fd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Epoll::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  return ::epoll_ctl(fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

bool Epoll::del(int fd) {
  return ::epoll_ctl(fd_.get(), EPOLL_CTL_DEL, fd, nullptr) == 0;
}

const std::vector<epoll_event>& Epoll::wait(int timeout_ms) {
  static const std::vector<epoll_event> kEmpty;
  const int n = ::epoll_wait(fd_.get(), events_.data(),
                             static_cast<int>(events_.size()), timeout_ms);
  if (n <= 0) return kEmpty;
  if (static_cast<std::size_t>(n) == events_.size())
    events_.resize(events_.size() * 2);  // saturated: grow for next time
  ready_.assign(events_.begin(), events_.begin() + n);
  return ready_;
}

EventFd::EventFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

void EventFd::ring() noexcept {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const auto n =
      ::write(fd_.get(), &one, sizeof(one));
}

void EventFd::drain() noexcept {
  std::uint64_t value = 0;
  [[maybe_unused]] const auto n =
      ::read(fd_.get(), &value, sizeof(value));
}

}  // namespace rtw::svc::net
