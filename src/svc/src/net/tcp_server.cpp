#include "rtw/svc/net/tcp_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace rtw::svc::net {

namespace {

/// Staging-buffer refill size: big enough to amortize write(2) calls,
/// small enough that a slow reader's memory cost stays bounded by the
/// logical buffer's write_buffer_limit accounting.
constexpr std::size_t kStageBytes = 256 * 1024;

/// Reactor poll cadence (ms) while admission-parked connections exist:
/// ring drain has no doorbell, so unblocking is polled.
constexpr int kRetryTickMs = 2;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TcpServer::TcpServer(Server& server)
    : server_(server), net_(server.config().net) {}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (!epoll_.ok()) {
    error_ = epoll_.error();
    return false;
  }
  if (!wakeup_.ok()) {
    error_ = "eventfd: setup failed";
    return false;
  }
  listener_ = make_listener(net_.bind_address, net_.port, net_.backlog);
  if (!listener_.ok()) {
    error_ = listener_.error;
    return false;
  }
  port_ = listener_.port;
  if (!epoll_.add(listener_.fd.get(), EPOLLIN | EPOLLET,
                  static_cast<std::uint64_t>(listener_.fd.get())) ||
      !epoll_.add(wakeup_.fd(), EPOLLIN,
                  static_cast<std::uint64_t>(wakeup_.fd()))) {
    error_ = std::string("epoll_ctl: ") + std::strerror(errno);
    return false;
  }
  read_buffer_.resize(net_.read_chunk ? net_.read_chunk : 4096);

  // Verdicts land on shard workers; hand the reactor a doorbell.
  server_.set_wakeup([this](const std::shared_ptr<Connection>& conn) {
    {
      std::lock_guard lock(pending_mutex_);
      pending_.push_back(conn->id());
    }
    wakeup_.ring();
  });

  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void TcpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  wakeup_.ring();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats s;
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.rejected_capacity =
      stats_.rejected_capacity.load(std::memory_order_relaxed);
  s.closed = stats_.closed.load(std::memory_order_relaxed);
  s.active = stats_.active.load(std::memory_order_relaxed);
  s.read_bytes = stats_.read_bytes.load(std::memory_order_relaxed);
  s.written_bytes = stats_.written_bytes.load(std::memory_order_relaxed);
  s.read_pauses = stats_.read_pauses.load(std::memory_order_relaxed);
  s.frame_errors = stats_.frame_errors.load(std::memory_order_relaxed);
  return s;
}

void TcpServer::loop() {
  bool draining = false;
  std::uint64_t drain_deadline_ms = 0;

  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      // Graceful drain, phase 1: no new connections, no new sessions.
      if (listener_.fd.valid()) {
        epoll_.del(listener_.fd.get());
        listener_.fd.reset();
        accept_retry_ = false;
      }
      for (auto& [fd, conn] : conns_) conn.logical->finish_input();
      // Phase 2: settle every verdict into the output buffers.  Blocks
      // this thread, but wakeups only enqueue to pending_, so the drain
      // cannot deadlock on us.
      server_.shutdown();
      draining = true;
      drain_deadline_ms = now_ms() + net_.drain_timeout_ms;
    }

    if (draining) {
      // Phase 3: flush.  Exit once every connection completed (or gave
      // up) or the drain budget is spent.
      for (auto it = conns_.begin(); it != conns_.end();) {
        const int fd = it->first;
        Conn& conn = it->second;
        ++it;  // flush/reap may erase
        if (!flush_writes(fd, conn)) continue;
        reap_if_finished(fd, conn);
      }
      if (conns_.empty() || now_ms() >= drain_deadline_ms) break;
    }

    int timeout = -1;
    if (draining || admission_paused_count_ > 0 || accept_retry_)
      timeout = kRetryTickMs;
    const auto& ready = epoll_.wait(timeout);

    // Retry accepts dropped on fd exhaustion: the backlog never re-edges.
    if (accept_retry_ && listener_.fd.valid()) do_accept();

    for (const auto& ev : ready) {
      const int fd = static_cast<int>(ev.data.u64);
      if (listener_.fd.valid() && fd == listener_.fd.get()) {
        do_accept();
        continue;
      }
      if (fd == wakeup_.fd()) {
        wakeup_.drain();
        continue;  // pending_ handled below
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = it->second;

      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        close_conn(fd);
        continue;
      }
      if (ev.events & EPOLLOUT) {
        if (!flush_writes(fd, conn)) continue;
        maybe_resume_reads(fd, conn);
        if (conns_.count(fd) == 0) continue;  // resume read tore it down
      }
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) {
        if (conn.read_paused) {
          conn.read_ready = true;  // remember the edge for the resume
        } else {
          handle_readable(fd, conn);
        }
      }
    }

    drain_wakeups();

    // Retry admission-parked connections: the shard rings drain without a
    // doorbell, so this is polled at kRetryTickMs.
    if (admission_paused_count_ > 0) {
      for (auto it = conns_.begin(); it != conns_.end();) {
        const int fd = it->first;
        Conn& conn = it->second;
        ++it;
        if (conn.admission_paused) maybe_resume_reads(fd, conn);
      }
    }
  }

  // Force-close whatever outlived the drain budget.
  while (!conns_.empty()) close_conn(conns_.begin()->first);
  server_.set_wakeup(nullptr);
}

void TcpServer::do_accept() {
  accept_retry_ = false;
  for (;;) {
    const int raw = ::accept4(listener_.fd.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE/ENOBUFS etc: the listener edge is consumed but the
      // backlog still holds queued connections that will never re-edge.
      // Poll-retry every loop tick instead of stranding them until a new
      // SYN arrives.
      accept_retry_ = true;
      return;
    }
    if (conns_.size() >= net_.max_connections) {
      ::close(raw);
      stats_.rejected_capacity.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Fd fd(raw);
    set_tcp_nodelay(raw);
    if (net_.sndbuf > 0) set_sndbuf(raw, net_.sndbuf);
    if (net_.rcvbuf > 0) set_rcvbuf(raw, net_.rcvbuf);
    if (!epoll_.add(raw, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                    static_cast<std::uint64_t>(raw))) {
      continue;  // fd closes via RAII
    }
    Conn conn;
    conn.fd = std::move(fd);
    conn.logical = server_.connect();
    by_logical_.emplace(conn.logical->id(), raw);
    conns_.emplace(raw, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.active.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::handle_readable(int fd, Conn& conn) {
  for (;;) {
    const ssize_t n = ::read(fd, read_buffer_.data(), read_buffer_.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(fd);  // ECONNRESET and friends
      return;
    }
    if (n == 0) {
      conn.peer_eof = true;
      conn.logical->finish_input();
      break;
    }
    stats_.read_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
    if (!conn.logical->on_bytes(
            std::string_view(read_buffer_.data(),
                             static_cast<std::size_t>(n)))) {
      stats_.frame_errors.fetch_add(1, std::memory_order_relaxed);
      close_conn(fd);
      return;
    }
    if (conn.logical->paused()) {
      // Admission-Blocked event parked: stop reading, poll-retry.
      conn.read_paused = true;
      conn.admission_paused = true;
      ++admission_paused_count_;
      stats_.read_pauses.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (conn.logical->output_size() > net_.write_buffer_limit) {
      // Slow reader: flush what the socket takes, then pause reads until
      // the buffer drains below half the limit.
      if (!flush_writes(fd, conn)) return;
      if (conn.logical->output_size() > net_.write_buffer_limit) {
        conn.read_paused = true;
        stats_.read_pauses.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  // Replies (HelloAck, notices) usually fit the socket buffer: write
  // eagerly instead of waiting for an EPOLLOUT edge.
  if (conns_.count(fd) == 0) return;  // closed above
  if (!flush_writes(fd, conn)) return;
  reap_if_finished(fd, conn);
}

bool TcpServer::flush_writes(int fd, Conn& conn) {
  for (;;) {
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
      if (conn.logical->take_output(conn.outbuf, kStageBytes) == 0) break;
    }
    const ssize_t n = ::write(fd, conn.outbuf.data() + conn.out_off,
                              conn.outbuf.size() - conn.out_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT edge pending
      if (errno == EINTR) continue;
      close_conn(fd);  // EPIPE/ECONNRESET
      return false;
    }
    conn.out_off += static_cast<std::size_t>(n);
    stats_.written_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
  }
  return true;
}

void TcpServer::maybe_resume_reads(int fd, Conn& conn) {
  if (!conn.read_paused) return;
  if (conn.admission_paused) {
    if (!conn.logical->retry_pending()) return;  // rings still full
    conn.admission_paused = false;
    --admission_paused_count_;
  }
  // Write-side backpressure releases at half the limit (hysteresis so a
  // borderline conn doesn't thrash pause/resume per frame).
  const std::size_t staged =
      conn.outbuf.size() - conn.out_off + conn.logical->output_size();
  if (staged > net_.write_buffer_limit / 2) return;
  conn.read_paused = false;
  conn.read_ready = false;
  // Edge-triggered sockets never re-announce bytes that were already in
  // the kernel rcvbuf when the pause began, so resume with an
  // unconditional read -- read_ready alone would stall any stream whose
  // tail arrived before the pause lifted.  A spurious resume costs one
  // EAGAIN.  May tear the connection down (framing error, EOF + complete):
  // callers must re-look-up `fd` before touching `conn` again.
  handle_readable(fd, conn);
}

bool TcpServer::reap_if_finished(int fd, Conn& conn) {
  if (conn.logical->dead()) {
    close_conn(fd);
    return true;
  }
  // complete() implies input finished -- via physical FIN (peer_eof) or
  // the drain's finish_input() -- so no peer_eof check: a drained conn
  // whose verdicts are flushed closes without waiting for the client.
  if (conn.logical->complete() && conn.out_off == conn.outbuf.size()) {
    close_conn(fd);
    return true;
  }
  return false;
}

void TcpServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.admission_paused) --admission_paused_count_;
  epoll_.del(fd);
  by_logical_.erase(conn.logical->id());
  server_.disconnect(conn.logical);
  conns_.erase(it);  // Fd RAII closes the socket
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::drain_wakeups() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(pending_mutex_);
    ids.swap(pending_);
  }
  for (const std::uint64_t id : ids) {
    const auto lit = by_logical_.find(id);
    if (lit == by_logical_.end()) continue;  // conn already closed
    const int fd = lit->second;
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    if (!flush_writes(fd, conn)) continue;
    maybe_resume_reads(fd, conn);
    const auto again = conns_.find(fd);  // resume read may have closed it
    if (again == conns_.end()) continue;
    reap_if_finished(fd, again->second);
  }
}

}  // namespace rtw::svc::net
