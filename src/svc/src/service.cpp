#include "rtw/svc/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "rtw/cer/acceptor.hpp"
#include "rtw/cer/compile.hpp"
#include "rtw/cer/parser.hpp"
#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"

namespace rtw::svc {

namespace {

/// splitmix64 finalizer: spreads consecutive session ids across shards.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Physical slots reserved above the data-plane bound so control
/// commands (open/close/close-all) always find room.
constexpr std::size_t kControlHeadroom = 64;

/// Cold-path handle bundle for the svc metric family (names are the
/// JSONL vocabulary: subsystem first, snake_case).
struct Metrics {
  obs::Counter& ingested;
  obs::Counter& shed;
  obs::Counter& shed_ring_full;
  obs::Counter& shed_session_bound;
  obs::Counter& shed_priority;
  obs::Counter& stale;
  obs::Counter& evicted;
  obs::Counter& opened;
  obs::Counter& closed;
  obs::Counter& unknown;
  obs::Gauge& active;
  obs::Counter& query_compiled;
  obs::Counter& query_rejected;
  obs::HistogramMetric& query_compile_ns;

  static Metrics& get() {
    static Metrics m{
        obs::MetricsRegistry::instance().counter("svc.symbols_ingested"),
        obs::MetricsRegistry::instance().counter("svc.shed"),
        obs::MetricsRegistry::instance().counter("svc.shed.ring_full"),
        obs::MetricsRegistry::instance().counter("svc.shed.session_bound"),
        obs::MetricsRegistry::instance().counter("svc.shed.priority"),
        obs::MetricsRegistry::instance().counter("svc.stale"),
        obs::MetricsRegistry::instance().counter("svc.sessions_evicted"),
        obs::MetricsRegistry::instance().counter("svc.sessions_opened"),
        obs::MetricsRegistry::instance().counter("svc.sessions_closed"),
        obs::MetricsRegistry::instance().counter("svc.unknown_session"),
        obs::MetricsRegistry::instance().gauge("svc.sessions_active"),
        obs::MetricsRegistry::instance().counter("svc.query.compiled"),
        obs::MetricsRegistry::instance().counter("svc.query.rejected"),
        // Compile latency in log2(ns) bins: 2^0 .. 2^32 ns covers a
        // sub-microsecond parse through a pathological multi-second one.
        obs::MetricsRegistry::instance().histogram("svc.query.compile_ns", 0,
                                                   32),
    };
    return m;
  }
};

/// Per-shard ring-depth gauges, registered lazily on the cold path.
obs::Gauge& depth_gauge(unsigned shard) {
  return obs::MetricsRegistry::instance().gauge(
      "svc.ring_depth.shard" + std::to_string(shard));
}

}  // namespace

std::string to_string(Admit a) {
  switch (a) {
    case Admit::Accepted: return "accepted";
    case Admit::Shed: return "shed";
    case Admit::Blocked: return "blocked";
  }
  return "admit?";
}

std::string to_string(ShedReason r) {
  switch (r) {
    case ShedReason::None: return "none";
    case ShedReason::RingFull: return "ring_full";
    case ShedReason::SessionBound: return "session_bound";
    case ShedReason::Priority: return "priority";
  }
  return "shed?";
}

std::string to_string(const AdmitResult& r) {
  std::string out = to_string(r.admit);
  if (r.reason != ShedReason::None) {
    out += '(';
    out += to_string(r.reason);
    out += ')';
  }
  return out;
}

SessionManager::Shard::Shard(const IngressConfig& ingress)
    : ring(ingress.ring_capacity + kControlHeadroom),
      table(ingress.session_slots) {}

SessionManager::SessionManager(ServerConfig config)
    : shard_cfg_(config.shard),
      ingress_cfg_(config.ingress),
      pool_(config.shard.count == 0 ? 1 : config.shard.count) {
  if (shard_cfg_.count == 0) shard_cfg_.count = 1;
  if (ingress_cfg_.ring_capacity == 0) ingress_cfg_.ring_capacity = 1;
  if (shard_cfg_.drain_batch == 0) shard_cfg_.drain_batch = 1;
  const auto clamp01 = [](double f) {
    return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
  };
  // Ceil, not floor: the watermark means "shed *above* this occupancy
  // fraction", so a tiny ring must not round a threshold down into the
  // always-shedding range (e.g. 0.875 of a 2-slot ring is still 2 slots).
  watermark_low_slots_ = static_cast<std::size_t>(
      std::ceil(clamp01(ingress_cfg_.watermark_low) *
                static_cast<double>(ingress_cfg_.ring_capacity)));
  watermark_high_slots_ = static_cast<std::size_t>(
      std::ceil(clamp01(ingress_cfg_.watermark_high) *
                static_cast<double>(ingress_cfg_.ring_capacity)));
  if (watermark_low_slots_ < 1) watermark_low_slots_ = 1;
  if (watermark_high_slots_ < watermark_low_slots_)
    watermark_high_slots_ = watermark_low_slots_;
  shards_.reserve(shard_cfg_.count);
  for (unsigned i = 0; i < shard_cfg_.count; ++i)
    shards_.push_back(std::make_unique<Shard>(ingress_cfg_));
}

SessionManager::SessionManager(ShardConfig shard, IngressConfig ingress)
    : SessionManager(ServerConfig{shard, ingress, {}}) {}

SessionManager::~SessionManager() { shutdown(core::StreamEnd::Truncated); }

unsigned SessionManager::shard_of(SessionId id) const noexcept {
  return static_cast<unsigned>(mix(id) % shards_.size());
}

std::size_t SessionManager::ring_depth(unsigned shard) const noexcept {
  return shard < shards_.size() ? shards_[shard]->ring.approx_size() : 0;
}

void SessionManager::elect(Shard& shard) {
  // Lost-wakeup-free handoff: whoever flips scheduled false->true owns
  // electing a worker for this shard.  The exchange is a release RMW, so
  // the ring publication that preceded it is visible to the worker that
  // parks with its own acquire RMW and re-checks the ring.
  if (!shard.scheduled.exchange(true, std::memory_order_acq_rel))
    pool_.post([this, &shard] { run_shard(shard); });
}

void SessionManager::count_shed(ShedReason reason, std::size_t symbols) {
  stats_.shed.fetch_add(symbols, std::memory_order_relaxed);
  switch (reason) {
    case ShedReason::RingFull:
      stats_.shed_ring_full.fetch_add(symbols, std::memory_order_relaxed);
      break;
    case ShedReason::SessionBound:
      stats_.shed_session_bound.fetch_add(symbols, std::memory_order_relaxed);
      break;
    case ShedReason::Priority:
      stats_.shed_priority.fetch_add(symbols, std::memory_order_relaxed);
      break;
    case ShedReason::None:
      break;
  }
  if (obs::enabled()) {
    auto& m = Metrics::get();
    m.shed.add(symbols);
    switch (reason) {
      case ShedReason::RingFull: m.shed_ring_full.add(symbols); break;
      case ShedReason::SessionBound: m.shed_session_bound.add(symbols); break;
      case ShedReason::Priority: m.shed_priority.add(symbols); break;
      case ShedReason::None: break;
    }
  }
}

AdmitResult SessionManager::admit_data(Command command, std::size_t symbols) {
  Shard& shard = *shards_[shard_of(command.id)];
  const std::size_t depth = shard.ring.approx_size();
  const auto refuse = [this](ShedReason reason,
                             std::size_t n) -> AdmitResult {
    if (ingress_cfg_.shed_on_full) {
      count_shed(reason, n);
      return AdmitResult{Admit::Shed, reason};
    }
    stats_.blocked.fetch_add(1, std::memory_order_relaxed);
    return AdmitResult{Admit::Blocked, reason};
  };

  // 1. Hard bound: the data plane never claims the control headroom.
  if (depth >= ingress_cfg_.ring_capacity)
    return refuse(ShedReason::RingFull, symbols);

  // 2. Adaptive admission: the hint table is consulted only when the
  //    quota is on or the ring is deep enough for watermarks to matter,
  //    keeping the uncontended fast path at one occupancy read.
  SessionTable::Slot* slot = nullptr;
  if (ingress_cfg_.session_quota > 0 || depth >= watermark_low_slots_) {
    slot = shard.table.find(command.id);
    const Priority priority =
        slot ? static_cast<Priority>(
                   slot->priority.load(std::memory_order_relaxed))
             : Priority::Normal;
    command.priority = priority;
    if (ingress_cfg_.session_quota > 0 && slot &&
        slot->inflight.load(std::memory_order_relaxed) + symbols >
            ingress_cfg_.session_quota)
      return refuse(ShedReason::SessionBound, symbols);
    if (ingress_cfg_.shed_on_full && priority < Priority::High) {
      const std::size_t survives_until = priority == Priority::Low
                                             ? watermark_low_slots_
                                             : watermark_high_slots_;
      if (depth >= survives_until)
        return refuse(ShedReason::Priority, symbols);
    }
  }

  // 3. Stamp for latency sampling and the age watermark.
  if (ingress_cfg_.max_queue_delay_ns > 0) {
    command.enqueue_ns = steady_ns();
  } else if (ingress_cfg_.latency_sample_every > 0 &&
             sample_tick_.fetch_add(1, std::memory_order_relaxed) %
                     ingress_cfg_.latency_sample_every ==
                 0) {
    command.enqueue_ns = steady_ns();
  }

  // 4. Claim a ring slot.  The occupancy check above is approximate under
  //    concurrency, so the push itself can still find the ring full.
  if (slot) {
    command.slot = slot;
    slot->inflight.fetch_add(static_cast<std::uint32_t>(symbols),
                             std::memory_order_relaxed);
  }
  if (!shard.ring.try_push(command)) {
    if (command.slot)
      command.slot->inflight.fetch_sub(static_cast<std::uint32_t>(symbols),
                                       std::memory_order_relaxed);
    return refuse(ShedReason::RingFull, symbols);
  }
  elect(shard);
  return AdmitResult{};
}

void SessionManager::enqueue_control(Command command) {
  Shard& shard = *shards_[shard_of(command.id)];
  // Control never sheds: the physical headroom above ring_capacity is
  // reserved for it, and in the pathological case of a headroom-full ring
  // we spin -- the elected worker is guaranteed to be draining.
  while (!shard.ring.try_push(command)) {
    elect(shard);  // make sure a drainer exists before waiting on it
    std::this_thread::yield();
  }
  elect(shard);
}

SessionId SessionManager::open(std::unique_ptr<core::OnlineAcceptor> acceptor,
                               Priority priority) {
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  open(id, std::move(acceptor), priority);
  return id;
}

void SessionManager::open(SessionId id,
                          std::unique_ptr<core::OnlineAcceptor> acceptor,
                          Priority priority) {
  // Register the admission hint before the command is queued so feeds
  // racing right behind the open already see the session's priority.
  shards_[shard_of(id)]->table.insert(id, priority);
  Command c;
  c.kind = Command::Kind::Open;
  c.id = id;
  c.priority = priority;
  c.acceptor = std::move(acceptor);
  enqueue_control(std::move(c));
}

AdmitResult SessionManager::feed(SessionId id, core::Symbol symbol,
                                 core::Tick at) {
  Command c;
  c.kind = Command::Kind::Feed;
  c.id = id;
  c.symbol = symbol;
  c.at = at;
  return admit_data(std::move(c), 1);
}

AdmitResult SessionManager::feed_batch(SessionId id,
                                       std::vector<core::TimedSymbol> run) {
  if (run.empty()) return AdmitResult{};
  Command c;
  c.kind = Command::Kind::Feed;
  c.id = id;
  const std::size_t symbols = run.size();
  c.run = std::move(run);
  return admit_data(std::move(c), symbols);
}

void SessionManager::close(SessionId id, core::StreamEnd end) {
  Command c;
  c.kind = Command::Kind::Close;
  c.id = id;
  c.end = end;
  enqueue_control(std::move(c));
}

std::unique_ptr<core::OnlineAcceptor> SessionManager::build_query_acceptor(
    SessionId id, std::string_view query) {
  (void)id;
  const std::uint64_t begin_ns = steady_ns();
  std::unique_ptr<core::OnlineAcceptor> acceptor;
  auto parsed = cer::parse(query);
  if (parsed.ok()) {
    auto compiled = cer::compile(*parsed.query);
    if (compiled.ok()) {
      acceptor = cer::make_online_acceptor(std::move(*compiled.compiled));
    }
  }
  const std::uint64_t elapsed_ns = steady_ns() - begin_ns;
  if (acceptor) {
    stats_.query_compiled.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.query_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::enabled()) {
    auto& m = Metrics::get();
    (acceptor ? m.query_compiled : m.query_rejected).add();
    m.query_compile_ns.add(
        static_cast<std::int64_t>(std::bit_width(elapsed_ns | 1) - 1));
  }
  return acceptor;
}

AdmitResult SessionManager::apply(const WireEvent& event,
                                  const AcceptorFactory& factory) {
  switch (event.kind) {
    case WireEvent::Kind::Open: {
      auto acceptor =
          factory ? factory(event.session, event.profile) : nullptr;
      if (!acceptor) {
        stats_.unknown.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) Metrics::get().unknown.add();
        return AdmitResult{Admit::Shed, ShedReason::None};
      }
      open(event.session, std::move(acceptor), event.priority);
      return AdmitResult{};
    }
    case WireEvent::Kind::Symbols: {
      // One decoded event = one batched ring slot, all-or-nothing.  The
      // wire reader is the backpressure point: wait out Blocked instead
      // of tearing the run in half.
      for (;;) {
        const AdmitResult a = feed_batch(event.session, event.symbols);
        if (a != Admit::Blocked) return a;
        std::this_thread::yield();
      }
    }
    case WireEvent::Kind::SubmitQuery: {
      auto acceptor = build_query_acceptor(event.session, event.profile);
      if (!acceptor) return AdmitResult{Admit::Shed, ShedReason::None};
      open(event.session, std::move(acceptor), event.priority);
      return AdmitResult{};
    }
    case WireEvent::Kind::Close:
      close(event.session, event.end);
      return AdmitResult{};
    default:
      // Protocol-level events (Hello, server->client notifications) are
      // not servable traffic; the Server facade consumes them upstream.
      break;
  }
  return AdmitResult{Admit::Shed, ShedReason::None};
}

void SessionManager::run_shard(Shard& shard) {
  RTW_SPAN("svc.shard.run");
  for (;;) {
    shard.staging.clear();
    {
      Command c;
      while (shard.staging.size() < shard_cfg_.drain_batch &&
             shard.ring.try_pop(c))
        shard.staging.push_back(std::move(c));
    }
    if (shard.staging.empty()) {
      // Park with an RMW: it reads the latest election exchange, whose
      // release makes any ring publication sequenced before it visible
      // to the re-check below.  A producer that saw scheduled==true and
      // skipped posting therefore cannot leave an invisible command.
      shard.scheduled.exchange(false, std::memory_order_acq_rel);
      if (!shard.ring.empty() &&
          !shard.scheduled.exchange(true, std::memory_order_acq_rel))
        continue;  // a command slipped in: re-elect ourselves
      return;
    }
    // One EventQueue tick per batch: the shard's epoch clock.  The batch
    // runs *as* a kernel event, so in-shard timers scheduled by future
    // extensions interleave deterministically with ingress processing.
    shard.queue.schedule_in(1, [this, &shard](sim::Tick epoch) {
      process(shard, epoch);
    });
    shard.queue.run_until(shard.queue.now() + 1);
    stats_.epochs.fetch_add(1, std::memory_order_relaxed);
    stats_.batches.fetch_add(shard.staging.size(),
                             std::memory_order_relaxed);
  }
}

void SessionManager::process(Shard& shard, sim::Tick epoch) {
  std::uint64_t ingested = 0;
  std::uint64_t unknown = 0;
  std::uint64_t aged = 0;
  // One clock read per epoch serves every stamped command in the batch.
  const std::uint64_t now_ns =
      (ingress_cfg_.max_queue_delay_ns > 0 ||
       ingress_cfg_.latency_sample_every > 0)
          ? steady_ns()
          : 0;
  for (auto& command : shard.staging) {
    switch (command.kind) {
      case Command::Kind::Open: {
        const auto [it, inserted] = shard.sessions.try_emplace(
            command.id,
            Session(command.id, std::move(command.acceptor),
                    command.priority),
            epoch);
        if (!inserted) {
          ++unknown;  // double open: id already live on this shard
          break;
        }
        stats_.opened.fetch_add(1, std::memory_order_relaxed);
        stats_.active.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          Metrics::get().opened.add();
          Metrics::get().active.set(static_cast<double>(
              stats_.active.load(std::memory_order_relaxed)));
        }
        break;
      }
      case Command::Kind::Feed: {
        const std::size_t n = command.symbols();
        if (command.slot)
          command.slot->inflight.fetch_sub(static_cast<std::uint32_t>(n),
                                           std::memory_order_relaxed);
        const auto it = shard.sessions.find(command.id);
        if (it == shard.sessions.end()) {
          ++unknown;
          break;
        }
        // A second command for a session whose run is already staged in
        // the lane wave must not overtake it: flush to keep per-session
        // submission order.
        if (it->second.session.in_wave()) flush_wave(shard);
        if (command.enqueue_ns && now_ns > command.enqueue_ns) {
          const std::uint64_t waited = now_ns - command.enqueue_ns;
          if (ingress_cfg_.latency_sample_every > 0)
            shard.latency_samples.push_back(waited);
          // Age watermark: stale-in-the-ring data is shed, not fed --
          // unless the session is High priority, which always lands.  The
          // session's own priority is authoritative here (the command may
          // have been admitted without a hint-table probe).
          if (ingress_cfg_.max_queue_delay_ns > 0 &&
              waited > ingress_cfg_.max_queue_delay_ns &&
              it->second.session.priority() < Priority::High) {
            aged += n;
            break;
          }
        }
        it->second.last_active = epoch;
        it->second.session.note_enqueue_ns(command.enqueue_ns);
        Session& session = it->second.session;
        // Batched runs of lane-family sessions stage into the wave and are
        // stepped many-at-a-time by the SIMD kernel; everything else (single
        // symbols, cold acceptors, foreign families) takes feed_run.  The
        // LaneRun aliases the command's run, which outlives the wave: the
        // staging vector is stable until the next drain and every wave is
        // flushed before process() returns.
        if (shard_cfg_.lane_kernel && !command.run.empty() &&
            !session.finished() &&
            session.acceptor().lane_family() != core::LaneFamily::None) {
          core::OnlineAcceptor& acceptor = session.acceptor();
          if (!shard.stepper && !shard.stepper_probed) {
            shard.stepper_probed = true;
            shard.stepper = acceptor.make_lane_stepper(core::dispatch_variant());
          }
          void* lane = acceptor.lane_state();
          if (lane && shard.stepper &&
              shard.stepper->family() == acceptor.lane_family()) {
            shard.wave.push_back(core::LaneRun{command.run.data(),
                                               command.run.size(),
                                               &session.lane_filter(), lane});
            shard.wave_sessions.push_back(&session);
            session.set_in_wave(true);
            ingested += n;
            if (shard.wave.size() >= shard_cfg_.lane_wave) flush_wave(shard);
            break;
          }
        }
        const std::uint64_t stale_before = session.stale_dropped();
        if (command.run.empty()) {
          session.feed(command.symbol, command.at);
        } else {
          session.feed_run(command.run.data(), command.run.size());
        }
        ingested += n;
        const std::uint64_t stale_delta =
            it->second.session.stale_dropped() - stale_before;
        if (stale_delta) {
          stats_.stale.fetch_add(stale_delta, std::memory_order_relaxed);
          if (obs::enabled()) Metrics::get().stale.add(stale_delta);
        }
        break;
      }
      case Command::Kind::Close: {
        shard.table.erase(command.id);
        const auto it = shard.sessions.find(command.id);
        if (it == shard.sessions.end()) {
          ++unknown;
          break;
        }
        // The staged wave may hold a run for this session: land it before
        // the finish, and before erase invalidates the wave's pointers.
        if (it->second.session.in_wave()) flush_wave(shard);
        finish_session(shard, it->second, command.end, /*evicted=*/false);
        shard.sessions.erase(it);
        break;
      }
      case Command::Kind::CloseAll: {
        flush_wave(shard);
        for (auto& [id, entry] : shard.sessions) {
          shard.table.erase(id);
          finish_session(shard, entry, command.end, /*evicted=*/false);
        }
        shard.sessions.clear();
        break;
      }
    }
  }
  flush_wave(shard);  // nothing staged survives the epoch
  if (ingested) {
    stats_.ingested.fetch_add(ingested, std::memory_order_relaxed);
    if (obs::enabled()) Metrics::get().ingested.add(ingested);
  }
  if (aged) count_shed(ShedReason::Priority, aged);
  if (unknown) {
    stats_.unknown.fetch_add(unknown, std::memory_order_relaxed);
    if (obs::enabled()) Metrics::get().unknown.add(unknown);
  }
  if (obs::enabled()) {
    // Ring depth after the drain: one gauge per shard, resolved once.
    const auto index = static_cast<unsigned>(
        std::find_if(shards_.begin(), shards_.end(),
                     [&shard](const auto& p) { return p.get() == &shard; }) -
        shards_.begin());
    depth_gauge(index).set(static_cast<double>(shard.ring.approx_size()));
  }
  if (shard_cfg_.idle_epochs > 0) evict_idle(shard, epoch);
}

void SessionManager::flush_wave(Shard& shard) {
  if (shard.wave.empty()) return;
  // The kernel advances each lane's stale filter in-register; recover the
  // per-epoch stale delta the same way the feed_run path does, by differencing
  // the filters around the step.
  std::uint64_t stale_before = 0;
  std::uint64_t symbols = 0;
  for (const auto& run : shard.wave) {
    stale_before += run.filter->stale;
    symbols += run.size;
  }
  shard.stepper->step(shard.wave.data(), shard.wave.size());
  std::uint64_t stale_after = 0;
  for (const auto& run : shard.wave) stale_after += run.filter->stale;
  const std::uint64_t stale_delta = stale_after - stale_before;
  if (stale_delta) {
    stats_.stale.fetch_add(stale_delta, std::memory_order_relaxed);
    if (obs::enabled()) Metrics::get().stale.add(stale_delta);
  }
  stats_.lane_symbols.fetch_add(symbols, std::memory_order_relaxed);
  stats_.lane_waves.fetch_add(1, std::memory_order_relaxed);
  for (Session* session : shard.wave_sessions) session->set_in_wave(false);
  shard.wave.clear();
  shard.wave_sessions.clear();
}

void SessionManager::finish_session(Shard& shard, Entry& entry,
                                    core::StreamEnd end, bool evicted) {
  entry.session.finish(end);
  SessionReport report = entry.session.report(evicted);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    Metrics::get().closed.add();
    Metrics::get().active.set(static_cast<double>(
        stats_.active.load(std::memory_order_relaxed)));
  }
  // A sink that consumes the report keeps it out of the collect() queue.
  // It runs on the shard worker with no manager locks held, so it may call
  // back into feed/close (but must not block on shard progress).
  if (report_sink_ && report_sink_(report)) return;
  std::lock_guard lock(shard.reports_mutex);
  shard.reports.push_back(std::move(report));
}

void SessionManager::evict_idle(Shard& shard, sim::Tick epoch) {
  for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
    if (epoch >= it->second.last_active &&
        epoch - it->second.last_active >= shard_cfg_.idle_epochs) {
      shard.table.erase(it->first);
      finish_session(shard, it->second, core::StreamEnd::Truncated,
                     /*evicted=*/true);
      stats_.evicted.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) Metrics::get().evicted.add();
      it = shard.sessions.erase(it);
    } else {
      ++it;
    }
  }
}

void SessionManager::drain() {
  for (;;) {
    pool_.wait_idle();
    bool busy = false;
    for (const auto& shard : shards_) {
      if (shard->scheduled.load(std::memory_order_acquire) ||
          !shard->ring.empty()) {
        busy = true;
        break;
      }
    }
    if (!busy) return;
    std::this_thread::yield();
  }
}

void SessionManager::shutdown(core::StreamEnd end) {
  drain();  // let in-flight opens land before the close-all sweep
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Command c;
    c.kind = Command::Kind::CloseAll;
    c.end = end;
    // CloseAll is processed per shard regardless of id; route it to shard
    // i by construction instead of by hash.
    Shard& shard = *shards_[i];
    while (!shard.ring.try_push(c)) {
      elect(shard);
      std::this_thread::yield();
    }
    elect(shard);
  }
  drain();
}

std::vector<SessionReport> SessionManager::collect() {
  std::vector<SessionReport> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->reports_mutex);
    if (out.empty()) {
      out = std::move(shard->reports);
      shard->reports.clear();
    } else {
      for (auto& r : shard->reports) out.push_back(std::move(r));
      shard->reports.clear();
    }
  }
  return out;
}

std::vector<std::uint64_t> SessionManager::take_feed_latency_samples() {
  std::vector<std::uint64_t> out;
  for (const auto& shard : shards_) {
    out.insert(out.end(), shard->latency_samples.begin(),
               shard->latency_samples.end());
    shard->latency_samples.clear();
  }
  return out;
}

ServiceStats SessionManager::stats() const {
  ServiceStats s;
  s.opened = stats_.opened.load(std::memory_order_relaxed);
  s.closed = stats_.closed.load(std::memory_order_relaxed);
  s.ingested = stats_.ingested.load(std::memory_order_relaxed);
  s.shed = stats_.shed.load(std::memory_order_relaxed);
  s.shed_ring_full = stats_.shed_ring_full.load(std::memory_order_relaxed);
  s.shed_session_bound =
      stats_.shed_session_bound.load(std::memory_order_relaxed);
  s.shed_priority = stats_.shed_priority.load(std::memory_order_relaxed);
  s.blocked = stats_.blocked.load(std::memory_order_relaxed);
  s.stale = stats_.stale.load(std::memory_order_relaxed);
  s.evicted = stats_.evicted.load(std::memory_order_relaxed);
  s.unknown = stats_.unknown.load(std::memory_order_relaxed);
  s.active = stats_.active.load(std::memory_order_relaxed);
  s.epochs = stats_.epochs.load(std::memory_order_relaxed);
  s.batches = stats_.batches.load(std::memory_order_relaxed);
  s.lane_symbols = stats_.lane_symbols.load(std::memory_order_relaxed);
  s.lane_waves = stats_.lane_waves.load(std::memory_order_relaxed);
  s.query_compiled = stats_.query_compiled.load(std::memory_order_relaxed);
  s.query_rejected = stats_.query_rejected.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rtw::svc
