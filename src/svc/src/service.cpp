#include "rtw/svc/service.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"

namespace rtw::svc {

namespace {

/// splitmix64 finalizer: spreads consecutive session ids across shards.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Cold-path handle bundle for the svc metric family (names are the
/// JSONL vocabulary: subsystem first, snake_case).
struct Metrics {
  obs::Counter& ingested;
  obs::Counter& shed;
  obs::Counter& stale;
  obs::Counter& evicted;
  obs::Counter& opened;
  obs::Counter& closed;
  obs::Counter& unknown;
  obs::Gauge& active;

  static Metrics& get() {
    static Metrics m{
        obs::MetricsRegistry::instance().counter("svc.symbols_ingested"),
        obs::MetricsRegistry::instance().counter("svc.shed"),
        obs::MetricsRegistry::instance().counter("svc.stale"),
        obs::MetricsRegistry::instance().counter("svc.sessions_evicted"),
        obs::MetricsRegistry::instance().counter("svc.sessions_opened"),
        obs::MetricsRegistry::instance().counter("svc.sessions_closed"),
        obs::MetricsRegistry::instance().counter("svc.unknown_session"),
        obs::MetricsRegistry::instance().gauge("svc.sessions_active"),
    };
    return m;
  }
};

}  // namespace

std::string to_string(Admit a) {
  switch (a) {
    case Admit::Accepted: return "accepted";
    case Admit::Shed: return "shed";
    case Admit::Blocked: return "blocked";
  }
  return "admit?";
}

SessionManager::SessionManager(ServiceConfig config)
    : config_(config),
      pool_(config.shards == 0 ? 1 : config.shards) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  shards_.reserve(config_.shards);
  for (unsigned i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

SessionManager::~SessionManager() { shutdown(core::StreamEnd::Truncated); }

unsigned SessionManager::shard_of(SessionId id) const noexcept {
  return static_cast<unsigned>(mix(id) % shards_.size());
}

Admit SessionManager::enqueue(Command command, bool bounded) {
  Shard& shard = *shards_[shard_of(command.id)];
  {
    std::lock_guard lock(shard.mutex);
    if (bounded && shard.ring.size() >= config_.ring_capacity) {
      if (config_.shed_on_full) {
        stats_.shed.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) Metrics::get().shed.add();
        return Admit::Shed;
      }
      stats_.blocked.fetch_add(1, std::memory_order_relaxed);
      return Admit::Blocked;
    }
    shard.ring.push_back(std::move(command));
  }
  // Lost-wakeup-free handoff: whoever flips scheduled false->true owns
  // electing a worker for this shard.
  if (!shard.scheduled.exchange(true, std::memory_order_acq_rel))
    pool_.post([this, &shard] { run_shard(shard); });
  return Admit::Accepted;
}

SessionId SessionManager::open(
    std::unique_ptr<core::OnlineAcceptor> acceptor) {
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  open(id, std::move(acceptor));
  return id;
}

void SessionManager::open(SessionId id,
                          std::unique_ptr<core::OnlineAcceptor> acceptor) {
  Command c;
  c.kind = Command::Kind::Open;
  c.id = id;
  c.acceptor = std::move(acceptor);
  enqueue(std::move(c), /*bounded=*/false);
}

Admit SessionManager::feed(SessionId id, core::Symbol symbol, core::Tick at) {
  Command c;
  c.kind = Command::Kind::Feed;
  c.id = id;
  c.symbol = symbol;
  c.at = at;
  return enqueue(std::move(c), /*bounded=*/true);
}

void SessionManager::close(SessionId id, core::StreamEnd end) {
  Command c;
  c.kind = Command::Kind::Close;
  c.id = id;
  c.end = end;
  enqueue(std::move(c), /*bounded=*/false);
}

Admit SessionManager::apply(const WireEvent& event,
                            const AcceptorFactory& factory) {
  switch (event.kind) {
    case WireEvent::Kind::Open: {
      auto acceptor =
          factory ? factory(event.session, event.profile) : nullptr;
      if (!acceptor) {
        stats_.unknown.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) Metrics::get().unknown.add();
        return Admit::Shed;
      }
      open(event.session, std::move(acceptor));
      return Admit::Accepted;
    }
    case WireEvent::Kind::Symbols: {
      bool any_shed = false;
      for (const auto& ts : event.symbols) {
        for (;;) {
          const Admit a = feed(event.session, ts.sym, ts.time);
          if (a == Admit::Blocked) {
            // The wire reader is the backpressure point: wait out the
            // full ring instead of tearing a frame in half.
            std::this_thread::yield();
            continue;
          }
          if (a == Admit::Shed) any_shed = true;
          break;
        }
      }
      return any_shed ? Admit::Shed : Admit::Accepted;
    }
    case WireEvent::Kind::Close:
      close(event.session, event.end);
      return Admit::Accepted;
  }
  return Admit::Accepted;
}

void SessionManager::run_shard(Shard& shard) {
  RTW_SPAN("svc.shard.run");
  for (;;) {
    shard.staging.clear();
    {
      std::lock_guard lock(shard.mutex);
      const std::size_t take =
          std::min(config_.drain_batch, shard.ring.size());
      for (std::size_t i = 0; i < take; ++i) {
        shard.staging.push_back(std::move(shard.ring.front()));
        shard.ring.pop_front();
      }
    }
    if (shard.staging.empty()) {
      // Park; a producer that enqueued between our drain and this store
      // may have lost the election to us, so re-check and re-elect.
      shard.scheduled.store(false, std::memory_order_release);
      bool more;
      {
        std::lock_guard lock(shard.mutex);
        more = !shard.ring.empty();
      }
      if (more &&
          !shard.scheduled.exchange(true, std::memory_order_acq_rel))
        continue;
      return;
    }
    // One EventQueue tick per batch: the shard's epoch clock.  The batch
    // runs *as* a kernel event, so in-shard timers scheduled by future
    // extensions interleave deterministically with ingress processing.
    shard.queue.schedule_in(1, [this, &shard](sim::Tick epoch) {
      process(shard, epoch);
    });
    shard.queue.run_until(shard.queue.now() + 1);
    stats_.epochs.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionManager::process(Shard& shard, sim::Tick epoch) {
  std::uint64_t ingested = 0;
  std::uint64_t unknown = 0;
  for (auto& command : shard.staging) {
    switch (command.kind) {
      case Command::Kind::Open: {
        const auto [it, inserted] = shard.sessions.try_emplace(
            command.id, Session(command.id, std::move(command.acceptor)),
            epoch);
        if (!inserted) {
          ++unknown;  // double open: id already live on this shard
          break;
        }
        stats_.opened.fetch_add(1, std::memory_order_relaxed);
        stats_.active.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          Metrics::get().opened.add();
          Metrics::get().active.set(static_cast<double>(
              stats_.active.load(std::memory_order_relaxed)));
        }
        break;
      }
      case Command::Kind::Feed: {
        const auto it = shard.sessions.find(command.id);
        if (it == shard.sessions.end()) {
          ++unknown;
          break;
        }
        it->second.last_active = epoch;
        const std::uint64_t stale_before = it->second.session.stale_dropped();
        it->second.session.feed(command.symbol, command.at);
        ++ingested;
        if (it->second.session.stale_dropped() != stale_before) {
          stats_.stale.fetch_add(1, std::memory_order_relaxed);
          if (obs::enabled()) Metrics::get().stale.add();
        }
        break;
      }
      case Command::Kind::Close: {
        const auto it = shard.sessions.find(command.id);
        if (it == shard.sessions.end()) {
          ++unknown;
          break;
        }
        finish_session(shard, it->second, command.end, /*evicted=*/false);
        shard.sessions.erase(it);
        break;
      }
      case Command::Kind::CloseAll: {
        for (auto& [id, entry] : shard.sessions)
          finish_session(shard, entry, command.end, /*evicted=*/false);
        shard.sessions.clear();
        break;
      }
    }
  }
  if (ingested) {
    stats_.ingested.fetch_add(ingested, std::memory_order_relaxed);
    if (obs::enabled()) Metrics::get().ingested.add(ingested);
  }
  if (unknown) {
    stats_.unknown.fetch_add(unknown, std::memory_order_relaxed);
    if (obs::enabled()) Metrics::get().unknown.add(unknown);
  }
  if (config_.idle_epochs > 0) evict_idle(shard, epoch);
}

void SessionManager::finish_session(Shard& shard, Entry& entry,
                                    core::StreamEnd end, bool evicted) {
  entry.session.finish(end);
  SessionReport report = entry.session.report(evicted);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    Metrics::get().closed.add();
    Metrics::get().active.set(static_cast<double>(
        stats_.active.load(std::memory_order_relaxed)));
  }
  std::lock_guard lock(shard.reports_mutex);
  shard.reports.push_back(std::move(report));
}

void SessionManager::evict_idle(Shard& shard, sim::Tick epoch) {
  for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
    if (epoch >= it->second.last_active &&
        epoch - it->second.last_active >= config_.idle_epochs) {
      finish_session(shard, it->second, core::StreamEnd::Truncated,
                     /*evicted=*/true);
      stats_.evicted.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) Metrics::get().evicted.add();
      it = shard.sessions.erase(it);
    } else {
      ++it;
    }
  }
}

void SessionManager::drain() {
  for (;;) {
    pool_.wait_idle();
    bool busy = false;
    for (const auto& shard : shards_) {
      if (shard->scheduled.load(std::memory_order_acquire)) {
        busy = true;
        break;
      }
      std::lock_guard lock(shard->mutex);
      if (!shard->ring.empty()) {
        busy = true;
        break;
      }
    }
    if (!busy) return;
    std::this_thread::yield();
  }
}

void SessionManager::shutdown(core::StreamEnd end) {
  drain();  // let in-flight opens land before the close-all sweep
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Command c;
    c.kind = Command::Kind::CloseAll;
    c.end = end;
    Shard& shard = *shards_[i];
    {
      std::lock_guard lock(shard.mutex);
      shard.ring.push_back(std::move(c));
    }
    if (!shard.scheduled.exchange(true, std::memory_order_acq_rel))
      pool_.post([this, &shard] { run_shard(shard); });
  }
  drain();
}

std::vector<SessionReport> SessionManager::collect() {
  std::vector<SessionReport> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->reports_mutex);
    if (out.empty()) {
      out = std::move(shard->reports);
      shard->reports.clear();
    } else {
      for (auto& r : shard->reports) out.push_back(std::move(r));
      shard->reports.clear();
    }
  }
  return out;
}

ServiceStats SessionManager::stats() const {
  ServiceStats s;
  s.opened = stats_.opened.load(std::memory_order_relaxed);
  s.closed = stats_.closed.load(std::memory_order_relaxed);
  s.ingested = stats_.ingested.load(std::memory_order_relaxed);
  s.shed = stats_.shed.load(std::memory_order_relaxed);
  s.blocked = stats_.blocked.load(std::memory_order_relaxed);
  s.stale = stats_.stale.load(std::memory_order_relaxed);
  s.evicted = stats_.evicted.load(std::memory_order_relaxed);
  s.unknown = stats_.unknown.load(std::memory_order_relaxed);
  s.active = stats_.active.load(std::memory_order_relaxed);
  s.epochs = stats_.epochs.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rtw::svc
