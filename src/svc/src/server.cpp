#include "rtw/svc/server.hpp"

#include <utility>

namespace rtw::svc {

// ---------------------------------------------------------- Connection

Connection::Connection(Server& server, std::uint64_t id,
                       std::size_t max_frame_bytes)
    : server_(server), id_(id), decoder_(max_frame_bytes) {}

bool Connection::on_bytes(std::string_view bytes) {
  if (dead_.load(std::memory_order_acquire)) return false;
  decoder_.push(bytes);
  return pump();
}

void Connection::finish_input() {
  if (input_finished_.exchange(true, std::memory_order_acq_rel)) return;
  // Truncate-close everything the client left open.  Closes enqueue on
  // the control plane (never shed), and each session's verdict flows back
  // through the report sink like any other close.
  std::vector<SessionId> open_globals;
  {
    std::lock_guard lock(mutex_);
    for (auto& [client, owned] : sessions_) {
      if (!owned.close_sent) {
        owned.close_sent = true;
        open_globals.push_back(owned.global);
      }
    }
  }
  for (SessionId global : open_globals)
    server_.manager().close(global, core::StreamEnd::Truncated);
}

bool Connection::retry_pending() {
  if (!paused_.load(std::memory_order_acquire)) return true;
  return pump() && !paused_.load(std::memory_order_acquire);
}

bool Connection::pump() {
  // The parked event goes first: per-session order must hold.
  if (pending_) {
    Pending p = std::move(*pending_);
    pending_.reset();
    paused_.store(false, std::memory_order_release);
    if (!submit_symbols(p.client, std::move(p.run))) return !dead();
    if (paused()) return true;  // re-parked; events stay queued
  }
  WireEvent event;
  while (decoder_.next(event)) {
    if (!apply_event(event)) return !dead();
    if (paused()) return true;
  }
  if (!decoder_.ok()) {
    fail_stream("wire: " + decoder_.error() + " (" +
                to_string(decoder_.error_code()) + ")");
    return false;
  }
  return true;
}

bool Connection::apply_event(WireEvent& event) {
  switch (event.kind) {
    case WireEvent::Kind::Hello: {
      // Select the highest version both sides speak.  A client whose
      // floor is above ours is a framing-level mismatch: fail fast
      // rather than silently dropping its notifications.
      if (event.version_min > kWireVersion) {
        fail_stream("wire: client requires protocol version " +
                    std::to_string(event.version_min) + ", server speaks " +
                    std::to_string(kWireVersion));
        return false;
      }
      const std::uint8_t chosen =
          event.version_max < kWireVersion ? event.version_max : kWireVersion;
      version_.store(chosen, std::memory_order_release);
      queue_output(encode_hello_ack(chosen));
      return true;
    }
    case WireEvent::Kind::Open:
    case WireEvent::Kind::SubmitQuery: {
      {
        std::lock_guard lock(mutex_);
        if (sessions_.count(event.session)) {
          ++stats_.dup_opens;  // duplicated frame; manager-style tolerance
          return true;
        }
      }
      const SessionId global = server_.allocate_session();
      // An Open names a profile for the server's factory; a SubmitQuery
      // carries an inline query (already syntax-checked by the Decoder)
      // compiled into a per-session acceptor.  Both refuse identically:
      // a CompileLimits hit is the query-plane twin of an unknown
      // profile, not a framing error.
      auto acceptor =
          event.kind == WireEvent::Kind::SubmitQuery
              ? server_.manager().build_query_acceptor(global, event.profile)
              : (server_.factory_ ? server_.factory_(global, event.profile)
                                  : nullptr);
      if (!acceptor) {
        std::lock_guard lock(mutex_);
        ++stats_.refused_opens;
        if (version() >= 1 && server_.config().net.shed_notices)
          output_ += encode_shed(event.session,
                                 AdmitResult{Admit::Shed, ShedReason::None},
                                 0);
        return true;
      }
      // Owner first, then the session maps, then the manager: a verdict
      // cannot arrive before open() runs, and open() runs last.
      server_.register_owner(global, shared_from_this());
      {
        std::lock_guard lock(mutex_);
        sessions_.emplace(event.session, Owned{global, false});
        remap_.emplace(global, event.session);
        ++stats_.opens;
      }
      server_.manager().open(global, std::move(acceptor), event.priority);
      return true;
    }
    case WireEvent::Kind::Symbols:
      return submit_symbols(event.session, std::move(event.symbols));
    case WireEvent::Kind::Close: {
      SessionId global = 0;
      {
        std::lock_guard lock(mutex_);
        const auto it = sessions_.find(event.session);
        if (it == sessions_.end() || it->second.close_sent) {
          ++stats_.unknown_frames;
          return true;
        }
        it->second.close_sent = true;
        global = it->second.global;
      }
      server_.manager().close(global, event.end);
      return true;
    }
    default:
      // Server->client notifications arriving *at* the server are a peer
      // speaking the wrong role; tolerate like other semantic noise.
      {
        std::lock_guard lock(mutex_);
        ++stats_.unknown_frames;
      }
      return true;
  }
}

bool Connection::submit_symbols(SessionId client,
                                std::vector<core::TimedSymbol> run) {
  SessionId global = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = sessions_.find(client);
    if (it == sessions_.end() || it->second.close_sent) {
      ++stats_.unknown_frames;
      return true;
    }
    global = it->second.global;
  }
  const std::uint64_t symbols = run.size();
  // feed_batch consumes the run; keep a copy only when Blocked verdicts
  // are possible (shed_on_full off) so the event can be parked intact.
  std::vector<core::TimedSymbol> retry_copy;
  const bool may_block = !server_.config().ingress.shed_on_full;
  if (may_block) retry_copy = run;
  const AdmitResult admitted =
      server_.manager().feed_batch(global, std::move(run));
  switch (admitted.admit) {
    case Admit::Accepted:
      return true;
    case Admit::Shed: {
      std::lock_guard lock(mutex_);
      ++stats_.sheds;
      if (version() >= 1 && server_.config().net.shed_notices)
        output_ += encode_shed(client, admitted, symbols);
      return true;
    }
    case Admit::Blocked:
      // Park the event; the transport pauses reads and retries when the
      // rings drain.  This is the reactor-safe form of apply()'s spin.
      pending_ = Pending{client, std::move(retry_copy)};
      paused_.store(true, std::memory_order_release);
      return true;
  }
  return true;
}

void Connection::deliver_report(SessionId client, const SessionReport& report) {
  std::lock_guard lock(mutex_);
  sessions_.erase(client);
  remap_.erase(report.id);
  ++stats_.verdicts;
  if (version() >= 1 && server_.config().net.verdict_notices)
    output_ += encode_verdict(client, report.verdict, report.result.exact,
                              report.evicted, report.fed,
                              report.stale_dropped);
}

std::size_t Connection::take_output(std::string& out, std::size_t max_bytes) {
  std::lock_guard lock(mutex_);
  const std::size_t n = output_.size() < max_bytes ? output_.size() : max_bytes;
  if (n == 0) return 0;
  out.append(output_, 0, n);
  output_.erase(0, n);
  return n;
}

void Connection::push_front_output(std::string_view bytes) {
  std::lock_guard lock(mutex_);
  output_.insert(0, bytes);
}

std::size_t Connection::output_size() const {
  std::lock_guard lock(mutex_);
  return output_.size();
}

bool Connection::complete() const {
  if (!input_finished_.load(std::memory_order_acquire)) return false;
  std::lock_guard lock(mutex_);
  return sessions_.empty() && output_.empty();
}

std::size_t Connection::owned_sessions() const {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

ConnectionStats Connection::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void Connection::queue_output(std::string frame) {
  std::lock_guard lock(mutex_);
  output_ += frame;
}

void Connection::fail_stream(std::string message) {
  error_ = std::move(message);
  dead_.store(true, std::memory_order_release);
  pending_.reset();
  paused_.store(false, std::memory_order_release);
}

// -------------------------------------------------------------- Server

Server::Server(ServerConfig config, AcceptorFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      manager_(config_) {
  manager_.set_report_sink(
      [this](const SessionReport& report) { return on_report(report); });
}

Server::~Server() {
  // Drain with the sink still wired so wire-owned verdicts are consumed,
  // then unhook it: nothing may call back into a half-destroyed server.
  shutdown();
  manager_.set_report_sink(nullptr);
}

std::shared_ptr<Connection> Server::connect() {
  const std::uint64_t id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  // make_shared needs a public ctor; std::shared_ptr + new keeps it private.
  std::shared_ptr<Connection> conn(
      new Connection(*this, id, config_.net.max_frame_bytes));
  std::lock_guard lock(mutex_);
  connections_.emplace(id, conn);
  return conn;
}

void Server::disconnect(const std::shared_ptr<Connection>& conn) {
  if (!conn) return;
  std::vector<SessionId> live;
  {
    std::lock_guard conn_lock(conn->mutex_);
    for (auto& [client, owned] : conn->sessions_) {
      if (!owned.close_sent) {
        owned.close_sent = true;
        live.push_back(owned.global);
      }
    }
  }
  {
    std::lock_guard lock(mutex_);
    connections_.erase(conn->id_);
    // Tombstone the owner entries: in-flight and upcoming verdicts for
    // this connection are consumed and dropped, not queued for collect().
    std::lock_guard conn_lock(conn->mutex_);
    for (const auto& [global, client] : conn->remap_) {
      const auto it = owners_.find(global);
      if (it != owners_.end()) it->second = nullptr;
    }
  }
  for (SessionId global : live)
    manager_.close(global, core::StreamEnd::Truncated);
}

void Server::shutdown() {
  // Truncate-close every live session.  Wire-owned verdicts flow into
  // their connections' output buffers via the sink; the transport
  // flushes them during its own drain.
  manager_.shutdown(core::StreamEnd::Truncated);
}

std::size_t Server::connection_count() const {
  std::lock_guard lock(mutex_);
  return connections_.size();
}

bool Server::on_report(const SessionReport& report) {
  std::shared_ptr<Connection> conn;
  SessionId client = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = owners_.find(report.id);
    if (it == owners_.end()) return false;  // direct open(): collect() path
    conn = std::move(it->second);
    owners_.erase(it);
    if (!conn) return true;  // tombstone: owner died, discard
    std::lock_guard conn_lock(conn->mutex_);
    const auto rit = conn->remap_.find(report.id);
    if (rit == conn->remap_.end()) return true;
    client = rit->second;
  }
  conn->deliver_report(client, report);
  wake(conn);
  return true;
}

SessionId Server::allocate_session() {
  return next_session_.fetch_add(1, std::memory_order_relaxed);
}

void Server::register_owner(SessionId global,
                            std::shared_ptr<Connection> conn) {
  std::lock_guard lock(mutex_);
  owners_.emplace(global, std::move(conn));
}

void Server::wake(const std::shared_ptr<Connection>& conn) {
  // Copy under the lock, invoke outside it: the callback rings an eventfd
  // and must not serialize every reporting worker behind it.
  std::function<void(const std::shared_ptr<Connection>&)> fn;
  {
    std::lock_guard lock(wakeup_mutex_);
    fn = wakeup_;
  }
  if (fn) fn(conn);
}

}  // namespace rtw::svc
