#include "rtw/sim/fault.hpp"

#include <utility>

#include "rtw/sim/jsonl.hpp"

namespace rtw::sim {

namespace {

/// Folds one field into a decision key.  SplitMix64's finalizer gives the
/// avalanche; the golden-ratio multiply decorrelates adjacent values the
/// same way BatchRunner::rng_for decorrelates adjacent indices.
std::uint64_t mix(std::uint64_t acc, std::uint64_t value) noexcept {
  SplitMix64 g(acc ^ (value * 0x9e3779b97f4a7c15ULL));
  return g();
}

/// A uniform [0, 1) double from a hashed key (53 bits of entropy).
double u01(std::uint64_t z) noexcept {
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Salts keeping the per-decision draws independent of one another.
enum : std::uint64_t {
  kSaltDrop = 1,
  kSaltDuplicate = 2,
  kSaltDelayGate = 3,
  kSaltDelayAmount = 4,
  kSaltJitterGate = 5,
  kSaltJitterAmount = 6,
};

}  // namespace

bool FaultPlan::is_noop() const noexcept {
  if (link.any() || jitter.any()) return false;
  for (const auto& [key, faults] : link_overrides)
    if (faults.any()) return false;
  for (const auto& outage : outages)
    if (outage.down_from < outage.down_until) return false;
  return true;
}

const LinkFaults& FaultPlan::link_for(std::uint32_t from,
                                      std::uint32_t to) const noexcept {
  for (const auto& [key, faults] : link_overrides) {
    const bool from_ok = key.first == kAnyNode || key.first == from;
    const bool to_ok = key.second == kAnyNode || key.second == to;
    if (from_ok && to_ok) return faults;
  }
  return link;
}

std::string FaultPlan::to_json() const {
  JsonLine line;
  line.field("seed", seed)
      .field("drop", link.drop)
      .field("duplicate", link.duplicate)
      .field("delay", link.delay)
      .field("max_delay", link.max_delay)
      .field("link_overrides", static_cast<std::uint64_t>(link_overrides.size()))
      .field("outages", static_cast<std::uint64_t>(outages.size()))
      .field("jitter", jitter.probability)
      .field("max_jitter", jitter.max_jitter)
      .field("noop", is_noop());
  return line.str();
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) noexcept {
  dropped += o.dropped;
  duplicated += o.duplicated;
  delayed += o.delayed;
  delay_ticks += o.delay_ticks;
  jittered += o.jittered;
  jitter_ticks += o.jitter_ticks;
  crash_sends += o.crash_sends;
  crash_receives += o.crash_receives;
  return *this;
}

std::string FaultCounters::to_json() const {
  return JsonLine()
      .field("dropped", dropped)
      .field("duplicated", duplicated)
      .field("delayed", delayed)
      .field("delay_ticks", delay_ticks)
      .field("jittered", jittered)
      .field("jitter_ticks", jitter_ticks)
      .field("crash_sends", crash_sends)
      .field("crash_receives", crash_receives)
      .field("injected", injected())
      .str();
}

std::string to_string(FaultRecord::Kind kind) {
  switch (kind) {
    case FaultRecord::Kind::Drop:
      return "drop";
    case FaultRecord::Kind::Duplicate:
      return "duplicate";
    case FaultRecord::Kind::Delay:
      return "delay";
    case FaultRecord::Kind::Jitter:
      return "jitter";
    case FaultRecord::Kind::CrashSend:
      return "crash_send";
    case FaultRecord::Kind::CrashReceive:
      return "crash_receive";
  }
  return "?";
}

std::string FaultRecord::to_json() const {
  return JsonLine()
      .field("fault", to_string(kind))
      .field("at", at)
      .field("from", from)
      .field("to", to)
      .field("key", key)
      .field("shift", shift)
      .str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  active_ = !plan_.is_noop();
}

bool FaultInjector::node_down(std::uint32_t node, Tick t) const noexcept {
  for (const auto& outage : plan_.outages)
    if (outage.node == node && outage.down_from <= t && t < outage.down_until)
      return true;
  return false;
}

FaultInjector::LinkVerdict FaultInjector::link_verdict(std::uint32_t from,
                                                       std::uint32_t to,
                                                       std::uint64_t key,
                                                       Tick at) {
  LinkVerdict verdict;
  if (!active_) return verdict;
  const LinkFaults& faults = plan_.link_for(from, to);
  if (!faults.any()) return verdict;

  // Identity of this (link, message) decision.  The tick is deliberately
  // absent: a link is deterministically deaf (or generous, or slow) to a
  // given message, so raising a probability only grows the affected set.
  std::uint64_t base = mix(plan_.seed, from);
  base = mix(base, to);
  base = mix(base, key);

  if (faults.drop > 0.0 && u01(mix(base, kSaltDrop)) < faults.drop) {
    verdict.deliver = false;
    ++counters_.dropped;
    record({FaultRecord::Kind::Drop, at, from, to, key, 0});
    return verdict;
  }
  if (faults.duplicate > 0.0 &&
      u01(mix(base, kSaltDuplicate)) < faults.duplicate) {
    verdict.copies = 2;
    ++counters_.duplicated;
    record({FaultRecord::Kind::Duplicate, at, from, to, key, 0});
  }
  if (faults.delay > 0.0 && faults.max_delay > 0 &&
      u01(mix(base, kSaltDelayGate)) < faults.delay) {
    verdict.extra_delay = 1 + mix(base, kSaltDelayAmount) % faults.max_delay;
    ++counters_.delayed;
    counters_.delay_ticks += verdict.extra_delay;
    record({FaultRecord::Kind::Delay, at, from, to, key, verdict.extra_delay});
  }
  return verdict;
}

Tick FaultInjector::jitter(Tick at, std::uint64_t key) {
  if (!active_ || !plan_.jitter.any()) return at;
  std::uint64_t base = mix(plan_.seed, at);
  base = mix(base, key);
  if (u01(mix(base, kSaltJitterGate)) >= plan_.jitter.probability) return at;
  const Tick shift = 1 + mix(base, kSaltJitterAmount) % plan_.jitter.max_jitter;
  Tick to = at + shift;
  if (to < at) to = ~Tick{0};  // saturate instead of wrapping into the past
  ++counters_.jittered;
  counters_.jitter_ticks += to - at;
  record({FaultRecord::Kind::Jitter, at, 0, 0, key, to - at});
  return to;
}

void FaultInjector::count_crash_send(std::uint32_t node, Tick at,
                                     std::uint64_t key) {
  ++counters_.crash_sends;
  record({FaultRecord::Kind::CrashSend, at, node, 0, key, 0});
}

void FaultInjector::count_crash_receive(std::uint32_t node, Tick at,
                                        std::uint64_t key) {
  ++counters_.crash_receives;
  record({FaultRecord::Kind::CrashReceive, at, node, 0, key, 0});
}

void FaultInjector::record(FaultRecord r) {
  if (records_.size() < plan_.record_limit) records_.push_back(r);
}

}  // namespace rtw::sim
