#include "rtw/sim/histogram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rtw::sim {

Histogram::Histogram(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("Histogram: hi < lo");
  counts_.assign(static_cast<std::size_t>(hi - lo + 1), 0);
}

void Histogram::add(std::int64_t value) noexcept {
  if (value < lo_) ++underflow_;
  if (value > hi_) ++overflow_;
  const std::int64_t clamped = std::clamp(value, lo_, hi_);
  ++counts_[static_cast<std::size_t>(clamped - lo_)];
  ++total_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(counts_[b] * width / peak);
    out << (bin_value(b) >= 0 ? "+" : "") << bin_value(b) << "\t|"
        << std::string(bar, '#') << std::string(width - bar, ' ') << "| "
        << counts_[b] << " (" << 100.0 * fraction(b) << "%)\n";
  }
  return out.str();
}

}  // namespace rtw::sim
