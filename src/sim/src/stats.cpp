#include "rtw/sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rtw::sim {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

}  // namespace rtw::sim
