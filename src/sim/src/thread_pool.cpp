#include "rtw/sim/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtw::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::post(Task task) {
  if (stopping_.load(std::memory_order_relaxed))
    throw std::runtime_error("ThreadPool: post after shutdown");
  const unsigned target =
      round_robin_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(workers_.size());
  {
    std::lock_guard lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  // Publish-then-notify under sleep_mutex_ so a worker between its
  // predicate check and its wait cannot miss the wakeup.
  {
    std::lock_guard lock(sleep_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(unsigned self, Task& out) {
  const unsigned n = static_cast<unsigned>(workers_.size());
  // Own queue first (front: FIFO for locally assigned work)...
  {
    Worker& w = *workers_[self];
    std::lock_guard lock(w.mutex);
    if (!w.tasks.empty()) {
      out = std::move(w.tasks.front());
      w.tasks.pop_front();
      return true;
    }
  }
  // ...then steal from siblings (back: leaves their oldest work in place).
  for (unsigned k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    std::lock_guard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  for (;;) {
    Task task;
    if (try_pop(self, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(sleep_mutex_);
        idle_.notify_all();
      }
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stopping_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(sleep_mutex_);
  idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace rtw::sim
