#include "rtw/sim/thread_pool.hpp"

#include <algorithm>

namespace rtw::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_ && queue_.empty()) return;
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    lock.unlock();
    task();
    lock.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

}  // namespace rtw::sim
