#include "rtw/sim/jsonl.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "rtw/sim/rng.hpp"

#ifndef RTW_GIT_SHA
#define RTW_GIT_SHA "unknown"
#endif

namespace rtw::sim {

namespace {

/// One id per process: drawn once from the wall clock, then constant, so
/// every record a bench invocation emits carries the same correlator.
std::string process_run_id() {
  static const std::string id = [] {
    SplitMix64 mix(static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()) ^
                   static_cast<std::uint64_t>(
                       std::chrono::system_clock::now().time_since_epoch()
                           .count()));
    static constexpr char hex[] = "0123456789abcdef";
    std::uint64_t v = mix();
    std::string out(16, '0');
    for (std::size_t i = 16; i-- > 0; v >>= 4) out[i] = hex[v & 0xf];
    return out;
  }();
  return id;
}

std::string build_sha() {
  if (const char* env = std::getenv("RTW_GIT_SHA"); env && *env) return env;
  return RTW_GIT_SHA;
}

}  // namespace

JsonLine bench_record(std::string_view bench) {
  JsonLine line;
  line.field("bench", bench)
      .field("run_id", process_run_id())
      .field("git_sha", build_sha())
      .field("hw_threads", std::thread::hardware_concurrency());
  return line;
}

}  // namespace rtw::sim
