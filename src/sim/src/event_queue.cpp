#include "rtw/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace rtw::sim {

void EventQueue::schedule_at(Tick at, Action action) {
  heap_.push(Entry{std::max(at, now_), seq_++, std::move(action)});
}

void EventQueue::schedule_in(Tick delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step(Tick horizon) {
  if (heap_.empty()) return false;
  if (heap_.top().at > horizon) return false;
  // priority_queue::top() is const&; move out via const_cast is UB-adjacent,
  // so copy the small Entry header and move the action by re-wrapping.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.at;
  entry.action(now_);
  return true;
}

std::size_t EventQueue::run_until(Tick horizon) {
  std::size_t executed = 0;
  while (step(horizon)) ++executed;
  if (heap_.empty() || heap_.top().at > horizon) now_ = std::max(now_, horizon);
  return executed;
}

void EventQueue::reset() {
  heap_ = {};
  now_ = 0;
  seq_ = 0;
}

}  // namespace rtw::sim
