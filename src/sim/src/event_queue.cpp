#include "rtw/sim/event_queue.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>
#include <utility>

namespace rtw::sim {

EventQueue::~EventQueue() {
  // Live actions are exactly the ones the heap still references; dead
  // cells hold only free-list links.
  for (const Node& node : heap_) cell(node.slot)->~Action();
}

void EventQueue::grow_chunks() {
  chunks_.push_back(std::make_unique<Cell[]>(kChunkSize));
  capacity_ += kChunkSize;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Action* a = cell(slot);
  a->~Action();
  std::memcpy(a, &free_head_, sizeof(free_head_));
  free_head_ = slot;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const Node node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const Node node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

EventQueue::Node EventQueue::pop_min() {
  const Node top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void EventQueue::fire(const Node& node, rtw::obs::Sink* sink) {
  // In-place invocation: cells are address-stable, so callbacks are free
  // to schedule (growing the chunk table) while this action runs.  The
  // cell is not on the free list yet, so it cannot be reused mid-call;
  // the guard releases it even when the action throws.
  struct Guard {
    EventQueue* queue;
    std::uint32_t slot;
    ~Guard() { queue->release_slot(slot); }
  } guard{this, node.slot};
  if (sink) [[unlikely]]
    sink->on_queue_op(rtw::obs::QueueOp::Fire, now_);
  (*cell(node.slot))(now_);
}

void EventQueue::notify_schedule(Tick at) {
  if (auto* s = rtw::obs::sink()) s->on_queue_op(rtw::obs::QueueOp::Schedule, at);
}

bool EventQueue::admit(const Node& node) {
  if (!filter_) return true;
  const FaultDecision decision = filter_(node.at, node.seq);
  switch (decision.kind) {
    case FaultDecision::Kind::Fire:
      return true;
    case FaultDecision::Kind::Drop:
      release_slot(node.slot);
      ++filtered_dropped_;
      if (auto* s = rtw::obs::sink())
        s->on_queue_op(rtw::obs::QueueOp::Drop, node.at);
      return false;
    case FaultDecision::Kind::Defer: {
      // An event already at the maximum tick cannot be pushed later;
      // firing it keeps the filter from livelocking the queue.
      if (node.at == ~Tick{0}) return true;
      const Tick to = decision.defer_to > node.at ? decision.defer_to
                                                  : node.at + 1;
      heap_.push_back(Node{to, seq_++, node.slot});
      sift_up(heap_.size() - 1);
      ++filtered_deferred_;
      if (auto* s = rtw::obs::sink())
        s->on_queue_op(rtw::obs::QueueOp::Defer, node.at);
      return false;
    }
  }
  return true;
}

void EventQueue::schedule_batch(std::vector<Scheduled> batch) {
  heap_.reserve(heap_.size() + batch.size());
  for (auto& s : batch) schedule_at(s.at, std::move(s.action));
}

bool EventQueue::step(Tick horizon) {
  rtw::obs::Sink* const sink = rtw::obs::sink();
  while (!heap_.empty() && heap_.front().at <= horizon) {
    const Node node = pop_min();
    if (!admit(node)) continue;  // dropped or deferred: not executed
    now_ = node.at;
    fire(node, sink);
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(Tick horizon) {
  // The obs sink is sampled once per drain call, not per event: a sink
  // installed mid-drain is seen by the next step()/run_until().
  rtw::obs::Sink* const sink = rtw::obs::sink();
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().at <= horizon) {
    // Coalesce the stretch of events sharing this tick: advance the clock
    // once, then drain same-tick events (including ones the callbacks
    // schedule at the current tick) without re-deciding the horizon.
    const Tick tick = heap_.front().at;
    now_ = tick;
    do {
      const Node node = pop_min();
      if (admit(node)) {
        fire(node, sink);
        ++executed;
      }
    } while (!heap_.empty() && heap_.front().at == tick);
  }
  if (heap_.empty() || heap_.front().at > horizon)
    now_ = std::max(now_, horizon);
  return executed;
}

void EventQueue::reset() {
  for (const Node& node : heap_) cell(node.slot)->~Action();
  heap_.clear();
  chunks_.clear();
  free_head_ = kNil;
  used_ = 0;
  capacity_ = 0;
  now_ = 0;
  seq_ = 0;
  filtered_dropped_ = 0;
  filtered_deferred_ = 0;
}

}  // namespace rtw::sim
