#include "rtw/sim/rng.hpp"

#include <cmath>

namespace rtw::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm();
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256ss::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Xoshiro256ss::uniform_real() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform_real();
}

bool Xoshiro256ss::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Xoshiro256ss::exponential(double rate) noexcept {
  // Inverse CDF; uniform_real() < 1 so log argument is > 0.
  return -std::log(1.0 - uniform_real()) / rate;
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Xoshiro256ss Xoshiro256ss::substream(unsigned n) const noexcept {
  Xoshiro256ss copy = *this;
  for (unsigned i = 0; i <= n; ++i) copy.jump();
  return copy;
}

}  // namespace rtw::sim
