#include "rtw/sim/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rtw::sim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  body_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (body_.empty()) body_.emplace_back();
  body_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::render(std::size_t indent) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : body_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const std::string pad(indent, ' ');
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << pad;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      out << text << std::string(widths[c] - text.size(), ' ');
      if (c + 1 < widths.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << pad << std::string(rule, '-') << '\n';
  for (const auto& row : body_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out, std::size_t indent) const {
  out << render(indent);
}

}  // namespace rtw::sim
