#pragma once
/// \file fault.hpp
/// Deterministic fault injection for every simulator in the library.
///
/// The paper's lossy routing language R'_{n,u} (end of section 5.2.4)
/// *describes* message loss; this layer lets the simulators *produce* it,
/// so the robustness half of the model is exercised by real traffic.  A
/// FaultPlan is a declarative schedule of adversity:
///
///   * link faults  -- per-message drop / duplicate / delay with
///     per-link probability overrides (the ad hoc network applies these at
///     delivery time; a delayed hop reorders naturally against other
///     traffic);
///   * node outages -- crash/recover windows during which a node neither
///     transmits nor receives (its timers are frozen too);
///   * clock jitter -- event-level perturbation applied inside the
///     EventQueue fault-filter stage: a scheduled event fires late by a
///     bounded random amount.
///
/// Determinism is the design center.  Every decision is a *pure function*
/// of (plan.seed, decision identity): the injector carries no RNG state
/// between calls, so a run replays bit-identically from (seed, plan)
/// regardless of call order or thread count.  Link drop decisions are
/// keyed on (link, packet identity) and *not* on the tick -- "erasure
/// coupling" -- which yields a theorem the property harness leans on:
/// raising the drop probability can only grow the set of dropped
/// (link, packet) pairs, so flooding delivery is monotonically
/// non-increasing in the drop rate.
///
/// FaultCounters and FaultRecord are JSONL-exportable (rtw/sim/jsonl.hpp)
/// and are folded into SimResult and engine RunTrace per run -- never
/// shared across runs, so batch entries cannot bleed into one another.

#include <cstdint>
#include <string>
#include <vector>

#include "rtw/sim/rng.hpp"

namespace rtw::sim {

using Tick = std::uint64_t;

/// Message-fault probabilities for one link (or the all-links default).
/// Draws are independent: a message may be both duplicated and delayed.
struct LinkFaults {
  double drop = 0.0;       ///< P(message never delivered on this link)
  double duplicate = 0.0;  ///< P(two copies arrive instead of one)
  double delay = 0.0;      ///< P(delivery deferred by 1..max_delay ticks)
  Tick max_delay = 0;      ///< bound for the deferred-delivery draw

  bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || (delay > 0.0 && max_delay > 0);
  }
  friend bool operator==(const LinkFaults&, const LinkFaults&) = default;
};

/// One crash/recover window: the node is down for t in [down_from,
/// down_until).  Windows may overlap; an empty window is a no-op.
struct NodeOutage {
  std::uint32_t node = 0;
  Tick down_from = 0;
  Tick down_until = 0;  ///< exclusive: the node is back at this tick

  friend bool operator==(const NodeOutage&, const NodeOutage&) = default;
};

/// Event-clock perturbation (applied through the EventQueue fault filter).
struct ClockJitter {
  double probability = 0.0;  ///< P(an event is deferred)
  Tick max_jitter = 0;       ///< deferral is uniform in [1, max_jitter]

  bool any() const noexcept { return probability > 0.0 && max_jitter > 0; }
  friend bool operator==(const ClockJitter&, const ClockJitter&) = default;
};

/// The full declarative fault schedule.  Value type; (seed, plan) is the
/// complete replay key for any faulty run.
struct FaultPlan {
  std::uint64_t seed = 0x6661756c74ULL;  ///< decision-stream seed
  LinkFaults link;                       ///< default for every link
  /// Per-link overrides: ((from, to), faults).  First match wins; absent
  /// links use the default.  kAnyNode in either endpoint wildcards it.
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, LinkFaults>>
      link_overrides;
  std::vector<NodeOutage> outages;
  ClockJitter jitter;
  /// Cap on retained FaultRecord entries per run (counters keep counting
  /// past the cap; records stop accumulating).
  std::size_t record_limit = 4096;

  static constexpr std::uint32_t kAnyNode = 0xffffffffu;

  /// True when no fault can ever fire: a noop plan must leave every
  /// simulator's behavior (and output bytes) identical to running with no
  /// plan at all.
  bool is_noop() const noexcept;

  /// The faults configured for one directed link.
  const LinkFaults& link_for(std::uint32_t from,
                             std::uint32_t to) const noexcept;

  std::string to_json() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Per-run tally of injected faults.  Lives in SimResult / RunTrace, one
/// instance per run -- per-run isolation by construction.
struct FaultCounters {
  std::uint64_t dropped = 0;      ///< link drops
  std::uint64_t duplicated = 0;   ///< extra copies delivered
  std::uint64_t delayed = 0;      ///< deferred deliveries
  std::uint64_t delay_ticks = 0;  ///< summed deferral
  std::uint64_t jittered = 0;     ///< kernel events deferred
  std::uint64_t jitter_ticks = 0; ///< summed event deferral
  std::uint64_t crash_sends = 0;     ///< transmissions suppressed (node down)
  std::uint64_t crash_receives = 0;  ///< receptions suppressed (node down)

  /// Total fault decisions that fired.
  std::uint64_t injected() const noexcept {
    return dropped + duplicated + delayed + jittered + crash_sends +
           crash_receives;
  }
  bool empty() const noexcept { return injected() == 0; }

  FaultCounters& operator+=(const FaultCounters& o) noexcept;
  std::string to_json() const;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// One injected fault, for trace export.
struct FaultRecord {
  enum class Kind : std::uint8_t {
    Drop,
    Duplicate,
    Delay,
    Jitter,
    CrashSend,
    CrashReceive,
  };

  Kind kind = Kind::Drop;
  Tick at = 0;             ///< virtual time of the decision
  std::uint32_t from = 0;  ///< link source / crashed node
  std::uint32_t to = 0;    ///< link destination (0 for node faults)
  std::uint64_t key = 0;   ///< packet identity / event sequence
  Tick shift = 0;          ///< deferral amount (Delay / Jitter)

  std::string to_json() const;

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

std::string to_string(FaultRecord::Kind kind);

/// Draws fault decisions for one run.  Stateless apart from the tallies:
/// every verdict is a pure function of (plan.seed, identity), so two
/// injectors over the same plan agree decision-for-decision no matter the
/// interleaving.  Not thread-safe (one injector per run, like the
/// EventQueue it decorates).
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }
  /// False for noop plans: callers skip the fault stage entirely, keeping
  /// the fault-free path byte-identical to the plain one.
  bool active() const noexcept { return active_; }

  /// True when `node` is inside a crash window at time t.
  bool node_down(std::uint32_t node, Tick t) const noexcept;

  /// Outcome of the link-fault stage for one (link, message) delivery.
  struct LinkVerdict {
    bool deliver = true;         ///< false: dropped
    std::uint32_t copies = 1;    ///< 2 when duplicated
    Tick extra_delay = 0;        ///< added to the nominal arrival tick
  };

  /// Decides the fate of message `key` on the directed link from -> to.
  /// `at` is the nominal delivery tick (recorded, not part of the drop
  /// key: see the erasure-coupling note in the file comment).  Counts and
  /// records what it injects.
  LinkVerdict link_verdict(std::uint32_t from, std::uint32_t to,
                           std::uint64_t key, Tick at);

  /// Clock-jitter stage for kernel events: returns the (possibly
  /// deferred, saturating) fire tick for an event scheduled at `at`.
  Tick jitter(Tick at, std::uint64_t key);

  /// Tallies a transmission suppressed because the sender is down.
  void count_crash_send(std::uint32_t node, Tick at, std::uint64_t key);
  /// Tallies a reception suppressed because the receiver is down.
  void count_crash_receive(std::uint32_t node, Tick at, std::uint64_t key);

  const FaultCounters& counters() const noexcept { return counters_; }
  const std::vector<FaultRecord>& records() const noexcept { return records_; }

private:
  void record(FaultRecord r);

  FaultPlan plan_;
  bool active_ = false;
  FaultCounters counters_;
  std::vector<FaultRecord> records_;
};

}  // namespace rtw::sim
