#pragma once
/// \file table.hpp
/// Fixed-width table printer.  Every experiment harness in bench/ prints
/// its results through this class so the "rows/series the paper reports"
/// come out in a uniform, diffable format.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rtw::sim {

/// A simple right-padded text table.  Columns are sized to the widest cell.
/// Numeric cells can be added with a fixed precision.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string text);
  Table& cell(const char* text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);

  /// Renders the table with a header rule.  `indent` spaces precede each
  /// line.
  std::string render(std::size_t indent = 0) const;

  /// Renders to a stream (convenience for benches).
  void print(std::ostream& out, std::size_t indent = 0) const;

  std::size_t rows() const noexcept { return body_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> body_;
};

}  // namespace rtw::sim
