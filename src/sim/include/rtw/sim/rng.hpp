#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation for all simulators in the
/// library.  Every experiment in the benchmark harness is seeded explicitly,
/// so runs are bit-reproducible across machines.
///
/// Two generators are provided:
///   * SplitMix64 -- a tiny, statistically solid stream generator, used to
///     seed other generators and for cheap one-off draws;
///   * Xoshiro256ss (xoshiro256**) -- the library's workhorse generator.
///
/// Both satisfy the C++ UniformRandomBitGenerator concept, so they can be
/// used with <random> distributions, although the convenience members below
/// (uniform / uniform_real / bernoulli / exponential) avoid the
/// implementation-defined variance of the standard distributions.

#include <cstdint>
#include <limits>

namespace rtw::sim {

/// SplitMix64: 64-bit state, 64-bit output; Sebastiano Vigna's public-domain
/// construction.  Primarily used to expand a single user seed into the
/// 256-bit state of Xoshiro256ss.
class SplitMix64 {
public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256**: 256-bit state general-purpose generator (Blackman & Vigna).
/// Passes BigCrush; period 2^256 - 1.
class Xoshiro256ss {
public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64,
  /// the seeding procedure recommended by the authors.
  explicit Xoshiro256ss(std::uint64_t seed = 0x9d2c5680u) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method, which is unbiased and branch-light.  bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform_real() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed draw with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Jump function: advances the state by 2^128 draws, giving a
  /// non-overlapping substream.  Useful for per-node / per-process streams.
  void jump() noexcept;

  /// Convenience: a fresh generator whose stream is this one's, jumped
  /// ahead 2^128 draws `n + 1` times.  Deterministic substream factory.
  Xoshiro256ss substream(unsigned n) const noexcept;

private:
  std::uint64_t s_[4];
};

}  // namespace rtw::sim
