#pragma once
/// \file small_fn.hpp
/// SmallFn: a move-only type-erased callable with small-buffer
/// optimization, shared by the event kernel and the thread pool.
///
/// std::function heap-allocates for any capture larger than its
/// implementation-defined (and typically tiny) inline buffer, and drags in
/// copy-constructibility requirements the kernel never needs.  SmallFn
/// stores captures up to `Capacity` bytes inline (no allocation on
/// schedule/post), falls back to a single heap cell beyond that, and is
/// move-only, so single-shot tasks can own move-only state.  Dispatch is
/// two raw function pointers (invoke + relocate/destroy), no virtual
/// tables, no RTTI.

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rtw::sim {

template <typename Signature, std::size_t Capacity = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
public:
  SmallFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { destroy(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the wrapped callable lives in the inline buffer (exposed so
  /// benches and tests can assert the no-allocation fast path is taken).
  bool is_inline() const noexcept { return ops_ && ops_->inline_stored; }

  /// Whether a callable of type F would be stored inline.
  template <typename F>
  static constexpr bool fits_inline() noexcept {
    return sizeof(F) <= Capacity &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(unsigned char* dst, unsigned char* src) noexcept;
    void (*destroy)(unsigned char*) noexcept;
    bool inline_stored;
    /// Relocation is equivalent to memcpy of the buffer (trivially
    /// copyable inline captures, and heap cells, whose buffer is just the
    /// owning pointer).  Lets moves skip the indirect relocate call -- the
    /// hot path when POD-captured events sift through the kernel.
    bool trivially_relocatable;
    /// Destruction is a no-op (trivial inline captures); lets destroy()
    /// skip the indirect call.
    bool trivially_destructible;
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](unsigned char* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* s) noexcept {
        std::launder(reinterpret_cast<Fn*>(s))->~Fn();
      },
      /*inline_stored=*/true,
      /*trivially_relocatable=*/std::is_trivially_copyable_v<Fn>,
      /*trivially_destructible=*/std::is_trivially_destructible_v<Fn>};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](unsigned char* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) noexcept {
        // Relocating a heap cell is a pointer copy; ownership transfers.
        ::new (static_cast<void*>(dst))
            Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](unsigned char* s) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(s));
      },
      /*inline_stored=*/false,
      /*trivially_relocatable=*/true,  // buffer holds the owning pointer
      /*trivially_destructible=*/false};

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      if (ops_->trivially_relocatable)
        std::memcpy(storage_, other.storage_, Capacity);
      else
        ops_->relocate(storage_, other.storage_);
    }
    other.ops_ = nullptr;
  }

  void destroy() noexcept {
    if (ops_) {
      if (!ops_->trivially_destructible) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  static_assert(Capacity >= sizeof(void*), "Capacity must hold a pointer");

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace rtw::sim
