#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool shared by the engine's BatchRunner and
/// the benchmark harnesses (batch membership checks, parameter sweeps).
/// The formal runtimes (ProcessSystem, Pram) are deliberately
/// single-threaded deterministic simulators; this pool provides *actual*
/// parallelism where determinism of interleaving does not matter
/// (independent tasks, joined results).
///
/// Per C++ Core Guidelines CP.4: think in tasks.  submit() returns a
/// future; wait_idle() drains the queue.
///
/// (Historically lived in rtw::par; moved into the sim infrastructure
/// layer when the execution engine was introduced so that rtw_engine ->
/// rtw_parallel -> rtw_engine never becomes a cycle.  rtw/par/thread_pool.hpp
/// remains as a compatibility alias.)

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rtw::sim {

class ThreadPool {
public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned busy_ = 0;
  bool stopping_ = false;
};

}  // namespace rtw::sim
