#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool shared by the engine's BatchRunner and
/// the benchmark harnesses (batch membership checks, parameter sweeps).
/// The formal runtimes (ProcessSystem, Pram) are deliberately
/// single-threaded deterministic simulators; this pool provides *actual*
/// parallelism where determinism of interleaving does not matter
/// (independent tasks, joined results).
///
/// Per C++ Core Guidelines CP.4: think in tasks.  submit() returns a
/// future; post() is the fire-and-forget fast path (no future, no
/// packaged_task, no shared_ptr -- one SmallFn move); wait_idle() drains
/// the queue.
///
/// Internally each worker owns its own mutex-guarded deque; producers
/// distribute round-robin and idle workers steal from their siblings'
/// queues, so a fan-out of thousands of small tasks never serializes on a
/// single queue lock.
///
/// (Historically lived in rtw::par; moved into the sim infrastructure
/// layer when the execution engine was introduced so that rtw_engine ->
/// rtw_parallel -> rtw_engine never becomes a cycle.  The old
/// rtw/par/thread_pool.hpp alias has been removed; only an #error
/// tombstone remains there.)

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rtw/sim/small_fn.hpp"

namespace rtw::sim {

class ThreadPool {
public:
  /// Move-only task cell; captures up to 48 bytes run allocation-free.
  using Task = SmallFn<void(), 48>;

  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fire-and-forget fast path: enqueues `task` with no future attached.
  /// Use when the task reports its result through its own captures (the
  /// BatchRunner writes through per-index result slots, for example).
  void post(Task task);

  /// Enqueues a task; returns a future for its result.  Built on post():
  /// the packaged_task wrapper is only paid by callers that want a future.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    post([packaged] { (*packaged)(); });
    return future;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

private:
  /// One worker's queue.  unique_ptr keeps addresses stable in the vector.
  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(unsigned self);
  /// Pops from own queue front, else steals from a sibling's back.
  bool try_pop(unsigned self, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mutex_;          ///< guards the two wait predicates
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::atomic<std::size_t> queued_{0};    ///< tasks sitting in queues
  std::atomic<std::size_t> in_flight_{0}; ///< queued + currently running
  std::atomic<unsigned> round_robin_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace rtw::sim
