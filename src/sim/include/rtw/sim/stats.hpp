#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used by the experiment harnesses.

#include <cstddef>
#include <vector>

namespace rtw::sim {

/// Online mean/variance accumulator (Welford's algorithm).  Numerically
/// stable for long experiment runs; O(1) space.
class OnlineStats {
public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-reduction friendly;
  /// Chan et al. pairwise update).
  void merge(const OnlineStats& other) noexcept;

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch percentile of a sample set.  `q` in [0,1]; linear interpolation
/// between closest ranks.  The input vector is copied (callers keep order).
double percentile(std::vector<double> samples, double q);

/// Median convenience wrapper.
double median(std::vector<double> samples);

}  // namespace rtw::sim
