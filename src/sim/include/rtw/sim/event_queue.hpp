#pragma once
/// \file event_queue.hpp
/// Minimal discrete-event simulation kernel.
///
/// The paper's model is driven by *discrete virtual time* (Definition 3.1
/// makes time sequences range over the naturals, and section 5.2.1 fixes a
/// granularity of one time unit per elementary network operation).  Every
/// simulator in this library -- the deadline scheduler, the
/// data-accumulating executor, the RTDB sampler and the ad hoc network --
/// runs on this kernel, so their timed omega-word encodings share a single
/// notion of "tick".

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rtw::sim {

/// Discrete virtual time, in ticks.  Matches rtw::core::Tick.
using Tick = std::uint64_t;

/// A scheduled callback.  Events at the same tick fire in scheduling order
/// (a strictly increasing sequence number breaks ties), which keeps every
/// simulation deterministic.
class EventQueue {
public:
  using Action = std::function<void(Tick)>;

  /// Schedules `action` to run at absolute time `at`.  Scheduling in the
  /// past (at < now()) is a contract violation and is clamped to now().
  void schedule_at(Tick at, Action action);

  /// Schedules `action` to run `delay` ticks from now.
  void schedule_in(Tick delay, Action action);

  /// Runs events in timestamp order until the queue empties or virtual
  /// time would exceed `horizon`.  Returns the number of events executed.
  ///
  /// The horizon is *inclusive*: an event scheduled exactly at `horizon`
  /// fires; the first event strictly beyond it stays queued.  On return
  /// the clock reads max(now(), horizon) even if the queue drained early,
  /// so back-to-back run_until calls see monotone time.
  std::size_t run_until(Tick horizon);

  /// Executes exactly one event if available; returns false if empty or
  /// the next event is beyond `horizon` (inclusive, like run_until: an
  /// event at exactly `horizon` executes).  Unlike run_until, a false
  /// return leaves the clock where the last executed event put it.
  bool step(Tick horizon);

  Tick now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Discards all pending events and resets the clock to zero.
  void reset();

private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace rtw::sim
